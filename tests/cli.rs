//! End-to-end test of the `sempair` CLI binary: the full lifecycle
//! driven through the process boundary and the on-disk state format.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sempair")
}

fn run(dir: &PathBuf, args: &[&str]) -> Output {
    Command::new(bin())
        .arg(args[0])
        .arg("--dir")
        .arg(dir)
        .args(&args[1..])
        .output()
        .expect("spawn sempair")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).trim().to_string()
}

#[test]
fn cli_full_lifecycle() {
    let dir = std::env::temp_dir().join(format!("sempair-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // setup + enroll
    let out = run(&dir, &["setup", "--fast"]);
    assert!(out.status.success(), "setup failed: {out:?}");
    let out = run(&dir, &["enroll", "bob@example.com"]);
    assert!(out.status.success(), "enroll failed: {out:?}");

    // double setup refused
    let out = run(&dir, &["setup", "--fast"]);
    assert!(!out.status.success(), "second setup must fail");

    // encrypt / decrypt roundtrip across process invocations
    let out = run(&dir, &["encrypt", "bob@example.com", "cli secret"]);
    assert!(out.status.success());
    let ct = stdout(&out);
    assert!(ct.len() > 100, "ciphertext hex expected");
    let out = run(&dir, &["decrypt", "bob@example.com", &ct]);
    assert!(out.status.success(), "decrypt failed: {out:?}");
    assert_eq!(stdout(&out), "cli secret");

    // sign / verify
    let out = run(&dir, &["sign", "bob@example.com", "the deal"]);
    assert!(out.status.success());
    let sig = stdout(&out);
    let out = run(&dir, &["verify", "bob@example.com", "the deal", &sig]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("VALID"));
    let out = run(&dir, &["verify", "bob@example.com", "another deal", &sig]);
    assert!(!out.status.success(), "forged verify must fail");

    // revocation blocks decrypt and sign, unrevoke restores
    let out = run(&dir, &["revoke", "bob@example.com"]);
    assert!(out.status.success());
    let out = run(&dir, &["decrypt", "bob@example.com", &ct]);
    assert!(!out.status.success(), "revoked decrypt must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("revoked"));
    let out = run(&dir, &["sign", "bob@example.com", "x"]);
    assert!(!out.status.success(), "revoked sign must fail");
    let out = run(&dir, &["unrevoke", "bob@example.com"]);
    assert!(out.status.success());
    let out = run(&dir, &["decrypt", "bob@example.com", &ct]);
    assert!(out.status.success());
    assert_eq!(stdout(&out), "cli secret");

    // status + audit reflect the history
    let out = run(&dir, &["status", "bob@example.com"]);
    assert!(stdout(&out).contains("enrolled"));
    let out = run(&dir, &["audit"]);
    let log = stdout(&out);
    assert!(log.contains("served"));
    assert!(log.contains("refused"));
    assert!(log.contains("revoke bob@example.com"));

    // unknown identity errors cleanly
    let out = run(&dir, &["decrypt", "mallory@example.com", &ct]);
    assert!(!out.status.success());

    let _ = std::fs::remove_dir_all(&dir);
}
