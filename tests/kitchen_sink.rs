//! The whole stack in one scenario: a company runs a TCP SEM daemon;
//! employees signcrypt through it; the PKG is run as a (3,5) threshold
//! dealer whose servers can also decrypt escrow copies; an off-boarded
//! employee loses every capability at once.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair::core::bf_ibe::Pkg;
use sempair::core::gdh;
use sempair::core::signcryption;
use sempair::core::threshold::ThresholdPkg;
use sempair::net::tcp::{TcpSemClient, TcpSemServer};
use sempair::pairing::CurveParams;

#[test]
fn company_scenario_end_to_end() {
    let mut rng = StdRng::seed_from_u64(0x51A6);
    let curve = CurveParams::fast_insecure();

    // --- infrastructure -----------------------------------------------------
    let pkg = Pkg::setup(&mut rng, curve.clone());
    let sem = TcpSemServer::bind("127.0.0.1:0", pkg.params().clone()).unwrap();

    // Employees: heidi (sender), ivan (recipient).
    let (heidi_sign, heidi_sign_sem, heidi_pk) =
        gdh::mediated_keygen(&mut rng, pkg.params().curve(), "heidi");
    sem.install_gdh(heidi_sign_sem);
    let (ivan_key, ivan_sem) = pkg.extract_split(&mut rng, "ivan");
    sem.install_ibe(ivan_sem);

    // --- signcrypt through the daemon ---------------------------------------
    let mut heidi_client = TcpSemClient::connect(sem.local_addr(), pkg.params().clone()).unwrap();
    let msg = b"merger term sheet, rev 3";
    let content = signcryption::content_to_sign("ivan", msg);
    let half = heidi_client.gdh_half_sign("heidi", &content).unwrap();
    let sc =
        signcryption::signcrypt(&mut rng, pkg.params(), &heidi_sign, &half, "ivan", msg).unwrap();

    // --- designcrypt through the daemon --------------------------------------
    let mut ivan_client = TcpSemClient::connect(sem.local_addr(), pkg.params().clone()).unwrap();
    let token = ivan_client.ibe_token("ivan", &sc.ciphertext.u).unwrap();
    let (sender, plain) =
        signcryption::designcrypt(pkg.params(), &ivan_key, &token, &sc, &heidi_pk).unwrap();
    assert_eq!(sender, "heidi");
    assert_eq!(plain, msg);

    // --- threshold escrow: the same plaintext, escrowed to a (3,5) vault -----
    let vault = ThresholdPkg::setup(&mut rng, curve.clone(), 3, 5).unwrap();
    let escrow_ct = vault
        .system()
        .params()
        .encrypt_basic(&mut rng, "escrow", &plain);
    let shares = vault.keygen("escrow");
    let dec: Vec<_> = [0usize, 2, 4]
        .iter()
        .map(|&i| vault.system().decryption_share(&shares[i], &escrow_ct.u))
        .collect();
    assert_eq!(
        vault.system().recombine_basic(&escrow_ct, &dec).unwrap(),
        plain
    );

    // --- off-boarding: one revocation call kills both capabilities -----------
    sem.revoke("heidi");
    assert!(heidi_client.gdh_half_sign("heidi", &content).is_err());
    sem.revoke("ivan");
    assert!(ivan_client.ibe_token("ivan", &sc.ciphertext.u).is_err());

    // The audit log tells the story.
    assert_eq!(sem.audit_stats("heidi").served, 1);
    assert_eq!(sem.audit_stats("heidi").refused, 1);
    assert_eq!(sem.audit_stats("ivan").served, 1);
    assert_eq!(sem.audit_stats("ivan").refused, 1);

    sem.shutdown();
}
