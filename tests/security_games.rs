//! Executable versions of the paper's security arguments.
//!
//! These integration tests span the pairing schemes (`sempair-core`)
//! and the RSA baseline (`sempair-mrsa`) to check the *comparative*
//! claims of §2/§4 — the ones that motivate the whole paper.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sempair::core::bf_ibe::Pkg;
use sempair::core::mediated::{DecryptToken, Sem};
use sempair::mrsa::attack;
use sempair::mrsa::ib::IbMrsaSystem;
use sempair::pairing::CurveParams;
use sempair_bigint::{modular, BigUint};

fn curve() -> CurveParams {
    CurveParams::fast_insecure()
}

/// §2 + §4: in IB-mRSA, a single user colluding with the SEM factors
/// the shared modulus and decrypts EVERY other user's mail — the
/// "total break".
#[test]
fn ib_mrsa_collusion_breaks_all_users() {
    let mut rng = StdRng::seed_from_u64(1001);
    let system = IbMrsaSystem::setup(&mut rng, 512, 64, 16).unwrap();
    let params = system.public_params();

    // Honest victim.
    let (victim, victim_sem) = system.keygen(&mut rng, "victim@example.com").unwrap();
    let mut sem = system.new_sem();
    sem.install(victim_sem);

    // Attacker enrolls normally…
    let (attacker, attacker_sem_key) = system.keygen(&mut rng, "attacker@example.com").unwrap();
    // …then corrupts the SEM and reconstitutes a FULL (e, d) pair. We
    // model the leak with the PKG-side demo hook, which equals
    // d_user + d_sem mod φ(n).
    let full_d = system
        .full_exponent_for_attack_demo("attacker@example.com")
        .unwrap();
    let e_attacker = params.exponent_for("attacker@example.com");
    drop((attacker, attacker_sem_key));

    // The classical common-modulus attack factors n…
    let (p, q) = attack::factor_from_ed(&mut rng, &params.n, &e_attacker, &full_d, 64)
        .expect("factorization succeeds");
    assert_eq!(&(&p * &q), &params.n);

    // …and recovers the VICTIM's private exponent.
    let e_victim = params.exponent_for("victim@example.com");
    let d_victim = attack::recover_other_private_key(&p, &q, &e_victim).unwrap();

    // Decrypt the victim's mail with no help from SEM or victim.
    let c = params
        .encrypt(&mut rng, "victim@example.com", b"board minutes")
        .unwrap();
    // Raw RSA proves key recovery; then confirm the full OAEP path by
    // emulating user+SEM with d_victim split trivially.
    let m_block = modular::mod_pow(&c, &d_victim, &params.n);
    let k = params.n.bits().div_ceil(8);
    let oaep = sempair::mrsa::oaep::Oaep::new(k, params.oaep_hash_len);
    let plain = oaep
        .unpad(
            &m_block.to_be_bytes_padded(k),
            "victim@example.com".as_bytes(),
        )
        .expect("attacker reads victim mail");
    assert_eq!(plain, b"board minutes");
    // The legitimate path agrees.
    let token = sem.half_decrypt("victim@example.com", &c).unwrap();
    assert_eq!(victim.finish_decrypt(&c, &token).unwrap(), plain);
}

/// §4: in the mediated IBE, the same collusion recovers only the
/// *colluder's* key. Other identities' ciphertexts stay sealed: the
/// colluders hold d_alice = s·Q_alice but would need s (or d_bob) to
/// touch Bob's mail.
#[test]
fn mediated_ibe_collusion_contained_to_one_identity() {
    let mut rng = StdRng::seed_from_u64(1002);
    let pkg = Pkg::setup(&mut rng, curve());
    let mut sem = Sem::new();

    let (alice, alice_sem) = pkg.extract_split(&mut rng, "alice");
    let (_bob, bob_sem) = pkg.extract_split(&mut rng, "bob");
    sem.install(alice_sem);
    sem.install(bob_sem);

    // Alice corrupts the SEM: full key for herself.
    let alice_full = alice.collude(pkg.params(), sem.leak_key_for_attack_demo("alice").unwrap());
    assert!(pkg.params().verify_private_key(&alice_full));

    // She can now bypass her own revocation…
    sem.revoke("alice");
    let c_alice = pkg
        .params()
        .encrypt_full(&mut rng, "alice", b"alice mail")
        .unwrap();
    assert_eq!(
        pkg.params().decrypt_full(&alice_full, &c_alice).unwrap(),
        b"alice mail"
    );

    // …and can even grab Bob's SEM half, but the assembled point is NOT
    // Bob's key (it is d_alice,user + d_bob,sem): Bob's mail stays safe.
    let bob_sem_leak = sem.leak_key_for_attack_demo("bob").unwrap();
    let franken = sempair::core::bf_ibe::PrivateKey {
        id: "bob".into(),
        point: alice.collude(pkg.params(), bob_sem_leak).point.clone(),
    };
    let c_bob = pkg
        .params()
        .encrypt_full(&mut rng, "bob", b"bob mail")
        .unwrap();
    assert!(pkg.params().decrypt_full(&franken, &c_bob).is_err());
    assert!(!pkg.params().verify_private_key(&franken));
}

/// §2's proof flaw, made executable: the SEM cannot tell valid from
/// invalid ciphertexts. It serves a token for a ciphertext whose FO
/// check will fail — so any security proof that needs the SEM (or its
/// simulator) to reject invalid ciphertexts is stuck, exactly the
/// obstacle the paper identifies for insider-CCA security.
#[test]
fn sem_cannot_validate_ciphertexts() {
    let mut rng = StdRng::seed_from_u64(1003);
    let pkg = Pkg::setup(&mut rng, curve());
    let (alice, alice_sem) = pkg.extract_split(&mut rng, "alice");
    let mut sem = Sem::new();
    sem.install(alice_sem);

    // A syntactically fine but semantically invalid ciphertext: real U,
    // garbage V/W.
    let mut c = pkg
        .params()
        .encrypt_full(&mut rng, "alice", b"valid")
        .unwrap();
    c.w[0] ^= 0xff;

    // The SEM happily issues a token (it only sees U)…
    let token = sem
        .decrypt_token(pkg.params(), "alice", &c.u)
        .expect("SEM cannot reject — it cannot check validity");
    // …and the invalidity only surfaces at the END of user decryption.
    assert!(alice.finish_decrypt(pkg.params(), &c, &token).is_err());
}

/// §4: the token is a one-time, ciphertext-bound value. Reusing it on a
/// different ciphertext (same identity!) fails, because `U = H3(σ, M)P`
/// pins it.
#[test]
fn tokens_are_single_use_across_ciphertexts() {
    let mut rng = StdRng::seed_from_u64(1004);
    let pkg = Pkg::setup(&mut rng, curve());
    let (alice, alice_sem) = pkg.extract_split(&mut rng, "alice");
    let mut sem = Sem::new();
    sem.install(alice_sem);

    let c1 = pkg
        .params()
        .encrypt_full(&mut rng, "alice", b"message one")
        .unwrap();
    let c2 = pkg
        .params()
        .encrypt_full(&mut rng, "alice", b"message two")
        .unwrap();
    let t1 = sem.decrypt_token(pkg.params(), "alice", &c1.u).unwrap();
    assert_eq!(
        alice.finish_decrypt(pkg.params(), &c1, &t1).unwrap(),
        b"message one"
    );
    assert!(alice.finish_decrypt(pkg.params(), &c2, &t1).is_err());
}

/// §4: the token reveals nothing useful about d_sem — concretely, the
/// trivial "divide out" attacks fail: the token for one U cannot be
/// transformed into the token for another U by any scalar the attacker
/// knows, unless they solve CDH. We check the algebraic consistency the
/// argument rests on: tokens for U and 2U satisfy t(2U) = t(U)², so a
/// *known* relation between the U's does translate — that is inherent —
/// but a fresh honestly-generated U has an unknown discrete log, so the
/// relation is useless. The test pins the algebra both ways.
#[test]
fn token_algebra_matches_pairing_bilinearity() {
    let mut rng = StdRng::seed_from_u64(1005);
    let pkg = Pkg::setup(&mut rng, curve());
    let (_, alice_sem) = pkg.extract_split(&mut rng, "alice");
    let mut sem = Sem::new();
    sem.install(alice_sem);
    let curve = pkg.params().curve();

    let u = curve.mul_generator(&BigUint::from(7u64));
    let u2 = curve.mul_generator(&BigUint::from(14u64));
    let t_u = sem.decrypt_token(pkg.params(), "alice", &u).unwrap();
    let t_u2 = sem.decrypt_token(pkg.params(), "alice", &u2).unwrap();
    assert_eq!(DecryptToken(curve.gt_pow(&t_u.0, &BigUint::two())), t_u2);
}

/// §4.1 Theorem 4.1's simulator mechanics: B answers user-key,
/// SEM-key and token queries with lazily sampled splits that are
/// mutually consistent (d_user + d_sem = d_ID) — the property the
/// reduction's perfect simulation rests on. We replay the lazy-sampling
/// strategy and check consistency against the real PKG.
#[test]
fn reduction_simulator_consistency() {
    let mut rng = StdRng::seed_from_u64(1006);
    let pkg = Pkg::setup(&mut rng, curve());
    let params = pkg.params();
    let curve = params.curve();

    // B's lazy table: on first touch of an identity, sample d_sem at
    // random; answer SEM queries with ê(U, d_sem) and user-key queries
    // with d_ID − d_sem (using its extraction oracle = our pkg).
    let d_sem_alice = curve.mul_generator(&curve.random_scalar(&mut rng));

    // SEM query on (alice, U): simulated token.
    let u = curve.mul_generator(&curve.random_scalar(&mut rng));
    let simulated_token = curve.pairing(&u, &d_sem_alice);

    // User-key query on alice: d_user = d_ID − d_sem.
    let d_id = pkg.extract("alice");
    let d_user = curve.sub(&d_id.point, &d_sem_alice);

    // Consistency: the adversary's own recomputation
    // ê(U, d_user)·token must equal ê(U, d_ID) — i.e. decryption with
    // the simulated pieces behaves exactly like the real scheme.
    let recombined = curve.gt_mul(&curve.pairing(&u, &d_user), &simulated_token);
    assert_eq!(recombined, curve.pairing(&u, &d_id.point));

    // And a full decryption through the simulated pieces succeeds.
    let c = params
        .encrypt_full(&mut rng, "alice", b"reduction check")
        .unwrap();
    let token = curve.pairing(&c.u, &d_sem_alice);
    let user = sempair::core::mediated::UserKey {
        id: "alice".into(),
        point: d_user,
    };
    let m = user
        .finish_decrypt(params, &c, &DecryptToken(token))
        .unwrap();
    assert_eq!(m, b"reduction check");
}

/// The paper's §3 threshold-security intuition: t−1 shares are
/// statistically independent of the master key. We verify the exact
/// algebraic fact behind the proof of Thm 3.1: for any fixed t−1
/// shares, EVERY candidate master value is consistent with some
/// polynomial — demonstrated by constructing two dealers with different
/// masters that produce identical first t−1 shares.
#[test]
fn threshold_shares_below_t_reveal_nothing() {
    use sempair::core::shamir::{lagrange_coefficient_at, Share};
    let mut rng = StdRng::seed_from_u64(1007);
    let q: BigUint = "0xffffffffffffffc5".parse().unwrap();

    // Fix t−1 = 2 observed shares.
    let observed = [
        Share {
            index: 1,
            value: sempair_bigint::rng::random_below(&mut rng, &q),
        },
        Share {
            index: 2,
            value: sempair_bigint::rng::random_below(&mut rng, &q),
        },
    ];
    // For ANY claimed secret s*, interpolation through
    // (0, s*), (1, y1), (2, y2) is a valid degree-2 polynomial, so the
    // observed shares are consistent with every secret. Verify by
    // recomputing share 3 twice and checking both are well-defined but
    // different (the polynomials differ), while shares 1, 2 agree.
    let indices = [0u32.wrapping_add(3), 1, 2]; // {3,1,2} for interpolation sets below
    let _ = indices;
    let mut third_shares = Vec::new();
    for s_star in [BigUint::from(5u64), BigUint::from(6u64)] {
        // Points (0, s*), (1, y1), (2, y2) — evaluate at x = 3.
        let pts = [
            (0u32, s_star.clone()),
            (1u32, observed[0].value.clone()),
            (2u32, observed[1].value.clone()),
        ];
        // Lagrange at x=3 over support {0,1,2}: treat index 0 via the
        // generalized helper by shifting support — do it manually.
        let support: Vec<u32> = pts.iter().map(|(i, _)| *i + 1).collect(); // shift +1 to avoid 0
        let mut acc = BigUint::zero();
        for (k, (_, y)) in pts.iter().enumerate() {
            let li = lagrange_coefficient_at(&support, support[k], 4, &q).unwrap();
            acc = modular::mod_add(&acc, &modular::mod_mul(&li, y, &q), &q);
        }
        third_shares.push(acc);
    }
    assert_ne!(
        third_shares[0], third_shares[1],
        "different secrets remain consistent"
    );
}

/// E13: the IND-ID-TCPA game of Definition 2, run statistically. An
/// adversary holding `t−1` key shares mounts a concrete distinguishing
/// strategy (complete the Lagrange product pretending the missing share
/// is trivial, then pick the plaintext closer in Hamming distance). If
/// the scheme leaks through `t−1` shares, this succeeds well above 1/2;
/// the test asserts its success stays within the binomial noise band of
/// a coin flip over 120 independent games.
#[test]
fn threshold_tcpa_game_statistical() {
    use sempair::core::shamir;
    use sempair::core::threshold::ThresholdPkg;

    let mut rng = StdRng::seed_from_u64(0xE11);
    let curve = CurveParams::fast_insecure();
    let pkg = ThresholdPkg::setup(&mut rng, curve, 3, 5).unwrap();
    let sys = pkg.system();
    let shares = pkg.keygen("target");
    let corrupted = &shares[..2]; // t − 1 = 2 corrupted players

    let m0 = vec![0u8; 32];
    let m1 = vec![0xffu8; 32];
    let mut wins = 0u32;
    const GAMES: u32 = 120;
    for game in 0..GAMES {
        let b = (rng.next_u32() & 1) as usize;
        let challenge = if b == 0 { &m0 } else { &m1 };
        let ct = sys.params().encrypt_basic(&mut rng, "target", challenge);

        // Adversary: decryption shares from its corrupted players…
        let dec: Vec<_> = corrupted
            .iter()
            .map(|ks| sys.decryption_share(ks, &ct.u))
            .collect();
        // …Lagrange-combined over the full t-set {1, 2, 3}, with the
        // honest player 3's (unknown) share replaced by the identity.
        let indices = [1u32, 2, 3];
        let curve = sys.params().curve();
        let q = curve.order();
        let mut g = curve.gt_one();
        for share in &dec {
            let li = shamir::lagrange_coefficient(&indices, share.index, q).unwrap();
            g = curve.gt_mul(&g, &curve.gt_pow(&share.value, &li));
        }
        // Unmask with the (wrong) g and guess by Hamming distance.
        let mask = {
            // The adversary recomputes H2(g) the public way.
            sempair::hash::derive::kdf(b"sempair-bf-h2", &curve.gt_to_bytes(&g), 32)
        };
        let candidate: Vec<u8> = ct.v.iter().zip(mask.iter()).map(|(a, m)| a ^ m).collect();
        let dist = |x: &[u8], y: &[u8]| -> u32 {
            x.iter().zip(y).map(|(a, b)| (a ^ b).count_ones()).sum()
        };
        let guess = usize::from(dist(&candidate, &m1) < dist(&candidate, &m0));
        if guess == b {
            wins += 1;
        }
        let _ = game;
    }
    // Coin-flip band: 120 trials, p = 1/2 → σ ≈ 5.5; allow ±4σ.
    assert!(
        (38..=82).contains(&wins),
        "adversary with t−1 shares won {wins}/{GAMES} games — outside the coin-flip band"
    );
}
