//! Cross-crate end-to-end flows: the deployment stack from PKG to
//! threaded SEM server to wire formats.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair::core::bf_ibe::{FullCiphertext, Pkg};
use sempair::core::gdh;
use sempair::core::threshold::ThresholdPkg;
use sempair::net::latency::{mediated_op_time, LinkModel};
use sempair::net::revocation::ValidityPeriodPkg;
use sempair::net::server::{drive_throughput, SemServer};
use sempair::net::wire;
use sempair::pairing::CurveParams;
use std::time::Duration;

fn curve() -> CurveParams {
    CurveParams::fast_insecure()
}

/// Mail travels PKG → sender → SEM server → recipient, entirely through
/// serialized wire formats (no shared in-memory structures).
#[test]
fn full_stack_mail_through_wire_formats() {
    let mut rng = StdRng::seed_from_u64(2001);
    let pkg = Pkg::setup(&mut rng, curve());
    let server = SemServer::spawn(pkg.params().clone(), 2);
    let (bob, bob_sem) = pkg.extract_split(&mut rng, "bob");
    server.install_ibe(bob_sem);

    // Sender side: encrypt and serialize.
    let c = pkg
        .params()
        .encrypt_full(&mut rng, "bob", b"wire-format mail")
        .unwrap();
    let wire_bytes = c.to_bytes(pkg.params());

    // Recipient side: parse, request token, decrypt.
    let parsed = FullCiphertext::from_bytes(pkg.params(), &wire_bytes).unwrap();
    assert_eq!(parsed, c);
    let client = server.client();
    let token = client.ibe_token("bob", &parsed.u).unwrap();
    assert_eq!(
        bob.finish_decrypt(pkg.params(), &parsed, &token).unwrap(),
        b"wire-format mail"
    );
    server.shutdown();
}

/// Many identities through one server; revocation of one leaves the
/// rest untouched.
#[test]
fn multi_user_server_with_selective_revocation() {
    let mut rng = StdRng::seed_from_u64(2002);
    let pkg = Pkg::setup(&mut rng, curve());
    let server = SemServer::spawn(pkg.params().clone(), 4);
    let users: Vec<_> = (0..6)
        .map(|i| {
            let id = format!("user{i}@example.com");
            let (key, sem_half) = pkg.extract_split(&mut rng, &id);
            server.install_ibe(sem_half);
            (id, key)
        })
        .collect();

    server.revoke("user3@example.com");

    let client = server.client();
    for (id, key) in &users {
        let c = pkg
            .params()
            .encrypt_full(&mut rng, id, id.as_bytes())
            .unwrap();
        let token = client.ibe_token(id, &c.u);
        if id == "user3@example.com" {
            assert_eq!(token, Err(sempair::core::Error::Revoked));
        } else {
            let m = key
                .finish_decrypt(pkg.params(), &c, &token.unwrap())
                .unwrap();
            assert_eq!(&m, id.as_bytes());
        }
    }
    server.shutdown();
}

/// Throughput scales (or at least does not collapse) with workers, and
/// every request is actually served.
#[test]
fn throughput_driver_serves_all_requests() {
    let mut rng = StdRng::seed_from_u64(2003);
    let pkg = Pkg::setup(&mut rng, curve());
    let server = SemServer::spawn(pkg.params().clone(), 4);
    let (_, sem_half) = pkg.extract_split(&mut rng, "load");
    server.install_ibe(sem_half);
    let c = pkg.params().encrypt_full(&mut rng, "load", b"x").unwrap();
    let result = drive_throughput(&server, "load", &c.u, 4, 64).unwrap();
    assert_eq!(result.requests, 64);
    assert!(result.ops_per_sec() > 0.0);
    server.shutdown();
}

/// The threshold PKG and the mediated layer compose: a (2,3) threshold
/// dealer's recombined full key decrypts mediated-style ciphertexts.
#[test]
fn threshold_and_mediated_share_the_same_ciphertext_format() {
    let mut rng = StdRng::seed_from_u64(2004);
    let tpkg = ThresholdPkg::setup(&mut rng, curve(), 2, 3).unwrap();
    let sys = tpkg.system();
    // A sender encrypts BasicIdent, oblivious to how the PKG is run.
    let c = sys.params().encrypt_basic(&mut rng, "carol", b"composable");
    let shares = tpkg.keygen("carol");
    let dec: Vec<_> = shares[1..]
        .iter()
        .map(|ks| sys.decryption_share(ks, &c.u))
        .collect();
    assert_eq!(sys.recombine_basic(&c, &dec).unwrap(), b"composable");
}

/// Revocation-latency comparison: the SEM's is zero (next request),
/// the validity-period scheme's is bounded by the epoch length, and
/// the PKG work per epoch is linear in users (E8's shape).
#[test]
fn revocation_latency_and_cost_shapes() {
    let mut rng = StdRng::seed_from_u64(2005);
    let users: Vec<String> = (0..20).map(|i| format!("u{i}")).collect();
    let pkg = Pkg::setup(&mut rng, curve());
    let mut vp = ValidityPeriodPkg::new(pkg, Duration::from_secs(3600), users);
    let issued = vp.rotate_epoch();
    assert_eq!(issued.len(), 20);
    vp.revoke("u7");
    assert_eq!(vp.rotate_epoch().len(), 19);
    assert_eq!(vp.extract_count(), 39);
    assert!(vp.expected_revocation_latency() > Duration::ZERO);

    // SEM side: revocation cost is one op regardless of user count.
    for n in [10usize, 100, 1000] {
        let cost = sempair::net::revocation::revocation_cost(n);
        assert_eq!(cost.sem_ops_per_revocation, 1);
        assert_eq!(cost.rekeys_per_epoch, n);
    }
}

/// The E3 bandwidth claims hold on the paper-scale parameters, and the
/// latency model turns them into end-to-end time differences.
#[test]
fn bandwidth_and_latency_model_consistency() {
    let curve = CurveParams::paper_default();
    let ibe = wire::mediated_ibe_decrypt(&curve, 16);
    let gdh = wire::mediated_gdh_sign(&curve, 16);
    let rsa = wire::mrsa_half_op(1024, 16);
    // Orderings the paper states.
    assert!(gdh.response < rsa.response, "GDH token shorter than mRSA");
    assert_eq!(ibe.response, 1024, "IBE token ≈ 1000 bits at 512-bit p");

    // On a thin 2003 link the byte counts matter.
    let link = LinkModel::dsl_2003();
    let t_gdh = mediated_op_time(
        &link,
        gdh.request,
        gdh.response,
        Duration::from_millis(5),
        Duration::from_millis(5),
        Duration::from_millis(1),
    );
    let t_rsa = mediated_op_time(
        &link,
        rsa.request,
        rsa.response,
        Duration::from_millis(5),
        Duration::from_millis(5),
        Duration::from_millis(1),
    );
    // Same compute assumed: the GDH exchange is never slower.
    assert!(t_gdh <= t_rsa);
}

/// GDH signatures produced through the server verify under plain BLS —
/// "transparent to the verifier".
#[test]
fn server_signed_documents_verify_offline() {
    let mut rng = StdRng::seed_from_u64(2006);
    let pkg = Pkg::setup(&mut rng, curve());
    let curve = pkg.params().curve().clone();
    let server = SemServer::spawn(pkg.params().clone(), 2);
    let (user, sem_half, pk) = gdh::mediated_keygen(&mut rng, &curve, "signer");
    server.install_gdh(sem_half);
    let client = server.client();

    let docs: Vec<Vec<u8>> = (0..4).map(|i| format!("doc {i}").into_bytes()).collect();
    let mut sigs = Vec::new();
    for doc in &docs {
        let half = client.gdh_half_sign("signer", doc).unwrap();
        sigs.push(user.finish_sign(&curve, doc, &half).unwrap());
    }
    server.shutdown();
    // Offline verification — no SEM, no server.
    for (doc, sig) in docs.iter().zip(&sigs) {
        gdh::verify(&curve, &pk, doc, sig).unwrap();
    }
    // Signatures do not cross documents.
    assert!(gdh::verify(&curve, &pk, &docs[0], &sigs[1]).is_err());
}
