//! Regenerates the built-in parameter sets embedded in `params.rs`.
//!
//! Run with `cargo run --release -p sempair-pairing --example gen_params`.
//! Generation is deterministic (fixed DRBG seed) so the printed
//! constants are reproducible.

use sempair_hash::HmacDrbgRng;
use sempair_pairing::CurveParams;

fn emit(label: &str, params: &CurveParams) {
    let spec = params.to_spec();
    println!("const {label}: (&str, &str, &str, &str) = (");
    println!("    \"{}\",", spec.p.to_hex());
    println!("    \"{}\",", spec.r.to_hex());
    println!("    \"{}\",", spec.gx.to_hex());
    println!("    \"{}\",", spec.gy.to_hex());
    println!(");");
}

fn main() {
    let mut rng = HmacDrbgRng::new(b"sempair-paper-params-v1");
    let paper = CurveParams::generate(&mut rng, 512, 160).expect("512/160 generation");
    emit("PAPER_512_160", &paper);

    let mut rng = HmacDrbgRng::new(b"sempair-fast-params-v1");
    let fast = CurveParams::generate(&mut rng, 256, 128).expect("256/128 generation");
    emit("FAST_256_128", &fast);

    let mut rng = HmacDrbgRng::new(b"sempair-short-gdh-params-v1");
    let short = CurveParams::generate(&mut rng, 176, 160).expect("176/160 generation");
    emit("SHORT_GDH_176_160", &short);
}
