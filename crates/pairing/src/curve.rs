//! Group arithmetic on the supersingular curve `E : y² = x³ + x`.
//!
//! Affine points are the public representation; scalar multiplication
//! runs internally on Jacobian coordinates to avoid per-step inversions.
//!
//! The formulas themselves live in `sempair-field`'s generic kernels
//! ([`sempair_field::curve`]); this module wraps them around the public
//! point type and, for moduli that fit the fixed-width backend, routes
//! scalar multiplications through [`crate::fixed`].

use crate::fixed;
use crate::fp::{Fp, FpCtx};
use sempair_bigint::BigUint;
use sempair_field::curve as fcurve;

/// A point on `E(F_p)`, affine or the point at infinity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct G1Affine(Option<(Fp, Fp)>);

impl G1Affine {
    /// The point at infinity (group identity).
    pub fn infinity() -> Self {
        G1Affine(None)
    }

    /// Builds a point from affine coordinates without checking the curve
    /// equation (crate-internal; public constructors validate).
    pub(crate) fn from_xy_unchecked(x: Fp, y: Fp) -> Self {
        G1Affine(Some((x, y)))
    }

    /// `true` iff this is the identity.
    pub fn is_infinity(&self) -> bool {
        self.0.is_none()
    }

    /// The affine coordinates, or `None` for infinity.
    pub fn coordinates(&self) -> Option<(&Fp, &Fp)> {
        self.0.as_ref().map(|(x, y)| (x, y))
    }

    /// Constant-time equality on the coordinate limbs.
    ///
    /// The derived `PartialEq` short-circuits; this variant compares
    /// both coordinates with [`Fp::ct_eq`] and combines the results
    /// without data-dependent branching on the coordinate values.
    /// Whether each side is the point at infinity is still visible —
    /// that is structural, not secret, for every protocol in this
    /// workspace (half-keys are never the identity).
    pub fn ct_eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some((ax, ay)), Some((bx, by))) => {
                // Bitwise AND (not `&&`) so both coordinate compares
                // always run.
                ax.ct_eq(bx) & ay.ct_eq(by)
            }
            _ => false,
        }
    }

    /// Securely erases the coordinates (volatile limb zeroing), then
    /// leaves the point at infinity so no stale curve point remains.
    pub fn zeroize(&mut self) {
        if let Some((x, y)) = self.0.as_mut() {
            x.zeroize();
            y.zeroize();
        }
        self.0 = None;
    }
}

/// `true` iff `(x, y)` satisfies `y² = x³ + x`.
pub(crate) fn is_on_curve(f: &FpCtx, x: &Fp, y: &Fp) -> bool {
    fcurve::is_on_curve(f, x, y)
}

/// `-P`.
pub(crate) fn neg(f: &FpCtx, p: &G1Affine) -> G1Affine {
    G1Affine(fcurve::affine_neg(f, p.coordinates()))
}

/// Affine point addition (handles all cases).
pub(crate) fn add(f: &FpCtx, p: &G1Affine, q: &G1Affine) -> G1Affine {
    G1Affine(fcurve::affine_add(f, p.coordinates(), q.coordinates()))
}

/// Internal Jacobian representation: `(X, Y, Z)` with `x = X/Z²`,
/// `y = Y/Z³`; infinity encoded as `Z = 0`. A thin wrapper over the
/// generic kernel point, kept so callers inside the crate keep their
/// method-call style.
#[derive(Clone, Debug)]
pub(crate) struct Jacobian(fcurve::JPoint<Fp>);

impl Jacobian {
    pub(crate) fn infinity(f: &FpCtx) -> Self {
        Jacobian(fcurve::jp_infinity(f))
    }

    pub(crate) fn to_affine(&self, f: &FpCtx) -> G1Affine {
        G1Affine(fcurve::jp_to_affine(f, &self.0))
    }

    /// Mixed addition with an affine point (`Z2 = 1`).
    pub(crate) fn add_affine(&self, f: &FpCtx, q: &G1Affine) -> Jacobian {
        Jacobian(fcurve::jp_add_affine(f, &self.0, q.coordinates()))
    }
}

/// Scalar multiplication `k·P` (4-bit fixed window over Jacobian
/// coordinates). Scalars that fit the fixed-width backend run there;
/// everything else goes through the generic kernel on the bigint
/// context.
pub(crate) fn mul(f: &FpCtx, k: &BigUint, p: &G1Affine) -> G1Affine {
    if k.is_zero() || p.is_infinity() {
        return G1Affine::infinity();
    }
    if let Some(fx) = f.fixed() {
        if fx.fits_scalar(k) {
            return fixed::mul(fx, k, p);
        }
    }
    G1Affine(fcurve::scalar_mul(f, k.limbs(), p.coordinates()))
}

/// Multi-scalar multiplication `Σ kᵢ·Pᵢ` via Pippenger's bucket method
/// (see [`sempair_field::curve::multi_scalar_mul`] for the cost model).
pub(crate) fn multi_mul(f: &FpCtx, terms: &[(BigUint, G1Affine)]) -> G1Affine {
    if let Some(fx) = f.fixed() {
        if terms.iter().all(|(k, _)| fx.fits_scalar(k)) {
            return fixed::multi_mul(fx, terms);
        }
    }
    let kernel_terms: Vec<(&[u64], fcurve::AffineRef<'_, Fp>)> = terms
        .iter()
        .map(|(k, p)| (k.limbs(), p.coordinates()))
        .collect();
    G1Affine(fcurve::multi_scalar_mul(f, &kernel_terms))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny hand-checkable curve: p = 11 (≡ 3 mod 4), E: y² = x³ + x
    /// over F_11 has 12 = p + 1 points.
    fn f11() -> FpCtx {
        FpCtx::new(&BigUint::from(11u64)).unwrap()
    }

    fn pt(f: &FpCtx, x: u64, y: u64) -> G1Affine {
        let p = G1Affine::from_xy_unchecked(f.from_u64(x), f.from_u64(y));
        let (px, py) = p.coordinates().unwrap();
        assert!(is_on_curve(f, px, py), "({x},{y}) not on curve");
        p
    }

    /// Enumerates all affine points of E(F_11) by brute force.
    fn all_points(f: &FpCtx) -> Vec<G1Affine> {
        let mut pts = vec![G1Affine::infinity()];
        for x in 0..11u64 {
            for y in 0..11u64 {
                let xe = f.from_u64(x);
                let ye = f.from_u64(y);
                if is_on_curve(f, &xe, &ye) {
                    pts.push(G1Affine::from_xy_unchecked(xe, ye));
                }
            }
        }
        pts
    }

    #[test]
    fn group_order_is_p_plus_1() {
        let f = f11();
        assert_eq!(all_points(&f).len(), 12);
    }

    #[test]
    fn ct_eq_matches_derived_eq_on_all_pairs() {
        let f = f11();
        let pts = all_points(&f);
        for a in &pts {
            for b in &pts {
                assert_eq!(a.ct_eq(b), a == b, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn zeroize_leaves_infinity() {
        let f = f11();
        let mut p = pt(&f, 5, 8);
        assert!(!p.is_infinity());
        p.zeroize();
        assert!(p.is_infinity());
        assert!(p.coordinates().is_none());
    }

    #[test]
    fn every_point_killed_by_group_order() {
        let f = f11();
        let order = BigUint::from(12u64);
        for p in all_points(&f) {
            assert!(mul(&f, &order, &p).is_infinity(), "{p:?}");
        }
    }

    #[test]
    fn addition_matches_repeated_add() {
        let f = f11();
        for p in all_points(&f) {
            let mut acc = G1Affine::infinity();
            for k in 1u64..=12 {
                acc = add(&f, &acc, &p);
                assert_eq!(mul(&f, &BigUint::from(k), &p), acc, "k={k} p={p:?}");
            }
        }
    }

    #[test]
    fn add_commutes_and_associates() {
        let f = f11();
        let pts = all_points(&f);
        for a in &pts {
            for b in &pts {
                assert_eq!(add(&f, a, b), add(&f, b, a));
            }
        }
        // Associativity spot-check on a few triples.
        for a in pts.iter().step_by(3) {
            for b in pts.iter().step_by(4) {
                for c in pts.iter().step_by(5) {
                    assert_eq!(add(&f, &add(&f, a, b), c), add(&f, a, &add(&f, b, c)));
                }
            }
        }
    }

    #[test]
    fn negation_and_identity() {
        let f = f11();
        for p in all_points(&f) {
            assert!(add(&f, &p, &neg(&f, &p)).is_infinity());
            assert_eq!(add(&f, &p, &G1Affine::infinity()), p);
        }
    }

    #[test]
    fn two_torsion_point_doubles_to_infinity() {
        let f = f11();
        // (0, 0) is on the curve and has order 2.
        let t = pt(&f, 0, 0);
        assert!(add(&f, &t, &t).is_infinity());
        assert!(mul(&f, &BigUint::two(), &t).is_infinity());
        assert_eq!(mul(&f, &BigUint::from(3u64), &t), t);
    }

    #[test]
    fn jacobian_affine_agree_on_larger_field() {
        // 2^89 - 1 is a Mersenne prime ≡ 3 (mod 4).
        let p = &(BigUint::one() << 89) - &BigUint::one();
        let f = FpCtx::new(&p).unwrap();
        // Find a point by scanning x.
        let mut x = BigUint::one();
        let point = loop {
            let xe = f.from_uint(&x);
            let rhs = f.add(&f.mul(&f.sqr(&xe), &xe), &xe);
            if let Some(y) = f.sqrt(&rhs) {
                break G1Affine::from_xy_unchecked(xe, y);
            }
            x = &x + &BigUint::one();
        };
        // k(P) via affine chain vs windowed Jacobian.
        let k = BigUint::from(0x123456789abcdefu64);
        let mut affine_acc = G1Affine::infinity();
        // Double-and-add in affine.
        for i in (0..k.bits()).rev() {
            affine_acc = add(&f, &affine_acc, &affine_acc.clone());
            if k.bit(i) {
                affine_acc = add(&f, &affine_acc, &point);
            }
        }
        assert_eq!(mul(&f, &k, &point), affine_acc);
    }

    #[test]
    fn jacobian_add_matches_affine_exhaustively() {
        let f = f11();
        let pts = all_points(&f);
        for a in &pts {
            for b in &pts {
                let ja = Jacobian::infinity(&f).add_affine(&f, a);
                let jb = Jacobian::infinity(&f).add_affine(&f, b);
                let sum = Jacobian(fcurve::jp_add(&f, &ja.0, &jb.0));
                assert_eq!(sum.to_affine(&f), add(&f, a, b));
            }
        }
    }

    #[test]
    fn multi_mul_matches_term_by_term() {
        let f = f11();
        let pts = all_points(&f);
        // All digit patterns over the tiny group, many term counts.
        for n in 0..8usize {
            let terms: Vec<(BigUint, G1Affine)> = (0..n)
                .map(|i| {
                    (
                        BigUint::from((3 * i + 1) as u64),
                        pts[(i * 5 + 1) % pts.len()].clone(),
                    )
                })
                .collect();
            let mut expect = G1Affine::infinity();
            for (k, p) in &terms {
                expect = add(&f, &expect, &mul(&f, k, p));
            }
            assert_eq!(multi_mul(&f, &terms), expect, "n={n}");
        }
    }

    #[test]
    fn scalar_mul_distributes() {
        let f = f11();
        let pts = all_points(&f);
        let p = &pts[3];
        for a in 0u64..13 {
            for b in 0u64..13 {
                let lhs = mul(&f, &BigUint::from(a + b), p);
                let rhs = add(
                    &f,
                    &mul(&f, &BigUint::from(a), p),
                    &mul(&f, &BigUint::from(b), p),
                );
                assert_eq!(lhs, rhs, "a={a} b={b}");
            }
        }
    }
}
