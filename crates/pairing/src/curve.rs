//! Group arithmetic on the supersingular curve `E : y² = x³ + x`.
//!
//! Affine points are the public representation; scalar multiplication
//! runs internally on Jacobian coordinates to avoid per-step inversions.

use crate::fp::{Fp, FpCtx};
use sempair_bigint::BigUint;

/// A point on `E(F_p)`, affine or the point at infinity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct G1Affine(Option<(Fp, Fp)>);

impl G1Affine {
    /// The point at infinity (group identity).
    pub fn infinity() -> Self {
        G1Affine(None)
    }

    /// Builds a point from affine coordinates without checking the curve
    /// equation (crate-internal; public constructors validate).
    pub(crate) fn from_xy_unchecked(x: Fp, y: Fp) -> Self {
        G1Affine(Some((x, y)))
    }

    /// `true` iff this is the identity.
    pub fn is_infinity(&self) -> bool {
        self.0.is_none()
    }

    /// The affine coordinates, or `None` for infinity.
    pub fn coordinates(&self) -> Option<(&Fp, &Fp)> {
        self.0.as_ref().map(|(x, y)| (x, y))
    }

    /// Constant-time equality on the coordinate limbs.
    ///
    /// The derived `PartialEq` short-circuits; this variant compares
    /// both coordinates with [`Fp::ct_eq`] and combines the results
    /// without data-dependent branching on the coordinate values.
    /// Whether each side is the point at infinity is still visible —
    /// that is structural, not secret, for every protocol in this
    /// workspace (half-keys are never the identity).
    pub fn ct_eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some((ax, ay)), Some((bx, by))) => {
                // Bitwise AND (not `&&`) so both coordinate compares
                // always run.
                ax.ct_eq(bx) & ay.ct_eq(by)
            }
            _ => false,
        }
    }

    /// Securely erases the coordinates (volatile limb zeroing), then
    /// leaves the point at infinity so no stale curve point remains.
    pub fn zeroize(&mut self) {
        if let Some((x, y)) = self.0.as_mut() {
            x.zeroize();
            y.zeroize();
        }
        self.0 = None;
    }
}

/// `true` iff `(x, y)` satisfies `y² = x³ + x`.
pub(crate) fn is_on_curve(f: &FpCtx, x: &Fp, y: &Fp) -> bool {
    let lhs = f.sqr(y);
    let rhs = f.add(&f.mul(&f.sqr(x), x), x);
    lhs == rhs
}

/// `-P`.
pub(crate) fn neg(f: &FpCtx, p: &G1Affine) -> G1Affine {
    match &p.0 {
        None => G1Affine::infinity(),
        Some((x, y)) => G1Affine(Some((x.clone(), f.neg(y)))),
    }
}

/// Affine point addition (handles all cases).
pub(crate) fn add(f: &FpCtx, p: &G1Affine, q: &G1Affine) -> G1Affine {
    let (px, py) = match &p.0 {
        None => return q.clone(),
        Some(c) => c,
    };
    let (qx, qy) = match &q.0 {
        None => return p.clone(),
        Some(c) => c,
    };
    let lambda = if px == qx {
        if py != qy || py.is_zero() {
            // P = -Q (or a 2-torsion doubling): result is infinity.
            return G1Affine::infinity();
        }
        // Tangent: (3x² + 1) / 2y   (curve coefficient a = 1).
        let num = f.add(&f.add(&f.double(&f.sqr(px)), &f.sqr(px)), &f.one());
        let den = f.double(py);
        f.mul(&num, &f.inv(&den).expect("2y != 0"))
    } else {
        let num = f.sub(qy, py);
        let den = f.sub(qx, px);
        f.mul(&num, &f.inv(&den).expect("qx != px"))
    };
    let x3 = f.sub(&f.sub(&f.sqr(&lambda), px), qx);
    let y3 = f.sub(&f.mul(&lambda, &f.sub(px, &x3)), py);
    G1Affine(Some((x3, y3)))
}

/// Internal Jacobian representation: `(X, Y, Z)` with `x = X/Z²`,
/// `y = Y/Z³`; infinity encoded as `Z = 0`.
#[derive(Clone, Debug)]
pub(crate) struct Jacobian {
    x: Fp,
    y: Fp,
    z: Fp,
}

impl Jacobian {
    pub(crate) fn infinity(f: &FpCtx) -> Self {
        Jacobian {
            x: f.one(),
            y: f.one(),
            z: f.zero(),
        }
    }

    pub(crate) fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    pub(crate) fn to_affine(&self, f: &FpCtx) -> G1Affine {
        if self.is_infinity() {
            return G1Affine::infinity();
        }
        let z_inv = f.inv(&self.z).expect("nonzero z");
        let z_inv2 = f.sqr(&z_inv);
        let z_inv3 = f.mul(&z_inv2, &z_inv);
        G1Affine(Some((f.mul(&self.x, &z_inv2), f.mul(&self.y, &z_inv3))))
    }

    /// Point doubling (`a = 1` curve coefficient).
    pub(crate) fn double(&self, f: &FpCtx) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::infinity(f);
        }
        let y2 = f.sqr(&self.y);
        let s = f.double(&f.double(&f.mul(&self.x, &y2))); // 4XY²
        let x2 = f.sqr(&self.x);
        let z2 = f.sqr(&self.z);
        // M = 3X² + Z⁴  (a = 1)
        let m = f.add(&f.add(&f.double(&x2), &x2), &f.sqr(&z2));
        let x3 = f.sub(&f.sqr(&m), &f.double(&s));
        let y4_8 = f.double(&f.double(&f.double(&f.sqr(&y2)))); // 8Y⁴
        let y3 = f.sub(&f.mul(&m, &f.sub(&s, &x3)), &y4_8);
        let z3 = f.double(&f.mul(&self.y, &self.z));
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Full Jacobian–Jacobian addition (handles all cases).
    pub(crate) fn add_jacobian(&self, f: &FpCtx, q: &Jacobian) -> Jacobian {
        if self.is_infinity() {
            return q.clone();
        }
        if q.is_infinity() {
            return self.clone();
        }
        let z1z1 = f.sqr(&self.z);
        let z2z2 = f.sqr(&q.z);
        let u1 = f.mul(&self.x, &z2z2);
        let u2 = f.mul(&q.x, &z1z1);
        let s1 = f.mul(&self.y, &f.mul(&z2z2, &q.z));
        let s2 = f.mul(&q.y, &f.mul(&z1z1, &self.z));
        if u1 == u2 {
            if s1 == s2 {
                return self.double(f);
            }
            return Jacobian::infinity(f);
        }
        let h = f.sub(&u2, &u1);
        let hh = f.sqr(&h);
        let hhh = f.mul(&hh, &h);
        let r = f.sub(&s2, &s1);
        let v = f.mul(&u1, &hh);
        let x3 = f.sub(&f.sub(&f.sqr(&r), &hhh), &f.double(&v));
        let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.mul(&s1, &hhh));
        let z3 = f.mul(&h, &f.mul(&self.z, &q.z));
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (`Z2 = 1`).
    pub(crate) fn add_affine(&self, f: &FpCtx, q: &G1Affine) -> Jacobian {
        let (qx, qy) = match &q.0 {
            None => return self.clone(),
            Some(c) => c,
        };
        if self.is_infinity() {
            return Jacobian {
                x: qx.clone(),
                y: qy.clone(),
                z: f.one(),
            };
        }
        let z1z1 = f.sqr(&self.z);
        let u2 = f.mul(qx, &z1z1);
        let s2 = f.mul(qy, &f.mul(&z1z1, &self.z));
        if u2 == self.x {
            if s2 == self.y {
                return self.double(f);
            }
            return Jacobian::infinity(f);
        }
        let h = f.sub(&u2, &self.x);
        let hh = f.sqr(&h);
        let hhh = f.mul(&hh, &h);
        let r = f.sub(&s2, &self.y);
        let v = f.mul(&self.x, &hh);
        let x3 = f.sub(&f.sub(&f.sqr(&r), &hhh), &f.double(&v));
        let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.mul(&self.y, &hhh));
        let z3 = f.mul(&self.z, &h);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

/// Scalar multiplication `k·P` with a 4-bit fixed window over Jacobian
/// coordinates.
pub(crate) fn mul(f: &FpCtx, k: &BigUint, p: &G1Affine) -> G1Affine {
    if k.is_zero() || p.is_infinity() {
        return G1Affine::infinity();
    }
    // Precompute 1P..15P in affine (16 cheap additions, amortized).
    let mut table: Vec<G1Affine> = Vec::with_capacity(16);
    table.push(G1Affine::infinity());
    table.push(p.clone());
    for i in 2..16 {
        table.push(add(f, &table[i - 1], p));
    }
    let bits = k.bits();
    let top_window = bits.div_ceil(4) * 4;
    let mut acc = Jacobian::infinity(f);
    let mut w = top_window;
    while w >= 4 {
        w -= 4;
        acc = acc.double(f).double(f).double(f).double(f);
        let mut digit = 0usize;
        for b in 0..4 {
            if k.bit(w + b) {
                digit |= 1 << b;
            }
        }
        if digit != 0 {
            acc = acc.add_affine(f, &table[digit]);
        }
    }
    acc.to_affine(f)
}

/// Multi-scalar multiplication `Σ kᵢ·Pᵢ` via Pippenger's bucket method.
///
/// Each `c`-bit window makes one pass over the terms, dropping each
/// point into the bucket for its window digit, then collapses the
/// buckets with the running-sum trick (`Σ j·Bⱼ` in `2·(2^c − 2)`
/// additions). Cost is `⌈bits/c⌉ · (n + 2^(c+1))` group operations
/// instead of the naive `n` independent scalar mults — the win grows
/// with the term count, which is why the window widens with `n`.
pub(crate) fn multi_mul(f: &FpCtx, terms: &[(BigUint, G1Affine)]) -> G1Affine {
    let live: Vec<&(BigUint, G1Affine)> = terms
        .iter()
        .filter(|(k, p)| !k.is_zero() && !p.is_infinity())
        .collect();
    if live.is_empty() {
        return G1Affine::infinity();
    }
    if live.len() == 1 {
        return mul(f, &live[0].0, &live[0].1);
    }
    // Window width: the usual n / log n balance point.
    let c = match live.len() {
        0..=3 => 2,
        4..=15 => 3,
        16..=63 => 4,
        64..=255 => 5,
        _ => 6,
    };
    let max_bits = live.iter().map(|(k, _)| k.bits()).max().expect("nonempty");
    let windows = max_bits.div_ceil(c);
    let mut acc = Jacobian::infinity(f);
    let mut buckets: Vec<Jacobian> = vec![Jacobian::infinity(f); (1 << c) - 1];
    for w in (0..windows).rev() {
        for _ in 0..c {
            acc = acc.double(f);
        }
        for bucket in buckets.iter_mut() {
            *bucket = Jacobian::infinity(f);
        }
        for (k, point) in &live {
            let mut digit = 0usize;
            for b in 0..c {
                if k.bit(w * c + b) {
                    digit |= 1 << b;
                }
            }
            if digit != 0 {
                buckets[digit - 1] = buckets[digit - 1].add_affine(f, point);
            }
        }
        // Σ j·Bⱼ: running partial sums from the top bucket down.
        let mut running = Jacobian::infinity(f);
        let mut window_sum = Jacobian::infinity(f);
        for bucket in buckets.iter().rev() {
            running = running.add_jacobian(f, bucket);
            window_sum = window_sum.add_jacobian(f, &running);
        }
        acc = acc.add_jacobian(f, &window_sum);
    }
    acc.to_affine(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny hand-checkable curve: p = 11 (≡ 3 mod 4), E: y² = x³ + x
    /// over F_11 has 12 = p + 1 points.
    fn f11() -> FpCtx {
        FpCtx::new(&BigUint::from(11u64)).unwrap()
    }

    fn pt(f: &FpCtx, x: u64, y: u64) -> G1Affine {
        let p = G1Affine::from_xy_unchecked(f.from_u64(x), f.from_u64(y));
        let (px, py) = p.coordinates().unwrap();
        assert!(is_on_curve(f, px, py), "({x},{y}) not on curve");
        p
    }

    /// Enumerates all affine points of E(F_11) by brute force.
    fn all_points(f: &FpCtx) -> Vec<G1Affine> {
        let mut pts = vec![G1Affine::infinity()];
        for x in 0..11u64 {
            for y in 0..11u64 {
                let xe = f.from_u64(x);
                let ye = f.from_u64(y);
                if is_on_curve(f, &xe, &ye) {
                    pts.push(G1Affine::from_xy_unchecked(xe, ye));
                }
            }
        }
        pts
    }

    #[test]
    fn group_order_is_p_plus_1() {
        let f = f11();
        assert_eq!(all_points(&f).len(), 12);
    }

    #[test]
    fn ct_eq_matches_derived_eq_on_all_pairs() {
        let f = f11();
        let pts = all_points(&f);
        for a in &pts {
            for b in &pts {
                assert_eq!(a.ct_eq(b), a == b, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn zeroize_leaves_infinity() {
        let f = f11();
        let mut p = pt(&f, 5, 8);
        assert!(!p.is_infinity());
        p.zeroize();
        assert!(p.is_infinity());
        assert!(p.coordinates().is_none());
    }

    #[test]
    fn every_point_killed_by_group_order() {
        let f = f11();
        let order = BigUint::from(12u64);
        for p in all_points(&f) {
            assert!(mul(&f, &order, &p).is_infinity(), "{p:?}");
        }
    }

    #[test]
    fn addition_matches_repeated_add() {
        let f = f11();
        for p in all_points(&f) {
            let mut acc = G1Affine::infinity();
            for k in 1u64..=12 {
                acc = add(&f, &acc, &p);
                assert_eq!(mul(&f, &BigUint::from(k), &p), acc, "k={k} p={p:?}");
            }
        }
    }

    #[test]
    fn add_commutes_and_associates() {
        let f = f11();
        let pts = all_points(&f);
        for a in &pts {
            for b in &pts {
                assert_eq!(add(&f, a, b), add(&f, b, a));
            }
        }
        // Associativity spot-check on a few triples.
        for a in pts.iter().step_by(3) {
            for b in pts.iter().step_by(4) {
                for c in pts.iter().step_by(5) {
                    assert_eq!(add(&f, &add(&f, a, b), c), add(&f, a, &add(&f, b, c)));
                }
            }
        }
    }

    #[test]
    fn negation_and_identity() {
        let f = f11();
        for p in all_points(&f) {
            assert!(add(&f, &p, &neg(&f, &p)).is_infinity());
            assert_eq!(add(&f, &p, &G1Affine::infinity()), p);
        }
    }

    #[test]
    fn two_torsion_point_doubles_to_infinity() {
        let f = f11();
        // (0, 0) is on the curve and has order 2.
        let t = pt(&f, 0, 0);
        assert!(add(&f, &t, &t).is_infinity());
        assert!(mul(&f, &BigUint::two(), &t).is_infinity());
        assert_eq!(mul(&f, &BigUint::from(3u64), &t), t);
    }

    #[test]
    fn jacobian_affine_agree_on_larger_field() {
        // 2^89 - 1 is a Mersenne prime ≡ 3 (mod 4).
        let p = &(BigUint::one() << 89) - &BigUint::one();
        let f = FpCtx::new(&p).unwrap();
        // Find a point by scanning x.
        let mut x = BigUint::one();
        let point = loop {
            let xe = f.from_uint(&x);
            let rhs = f.add(&f.mul(&f.sqr(&xe), &xe), &xe);
            if let Some(y) = f.sqrt(&rhs) {
                break G1Affine::from_xy_unchecked(xe, y);
            }
            x = &x + &BigUint::one();
        };
        // k(P) via affine chain vs windowed Jacobian.
        let k = BigUint::from(0x123456789abcdefu64);
        let mut affine_acc = G1Affine::infinity();
        // Double-and-add in affine.
        for i in (0..k.bits()).rev() {
            affine_acc = add(&f, &affine_acc, &affine_acc.clone());
            if k.bit(i) {
                affine_acc = add(&f, &affine_acc, &point);
            }
        }
        assert_eq!(mul(&f, &k, &point), affine_acc);
    }

    #[test]
    fn jacobian_add_matches_affine_exhaustively() {
        let f = f11();
        let pts = all_points(&f);
        for a in &pts {
            for b in &pts {
                let ja = Jacobian::infinity(&f).add_affine(&f, a);
                let jb = Jacobian::infinity(&f).add_affine(&f, b);
                assert_eq!(ja.add_jacobian(&f, &jb).to_affine(&f), add(&f, a, b));
            }
        }
    }

    #[test]
    fn multi_mul_matches_term_by_term() {
        let f = f11();
        let pts = all_points(&f);
        // All digit patterns over the tiny group, many term counts.
        for n in 0..8usize {
            let terms: Vec<(BigUint, G1Affine)> = (0..n)
                .map(|i| {
                    (
                        BigUint::from((3 * i + 1) as u64),
                        pts[(i * 5 + 1) % pts.len()].clone(),
                    )
                })
                .collect();
            let mut expect = G1Affine::infinity();
            for (k, p) in &terms {
                expect = add(&f, &expect, &mul(&f, k, p));
            }
            assert_eq!(multi_mul(&f, &terms), expect, "n={n}");
        }
    }

    #[test]
    fn scalar_mul_distributes() {
        let f = f11();
        let pts = all_points(&f);
        let p = &pts[3];
        for a in 0u64..13 {
            for b in 0u64..13 {
                let lhs = mul(&f, &BigUint::from(a + b), p);
                let rhs = add(
                    &f,
                    &mul(&f, &BigUint::from(a), p),
                    &mul(&f, &BigUint::from(b), p),
                );
                assert_eq!(lhs, rhs, "a={a} b={b}");
            }
        }
    }
}
