//! The Tate pairing with distortion map (the paper's `ê`).
//!
//! For `P, Q ∈ G1 ⊂ E(F_p)` (the order-`r` subgroup), we compute
//!
//! ```text
//! ê(P, Q) = f_{r,P}(φ(Q))^((p²−1)/r)
//! ```
//!
//! where `φ(x, y) = (−x, iy)` is the distortion map into `E(F_p²)` and
//! `f_{r,P}` is the Miller function. Because `φ(Q)` has its
//! x-coordinate in `F_p`, all vertical-line evaluations land in the
//! subfield `F_p` and are annihilated by the final exponentiation
//! (`(p²−1)/r` is a multiple of `p−1`), so the Miller loop skips
//! denominators entirely — the classic Boneh–Franklin optimization.

use crate::curve::G1Affine;
use crate::fp::{Fp, FpCtx};
use crate::fp2::{self, Fp2};
use sempair_bigint::BigUint;

/// An element of the target group `G2 ⊂ F_p²*` (order `r`).
///
/// The paper calls the target group `G2`; modern notation says `GT`.
/// Values are produced by [`crate::CurveParams::pairing`] and combined
/// with the `gt_*` methods on [`crate::CurveParams`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Gt(pub(crate) Fp2);

impl Gt {
    /// Raw access to the underlying `F_p²` element (read-only).
    pub fn as_fp2(&self) -> &Fp2 {
        &self.0
    }
}

/// The image `φ(Q) = (−x, iy)` of an affine point, represented by the
/// pair `(−x ∈ F_p, y ∈ F_p)`; its x-coordinate is `−x + 0i` and its
/// y-coordinate is `0 + yi`.
struct Distorted {
    neg_x: Fp,
    y: Fp,
}

/// Evaluates the line through `t` with slope `lambda` at the distorted
/// point `s`, exploiting the component structure:
///
/// ```text
/// l(S) = y_S − y_T − λ(x_S − x_T)
///      = ( λ(x_Q_neg − x_T)·(−1)…  )
/// ```
///
/// Concretely with `x_S = −x_Q ∈ F_p` and `y_S = i·y_Q`:
/// `c0 = λ(x_T − x_S) − y_T = λ(x_T + x_Q) − y_T`, `c1 = y_Q`.
fn line_eval(f: &FpCtx, tx: &Fp, ty: &Fp, lambda: &Fp, s: &Distorted) -> Fp2 {
    // x_S = neg_x, so x_S − x_T = neg_x − tx and
    // l = y_S − y_T − λ(x_S − x_T) = (−y_T − λ(neg_x − tx)) + y_Q·i.
    let c0 = f.sub(&f.mul(lambda, &f.sub(tx, &s.neg_x)), ty);
    Fp2 {
        c0,
        c1: s.y.clone(),
    }
}

/// Vertical line through `t` evaluated at `s`: `x_S − x_T ∈ F_p`.
///
/// Only needed at the rare exceptional step where an addition lands on
/// infinity; the value lies in `F_p` and is killed by the final
/// exponentiation, but we keep it for exactness.
fn vertical_eval(f: &FpCtx, tx: &Fp, s: &Distorted) -> Fp2 {
    fp2::from_fp(f, f.sub(&s.neg_x, tx))
}

/// Miller loop `f_{r,P}(φ(Q))` over affine intermediate points.
///
/// Returns the unexponentiated Miller value. `p` and `q` must be
/// non-infinity points (callers special-case identity inputs to 1).
fn miller_loop(f: &FpCtx, r: &BigUint, p: &G1Affine, q: &G1Affine) -> Fp2 {
    let (px, py) = p.coordinates().expect("non-infinity P");
    let (qx, qy) = q.coordinates().expect("non-infinity Q");
    let s = Distorted {
        neg_x: f.neg(qx),
        y: qy.clone(),
    };

    let mut acc = fp2::one(f);
    let mut tx = px.clone();
    let mut ty = py.clone();
    let mut t_is_infinity = false;

    for i in (0..r.bits() - 1).rev() {
        // acc <- acc² · l_{T,T}(S); T <- 2T
        acc = fp2::sqr(f, &acc);
        if !t_is_infinity {
            if ty.is_zero() {
                // 2T = O: the "tangent" is the vertical through T.
                acc = fp2::mul(f, &acc, &vertical_eval(f, &tx, &s));
                t_is_infinity = true;
            } else {
                // λ = (3x² + 1) / 2y  (a = 1)
                let x2 = f.sqr(&tx);
                let num = f.add(&f.add(&f.double(&x2), &x2), &f.one());
                let lambda = f.mul(&num, &f.inv(&f.double(&ty)).expect("2y != 0"));
                acc = fp2::mul(f, &acc, &line_eval(f, &tx, &ty, &lambda, &s));
                let x3 = f.sub(&f.sub(&f.sqr(&lambda), &tx), &tx);
                let y3 = f.sub(&f.mul(&lambda, &f.sub(&tx, &x3)), &ty);
                tx = x3;
                ty = y3;
            }
        }
        if r.bit(i) && !t_is_infinity {
            // acc <- acc · l_{T,P}(S); T <- T + P
            if tx == *px {
                if ty == *py && !py.is_zero() {
                    // T = P: tangent case (cannot occur for prime r > 2
                    // mid-loop, but handled for completeness).
                    let x2 = f.sqr(&tx);
                    let num = f.add(&f.add(&f.double(&x2), &x2), &f.one());
                    let lambda = f.mul(&num, &f.inv(&f.double(&ty)).expect("2y != 0"));
                    acc = fp2::mul(f, &acc, &line_eval(f, &tx, &ty, &lambda, &s));
                    let x3 = f.sub(&f.sub(&f.sqr(&lambda), &tx), &tx);
                    let y3 = f.sub(&f.mul(&lambda, &f.sub(&tx, &x3)), &ty);
                    tx = x3;
                    ty = y3;
                } else {
                    // T = −P: chord is the vertical through P; T+P = O.
                    acc = fp2::mul(f, &acc, &vertical_eval(f, &tx, &s));
                    t_is_infinity = true;
                }
            } else {
                let lambda = f.mul(&f.sub(py, &ty), &f.inv(&f.sub(px, &tx)).expect("px != tx"));
                acc = fp2::mul(f, &acc, &line_eval(f, &tx, &ty, &lambda, &s));
                let x3 = f.sub(&f.sub(&f.sqr(&lambda), &tx), px);
                let y3 = f.sub(&f.mul(&lambda, &f.sub(&tx, &x3)), &ty);
                tx = x3;
                ty = y3;
            }
        }
    }
    acc
}

/// Inversion-free Miller loop over Jacobian coordinates.
///
/// Line values are *scaled* by nonzero `F_p` factors (`2YZ³` for
/// tangents, `Z·H` for chords). Such subfield factors are annihilated
/// by the final exponentiation — the same argument that eliminates the
/// vertical-line denominators — so the scaled loop computes the same
/// reduced pairing roughly an order of magnitude faster (no per-step
/// field inversion). Vertical lines (which only arise at the final
/// exceptional addition) are skipped outright for the same reason.
fn miller_loop_projective(f: &FpCtx, r: &BigUint, p: &G1Affine, q: &G1Affine) -> Fp2 {
    let (px, py) = p.coordinates().expect("non-infinity P");
    let (qx, qy) = q.coordinates().expect("non-infinity Q");

    let mut acc = fp2::one(f);
    // T = (X, Y, Z) in Jacobian coordinates, starting at P (Z = 1).
    let mut tx = px.clone();
    let mut ty = py.clone();
    let mut tz = f.one();
    let mut t_is_infinity = false;

    for i in (0..r.bits() - 1).rev() {
        acc = fp2::sqr(f, &acc);
        if !t_is_infinity {
            if ty.is_zero() {
                // Tangent at a 2-torsion point is vertical: skip (F_p).
                t_is_infinity = true;
            } else {
                // Doubling with fused line evaluation.
                let y2 = f.sqr(&ty); // Y²
                let z2 = f.sqr(&tz); // Z²
                let m = f.add(&f.add(&f.double(&f.sqr(&tx)), &f.sqr(&tx)), &f.sqr(&z2)); // 3X² + Z⁴
                                                                                         // l' = (M(X + Z²·x_Q) − 2Y²) + (2YZ³·y_Q)·i
                let c0 = f.sub(&f.mul(&m, &f.add(&tx, &f.mul(&z2, qx))), &f.double(&y2));
                let c1 = f.mul(&f.double(&f.mul(&ty, &f.mul(&z2, &tz))), qy);
                acc = fp2::mul(f, &acc, &Fp2 { c0, c1 });
                // T <- 2T (standard Jacobian doubling).
                let s = f.double(&f.double(&f.mul(&tx, &y2))); // 4XY²
                let x3 = f.sub(&f.sqr(&m), &f.double(&s));
                let y4_8 = f.double(&f.double(&f.double(&f.sqr(&y2)))); // 8Y⁴
                let y3 = f.sub(&f.mul(&m, &f.sub(&s, &x3)), &y4_8);
                let z3 = f.double(&f.mul(&ty, &tz));
                tx = x3;
                ty = y3;
                tz = z3;
            }
        }
        if r.bit(i) && !t_is_infinity {
            // Mixed addition T + P with fused line evaluation.
            let z2 = f.sqr(&tz);
            let u2 = f.mul(px, &z2); // x_P·Z²
            let s2 = f.mul(py, &f.mul(&z2, &tz)); // y_P·Z³
            let h = f.sub(&u2, &tx); // x_P·Z² − X
            let rr = f.sub(&s2, &ty); // y_P·Z³ − Y
            if h.is_zero() {
                if rr.is_zero() && !py.is_zero() {
                    // T = P: tangent case (cannot occur mid-loop for a
                    // prime-order point, handled for completeness by
                    // falling back to a doubling-style line at P).
                    let m = f.add(&f.add(&f.double(&f.sqr(px)), &f.sqr(px)), &f.one());
                    let c0 = f.sub(&f.mul(&m, &f.add(px, qx)), &f.double(&f.sqr(py)));
                    let c1 = f.mul(&f.double(py), qy);
                    acc = fp2::mul(f, &acc, &Fp2 { c0, c1 });
                    // 2P in affine via the curve helper would need an
                    // inversion; reuse Jacobian doubling from T (=P).
                    let y2 = f.sqr(&ty);
                    let z2 = f.sqr(&tz);
                    let m = f.add(&f.add(&f.double(&f.sqr(&tx)), &f.sqr(&tx)), &f.sqr(&z2));
                    let s = f.double(&f.double(&f.mul(&tx, &y2)));
                    let x3 = f.sub(&f.sqr(&m), &f.double(&s));
                    let y3 = f.sub(
                        &f.mul(&m, &f.sub(&s, &x3)),
                        &f.double(&f.double(&f.double(&f.sqr(&y2)))),
                    );
                    let z3 = f.double(&f.mul(&ty, &tz));
                    tx = x3;
                    ty = y3;
                    tz = z3;
                } else {
                    // T = −P: vertical chord, value in F_p — skip it.
                    t_is_infinity = true;
                }
            } else {
                // l' = (R(x_Q + x_P) − Z·H·y_P) + (Z·H·y_Q)·i
                let zh = f.mul(&tz, &h);
                let c0 = f.sub(&f.mul(&rr, &f.add(qx, px)), &f.mul(&zh, py));
                let c1 = f.mul(&zh, qy);
                acc = fp2::mul(f, &acc, &Fp2 { c0, c1 });
                // T <- T + P (mixed Jacobian addition).
                let hh = f.sqr(&h);
                let hhh = f.mul(&hh, &h);
                let v = f.mul(&tx, &hh);
                let x3 = f.sub(&f.sub(&f.sqr(&rr), &hhh), &f.double(&v));
                let y3 = f.sub(&f.mul(&rr, &f.sub(&v, &x3)), &f.mul(&ty, &hhh));
                let z3 = f.mul(&tz, &h);
                tx = x3;
                ty = y3;
                tz = z3;
            }
        }
    }
    acc
}

/// Precomputed Miller-loop line coefficients for a fixed first pairing
/// argument.
///
/// The Jacobian point chain `T = P, 2P, 2P±P, …` that
/// [`miller_loop_projective`] walks depends only on `P` and the group
/// order `r` — never on `Q`. Every line the loop multiplies in factors
/// through the distorted second argument as
///
/// ```text
/// l'(Q) = (a·x_Q + b) + (c·y_Q)·i
/// ```
///
/// with `(a, b, c) ∈ F_p³` functions of the chain alone (tangent step:
/// `a = M·Z²`, `b = M·X − 2Y²`, `c = 2YZ³`; chord step: `a = R`,
/// `b = R·x_P − ZH·y_P`, `c = ZH`). Preparing `P` caches those triples
/// once, so each later pairing against `P` replays the loop with three
/// `F_p` multiplications per line instead of the full point arithmetic
/// — the encrypt (`ê(P_pub, ·)`) and verify (`ê(P, ·)`, `ê(R, ·)`) hot
/// paths skip roughly half their work.
///
/// A prepared point is bound to the parameter set whose `prepare` built
/// it; evaluating it under different [`crate::CurveParams`] yields
/// garbage (safely — no panics, just a wrong group element).
#[derive(Clone, Debug)]
pub struct PreparedG1 {
    /// Line-coefficient triples in loop consumption order: for each
    /// Miller iteration one doubling entry, then one addition entry
    /// when the corresponding bit of `r` is set. The vector ends early
    /// iff the chain hit the point at infinity (every later line lies
    /// in the subfield `F_p` and is annihilated by the final
    /// exponentiation).
    steps: Vec<LineCoeffs>,
    /// `true` iff the prepared point itself is the identity, in which
    /// case every pairing against it is 1.
    infinity: bool,
}

/// One cached line: `l'(Q) = (a·x_Q + b) + (c·y_Q)·i`.
#[derive(Clone, Debug)]
struct LineCoeffs {
    a: Fp,
    b: Fp,
    c: Fp,
}

impl PreparedG1 {
    /// `true` iff the underlying point is the group identity.
    pub fn is_infinity(&self) -> bool {
        self.infinity
    }

    /// Number of cached line-coefficient triples (diagnostics).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff no lines are cached (identity input).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Walks the Jacobian chain of [`miller_loop_projective`] for `p`
/// alone, caching each line's `(a, b, c)` coefficients.
pub(crate) fn prepare_g1(f: &FpCtx, r: &BigUint, p: &G1Affine) -> PreparedG1 {
    let Some((px, py)) = p.coordinates() else {
        return PreparedG1 {
            steps: Vec::new(),
            infinity: true,
        };
    };

    // bits − 1 doublings plus one addition per set bit of r.
    let capacity = (r.bits() - 1) + (0..r.bits()).filter(|&i| r.bit(i)).count();
    let mut steps = Vec::with_capacity(capacity);
    let mut tx = px.clone();
    let mut ty = py.clone();
    let mut tz = f.one();

    'outer: for i in (0..r.bits() - 1).rev() {
        if ty.is_zero() {
            // Tangent at a 2-torsion point is vertical (subfield): the
            // chain is done, as in the live loop.
            break;
        }
        // Doubling step: same formulas as miller_loop_projective with
        // the Q-dependent products left symbolic.
        let y2 = f.sqr(&ty);
        let z2 = f.sqr(&tz);
        let m = f.add(&f.add(&f.double(&f.sqr(&tx)), &f.sqr(&tx)), &f.sqr(&z2));
        steps.push(LineCoeffs {
            a: f.mul(&m, &z2),
            b: f.sub(&f.mul(&m, &tx), &f.double(&y2)),
            c: f.double(&f.mul(&ty, &f.mul(&z2, &tz))),
        });
        let s = f.double(&f.double(&f.mul(&tx, &y2)));
        let x3 = f.sub(&f.sqr(&m), &f.double(&s));
        let y3 = f.sub(
            &f.mul(&m, &f.sub(&s, &x3)),
            &f.double(&f.double(&f.double(&f.sqr(&y2)))),
        );
        let z3 = f.double(&f.mul(&ty, &tz));
        tx = x3;
        ty = y3;
        tz = z3;

        if r.bit(i) {
            // Mixed addition step.
            let z2 = f.sqr(&tz);
            let u2 = f.mul(px, &z2);
            let s2 = f.mul(py, &f.mul(&z2, &tz));
            let h = f.sub(&u2, &tx);
            let rr = f.sub(&s2, &ty);
            if h.is_zero() {
                if rr.is_zero() && !py.is_zero() {
                    // T = P: doubling-style line at P (cannot occur
                    // mid-loop for a prime-order point; mirrored from
                    // the live loop for exactness).
                    let m = f.add(&f.add(&f.double(&f.sqr(px)), &f.sqr(px)), &f.one());
                    steps.push(LineCoeffs {
                        a: m.clone(),
                        b: f.sub(&f.mul(&m, px), &f.double(&f.sqr(py))),
                        c: f.double(py),
                    });
                    let y2 = f.sqr(&ty);
                    let z2 = f.sqr(&tz);
                    let m = f.add(&f.add(&f.double(&f.sqr(&tx)), &f.sqr(&tx)), &f.sqr(&z2));
                    let s = f.double(&f.double(&f.mul(&tx, &y2)));
                    let x3 = f.sub(&f.sqr(&m), &f.double(&s));
                    let y3 = f.sub(
                        &f.mul(&m, &f.sub(&s, &x3)),
                        &f.double(&f.double(&f.double(&f.sqr(&y2)))),
                    );
                    let z3 = f.double(&f.mul(&ty, &tz));
                    tx = x3;
                    ty = y3;
                    tz = z3;
                } else {
                    // T = −P: vertical chord (subfield); chain is done.
                    break 'outer;
                }
            } else {
                steps.push(LineCoeffs {
                    a: rr.clone(),
                    b: f.sub(&f.mul(&rr, px), &f.mul(&f.mul(&tz, &h), py)),
                    c: f.mul(&tz, &h),
                });
                let hh = f.sqr(&h);
                let hhh = f.mul(&hh, &h);
                let v = f.mul(&tx, &hh);
                let x3 = f.sub(&f.sub(&f.sqr(&rr), &hhh), &f.double(&v));
                let y3 = f.sub(&f.mul(&rr, &f.sub(&v, &x3)), &f.mul(&ty, &hhh));
                let z3 = f.mul(&tz, &h);
                tx = x3;
                ty = y3;
                tz = z3;
            }
        }
    }
    PreparedG1 {
        steps,
        infinity: false,
    }
}

/// Evaluates one cached line at `Q = (qx, qy)`.
fn eval_line(f: &FpCtx, line: &LineCoeffs, qx: &Fp, qy: &Fp) -> Fp2 {
    Fp2 {
        c0: f.add(&f.mul(&line.a, qx), &line.b),
        c1: f.mul(&line.c, qy),
    }
}

/// Miller loop replaying cached line coefficients against a fresh `Q`.
///
/// Produces bit-for-bit the same Miller value as
/// [`miller_loop_projective`] on the original `P`: the squaring chain
/// and line order are identical, and an early end of `steps` replays
/// the live loop's point-at-infinity skip.
fn miller_loop_prepared(f: &FpCtx, r: &BigUint, prepared: &PreparedG1, q: &G1Affine) -> Fp2 {
    let (qx, qy) = q.coordinates().expect("non-infinity Q");
    let mut acc = fp2::one(f);
    let mut pos = 0usize;
    for i in (0..r.bits() - 1).rev() {
        acc = fp2::sqr(f, &acc);
        if pos < prepared.steps.len() {
            acc = fp2::mul(f, &acc, &eval_line(f, &prepared.steps[pos], qx, qy));
            pos += 1;
        }
        if r.bit(i) && pos < prepared.steps.len() {
            acc = fp2::mul(f, &acc, &eval_line(f, &prepared.steps[pos], qx, qy));
            pos += 1;
        }
    }
    acc
}

/// Full pairing against a prepared first argument.
pub(crate) fn tate_pairing_prepared(
    f: &FpCtx,
    r: &BigUint,
    cofactor: &BigUint,
    p: &PreparedG1,
    q: &G1Affine,
) -> Gt {
    if p.infinity || q.is_infinity() {
        return Gt(fp2::one(f));
    }
    let m = miller_loop_prepared(f, r, p, q);
    let m_inv = fp2::inv(f, &m).expect("miller value nonzero");
    let unitary = fp2::mul(f, &fp2::conj(f, &m), &m_inv);
    Gt(fp2::pow(f, &unitary, cofactor))
}

/// Product of pairings `Π ê(Pᵢ, Qᵢ)` where every `Pᵢ` is prepared:
/// one shared accumulator squaring chain plus three `F_p`
/// multiplications per cached line per pair.
pub(crate) fn multi_tate_pairing_prepared(
    f: &FpCtx,
    r: &BigUint,
    cofactor: &BigUint,
    pairs: &[(&PreparedG1, &G1Affine)],
) -> Gt {
    // Identity on either side contributes the factor 1.
    let live: Vec<(&PreparedG1, &Fp, &Fp)> = pairs
        .iter()
        .filter(|(p, _)| !p.infinity)
        .filter_map(|(p, q)| q.coordinates().map(|(qx, qy)| (*p, qx, qy)))
        .collect();
    let mut acc = fp2::one(f);
    if live.is_empty() {
        return Gt(acc);
    }
    let mut positions = vec![0usize; live.len()];
    for i in (0..r.bits() - 1).rev() {
        acc = fp2::sqr(f, &acc);
        for (k, (p, qx, qy)) in live.iter().enumerate() {
            if positions[k] < p.steps.len() {
                acc = fp2::mul(f, &acc, &eval_line(f, &p.steps[positions[k]], qx, qy));
                positions[k] += 1;
            }
        }
        if r.bit(i) {
            for (k, (p, qx, qy)) in live.iter().enumerate() {
                if positions[k] < p.steps.len() {
                    acc = fp2::mul(f, &acc, &eval_line(f, &p.steps[positions[k]], qx, qy));
                    positions[k] += 1;
                }
            }
        }
    }
    if acc.is_zero() {
        // Cannot happen for valid inputs; guard as multi_tate_pairing.
        return Gt(fp2::one(f));
    }
    let m_inv = fp2::inv(f, &acc).expect("nonzero miller value");
    let unitary = fp2::mul(f, &fp2::conj(f, &acc), &m_inv);
    Gt(fp2::pow(f, &unitary, cofactor))
}

/// Per-pair state for the shared multi-Miller loop.
struct PairState {
    tx: Fp,
    ty: Fp,
    tz: Fp,
    t_is_infinity: bool,
    px: Fp,
    py: Fp,
    qx: Fp,
    qy: Fp,
}

/// Shared Miller loop for a product of pairings
/// `Π f_{r,Pᵢ}(φ(Qᵢ))`: one accumulator squaring chain serves every
/// pair, so `k` pairings cost one loop of squarings plus `k` line
/// evaluations per iteration instead of `k` full loops. All
/// verification equations in the paper (`ê(P, σ) = ê(R, H(m))`,
/// `ê(P, d_i) = ê(P_pub^{(i)}, Q_ID)`, …) are products of two
/// pairings, where this roughly halves the work.
fn multi_miller_projective(f: &FpCtx, r: &BigUint, pairs: &[(&G1Affine, &G1Affine)]) -> Fp2 {
    let mut states: Vec<PairState> = pairs
        .iter()
        .filter_map(|(p, q)| {
            let (px, py) = p.coordinates()?;
            let (qx, qy) = q.coordinates()?;
            Some(PairState {
                tx: px.clone(),
                ty: py.clone(),
                tz: f.one(),
                t_is_infinity: false,
                px: px.clone(),
                py: py.clone(),
                qx: qx.clone(),
                qy: qy.clone(),
            })
        })
        .collect();
    let mut acc = fp2::one(f);
    if states.is_empty() {
        return acc;
    }

    for i in (0..r.bits() - 1).rev() {
        acc = fp2::sqr(f, &acc);
        for st in states.iter_mut() {
            if st.t_is_infinity {
                continue;
            }
            if st.ty.is_zero() {
                st.t_is_infinity = true;
                continue;
            }
            let y2 = f.sqr(&st.ty);
            let z2 = f.sqr(&st.tz);
            let m = f.add(
                &f.add(&f.double(&f.sqr(&st.tx)), &f.sqr(&st.tx)),
                &f.sqr(&z2),
            );
            let c0 = f.sub(
                &f.mul(&m, &f.add(&st.tx, &f.mul(&z2, &st.qx))),
                &f.double(&y2),
            );
            let c1 = f.mul(&f.double(&f.mul(&st.ty, &f.mul(&z2, &st.tz))), &st.qy);
            acc = fp2::mul(f, &acc, &Fp2 { c0, c1 });
            let s = f.double(&f.double(&f.mul(&st.tx, &y2)));
            let x3 = f.sub(&f.sqr(&m), &f.double(&s));
            let y3 = f.sub(
                &f.mul(&m, &f.sub(&s, &x3)),
                &f.double(&f.double(&f.double(&f.sqr(&y2)))),
            );
            let z3 = f.double(&f.mul(&st.ty, &st.tz));
            st.tx = x3;
            st.ty = y3;
            st.tz = z3;
        }
        if r.bit(i) {
            for st in states.iter_mut() {
                if st.t_is_infinity {
                    continue;
                }
                let z2 = f.sqr(&st.tz);
                let u2 = f.mul(&st.px, &z2);
                let s2 = f.mul(&st.py, &f.mul(&z2, &st.tz));
                let h = f.sub(&u2, &st.tx);
                let rr = f.sub(&s2, &st.ty);
                if h.is_zero() {
                    // T = ±P at the exceptional tail: vertical (F_p) or
                    // the impossible mid-loop tangent — skip either way
                    // for prime r (tangent case cannot occur for a
                    // prime-order point before the final iteration).
                    st.t_is_infinity = true;
                    continue;
                }
                let zh = f.mul(&st.tz, &h);
                let c0 = f.sub(&f.mul(&rr, &f.add(&st.qx, &st.px)), &f.mul(&zh, &st.py));
                let c1 = f.mul(&zh, &st.qy);
                acc = fp2::mul(f, &acc, &Fp2 { c0, c1 });
                let hh = f.sqr(&h);
                let hhh = f.mul(&hh, &h);
                let v = f.mul(&st.tx, &hh);
                let x3 = f.sub(&f.sub(&f.sqr(&rr), &hhh), &f.double(&v));
                let y3 = f.sub(&f.mul(&rr, &f.sub(&v, &x3)), &f.mul(&st.ty, &hhh));
                st.tx = x3;
                st.ty = y3;
                st.tz = f.mul(&st.tz, &h);
            }
        }
    }
    acc
}

/// Product of pairings `Π ê(Pᵢ, Qᵢ)` with one shared Miller loop and a
/// single final exponentiation.
pub(crate) fn multi_tate_pairing(
    f: &FpCtx,
    r: &BigUint,
    cofactor: &BigUint,
    pairs: &[(&G1Affine, &G1Affine)],
) -> Gt {
    // The fused line formulas already bake in the distortion map
    // φ(Q) = (−x_Q, i·y_Q), so pairs pass through unchanged; identity
    // inputs contribute the factor 1 and are filtered inside the loop.
    let m = multi_miller_projective(f, r, pairs);
    if m.is_zero() {
        // Cannot happen for valid inputs; guard anyway.
        return Gt(fp2::one(f));
    }
    let m_inv = fp2::inv(f, &m).expect("nonzero miller value");
    let unitary = fp2::mul(f, &fp2::conj(f, &m), &m_inv);
    Gt(fp2::pow(f, &unitary, cofactor))
}

/// Which Miller-loop implementation to run (the E10 ablation compares
/// them; everything else uses the projective default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MillerStrategy {
    /// Affine intermediate points, one field inversion per step — the
    /// straightforward textbook loop, kept as a cross-checked reference.
    Affine,
    /// Jacobian intermediate points with fused, subfield-scaled line
    /// evaluation (no inversions). The default.
    Projective,
}

/// Full pairing: Miller loop + final exponentiation.
///
/// `cofactor` must equal `(p + 1) / r`; the final exponent
/// `(p² − 1)/r = (p − 1)·cofactor` is applied as a cheap Frobenius
/// (conjugation) division followed by one `F_p²` exponentiation.
pub(crate) fn tate_pairing(
    f: &FpCtx,
    r: &BigUint,
    cofactor: &BigUint,
    p: &G1Affine,
    q: &G1Affine,
) -> Gt {
    tate_pairing_with(f, r, cofactor, p, q, MillerStrategy::Projective)
}

/// [`tate_pairing`] with an explicit Miller-loop strategy.
pub(crate) fn tate_pairing_with(
    f: &FpCtx,
    r: &BigUint,
    cofactor: &BigUint,
    p: &G1Affine,
    q: &G1Affine,
    strategy: MillerStrategy,
) -> Gt {
    if p.is_infinity() || q.is_infinity() {
        return Gt(fp2::one(f));
    }
    let m = match strategy {
        MillerStrategy::Affine => miller_loop(f, r, p, q),
        MillerStrategy::Projective => miller_loop_projective(f, r, p, q),
    };
    // f^(p−1) = conj(f) / f  (Frobenius over F_p² is conjugation).
    let m_inv = fp2::inv(f, &m).expect("miller value nonzero");
    let unitary = fp2::mul(f, &fp2::conj(f, &m), &m_inv);
    Gt(fp2::pow(f, &unitary, cofactor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve;

    /// p = 11, r = 3: 3 | p + 1 = 12, cofactor 4.
    fn setup() -> (FpCtx, BigUint, BigUint) {
        (
            FpCtx::new(&BigUint::from(11u64)).unwrap(),
            BigUint::from(3u64),
            BigUint::from(4u64),
        )
    }

    /// Finds a point of exact order 3 on E(F_11).
    fn order3_point(f: &FpCtx) -> G1Affine {
        for x in 0..11u64 {
            let xe = f.from_u64(x);
            let rhs = f.add(&f.mul(&f.sqr(&xe), &xe), &xe);
            if let Some(y) = f.sqrt(&rhs) {
                let p = G1Affine::from_xy_unchecked(xe.clone(), y);
                let p3 = curve::mul(f, &BigUint::from(4u64), &p); // cofactor-clear
                if !p3.is_infinity() {
                    assert!(curve::mul(f, &BigUint::from(3u64), &p3).is_infinity());
                    return p3;
                }
            }
        }
        panic!("no order-3 point found");
    }

    #[test]
    fn pairing_nondegenerate_on_tiny_curve() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let g = tate_pairing(&f, &r, &c, &p, &p);
        assert!(!fp2::is_one(&f, &g.0), "ê(P,P) must be ≠ 1");
        // Output has order dividing r: g³ = 1.
        assert!(fp2::is_one(&f, &fp2::pow(&f, &g.0, &r)));
    }

    #[test]
    fn pairing_bilinear_on_tiny_curve() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let p2 = curve::mul(&f, &BigUint::two(), &p);
        let e11 = tate_pairing(&f, &r, &c, &p, &p);
        let e21 = tate_pairing(&f, &r, &c, &p2, &p);
        let e12 = tate_pairing(&f, &r, &c, &p, &p2);
        let expect = fp2::sqr(&f, &e11.0);
        assert_eq!(e21.0, expect, "ê(2P, P) = ê(P,P)²");
        assert_eq!(e12.0, expect, "ê(P, 2P) = ê(P,P)²");
        // ê(2P, 2P) = ê(P,P)^4 = ê(P,P)  (4 ≡ 1 mod 3)
        let e22 = tate_pairing(&f, &r, &c, &p2, &p2);
        let e4 = fp2::pow(&f, &e11.0, &BigUint::from(4u64));
        assert_eq!(e22.0, e4);
        assert_eq!(e22.0, e11.0);
    }

    #[test]
    fn pairing_with_infinity_is_one() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let inf = G1Affine::infinity();
        assert!(fp2::is_one(&f, &tate_pairing(&f, &r, &c, &inf, &p).0));
        assert!(fp2::is_one(&f, &tate_pairing(&f, &r, &c, &p, &inf).0));
    }

    #[test]
    fn prepared_matches_fresh_on_tiny_curve() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let p2 = curve::mul(&f, &BigUint::two(), &p);
        for first in [&p, &p2] {
            let prep = prepare_g1(&f, &r, first);
            for second in [&p, &p2] {
                let fresh = tate_pairing(&f, &r, &c, first, second);
                let via_prep = tate_pairing_prepared(&f, &r, &c, &prep, second);
                assert_eq!(fresh, via_prep, "prepared pairing must equal fresh");
            }
        }
    }

    #[test]
    fn prepared_handles_infinity() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let inf = G1Affine::infinity();
        let prep_inf = prepare_g1(&f, &r, &inf);
        assert!(prep_inf.is_infinity());
        assert!(prep_inf.is_empty());
        assert!(fp2::is_one(
            &f,
            &tate_pairing_prepared(&f, &r, &c, &prep_inf, &p).0
        ));
        let prep_p = prepare_g1(&f, &r, &p);
        assert!(!prep_p.is_infinity());
        assert!(!prep_p.is_empty());
        assert!(fp2::is_one(
            &f,
            &tate_pairing_prepared(&f, &r, &c, &prep_p, &inf).0
        ));
    }

    #[test]
    fn multi_prepared_matches_multi_fresh() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let p2 = curve::mul(&f, &BigUint::two(), &p);
        let fresh = multi_tate_pairing(&f, &r, &c, &[(&p, &p2), (&p2, &p)]);
        let prep_a = prepare_g1(&f, &r, &p);
        let prep_b = prepare_g1(&f, &r, &p2);
        let prepared = multi_tate_pairing_prepared(&f, &r, &c, &[(&prep_a, &p2), (&prep_b, &p)]);
        assert_eq!(fresh, prepared);
        // Infinity on either side drops out of the product.
        let inf = G1Affine::infinity();
        let prep_inf = prepare_g1(&f, &r, &inf);
        let with_inf = multi_tate_pairing_prepared(
            &f,
            &r,
            &c,
            &[(&prep_a, &p2), (&prep_inf, &p), (&prep_b, &inf)],
        );
        let just_first = tate_pairing_prepared(&f, &r, &c, &prep_a, &p2);
        assert_eq!(with_inf, just_first);
    }

    #[test]
    fn pairing_antisymmetric_under_negation() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let e = tate_pairing(&f, &r, &c, &p, &p);
        let e_neg = tate_pairing(&f, &r, &c, &curve::neg(&f, &p), &p);
        assert!(
            fp2::is_one(&f, &fp2::mul(&f, &e.0, &e_neg.0)),
            "ê(−P,P)·ê(P,P) = 1"
        );
    }
}
