//! The Tate pairing with distortion map (the paper's `ê`).
//!
//! For `P, Q ∈ G1 ⊂ E(F_p)` (the order-`r` subgroup), we compute
//!
//! ```text
//! ê(P, Q) = f_{r,P}(φ(Q))^((p²−1)/r)
//! ```
//!
//! where `φ(x, y) = (−x, iy)` is the distortion map into `E(F_p²)` and
//! `f_{r,P}` is the Miller function. Because `φ(Q)` has its
//! x-coordinate in `F_p`, all vertical-line evaluations land in the
//! subfield `F_p` and are annihilated by the final exponentiation
//! (`(p²−1)/r` is a multiple of `p−1`), so the Miller loop skips
//! denominators entirely — the classic Boneh–Franklin optimization.
//!
//! The Miller loops themselves live in `sempair-field`'s generic
//! kernels ([`sempair_field::miller`]); this module wires them to the
//! crate's point and `F_p²` types and, whenever the modulus fits the
//! fixed-width backend, dispatches through [`crate::fixed`] instead of
//! running the kernels on the bigint context.

use crate::curve::G1Affine;
use crate::fixed::{self, FixedSteps};
use crate::fp::{Fp, FpCtx};
use crate::fp2::{self, Fp2};
use sempair_bigint::BigUint;
use sempair_field::ext2::Ext2;
use sempair_field::miller as fmiller;

/// An element of the target group `G2 ⊂ F_p²*` (order `r`).
///
/// The paper calls the target group `G2`; modern notation says `GT`.
/// Values are produced by [`crate::CurveParams::pairing`] and combined
/// with the `gt_*` methods on [`crate::CurveParams`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Gt(pub(crate) Fp2);

impl Gt {
    /// Raw access to the underlying `F_p²` element (read-only).
    pub fn as_fp2(&self) -> &Fp2 {
        &self.0
    }
}

/// Re-wraps a kernel `F_p²` value into the crate's element type (the
/// two are structurally identical).
fn from_ext2(a: Ext2<Fp>) -> Fp2 {
    Fp2 { c0: a.c0, c1: a.c1 }
}

/// Final exponentiation on the bigint reference path, with the
/// longstanding zero guard for degenerate accumulator values.
fn finalize(f: &FpCtx, cofactor: &BigUint, m: Ext2<Fp>) -> Gt {
    if m.c0.is_zero() && m.c1.is_zero() {
        // Cannot happen for valid inputs; guard anyway.
        return Gt(fp2::one(f));
    }
    Gt(from_ext2(fmiller::final_exp(f, cofactor.limbs(), &m)))
}

/// Precomputed Miller-loop line coefficients for a fixed first pairing
/// argument.
///
/// The Jacobian point chain `T = P, 2P, 2P±P, …` that the projective
/// Miller loop walks depends only on `P` and the group order `r` —
/// never on `Q`. Every line the loop multiplies in factors through the
/// distorted second argument as
///
/// ```text
/// l'(Q) = (a·x_Q + b) + (c·y_Q)·i
/// ```
///
/// with `(a, b, c) ∈ F_p³` functions of the chain alone (tangent step:
/// `a = M·Z²`, `b = M·X − 2Y²`, `c = 2YZ³`; chord step: `a = R`,
/// `b = R·x_P − ZH·y_P`, `c = ZH`). Preparing `P` caches those triples
/// once, so each later pairing against `P` replays the loop with three
/// `F_p` multiplications per line instead of the full point arithmetic
/// — the encrypt (`ê(P_pub, ·)`) and verify (`ê(P, ·)`, `ê(R, ·)`) hot
/// paths skip roughly half their work.
///
/// A prepared point is bound to the parameter set whose `prepare` built
/// it; evaluating it under different [`crate::CurveParams`] yields
/// garbage (safely — no panics, just a wrong group element).
#[derive(Clone, Debug)]
pub struct PreparedG1 {
    /// Line-coefficient triples in loop consumption order: for each
    /// Miller iteration one doubling entry, then one addition entry
    /// when the corresponding bit of `r` is set. The vector ends early
    /// iff the chain hit the point at infinity (every later line lies
    /// in the subfield `F_p` and is annihilated by the final
    /// exponentiation).
    steps: Vec<fmiller::Line<Fp>>,
    /// The same triples in fixed-width form, present when the parameter
    /// set has a fixed backend; replayed without any per-call limb
    /// conversion.
    fixed: Option<FixedSteps>,
    /// `true` iff the prepared point itself is the identity, in which
    /// case every pairing against it is 1.
    infinity: bool,
}

impl PreparedG1 {
    /// `true` iff the underlying point is the group identity.
    pub fn is_infinity(&self) -> bool {
        self.infinity
    }

    /// Number of cached line-coefficient triples (diagnostics).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff no lines are cached (identity input).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Walks the Jacobian chain of the projective Miller loop for `p`
/// alone, caching each line's `(a, b, c)` coefficients.
///
/// With a fixed backend the chain is walked once in fixed-width
/// arithmetic and the bigint-form triples are derived by limb copy;
/// both replay paths consume bit-identical coefficients.
pub(crate) fn prepare_g1(f: &FpCtx, r: &BigUint, p: &G1Affine) -> PreparedG1 {
    let Some((px, py)) = p.coordinates() else {
        return PreparedG1 {
            steps: Vec::new(),
            fixed: None,
            infinity: true,
        };
    };
    if let Some(fx) = f.fixed() {
        let fixed_steps = fixed::prepare(fx, r, p);
        return PreparedG1 {
            steps: fixed::steps_to_fp(&fixed_steps),
            fixed: Some(fixed_steps),
            infinity: false,
        };
    }
    PreparedG1 {
        steps: fmiller::prepare_lines(f, r.limbs(), (px, py)),
        fixed: None,
        infinity: false,
    }
}

/// Full pairing against a prepared first argument.
pub(crate) fn tate_pairing_prepared(
    f: &FpCtx,
    r: &BigUint,
    cofactor: &BigUint,
    p: &PreparedG1,
    q: &G1Affine,
) -> Gt {
    if p.infinity || q.is_infinity() {
        return Gt(fp2::one(f));
    }
    if let (Some(fx), Some(steps)) = (f.fixed(), p.fixed.as_ref()) {
        if let Some(out) = fixed::tate_prepared(fx, r, cofactor, steps, q) {
            return Gt(out);
        }
    }
    let qc = q.coordinates().expect("non-infinity Q");
    let m = fmiller::miller_prepared(f, r.limbs(), &p.steps, qc);
    Gt(from_ext2(fmiller::final_exp(f, cofactor.limbs(), &m)))
}

/// Product of pairings `Π ê(Pᵢ, Qᵢ)` where every `Pᵢ` is prepared:
/// one shared accumulator squaring chain plus three `F_p`
/// multiplications per cached line per pair.
pub(crate) fn multi_tate_pairing_prepared(
    f: &FpCtx,
    r: &BigUint,
    cofactor: &BigUint,
    pairs: &[(&PreparedG1, &G1Affine)],
) -> Gt {
    // Identity on either side contributes the factor 1.
    let live: Vec<(&PreparedG1, &G1Affine)> = pairs
        .iter()
        .filter(|(p, q)| !p.infinity && !q.is_infinity())
        .copied()
        .collect();
    if live.is_empty() {
        return Gt(fp2::one(f));
    }
    if let Some(fx) = f.fixed() {
        let fixed_pairs: Option<Vec<(&FixedSteps, &G1Affine)>> = live
            .iter()
            .map(|(p, q)| p.fixed.as_ref().map(|s| (s, *q)))
            .collect();
        if let Some(fixed_pairs) = fixed_pairs {
            if let Some(out) = fixed::multi_tate_prepared(fx, r, cofactor, &fixed_pairs) {
                return Gt(out);
            }
        }
    }
    let kernel_pairs: Vec<fmiller::PreparedPairRef<'_, Fp>> = live
        .iter()
        .map(|(p, q)| {
            (
                p.steps.as_slice(),
                q.coordinates().expect("filtered non-infinity Q"),
            )
        })
        .collect();
    finalize(
        f,
        cofactor,
        fmiller::multi_miller_prepared(f, r.limbs(), &kernel_pairs),
    )
}

/// Product of pairings `Π ê(Pᵢ, Qᵢ)` with one shared Miller loop and a
/// single final exponentiation.
pub(crate) fn multi_tate_pairing(
    f: &FpCtx,
    r: &BigUint,
    cofactor: &BigUint,
    pairs: &[(&G1Affine, &G1Affine)],
) -> Gt {
    // The fused line formulas already bake in the distortion map
    // φ(Q) = (−x_Q, i·y_Q), so pairs pass through unchanged; identity
    // inputs contribute the factor 1 and are filtered out.
    if let Some(fx) = f.fixed() {
        return Gt(fixed::multi_tate(fx, r, cofactor, pairs));
    }
    let live: Vec<fmiller::PairRef<'_, Fp>> = pairs
        .iter()
        .filter_map(|(p, q)| Some((p.coordinates()?, q.coordinates()?)))
        .collect();
    finalize(f, cofactor, fmiller::multi_miller(f, r.limbs(), &live))
}

/// Which Miller-loop implementation to run (the E10 ablation compares
/// them; everything else uses the projective default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MillerStrategy {
    /// Affine intermediate points, one field inversion per step — the
    /// straightforward textbook loop, kept as a cross-checked reference.
    Affine,
    /// Jacobian intermediate points with fused, subfield-scaled line
    /// evaluation (no inversions). The default.
    Projective,
}

/// Full pairing: Miller loop + final exponentiation.
///
/// `cofactor` must equal `(p + 1) / r`; the final exponent
/// `(p² − 1)/r = (p − 1)·cofactor` is applied as a cheap Frobenius
/// (conjugation) division followed by one `F_p²` exponentiation.
pub(crate) fn tate_pairing(
    f: &FpCtx,
    r: &BigUint,
    cofactor: &BigUint,
    p: &G1Affine,
    q: &G1Affine,
) -> Gt {
    tate_pairing_with(f, r, cofactor, p, q, MillerStrategy::Projective)
}

/// [`tate_pairing`] with an explicit Miller-loop strategy.
pub(crate) fn tate_pairing_with(
    f: &FpCtx,
    r: &BigUint,
    cofactor: &BigUint,
    p: &G1Affine,
    q: &G1Affine,
    strategy: MillerStrategy,
) -> Gt {
    if p.is_infinity() || q.is_infinity() {
        return Gt(fp2::one(f));
    }
    if let Some(fx) = f.fixed() {
        return Gt(fixed::tate(
            fx,
            r,
            cofactor,
            p,
            q,
            strategy == MillerStrategy::Affine,
        ));
    }
    let pc = p.coordinates().expect("non-infinity P");
    let qc = q.coordinates().expect("non-infinity Q");
    let m = match strategy {
        MillerStrategy::Affine => fmiller::miller_affine(f, r.limbs(), pc, qc),
        MillerStrategy::Projective => fmiller::miller_projective(f, r.limbs(), pc, qc),
    };
    Gt(from_ext2(fmiller::final_exp(f, cofactor.limbs(), &m)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve;

    /// p = 11, r = 3: 3 | p + 1 = 12, cofactor 4.
    fn setup() -> (FpCtx, BigUint, BigUint) {
        (
            FpCtx::new(&BigUint::from(11u64)).unwrap(),
            BigUint::from(3u64),
            BigUint::from(4u64),
        )
    }

    /// Finds a point of exact order 3 on E(F_11).
    fn order3_point(f: &FpCtx) -> G1Affine {
        for x in 0..11u64 {
            let xe = f.from_u64(x);
            let rhs = f.add(&f.mul(&f.sqr(&xe), &xe), &xe);
            if let Some(y) = f.sqrt(&rhs) {
                let p = G1Affine::from_xy_unchecked(xe.clone(), y);
                let p3 = curve::mul(f, &BigUint::from(4u64), &p); // cofactor-clear
                if !p3.is_infinity() {
                    assert!(curve::mul(f, &BigUint::from(3u64), &p3).is_infinity());
                    return p3;
                }
            }
        }
        panic!("no order-3 point found");
    }

    #[test]
    fn pairing_nondegenerate_on_tiny_curve() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let g = tate_pairing(&f, &r, &c, &p, &p);
        assert!(!fp2::is_one(&f, &g.0), "ê(P,P) must be ≠ 1");
        // Output has order dividing r: g³ = 1.
        assert!(fp2::is_one(&f, &fp2::pow(&f, &g.0, &r)));
    }

    #[test]
    fn pairing_bilinear_on_tiny_curve() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let p2 = curve::mul(&f, &BigUint::two(), &p);
        let e11 = tate_pairing(&f, &r, &c, &p, &p);
        let e21 = tate_pairing(&f, &r, &c, &p2, &p);
        let e12 = tate_pairing(&f, &r, &c, &p, &p2);
        let expect = fp2::sqr(&f, &e11.0);
        assert_eq!(e21.0, expect, "ê(2P, P) = ê(P,P)²");
        assert_eq!(e12.0, expect, "ê(P, 2P) = ê(P,P)²");
        // ê(2P, 2P) = ê(P,P)^4 = ê(P,P)  (4 ≡ 1 mod 3)
        let e22 = tate_pairing(&f, &r, &c, &p2, &p2);
        let e4 = fp2::pow(&f, &e11.0, &BigUint::from(4u64));
        assert_eq!(e22.0, e4);
        assert_eq!(e22.0, e11.0);
    }

    #[test]
    fn pairing_with_infinity_is_one() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let inf = G1Affine::infinity();
        assert!(fp2::is_one(&f, &tate_pairing(&f, &r, &c, &inf, &p).0));
        assert!(fp2::is_one(&f, &tate_pairing(&f, &r, &c, &p, &inf).0));
    }

    #[test]
    fn prepared_matches_fresh_on_tiny_curve() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let p2 = curve::mul(&f, &BigUint::two(), &p);
        for first in [&p, &p2] {
            let prep = prepare_g1(&f, &r, first);
            for second in [&p, &p2] {
                let fresh = tate_pairing(&f, &r, &c, first, second);
                let via_prep = tate_pairing_prepared(&f, &r, &c, &prep, second);
                assert_eq!(fresh, via_prep, "prepared pairing must equal fresh");
            }
        }
    }

    #[test]
    fn prepared_handles_infinity() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let inf = G1Affine::infinity();
        let prep_inf = prepare_g1(&f, &r, &inf);
        assert!(prep_inf.is_infinity());
        assert!(prep_inf.is_empty());
        assert!(fp2::is_one(
            &f,
            &tate_pairing_prepared(&f, &r, &c, &prep_inf, &p).0
        ));
        let prep_p = prepare_g1(&f, &r, &p);
        assert!(!prep_p.is_infinity());
        assert!(!prep_p.is_empty());
        assert!(fp2::is_one(
            &f,
            &tate_pairing_prepared(&f, &r, &c, &prep_p, &inf).0
        ));
    }

    #[test]
    fn multi_prepared_matches_multi_fresh() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let p2 = curve::mul(&f, &BigUint::two(), &p);
        let fresh = multi_tate_pairing(&f, &r, &c, &[(&p, &p2), (&p2, &p)]);
        let prep_a = prepare_g1(&f, &r, &p);
        let prep_b = prepare_g1(&f, &r, &p2);
        let prepared = multi_tate_pairing_prepared(&f, &r, &c, &[(&prep_a, &p2), (&prep_b, &p)]);
        assert_eq!(fresh, prepared);
        // Infinity on either side drops out of the product.
        let inf = G1Affine::infinity();
        let prep_inf = prepare_g1(&f, &r, &inf);
        let with_inf = multi_tate_pairing_prepared(
            &f,
            &r,
            &c,
            &[(&prep_a, &p2), (&prep_inf, &p), (&prep_b, &inf)],
        );
        let just_first = tate_pairing_prepared(&f, &r, &c, &prep_a, &p2);
        assert_eq!(with_inf, just_first);
    }

    #[test]
    fn pairing_antisymmetric_under_negation() {
        let (f, r, c) = setup();
        let p = order3_point(&f);
        let e = tate_pairing(&f, &r, &c, &p, &p);
        let e_neg = tate_pairing(&f, &r, &c, &curve::neg(&f, &p), &p);
        assert!(
            fp2::is_one(&f, &fp2::mul(&f, &e.0, &e_neg.0)),
            "ê(−P,P)·ê(P,P) = 1"
        );
    }

    #[test]
    fn fixed_and_bigint_backends_agree_on_tiny_curve() {
        let (f, r, c) = setup();
        assert!(f.fixed().is_some(), "one-limb modulus has a fixed backend");
        let mut f_ref = f.clone();
        f_ref.force_bigint_backend();
        let p = order3_point(&f);
        let p2 = curve::mul(&f, &BigUint::two(), &p);
        for strategy in [MillerStrategy::Affine, MillerStrategy::Projective] {
            for a in [&p, &p2] {
                for b in [&p, &p2] {
                    assert_eq!(
                        tate_pairing_with(&f, &r, &c, a, b, strategy),
                        tate_pairing_with(&f_ref, &r, &c, a, b, strategy),
                        "{strategy:?}"
                    );
                }
            }
        }
        let fast = multi_tate_pairing(&f, &r, &c, &[(&p, &p2), (&p2, &p)]);
        let slow = multi_tate_pairing(&f_ref, &r, &c, &[(&p, &p2), (&p2, &p)]);
        assert_eq!(fast, slow);
        // Prepared points from either backend replay identically on both.
        let prep_fast = prepare_g1(&f, &r, &p);
        let prep_slow = prepare_g1(&f_ref, &r, &p);
        assert_eq!(
            tate_pairing_prepared(&f, &r, &c, &prep_fast, &p2),
            tate_pairing_prepared(&f_ref, &r, &c, &prep_slow, &p2)
        );
        assert_eq!(
            multi_tate_pairing_prepared(&f, &r, &c, &[(&prep_fast, &p2)]),
            multi_tate_pairing_prepared(&f_ref, &r, &c, &[(&prep_slow, &p2)])
        );
        // Fixed steps replayed under a bigint-only context fall back
        // cleanly (width-mismatch path).
        assert_eq!(
            tate_pairing_prepared(&f_ref, &r, &c, &prep_fast, &p2),
            tate_pairing_prepared(&f, &r, &c, &prep_fast, &p2)
        );
    }
}
