//! Curve parameter sets: generation, validation and serialization.

use crate::curve::{self, G1Affine};
use crate::fp::FpCtx;
use crate::fp2;
use crate::pairing_impl::{self, Gt, MillerStrategy, PreparedG1};
use crate::DecodeError;
use sempair_bigint::{prime, rng as brng, BigUint};
use sempair_hash::derive;
use std::error::Error as StdError;
use std::fmt;

use rand::RngCore;

/// Errors from parameter generation/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParamsError {
    /// The prime search did not terminate within its budget.
    SearchExhausted,
    /// A supplied parameter set failed validation.
    Invalid(&'static str),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::SearchExhausted => write!(f, "parameter search budget exhausted"),
            ParamsError::Invalid(why) => write!(f, "invalid parameter set: {why}"),
        }
    }
}

impl StdError for ParamsError {}

/// A complete pairing parameter set (the paper's
/// `{G1, G2, ê, P, q, …}` public system parameters, §3.2 `Setup`).
///
/// Holds the field context, the prime subgroup order `r` (the paper's
/// `q`), the cofactor `c = (p+1)/r` and a generator `P` of `G1`.
#[derive(Clone, Debug)]
pub struct CurveParams {
    p: BigUint,
    r: BigUint,
    cofactor: BigUint,
    fp: FpCtx,
    generator: G1Affine,
    /// Lazily built fixed-base table for [`CurveParams::mul_generator`]:
    /// `table[i][d] = d·2^{4i}·P` for 4-bit windows, turning every
    /// generator multiplication into ~⌈|r|/4⌉ mixed additions with no
    /// doublings (E10 ablation: `fixed_base_comb`).
    gen_table: std::sync::OnceLock<Vec<Vec<G1Affine>>>,
    /// Lazily built prepared generator for
    /// [`CurveParams::prepared_generator`] — shared by every verifier
    /// hot path that pairs against `P`.
    prep_gen: std::sync::OnceLock<PreparedG1>,
}

/// Serializable wire form of a parameter set.
#[derive(Debug, Clone)]
pub struct CurveParamsSpec {
    /// Field characteristic `p`.
    pub p: BigUint,
    /// Prime subgroup order `r`.
    pub r: BigUint,
    /// Generator x-coordinate (canonical integer).
    pub gx: BigUint,
    /// Generator y-coordinate (canonical integer).
    pub gy: BigUint,
}

// Manual serde impls: the vendored serde shim has no derive macro
// (shims/README.md), and the field list doubles as the on-disk schema.
impl serde::Serialize for CurveParamsSpec {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("CurveParamsSpec", 4)?;
        st.serialize_field("p", &self.p)?;
        st.serialize_field("r", &self.r)?;
        st.serialize_field("gx", &self.gx)?;
        st.serialize_field("gy", &self.gy)?;
        st.end()
    }
}

impl<'de> serde::Deserialize<'de> for CurveParamsSpec {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::StructAccess;
        let mut st = deserializer.deserialize_struct("CurveParamsSpec", &["p", "r", "gx", "gy"])?;
        Ok(CurveParamsSpec {
            p: st.field("p")?,
            r: st.field("r")?,
            gx: st.field("gx")?,
            gy: st.field("gy")?,
        })
    }
}

impl CurveParams {
    /// Generates a fresh parameter set: a random `r_bits`-bit prime `r`
    /// and a `p_bits`-bit prime `p = c·r − 1 ≡ 3 (mod 4)`.
    ///
    /// The paper's deployment sizes are `p_bits = 512`,
    /// `r_bits = 160`; tests use much smaller fields.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::SearchExhausted`] if prime searching runs
    /// out of budget (practically impossible for sane sizes).
    ///
    /// # Panics
    ///
    /// Panics if `r_bits < 4` or `p_bits < r_bits + 2`.
    pub fn generate(
        rng: &mut impl RngCore,
        p_bits: usize,
        r_bits: usize,
    ) -> Result<Self, ParamsError> {
        assert!(r_bits >= 4, "subgroup order too small");
        assert!(p_bits >= r_bits + 2, "p must be larger than r");
        let r = prime::random_prime(rng, r_bits).map_err(|_| ParamsError::SearchExhausted)?;
        let (p, cofactor) = prime::prime_in_progression(rng, &r, p_bits)
            .map_err(|_| ParamsError::SearchExhausted)?;
        let fp = FpCtx::new(&p).expect("p is odd");
        let generator = derive_generator(&fp, &r, &cofactor)
            .ok_or(ParamsError::Invalid("no generator found"))?;
        Ok(CurveParams {
            p,
            r,
            cofactor,
            fp,
            generator,
            gen_table: std::sync::OnceLock::new(),
            prep_gen: std::sync::OnceLock::new(),
        })
    }

    /// Reconstructs a parameter set from its serialized spec, validating
    /// every invariant (primality is checked probabilistically).
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::Invalid`] describing the first violated
    /// invariant.
    pub fn from_spec(spec: &CurveParamsSpec, rng: &mut impl RngCore) -> Result<Self, ParamsError> {
        let CurveParamsSpec { p, r, gx, gy } = spec;
        if p.limbs().first().map_or(0, |l| l & 3) != 3 {
            return Err(ParamsError::Invalid("p must be ≡ 3 (mod 4)"));
        }
        if !prime::is_probable_prime(p, rng) {
            return Err(ParamsError::Invalid("p is not prime"));
        }
        if !prime::is_probable_prime(r, rng) {
            return Err(ParamsError::Invalid("r is not prime"));
        }
        let p_plus_1 = p + &BigUint::one();
        let (cofactor, rem) = p_plus_1.div_rem(r);
        if !rem.is_zero() {
            return Err(ParamsError::Invalid("r does not divide p + 1"));
        }
        let fp = FpCtx::new(p).expect("p odd");
        if gx >= p || gy >= p {
            return Err(ParamsError::Invalid("generator coordinates not reduced"));
        }
        let x = fp.from_uint(gx);
        let y = fp.from_uint(gy);
        if !curve::is_on_curve(&fp, &x, &y) {
            return Err(ParamsError::Invalid("generator not on curve"));
        }
        let generator = G1Affine::from_xy_unchecked(x, y);
        if generator.is_infinity() || !curve::mul(&fp, r, &generator).is_infinity() {
            return Err(ParamsError::Invalid("generator does not have order r"));
        }
        Ok(CurveParams {
            p: p.clone(),
            r: r.clone(),
            cofactor,
            fp,
            generator,
            gen_table: std::sync::OnceLock::new(),
            prep_gen: std::sync::OnceLock::new(),
        })
    }

    /// Serializable description of this parameter set.
    pub fn to_spec(&self) -> CurveParamsSpec {
        let (x, y) = self.generator.coordinates().expect("generator is finite");
        CurveParamsSpec {
            p: self.p.clone(),
            r: self.r.clone(),
            gx: self.fp.to_uint(x),
            gy: self.fp.to_uint(y),
        }
    }

    /// The pre-generated paper-scale parameter set: 512-bit `p`,
    /// 160-bit `r` — the sizes §4 quotes for short private keys.
    pub fn paper_default() -> Self {
        Self::builtin(PAPER_512_160)
    }

    /// A pre-generated reduced-size set (256-bit `p`, 128-bit `r`) for
    /// fast tests and examples.
    pub fn fast_insecure() -> Self {
        Self::builtin(FAST_256_128)
    }

    /// A 176-bit-`p` / 160-bit-`r` set sized like the short-signature
    /// curve of Boneh–Lynn–Shacham \[6\] that §5's "160 bits" refers to:
    /// one compressed `G1` point is 184 bits here.
    ///
    /// **Size-faithful, security-theater**: with embedding degree 2 the
    /// MOV reduction maps discrete logs to a ~352-bit `F_p²`, far below
    /// any real margin (\[6\] used embedding degree 6 to avoid exactly
    /// this). Use only to reproduce the paper's size arithmetic.
    pub fn gdh_short_insecure() -> Self {
        Self::builtin(SHORT_GDH_176_160)
    }

    fn builtin(spec: (&str, &str, &str, &str)) -> Self {
        let parse = |s: &str| BigUint::from_hex(s).expect("valid builtin hex");
        let spec = CurveParamsSpec {
            p: parse(spec.0),
            r: parse(spec.1),
            gx: parse(spec.2),
            gy: parse(spec.3),
        };
        let mut rng = sempair_hash::HmacDrbgRng::new(b"sempair-builtin-params-check");
        Self::from_spec(&spec, &mut rng).expect("builtin parameters are valid")
    }

    /// The field characteristic `p`.
    pub fn modulus(&self) -> &BigUint {
        &self.p
    }

    /// The prime order `r` of `G1` (the paper's `q`).
    pub fn order(&self) -> &BigUint {
        &self.r
    }

    /// The cofactor `(p + 1) / r`.
    pub fn cofactor(&self) -> &BigUint {
        &self.cofactor
    }

    /// The base-field context.
    pub fn fp(&self) -> &FpCtx {
        &self.fp
    }

    /// The generator `P` of `G1`.
    pub fn generator(&self) -> &G1Affine {
        &self.generator
    }

    // --- group operations -------------------------------------------------

    /// Point addition.
    pub fn add(&self, a: &G1Affine, b: &G1Affine) -> G1Affine {
        curve::add(&self.fp, a, b)
    }

    /// Point subtraction `a − b`.
    pub fn sub(&self, a: &G1Affine, b: &G1Affine) -> G1Affine {
        curve::add(&self.fp, a, &curve::neg(&self.fp, b))
    }

    /// Point negation.
    pub fn neg(&self, a: &G1Affine) -> G1Affine {
        curve::neg(&self.fp, a)
    }

    /// Scalar multiplication `k·P` (windowed Jacobian).
    pub fn mul(&self, k: &BigUint, point: &G1Affine) -> G1Affine {
        curve::mul(&self.fp, k, point)
    }

    /// `k·P` for the fixed generator, via the precomputed fixed-base
    /// comb (~4× faster than generic scalar multiplication).
    pub fn mul_generator(&self, k: &BigUint) -> G1Affine {
        let k = if k < &self.r { k.clone() } else { k % &self.r };
        if k.is_zero() {
            return G1Affine::infinity();
        }
        let table = self.generator_table();
        if let Some(fx) = self.fp.fixed() {
            // k < r < p always fits the modulus width.
            return crate::fixed::comb_mul(fx, table, &k);
        }
        let mut acc = curve::Jacobian::infinity(&self.fp);
        for (i, row) in table.iter().enumerate() {
            let mut digit = 0usize;
            for b in 0..4 {
                if k.bit(4 * i + b) {
                    digit |= 1 << b;
                }
            }
            if digit != 0 {
                acc = acc.add_affine(&self.fp, &row[digit]);
            }
        }
        acc.to_affine(&self.fp)
    }

    /// Generic (table-free) generator multiplication, kept for the E10
    /// ablation bench.
    pub fn mul_generator_generic(&self, k: &BigUint) -> G1Affine {
        curve::mul(&self.fp, k, &self.generator)
    }

    fn generator_table(&self) -> &Vec<Vec<G1Affine>> {
        self.gen_table.get_or_init(|| {
            let windows = self.r.bits().div_ceil(4);
            let mut table = Vec::with_capacity(windows);
            let mut base = self.generator.clone(); // 2^{4i}·P
            for _ in 0..windows {
                let mut row = Vec::with_capacity(16);
                row.push(G1Affine::infinity());
                for d in 1..16 {
                    let prev: &G1Affine = &row[d - 1];
                    row.push(curve::add(&self.fp, prev, &base));
                }
                base = curve::add(&self.fp, &row[15], &base); // 16·(2^{4i}·P)
                table.push(row);
            }
            table
        })
    }

    /// A uniformly random scalar in `[1, r)`.
    pub fn random_scalar(&self, rng: &mut impl RngCore) -> BigUint {
        brng::random_nonzero_below(rng, &self.r)
    }

    /// `true` iff `point` lies on the curve **and** in the order-`r`
    /// subgroup.
    pub fn is_in_group(&self, point: &G1Affine) -> bool {
        self.is_on_curve(point)
            && (point.is_infinity() || curve::mul(&self.fp, &self.r, point).is_infinity())
    }

    /// `true` iff `point` satisfies the curve equation — weaker (and
    /// much cheaper) than [`CurveParams::is_in_group`]: no order-`r`
    /// check. A cheap first filter before paying for the subgroup
    /// check; never a substitute for it (the even cofactor means the
    /// curve always carries small-order torsion off the subgroup).
    pub fn is_on_curve(&self, point: &G1Affine) -> bool {
        match point.coordinates() {
            None => true,
            Some((x, y)) => curve::is_on_curve(&self.fp, x, y),
        }
    }

    /// Successive on-curve (pre-cofactor-clearing) candidate points of
    /// the try-and-increment hash, with the hash-derived `±y` choice.
    fn g1_candidates<'a>(
        &'a self,
        tag: &'a [u8],
        data: &'a [u8],
    ) -> impl Iterator<Item = G1Affine> + 'a {
        let f = &self.fp;
        derive::hash_to_field_candidates(tag, data, &self.p)
            .take(256)
            .enumerate()
            .filter_map(move |(attempt, x)| {
                let xe = f.from_uint(&x);
                let rhs = f.add(&f.mul(&f.sqr(&xe), &xe), &xe);
                let mut y = f.sqrt(&rhs)?;
                // Deterministic sign choice bound to the attempt index.
                let sign = derive::transcript_hash(
                    b"sempair-h1-sign",
                    &[tag, data, &(attempt as u32).to_be_bytes()],
                )[0] & 1;
                if (sign == 1) != f.parity(&y) {
                    y = f.neg(&y);
                }
                Some(G1Affine::from_xy_unchecked(xe, y))
            })
    }

    /// Hashes an arbitrary byte string onto `G1` (the scheme oracle
    /// `H1`): try-and-increment on the x-coordinate followed by
    /// cofactor clearing, with a hash-derived choice between `±y`.
    ///
    /// Candidates whose cofactor-cleared image is the point at infinity
    /// are skipped and the search continues — `H(m) = O` would make
    /// `σ = O` a valid GDH signature under *every* key and degenerate
    /// `Q_ID` in IBE, so the guard is load-bearing even though only a
    /// `1/r` fraction of candidates trip it (findable on the small-order
    /// test parameter sets even if not at paper sizes).
    pub fn hash_to_g1(&self, tag: &[u8], data: &[u8]) -> G1Affine {
        for candidate in self.g1_candidates(tag, data) {
            let cleared = curve::mul(&self.fp, &self.cofactor, &candidate);
            if !cleared.is_infinity() {
                debug_assert!(self.is_in_group(&cleared));
                return cleared;
            }
        }
        unreachable!(
            "256 try-and-increment attempts all failed (p ≈ 2^{})",
            self.p.bits()
        )
    }

    /// The *first on-curve candidate* behind [`CurveParams::hash_to_g1`],
    /// before cofactor clearing.
    ///
    /// `hash_to_g1(tag, data) = cofactor · hash_to_g1_candidate(tag, data)`
    /// **unless** the candidate clears to the point at infinity — a
    /// `1/r` fraction of inputs that `hash_to_g1`'s retry guard skips
    /// but this accessor cannot detect without paying for the clearing.
    /// Batch combiners use it for a fast path
    /// (`Σ cᵢ·H(mᵢ) = cofactor · Σ cᵢ·Candᵢ`, one clearing per batch)
    /// and MUST fall back to per-message [`CurveParams::hash_to_g1`]
    /// before treating a combined-equation mismatch as a failure;
    /// finding an input on which the two disagree costs `≈ r` hash
    /// evaluations (the same class of work as a collision search).
    pub fn hash_to_g1_candidate(&self, tag: &[u8], data: &[u8]) -> G1Affine {
        self.g1_candidates(tag, data)
            .next()
            .unwrap_or_else(|| unreachable!("256 try-and-increment attempts all failed"))
    }

    // --- target group (the paper's G2) -------------------------------------

    /// The modified Tate pairing `ê(P, Q)` (§3.1).
    pub fn pairing(&self, p: &G1Affine, q: &G1Affine) -> Gt {
        pairing_impl::tate_pairing(&self.fp, &self.r, &self.cofactor, p, q)
    }

    /// The product `Π ê(Pᵢ, Qᵢ)` computed with one shared Miller loop
    /// and a single final exponentiation — roughly `2×` faster than two
    /// separate pairings for the two-term products every verification
    /// equation in the schemes uses.
    pub fn multi_pairing(&self, pairs: &[(&G1Affine, &G1Affine)]) -> Gt {
        pairing_impl::multi_tate_pairing(&self.fp, &self.r, &self.cofactor, pairs)
    }

    /// `true` iff `ê(a1, b1) = ê(a2, b2)`, checked as
    /// `ê(−a1, b1)·ê(a2, b2) = 1` with one shared Miller loop.
    pub fn pairing_equals(
        &self,
        a1: &G1Affine,
        b1: &G1Affine,
        a2: &G1Affine,
        b2: &G1Affine,
    ) -> bool {
        // Degenerate inputs: fall back to direct comparison (identity
        // pairings are 1 and the product trick would conflate cases).
        if a1.is_infinity() || b1.is_infinity() || a2.is_infinity() || b2.is_infinity() {
            return self.pairing(a1, b1) == self.pairing(a2, b2);
        }
        let neg_a1 = curve::neg(&self.fp, a1);
        let product = self.multi_pairing(&[(&neg_a1, b1), (a2, b2)]);
        self.gt_is_one(&product)
    }

    /// Precomputes the Miller-loop line coefficients of `p` for reuse
    /// as a fixed first pairing argument.
    ///
    /// Costs about one pairing's worth of point arithmetic once; every
    /// subsequent [`CurveParams::pairing_prepared`] against the result
    /// skips that work entirely. Worth it from the second pairing
    /// onward — the encrypt path (`ê(P_pub, Q_ID)`) and the verify
    /// path (`ê(P, σ)`, `ê(R, H(m))`) reuse one fixed point across
    /// every call.
    ///
    /// The result is bound to **this** parameter set; evaluating it
    /// under different parameters yields a wrong (but safely computed)
    /// group element.
    pub fn prepare_g1(&self, p: &G1Affine) -> PreparedG1 {
        pairing_impl::prepare_g1(&self.fp, &self.r, p)
    }

    /// The generator `P`, prepared once per parameter set and cached —
    /// verification equations of the form `ê(P, ·)` share it instead of
    /// re-walking the Miller chain per call.
    pub fn prepared_generator(&self) -> &PreparedG1 {
        self.prep_gen
            .get_or_init(|| self.prepare_g1(&self.generator))
    }

    /// Disables the fixed-width backend on this parameter set's field
    /// context, so all arithmetic runs on the variable-width reference
    /// path. Cached tables built under the other backend are discarded.
    /// Test-only hook for differential checks; not part of the public
    /// API contract.
    #[doc(hidden)]
    pub fn force_bigint_backend(&mut self) {
        self.fp.force_bigint_backend();
        self.gen_table = std::sync::OnceLock::new();
        self.prep_gen = std::sync::OnceLock::new();
    }

    /// [`CurveParams::pairing`] with a prepared first argument:
    /// identical output, roughly half the Miller-loop work.
    pub fn pairing_prepared(&self, p: &PreparedG1, q: &G1Affine) -> Gt {
        pairing_impl::tate_pairing_prepared(&self.fp, &self.r, &self.cofactor, p, q)
    }

    /// [`CurveParams::multi_pairing`] where every first argument is
    /// prepared: one shared squaring chain, no point arithmetic.
    pub fn multi_pairing_prepared(&self, pairs: &[(&PreparedG1, &G1Affine)]) -> Gt {
        pairing_impl::multi_tate_pairing_prepared(&self.fp, &self.r, &self.cofactor, pairs)
    }

    /// The pairing with an explicit Miller-loop strategy (used by the
    /// E10 ablation; [`CurveParams::pairing`] always picks the fast
    /// projective loop).
    pub fn pairing_with_strategy(
        &self,
        p: &G1Affine,
        q: &G1Affine,
        strategy: MillerStrategy,
    ) -> Gt {
        pairing_impl::tate_pairing_with(&self.fp, &self.r, &self.cofactor, p, q, strategy)
    }

    /// Identity element of the target group.
    pub fn gt_one(&self) -> Gt {
        Gt(fp2::one(&self.fp))
    }

    /// `true` iff `a` is the target-group identity.
    pub fn gt_is_one(&self, a: &Gt) -> bool {
        fp2::is_one(&self.fp, &a.0)
    }

    /// Target-group multiplication.
    pub fn gt_mul(&self, a: &Gt, b: &Gt) -> Gt {
        Gt(fp2::mul(&self.fp, &a.0, &b.0))
    }

    /// Target-group inverse.
    ///
    /// Elements of `G2` are unitary (norm 1), so inversion is
    /// conjugation — no field inversion needed.
    pub fn gt_inv(&self, a: &Gt) -> Gt {
        Gt(fp2::conj(&self.fp, &a.0))
    }

    /// Target-group exponentiation.
    pub fn gt_pow(&self, a: &Gt, e: &BigUint) -> Gt {
        Gt(fp2::pow(&self.fp, &a.0, &(e % &self.r)))
    }

    /// Canonical encoding of a target-group element
    /// (`2·byte_len(p)` bytes).
    pub fn gt_to_bytes(&self, a: &Gt) -> Vec<u8> {
        fp2::to_bytes(&self.fp, &a.0)
    }

    /// Decodes [`CurveParams::gt_to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for malformed input.
    pub fn gt_from_bytes(&self, bytes: &[u8]) -> Result<Gt, DecodeError> {
        fp2::from_bytes(&self.fp, bytes).map(Gt)
    }

    // --- point serialization -----------------------------------------------

    /// Compressed point size in bytes: one flag byte plus `x`.
    pub fn point_len(&self) -> usize {
        1 + self.fp.byte_len()
    }

    /// Compressed encoding: flag `0x00` for infinity (x zeroed), else
    /// `0x02 | y-parity` followed by the big-endian x-coordinate —
    /// the "point compression" §4 invokes for short private keys.
    pub fn point_to_bytes(&self, point: &G1Affine) -> Vec<u8> {
        let mut out = vec![0u8; self.point_len()];
        if let Some((x, y)) = point.coordinates() {
            out[0] = 0x02 | u8::from(self.fp.parity(y));
            out[1..].copy_from_slice(&self.fp.to_bytes(x));
        }
        out
    }

    /// Decodes a compressed point, validating curve and subgroup
    /// membership.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for malformed or off-curve input.
    pub fn point_from_bytes(&self, bytes: &[u8]) -> Result<G1Affine, DecodeError> {
        if bytes.len() != self.point_len() {
            return Err(DecodeError::BadLength {
                expected: self.point_len(),
                got: bytes.len(),
            });
        }
        let Some((&flag_byte, body)) = bytes.split_first() else {
            return Err(DecodeError::BadLength {
                expected: self.point_len(),
                got: 0,
            });
        };
        match flag_byte {
            0x00 => {
                if body.iter().any(|&b| b != 0) {
                    return Err(DecodeError::BadFlag(0x00));
                }
                Ok(G1Affine::infinity())
            }
            flag @ (0x02 | 0x03) => {
                let x = BigUint::from_be_bytes(body);
                if x >= self.p {
                    return Err(DecodeError::NotReduced);
                }
                let f = &self.fp;
                let xe = f.from_uint(&x);
                let rhs = f.add(&f.mul(&f.sqr(&xe), &xe), &xe);
                let mut y = f.sqrt(&rhs).ok_or(DecodeError::NotOnCurve)?;
                if f.parity(&y) != (flag & 1 == 1) {
                    y = f.neg(&y);
                }
                let point = G1Affine::from_xy_unchecked(xe, y);
                if !self.is_in_group(&point) {
                    return Err(DecodeError::NotOnCurve);
                }
                Ok(point)
            }
            other => Err(DecodeError::BadFlag(other)),
        }
    }

    /// Simultaneous multi-scalar multiplication `Σ kᵢ·Pᵢ` (Pippenger's
    /// bucket method) — used by Lagrange recombination in the threshold
    /// schemes and by the GDH batch-verification combiner, where the
    /// term count is what makes batching pay.
    pub fn multi_mul(&self, terms: &[(BigUint, G1Affine)]) -> G1Affine {
        curve::multi_mul(&self.fp, terms)
    }
}

/// Derives a generator of the order-`r` subgroup deterministically from
/// a fixed tag, by try-and-increment + cofactor clearing.
fn derive_generator(f: &FpCtx, r: &BigUint, cofactor: &BigUint) -> Option<G1Affine> {
    for x in derive::hash_to_field_candidates(b"sempair-generator", b"v1", f.modulus()).take(512) {
        let xe = f.from_uint(&x);
        let rhs = f.add(&f.mul(&f.sqr(&xe), &xe), &xe);
        if let Some(y) = f.sqrt(&rhs) {
            let candidate = G1Affine::from_xy_unchecked(xe, y);
            let cleared = curve::mul(f, cofactor, &candidate);
            if !cleared.is_infinity() {
                debug_assert!(curve::mul(f, r, &cleared).is_infinity());
                return Some(cleared);
            }
        }
    }
    None
}

/// Exposes `Fp` canonical conversion for downstream crates that need to
/// feed x-coordinates into hash functions.
impl CurveParams {
    /// Canonical x/y byte encoding (uncompressed, without flag), or all
    /// zeros for infinity. Primarily for hashing transcripts.
    pub fn point_to_uncompressed(&self, point: &G1Affine) -> Vec<u8> {
        let w = self.fp.byte_len();
        match point.coordinates() {
            None => vec![0u8; 2 * w],
            Some((x, y)) => {
                let mut out = self.fp.to_bytes(x);
                out.extend_from_slice(&self.fp.to_bytes(y));
                out
            }
        }
    }

    /// Embeds an integer as a field element and lifts `±` candidates —
    /// helper for tests that need arbitrary curve points.
    pub fn lift_x(&self, x: &BigUint) -> Option<(G1Affine, G1Affine)> {
        let f = &self.fp;
        let xe = f.from_uint(x);
        let rhs = f.add(&f.mul(&f.sqr(&xe), &xe), &xe);
        let y = f.sqrt(&rhs)?;
        let p1 = G1Affine::from_xy_unchecked(xe.clone(), y.clone());
        let p2 = G1Affine::from_xy_unchecked(xe, f.neg(&y));
        Some((p1, p2))
    }
}

/// Pre-generated parameter sets `(p, r, gx, gy)` in hex.
///
/// Produced by `examples/gen_params.rs` with a fixed DRBG seed and
/// validated on every load by [`CurveParams::from_spec`].
const PAPER_512_160: (&str, &str, &str, &str) = (
    "a136c1e6695cff097bc289fca33cca75be37d973ef5c23fc826413b9d479b6ff556335280d9a7b0887b4b9e9da842e41d5a4729a469317552c5bcee82d6e9243",
    "b575819f1529f4608e80d28b409439bdaccefa71",
    "293e919f727527fcf416ddfaf6ad099036eeb46200db2a1ca9119c8bc32c9436fd76acd27abffe71639e8f4ff27cfe4db8127db4e6cbb9060a6675758fc760d9",
    "24df8ae186a92f6beec01dae63fb13ff8cf4352b236c7551ab17e42cbc5dc934b1e3d3287b5c6c25e47e175531764f409f46950a06f7cb680ffb1bc7ac1e79f8",
);

const SHORT_GDH_176_160: (&str, &str, &str, &str) = (
    "8892c809a727080fea02f63a1683729744563ff31b17",
    "ceb073d4e91aac86c05026ef58089f6c176663e7",
    "3c0e77b316aa9d85d163b428f4aee9dd58430eba0efa",
    "7e53d63a36b3479be56c34bc81a8790ea3b9ff08fb22",
);

const FAST_256_128: (&str, &str, &str, &str) = (
    "ae4501592d04a509404dfd8b8578a5b116f83a1a4eb077d5c7fb03bae12f0027",
    "daf303c9fddb460cb002d201fe609e33",
    "17f50199dc06f9340266e56f39e340a914b6e7d6a6d21e99d9d0a2e76b47ae29",
    "7de61b80c0e273c9115ff240518d01926d455352dbb141af4c402c76f962779f",
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sempair_bigint::modular;

    fn params() -> CurveParams {
        let mut rng = StdRng::seed_from_u64(77);
        CurveParams::generate(&mut rng, 128, 64).unwrap()
    }

    #[test]
    fn generated_params_invariants() {
        let prm = params();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(prm.modulus().bits(), 128);
        assert_eq!(prm.order().bits(), 64);
        assert!(prime::is_probable_prime(prm.modulus(), &mut rng));
        assert!(prime::is_probable_prime(prm.order(), &mut rng));
        assert_eq!(prm.modulus().limbs()[0] & 3, 3, "p ≡ 3 (mod 4)");
        let p1 = prm.modulus() + &BigUint::one();
        assert_eq!(&(prm.cofactor() * prm.order()), &p1);
        assert!(prm.is_in_group(prm.generator()));
        assert!(!prm.generator().is_infinity());
    }

    #[test]
    fn spec_roundtrip_and_validation() {
        let prm = params();
        let spec = prm.to_spec();
        let mut rng = StdRng::seed_from_u64(2);
        let back = CurveParams::from_spec(&spec, &mut rng).unwrap();
        assert_eq!(back.generator(), prm.generator());
        assert_eq!(back.order(), prm.order());

        // Corrupt each field and expect rejection.
        let mut bad = prm.to_spec();
        bad.r = &bad.r + &BigUint::two();
        assert!(CurveParams::from_spec(&bad, &mut rng).is_err());
        let mut bad = prm.to_spec();
        bad.gx = &bad.gx + &BigUint::one();
        assert!(CurveParams::from_spec(&bad, &mut rng).is_err());
        let mut bad = prm.to_spec();
        bad.p = &bad.p + &BigUint::one(); // even now
        assert!(CurveParams::from_spec(&bad, &mut rng).is_err());
    }

    #[test]
    fn pairing_bilinearity_generated_params() {
        let prm = params();
        let mut rng = StdRng::seed_from_u64(3);
        let g = prm.generator().clone();
        let a = prm.random_scalar(&mut rng);
        let b = prm.random_scalar(&mut rng);
        let lhs = prm.pairing(&prm.mul(&a, &g), &prm.mul(&b, &g));
        let ab = modular::mod_mul(&a, &b, prm.order());
        let rhs = prm.gt_pow(&prm.pairing(&g, &g), &ab);
        assert_eq!(lhs, rhs);
        assert!(!prm.gt_is_one(&prm.pairing(&g, &g)));
    }

    #[test]
    fn pairing_output_has_order_r() {
        let prm = params();
        let g = prm.generator();
        let e = prm.pairing(g, g);
        assert!(prm.gt_is_one(&prm.gt_pow(&e, prm.order())));
        assert!(prm.gt_is_one(&prm.gt_mul(&e, &prm.gt_inv(&e))));
    }

    #[test]
    fn hash_to_g1_properties() {
        let prm = params();
        let a = prm.hash_to_g1(b"H1", b"alice@example.com");
        let b = prm.hash_to_g1(b"H1", b"bob@example.com");
        let a2 = prm.hash_to_g1(b"H1", b"alice@example.com");
        assert_eq!(a, a2, "deterministic");
        assert_ne!(a, b, "distinct identities map to distinct points");
        assert!(prm.is_in_group(&a));
        assert!(!a.is_infinity());
        // Domain separation.
        assert_ne!(prm.hash_to_g1(b"H1", b"x"), prm.hash_to_g1(b"other", b"x"));
    }

    #[test]
    fn point_compression_roundtrip() {
        let prm = params();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let k = prm.random_scalar(&mut rng);
            let point = prm.mul_generator(&k);
            let bytes = prm.point_to_bytes(&point);
            assert_eq!(bytes.len(), prm.point_len());
            assert_eq!(prm.point_from_bytes(&bytes).unwrap(), point);
        }
        // Infinity.
        let inf_bytes = prm.point_to_bytes(&G1Affine::infinity());
        assert_eq!(
            prm.point_from_bytes(&inf_bytes).unwrap(),
            G1Affine::infinity()
        );
        // Bad flag / length.
        let mut bad = prm.point_to_bytes(prm.generator());
        bad[0] = 0x05;
        assert!(matches!(
            prm.point_from_bytes(&bad),
            Err(DecodeError::BadFlag(0x05))
        ));
        assert!(prm.point_from_bytes(&bad[1..]).is_err());
    }

    #[test]
    fn multi_mul_matches_naive() {
        let prm = params();
        let mut rng = StdRng::seed_from_u64(5);
        // Sweep term counts across the bucket-method window tiers.
        for n in [0usize, 1, 2, 4, 17, 40] {
            let mut terms: Vec<(BigUint, G1Affine)> = (0..n)
                .map(|_| {
                    let k = prm.random_scalar(&mut rng);
                    let point = prm.mul_generator(&prm.random_scalar(&mut rng));
                    (k, point)
                })
                .collect();
            // Degenerate terms must drop out.
            terms.push((BigUint::zero(), prm.mul_generator(&BigUint::two())));
            terms.push((prm.random_scalar(&mut rng), G1Affine::infinity()));
            let got = prm.multi_mul(&terms);
            let mut expect = G1Affine::infinity();
            for (k, point) in &terms {
                expect = prm.add(&expect, &prm.mul(k, point));
            }
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn fixed_base_comb_matches_generic() {
        let prm = params();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let k = prm.random_scalar(&mut rng);
            assert_eq!(prm.mul_generator(&k), prm.mul_generator_generic(&k));
        }
        // Edge scalars.
        assert!(prm.mul_generator(&BigUint::zero()).is_infinity());
        assert_eq!(prm.mul_generator(&BigUint::one()), *prm.generator());
        // Scalars ≥ r reduce mod r (generator has order r).
        let big_k = prm.order() + &BigUint::from(5u64);
        assert_eq!(
            prm.mul_generator(&big_k),
            prm.mul_generator(&BigUint::from(5u64))
        );
        // r·P = O.
        assert!(prm.mul_generator(prm.order()).is_infinity());
    }

    #[test]
    fn prepared_pairing_matches_fresh() {
        let prm = params();
        let mut rng = StdRng::seed_from_u64(7);
        let g = prm.generator().clone();
        let prep_g = prm.prepare_g1(&g);
        for _ in 0..5 {
            let q = prm.mul_generator(&prm.random_scalar(&mut rng));
            assert_eq!(prm.pairing_prepared(&prep_g, &q), prm.pairing(&g, &q));
        }
        // Multi-pairing with mixed prepared points, including the
        // verification-equation shape ê(−P, σ)·ê(R, H(m)).
        let a = prm.mul_generator(&prm.random_scalar(&mut rng));
        let b = prm.mul_generator(&prm.random_scalar(&mut rng));
        let neg_g = prm.neg(&g);
        let prep_neg = prm.prepare_g1(&neg_g);
        let prep_a = prm.prepare_g1(&a);
        let fresh = prm.multi_pairing(&[(&neg_g, &b), (&a, &b)]);
        let prepared = prm.multi_pairing_prepared(&[(&prep_neg, &b), (&prep_a, &b)]);
        assert_eq!(fresh, prepared);
    }

    #[test]
    fn sub_and_neg() {
        let prm = params();
        let g = prm.generator().clone();
        let two_g = prm.add(&g, &g);
        assert_eq!(prm.sub(&two_g, &g), g);
        assert!(prm.sub(&g, &g).is_infinity());
        assert!(prm.add(&g, &prm.neg(&g)).is_infinity());
    }
}
