//! Width dispatch from the bigint-backed [`FpCtx`] onto the
//! fixed-width Montgomery backend in `sempair-field`.
//!
//! Both backends use `R = 2^{64k}` for a `k`-limb modulus, so
//! Montgomery-form limbs move between them with a plain copy — no
//! arithmetic. Moduli wider than eight limbs have no fixed context and
//! every caller falls back to the bigint reference path; the paper's
//! 512-bit prime is exactly eight limbs.
//!
//! Scalar limbs copied into this module transit through
//! [`SecretLimbs`], which zeroizes on drop — window tables built from
//! them inside the kernels hold only public curve points.

use crate::curve::G1Affine;
use crate::fp::Fp;
use crate::fp2::Fp2;
use sempair_bigint::{BigUint, MontElem};
use sempair_field::curve as fcurve;
use sempair_field::ext2::{self, Ext2};
use sempair_field::miller as fmiller;
use sempair_field::{FpW, MontCtx, SecretLimbs};

/// A fixed-width Montgomery context at each supported limb width.
#[derive(Clone, Debug)]
pub(crate) enum FixedCtx {
    W1(MontCtx<1>),
    W2(MontCtx<2>),
    W3(MontCtx<3>),
    W4(MontCtx<4>),
    W5(MontCtx<5>),
    W6(MontCtx<6>),
    W7(MontCtx<7>),
    W8(MontCtx<8>),
}

/// Cached Miller-loop line coefficients in fixed-width form, one
/// variant per context width (see [`crate::PreparedG1`]).
#[derive(Clone, Debug)]
pub(crate) enum FixedSteps {
    W1(Vec<fmiller::Line<FpW<1>>>),
    W2(Vec<fmiller::Line<FpW<2>>>),
    W3(Vec<fmiller::Line<FpW<3>>>),
    W4(Vec<fmiller::Line<FpW<4>>>),
    W5(Vec<fmiller::Line<FpW<5>>>),
    W6(Vec<fmiller::Line<FpW<6>>>),
    W7(Vec<fmiller::Line<FpW<7>>>),
    W8(Vec<fmiller::Line<FpW<8>>>),
}

/// Dispatches `$go::<N>(ctx, args…)` over the context width. `$go`
/// must be a function generic over `const N: usize` whose first
/// parameter is `&MontCtx<N>`.
macro_rules! with_width {
    ($fx:expr, $go:ident ( $($arg:expr),* $(,)? )) => {
        match $fx {
            FixedCtx::W1(f) => $go::<1>(f, $($arg),*),
            FixedCtx::W2(f) => $go::<2>(f, $($arg),*),
            FixedCtx::W3(f) => $go::<3>(f, $($arg),*),
            FixedCtx::W4(f) => $go::<4>(f, $($arg),*),
            FixedCtx::W5(f) => $go::<5>(f, $($arg),*),
            FixedCtx::W6(f) => $go::<6>(f, $($arg),*),
            FixedCtx::W7(f) => $go::<7>(f, $($arg),*),
            FixedCtx::W8(f) => $go::<8>(f, $($arg),*),
        }
    };
}

/// Like [`with_width!`] but pairs the context with width-matched
/// prepared steps; evaluates to `None` on a width mismatch (prepared
/// point from a different parameter set — callers fall back to the
/// reference path, which computes the same safely-garbage value the
/// old code did).
macro_rules! with_width_steps {
    ($fx:expr, $st:expr, $go:ident ( $($arg:expr),* $(,)? )) => {
        match ($fx, $st) {
            (FixedCtx::W1(f), FixedSteps::W1(s)) => Some($go::<1>(f, s, $($arg),*)),
            (FixedCtx::W2(f), FixedSteps::W2(s)) => Some($go::<2>(f, s, $($arg),*)),
            (FixedCtx::W3(f), FixedSteps::W3(s)) => Some($go::<3>(f, s, $($arg),*)),
            (FixedCtx::W4(f), FixedSteps::W4(s)) => Some($go::<4>(f, s, $($arg),*)),
            (FixedCtx::W5(f), FixedSteps::W5(s)) => Some($go::<5>(f, s, $($arg),*)),
            (FixedCtx::W6(f), FixedSteps::W6(s)) => Some($go::<6>(f, s, $($arg),*)),
            (FixedCtx::W7(f), FixedSteps::W7(s)) => Some($go::<7>(f, s, $($arg),*)),
            (FixedCtx::W8(f), FixedSteps::W8(s)) => Some($go::<8>(f, s, $($arg),*)),
            _ => None,
        }
    };
}

impl FixedCtx {
    /// Builds the fixed context for a modulus of 1–8 limbs, or `None`
    /// beyond that (bigint-only operation).
    pub(crate) fn from_modulus(p: &BigUint) -> Option<Self> {
        let limbs = p.limbs();
        match limbs.len() {
            1 => MontCtx::<1>::from_limbs(limbs).map(FixedCtx::W1),
            2 => MontCtx::<2>::from_limbs(limbs).map(FixedCtx::W2),
            3 => MontCtx::<3>::from_limbs(limbs).map(FixedCtx::W3),
            4 => MontCtx::<4>::from_limbs(limbs).map(FixedCtx::W4),
            5 => MontCtx::<5>::from_limbs(limbs).map(FixedCtx::W5),
            6 => MontCtx::<6>::from_limbs(limbs).map(FixedCtx::W6),
            7 => MontCtx::<7>::from_limbs(limbs).map(FixedCtx::W7),
            8 => MontCtx::<8>::from_limbs(limbs).map(FixedCtx::W8),
            _ => None,
        }
    }

    /// The context's limb width.
    pub(crate) fn width(&self) -> usize {
        match self {
            FixedCtx::W1(_) => 1,
            FixedCtx::W2(_) => 2,
            FixedCtx::W3(_) => 3,
            FixedCtx::W4(_) => 4,
            FixedCtx::W5(_) => 5,
            FixedCtx::W6(_) => 6,
            FixedCtx::W7(_) => 7,
            FixedCtx::W8(_) => 8,
        }
    }

    /// `true` iff `k`'s limbs fit this width (scalars wider than the
    /// modulus take the bigint path).
    pub(crate) fn fits_scalar(&self, k: &BigUint) -> bool {
        k.limbs().len() <= self.width()
    }
}

// --- element conversions (Montgomery-form limb copies) -------------------

fn to_fixed<const N: usize>(a: &Fp) -> FpW<N> {
    let src = a.0.limbs();
    debug_assert_eq!(src.len(), N, "element width matches context width");
    let mut out = [0u64; N];
    out.copy_from_slice(src);
    FpW(out)
}

fn from_fixed<const N: usize>(a: &FpW<N>) -> Fp {
    Fp(MontElem::from_limbs(a.limbs().to_vec()))
}

fn point_to_fixed<const N: usize>(p: &G1Affine) -> fcurve::Affine<FpW<N>> {
    p.coordinates().map(|(x, y)| (to_fixed(x), to_fixed(y)))
}

fn point_from_fixed<const N: usize>(p: &fcurve::Affine<FpW<N>>) -> G1Affine {
    match p {
        None => G1Affine::infinity(),
        Some((x, y)) => G1Affine::from_xy_unchecked(from_fixed(x), from_fixed(y)),
    }
}

fn fp2_to_fixed<const N: usize>(a: &Fp2) -> Ext2<FpW<N>> {
    Ext2 {
        c0: to_fixed(&a.c0),
        c1: to_fixed(&a.c1),
    }
}

fn fp2_from_fixed<const N: usize>(a: &Ext2<FpW<N>>) -> Fp2 {
    Fp2 {
        c0: from_fixed(&a.c0),
        c1: from_fixed(&a.c1),
    }
}

fn as_ref<E>(p: &fcurve::Affine<E>) -> fcurve::AffineRef<'_, E> {
    p.as_ref().map(|(x, y)| (x, y))
}

// --- base/extension field dispatch ---------------------------------------

/// `a^e` through the fixed backend.
pub(crate) fn fp_pow(fx: &FixedCtx, a: &Fp, e: &BigUint) -> Fp {
    fn go<const N: usize>(f: &MontCtx<N>, a: &Fp, e: &BigUint) -> Fp {
        from_fixed(&f.pow(&to_fixed(a), e.limbs()))
    }
    with_width!(fx, go(a, e))
}

/// `a⁻¹` through the fixed backend (binary GCD on raw limbs).
pub(crate) fn fp_inv(fx: &FixedCtx, a: &Fp) -> Option<Fp> {
    fn go<const N: usize>(f: &MontCtx<N>, a: &Fp) -> Option<Fp> {
        f.inv(&to_fixed(a)).map(|v| from_fixed(&v))
    }
    with_width!(fx, go(a))
}

/// `a^e` in `F_p²` through the fixed backend (lazy-reduced tower).
pub(crate) fn fp2_pow(fx: &FixedCtx, a: &Fp2, e: &BigUint) -> Fp2 {
    fn go<const N: usize>(f: &MontCtx<N>, a: &Fp2, e: &BigUint) -> Fp2 {
        fp2_from_fixed(&ext2::pow(f, &fp2_to_fixed(a), e.limbs()))
    }
    with_width!(fx, go(a, e))
}

// --- curve dispatch -------------------------------------------------------

/// Windowed scalar multiplication `k·P`. Caller guarantees
/// `fx.fits_scalar(k)`.
pub(crate) fn mul(fx: &FixedCtx, k: &BigUint, p: &G1Affine) -> G1Affine {
    fn go<const N: usize>(f: &MontCtx<N>, k: &BigUint, p: &G1Affine) -> G1Affine {
        let k = SecretLimbs::<N>::from_slice(k.limbs());
        let pf = point_to_fixed::<N>(p);
        point_from_fixed(&fcurve::scalar_mul(f, k.limbs(), as_ref(&pf)))
    }
    with_width!(fx, go(k, p))
}

/// Pippenger multi-scalar multiplication `Σ kᵢ·Pᵢ`. Caller guarantees
/// every scalar fits.
pub(crate) fn multi_mul(fx: &FixedCtx, terms: &[(BigUint, G1Affine)]) -> G1Affine {
    fn go<const N: usize>(f: &MontCtx<N>, terms: &[(BigUint, G1Affine)]) -> G1Affine {
        let scalars: Vec<SecretLimbs<N>> = terms
            .iter()
            .map(|(k, _)| SecretLimbs::from_slice(k.limbs()))
            .collect();
        let points: Vec<fcurve::Affine<FpW<N>>> =
            terms.iter().map(|(_, p)| point_to_fixed(p)).collect();
        let refs: Vec<(&[u64], fcurve::AffineRef<'_, FpW<N>>)> = scalars
            .iter()
            .zip(points.iter())
            .map(|(k, p)| (&k.limbs()[..], as_ref(p)))
            .collect();
        point_from_fixed(&fcurve::multi_scalar_mul(f, &refs))
    }
    with_width!(fx, go(terms))
}

/// Fixed-base comb for the generator: one digit-selected mixed
/// addition per 4-bit window of `k`, all arithmetic fixed-width. The
/// table rows hold `d·2^{4i}·P` as bigint points; only the single
/// entry each row's digit selects is converted (a limb copy).
pub(crate) fn comb_mul(fx: &FixedCtx, table: &[Vec<G1Affine>], k: &BigUint) -> G1Affine {
    fn go<const N: usize>(f: &MontCtx<N>, table: &[Vec<G1Affine>], k: &BigUint) -> G1Affine {
        let k = SecretLimbs::<N>::from_slice(k.limbs());
        let mut acc = fcurve::jp_infinity(f);
        for (i, row) in table.iter().enumerate() {
            let mut digit = 0usize;
            for b in 0..4 {
                if sempair_field::limb::bit(k.limbs(), 4 * i + b) {
                    digit |= 1 << b;
                }
            }
            if digit != 0 {
                let entry = point_to_fixed::<N>(&row[digit]);
                acc = fcurve::jp_add_affine(f, &acc, as_ref(&entry));
            }
        }
        point_from_fixed(&fcurve::jp_to_affine(f, &acc))
    }
    with_width!(fx, go(table, k))
}

// --- pairing dispatch -----------------------------------------------------

/// Full Tate pairing (Miller loop + final exponentiation) through the
/// fixed backend. `p`, `q` must be non-infinity (callers guard).
pub(crate) fn tate(
    fx: &FixedCtx,
    r: &BigUint,
    cofactor: &BigUint,
    p: &G1Affine,
    q: &G1Affine,
    affine_loop: bool,
) -> Fp2 {
    fn go<const N: usize>(
        f: &MontCtx<N>,
        r: &BigUint,
        cofactor: &BigUint,
        p: &G1Affine,
        q: &G1Affine,
        affine_loop: bool,
    ) -> Fp2 {
        let pf = point_to_fixed::<N>(p).expect("non-infinity P");
        let qf = point_to_fixed::<N>(q).expect("non-infinity Q");
        let m = if affine_loop {
            fmiller::miller_affine(f, r.limbs(), (&pf.0, &pf.1), (&qf.0, &qf.1))
        } else {
            fmiller::miller_projective(f, r.limbs(), (&pf.0, &pf.1), (&qf.0, &qf.1))
        };
        fp2_from_fixed(&fmiller::final_exp(f, cofactor.limbs(), &m))
    }
    with_width!(fx, go(r, cofactor, p, q, affine_loop))
}

/// Product of pairings with one shared Miller loop and one final
/// exponentiation.
pub(crate) fn multi_tate(
    fx: &FixedCtx,
    r: &BigUint,
    cofactor: &BigUint,
    pairs: &[(&G1Affine, &G1Affine)],
) -> Fp2 {
    fn go<const N: usize>(
        f: &MontCtx<N>,
        r: &BigUint,
        cofactor: &BigUint,
        pairs: &[(&G1Affine, &G1Affine)],
    ) -> Fp2 {
        let converted: Vec<(fcurve::Affine<FpW<N>>, fcurve::Affine<FpW<N>>)> = pairs
            .iter()
            .map(|(p, q)| (point_to_fixed(p), point_to_fixed(q)))
            .collect();
        let live: Vec<fmiller::PairRef<'_, FpW<N>>> = converted
            .iter()
            .filter_map(|(p, q)| match (p, q) {
                (Some((px, py)), Some((qx, qy))) => Some(((px, py), (qx, qy))),
                _ => None,
            })
            .collect();
        let m = fmiller::multi_miller(f, r.limbs(), &live);
        if ext2::is_zero(f, &m) {
            // Cannot happen for valid inputs; guard as the reference.
            return fp2_from_fixed(&ext2::one(f));
        }
        fp2_from_fixed(&fmiller::final_exp(f, cofactor.limbs(), &m))
    }
    with_width!(fx, go(r, cofactor, pairs))
}

/// Walks the prepared-line chain for `p` in fixed arithmetic. `p` must
/// be non-infinity.
pub(crate) fn prepare(fx: &FixedCtx, r: &BigUint, p: &G1Affine) -> FixedSteps {
    fn go<const N: usize>(f: &MontCtx<N>, r: &BigUint, p: &G1Affine) -> Vec<fmiller::Line<FpW<N>>> {
        let pf = point_to_fixed::<N>(p).expect("non-infinity P");
        fmiller::prepare_lines(f, r.limbs(), (&pf.0, &pf.1))
    }
    match fx {
        FixedCtx::W1(f) => FixedSteps::W1(go::<1>(f, r, p)),
        FixedCtx::W2(f) => FixedSteps::W2(go::<2>(f, r, p)),
        FixedCtx::W3(f) => FixedSteps::W3(go::<3>(f, r, p)),
        FixedCtx::W4(f) => FixedSteps::W4(go::<4>(f, r, p)),
        FixedCtx::W5(f) => FixedSteps::W5(go::<5>(f, r, p)),
        FixedCtx::W6(f) => FixedSteps::W6(go::<6>(f, r, p)),
        FixedCtx::W7(f) => FixedSteps::W7(go::<7>(f, r, p)),
        FixedCtx::W8(f) => FixedSteps::W8(go::<8>(f, r, p)),
    }
}

/// Converts fixed steps into bigint-form line triples for the
/// reference replay path (one limb copy per coefficient).
pub(crate) fn steps_to_fp(steps: &FixedSteps) -> Vec<fmiller::Line<Fp>> {
    fn go<const N: usize>(steps: &[fmiller::Line<FpW<N>>]) -> Vec<fmiller::Line<Fp>> {
        steps
            .iter()
            .map(|[a, b, c]| [from_fixed(a), from_fixed(b), from_fixed(c)])
            .collect()
    }
    match steps {
        FixedSteps::W1(s) => go::<1>(s),
        FixedSteps::W2(s) => go::<2>(s),
        FixedSteps::W3(s) => go::<3>(s),
        FixedSteps::W4(s) => go::<4>(s),
        FixedSteps::W5(s) => go::<5>(s),
        FixedSteps::W6(s) => go::<6>(s),
        FixedSteps::W7(s) => go::<7>(s),
        FixedSteps::W8(s) => go::<8>(s),
    }
}

/// Prepared pairing through the fixed backend, or `None` on a width
/// mismatch. `q` must be non-infinity.
pub(crate) fn tate_prepared(
    fx: &FixedCtx,
    r: &BigUint,
    cofactor: &BigUint,
    steps: &FixedSteps,
    q: &G1Affine,
) -> Option<Fp2> {
    fn go<const N: usize>(
        f: &MontCtx<N>,
        steps: &[fmiller::Line<FpW<N>>],
        r: &BigUint,
        cofactor: &BigUint,
        q: &G1Affine,
    ) -> Fp2 {
        let qf = point_to_fixed::<N>(q).expect("non-infinity Q");
        let m = fmiller::miller_prepared(f, r.limbs(), steps, (&qf.0, &qf.1));
        fp2_from_fixed(&fmiller::final_exp(f, cofactor.limbs(), &m))
    }
    with_width_steps!(fx, steps, go(r, cofactor, q))
}

/// Prepared multi-pairing through the fixed backend, or `None` if any
/// step set's width mismatches. Pairs must be pre-filtered live
/// (non-infinity on both sides).
pub(crate) fn multi_tate_prepared(
    fx: &FixedCtx,
    r: &BigUint,
    cofactor: &BigUint,
    pairs: &[(&FixedSteps, &G1Affine)],
) -> Option<Fp2> {
    fn go<const N: usize>(
        f: &MontCtx<N>,
        step_refs: &[&[fmiller::Line<FpW<N>>]],
        pairs: &[(&FixedSteps, &G1Affine)],
        r: &BigUint,
        cofactor: &BigUint,
    ) -> Fp2 {
        let points: Vec<fcurve::Affine<FpW<N>>> =
            pairs.iter().map(|(_, q)| point_to_fixed(q)).collect();
        let live: Vec<fmiller::PreparedPairRef<'_, FpW<N>>> = step_refs
            .iter()
            .zip(points.iter())
            .map(|(s, q)| {
                let (qx, qy) = q.as_ref().expect("pre-filtered non-infinity Q");
                (*s, (qx, qy))
            })
            .collect();
        let m = fmiller::multi_miller_prepared(f, r.limbs(), &live);
        if ext2::is_zero(f, &m) {
            return fp2_from_fixed(&ext2::one(f));
        }
        fp2_from_fixed(&fmiller::final_exp(f, cofactor.limbs(), &m))
    }
    // Each arm unwraps the width-matched step variant; a mismatched
    // variant (prepared under different parameters) aborts to `None`.
    macro_rules! arm {
        ($f:ident, $variant:ident) => {{
            let mut refs = Vec::with_capacity(pairs.len());
            for (steps, _) in pairs {
                let FixedSteps::$variant(s) = steps else {
                    return None;
                };
                refs.push(s.as_slice());
            }
            Some(go($f, &refs, pairs, r, cofactor))
        }};
    }
    match fx {
        FixedCtx::W1(f) => arm!(f, W1),
        FixedCtx::W2(f) => arm!(f, W2),
        FixedCtx::W3(f) => arm!(f, W3),
        FixedCtx::W4(f) => arm!(f, W4),
        FixedCtx::W5(f) => arm!(f, W5),
        FixedCtx::W6(f) => arm!(f, W6),
        FixedCtx::W7(f) => arm!(f, W7),
        FixedCtx::W8(f) => arm!(f, W8),
    }
}
