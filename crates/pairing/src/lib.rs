//! # sempair-pairing
//!
//! A from-scratch implementation of the pairing substrate the paper
//! builds on (§3.1): a supersingular elliptic curve
//!
//! ```text
//! E : y² = x³ + x   over F_p,   p ≡ 3 (mod 4)
//! ```
//!
//! which has exactly `p + 1` points, together with the **Tate pairing**
//! evaluated through the distortion map `φ(x, y) = (−x, iy)` (where
//! `i² = −1` spans `F_p² = F_p[i]`). The composition
//!
//! ```text
//! ê(P, Q) = t(P, φ(Q))^((p²−1)/r)  :  G1 × G1 → G2 ⊂ F_p²*
//! ```
//!
//! is the *modified* pairing of Boneh–Franklin: bilinear, symmetric and
//! non-degenerate (`ê(P, P) ≠ 1`), matching the `ê : G1 × G1 → G2`
//! notation used throughout the paper.
//!
//! Parameters are generated, not hardcoded: [`CurveParams::generate`]
//! searches for `p = c·r − 1 ≡ 3 (mod 4)` with `r` a prime subgroup
//! order, which is how 2003-era systems were instantiated (512-bit `p`,
//! 160-bit `r`). [`CurveParams::paper_default`] ships a pre-generated
//! parameter set of exactly that size.
//!
//! ```
//! use sempair_pairing::CurveParams;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = CurveParams::generate(&mut rng, 128, 64).unwrap();
//! let g = params.generator().clone();
//! let a = params.random_scalar(&mut rng);
//! let b = params.random_scalar(&mut rng);
//! // Bilinearity: ê(aP, bP) = ê(P, P)^(ab)
//! let lhs = params.pairing(&params.mul(&a, &g), &params.mul(&b, &g));
//! let ab = sempair_bigint::modular::mod_mul(&a, &b, params.order());
//! let rhs = params.gt_pow(&params.pairing(&g, &g), &ab);
//! assert_eq!(lhs, rhs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod fixed;
mod fp;
mod pairing_impl;
mod params;

pub mod fp2;

pub use curve::G1Affine;
pub use fp::{Fp, FpCtx};
pub use fp2::Fp2;
pub use pairing_impl::{Gt, MillerStrategy, PreparedG1};
pub use params::{CurveParams, CurveParamsSpec, ParamsError};

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by point decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The byte string has the wrong length for this parameter set.
    BadLength {
        /// Expected byte count.
        expected: usize,
        /// Received byte count.
        got: usize,
    },
    /// The flag byte is not one of the defined values.
    BadFlag(u8),
    /// The x-coordinate is not on the curve (x³ + x is a non-residue).
    NotOnCurve,
    /// The encoded coordinate is not reduced modulo `p`.
    NotReduced,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadLength { expected, got } => {
                write!(f, "expected {expected} bytes, got {got}")
            }
            DecodeError::BadFlag(b) => write!(f, "invalid point-encoding flag byte {b:#04x}"),
            DecodeError::NotOnCurve => write!(f, "x-coordinate is not on the curve"),
            DecodeError::NotReduced => write!(f, "coordinate is not reduced modulo p"),
        }
    }
}

impl StdError for DecodeError {}
