//! The quadratic extension `F_p² = F_p[i] / (i² + 1)`.
//!
//! Because `p ≡ 3 (mod 4)`, `−1` is a non-residue and `i² = −1` yields a
//! field. Elements are `c0 + c1·i`. The Frobenius endomorphism
//! `x ↦ x^p` is plain conjugation, which makes the Tate final
//! exponentiation cheap (see [`crate::CurveParams::pairing`]).

use crate::fp::{Fp, FpCtx};
use sempair_bigint::BigUint;

/// An element `c0 + c1·i` of `F_p²`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Fp2 {
    /// Real component.
    pub c0: Fp,
    /// Imaginary component (coefficient of `i`).
    pub c1: Fp,
}

impl Fp2 {
    /// `true` iff both components are zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }
}

/// The zero element.
pub fn zero(f: &FpCtx) -> Fp2 {
    Fp2 {
        c0: f.zero(),
        c1: f.zero(),
    }
}

/// The one element.
pub fn one(f: &FpCtx) -> Fp2 {
    Fp2 {
        c0: f.one(),
        c1: f.zero(),
    }
}

/// Embeds a base-field element as `a + 0·i`.
pub fn from_fp(f: &FpCtx, a: Fp) -> Fp2 {
    Fp2 {
        c0: a,
        c1: f.zero(),
    }
}

/// `true` iff the element equals one.
pub fn is_one(f: &FpCtx, a: &Fp2) -> bool {
    a.c1.is_zero() && a.c0 == f.one()
}

/// `a + b`.
pub fn add(f: &FpCtx, a: &Fp2, b: &Fp2) -> Fp2 {
    Fp2 {
        c0: f.add(&a.c0, &b.c0),
        c1: f.add(&a.c1, &b.c1),
    }
}

/// `a - b`.
pub fn sub(f: &FpCtx, a: &Fp2, b: &Fp2) -> Fp2 {
    Fp2 {
        c0: f.sub(&a.c0, &b.c0),
        c1: f.sub(&a.c1, &b.c1),
    }
}

/// `-a`.
pub fn neg(f: &FpCtx, a: &Fp2) -> Fp2 {
    Fp2 {
        c0: f.neg(&a.c0),
        c1: f.neg(&a.c1),
    }
}

/// `a * b` (Karatsuba: 3 base-field multiplications).
pub fn mul(f: &FpCtx, a: &Fp2, b: &Fp2) -> Fp2 {
    let v0 = f.mul(&a.c0, &b.c0);
    let v1 = f.mul(&a.c1, &b.c1);
    let s = f.mul(&f.add(&a.c0, &a.c1), &f.add(&b.c0, &b.c1));
    Fp2 {
        c0: f.sub(&v0, &v1),
        c1: f.sub(&f.sub(&s, &v0), &v1),
    }
}

/// `a²` (complex squaring: 2 base-field multiplications).
pub fn sqr(f: &FpCtx, a: &Fp2) -> Fp2 {
    // (c0 + c1 i)² = (c0+c1)(c0−c1) + 2 c0 c1 i
    let t0 = f.mul(&f.add(&a.c0, &a.c1), &f.sub(&a.c0, &a.c1));
    let t1 = f.double(&f.mul(&a.c0, &a.c1));
    Fp2 { c0: t0, c1: t1 }
}

/// Multiplies by a base-field scalar.
pub fn mul_fp(f: &FpCtx, a: &Fp2, s: &Fp) -> Fp2 {
    Fp2 {
        c0: f.mul(&a.c0, s),
        c1: f.mul(&a.c1, s),
    }
}

/// Conjugation `c0 − c1·i`, which equals the Frobenius `a^p`.
pub fn conj(f: &FpCtx, a: &Fp2) -> Fp2 {
    Fp2 {
        c0: a.c0.clone(),
        c1: f.neg(&a.c1),
    }
}

/// The norm `a · ā = c0² + c1² ∈ F_p`.
pub fn norm(f: &FpCtx, a: &Fp2) -> Fp {
    f.add(&f.sqr(&a.c0), &f.sqr(&a.c1))
}

/// `a⁻¹`, or `None` for zero: `ā / (c0² + c1²)`.
pub fn inv(f: &FpCtx, a: &Fp2) -> Option<Fp2> {
    let n = norm(f, a);
    let n_inv = f.inv(&n)?;
    Some(Fp2 {
        c0: f.mul(&a.c0, &n_inv),
        c1: f.neg(&f.mul(&a.c1, &n_inv)),
    })
}

/// `a^e` by square-and-multiply.
pub fn pow(f: &FpCtx, a: &Fp2, e: &BigUint) -> Fp2 {
    if let Some(fx) = f.fixed() {
        return crate::fixed::fp2_pow(fx, a, e);
    }
    let mut acc = one(f);
    for i in (0..e.bits()).rev() {
        acc = sqr(f, &acc);
        if e.bit(i) {
            acc = mul(f, &acc, a);
        }
    }
    acc
}

/// Fixed-width canonical encoding: `c0 || c1`, each `byte_len` wide.
pub fn to_bytes(f: &FpCtx, a: &Fp2) -> Vec<u8> {
    let mut out = f.to_bytes(&a.c0);
    out.extend_from_slice(&f.to_bytes(&a.c1));
    out
}

/// Decodes [`to_bytes`] output.
///
/// # Errors
///
/// Returns [`crate::DecodeError`] on wrong length or unreduced limbs.
pub fn from_bytes(f: &FpCtx, bytes: &[u8]) -> Result<Fp2, crate::DecodeError> {
    let w = f.byte_len();
    if bytes.len() != 2 * w {
        return Err(crate::DecodeError::BadLength {
            expected: 2 * w,
            got: bytes.len(),
        });
    }
    let (lo, hi) = bytes.split_at(w);
    let c0 = BigUint::from_be_bytes(lo);
    let c1 = BigUint::from_be_bytes(hi);
    if &c0 >= f.modulus() || &c1 >= f.modulus() {
        return Err(crate::DecodeError::NotReduced);
    }
    Ok(Fp2 {
        c0: f.from_uint(&c0),
        c1: f.from_uint(&c1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FpCtx {
        let p = &(BigUint::one() << 127) - &BigUint::one();
        FpCtx::new(&p).unwrap()
    }

    fn elem(f: &FpCtx, a: u64, b: u64) -> Fp2 {
        Fp2 {
            c0: f.from_u64(a),
            c1: f.from_u64(b),
        }
    }

    #[test]
    fn i_squared_is_minus_one() {
        let f = ctx();
        let i = elem(&f, 0, 1);
        let i2 = sqr(&f, &i);
        assert_eq!(
            i2,
            Fp2 {
                c0: f.neg(&f.one()),
                c1: f.zero()
            }
        );
        assert_eq!(mul(&f, &i, &i), i2);
    }

    #[test]
    fn ring_axioms() {
        let f = ctx();
        let a = elem(&f, 3, 5);
        let b = elem(&f, 7, 11);
        let c = elem(&f, 13, 17);
        assert_eq!(mul(&f, &a, &b), mul(&f, &b, &a));
        assert_eq!(
            mul(&f, &a, &add(&f, &b, &c)),
            add(&f, &mul(&f, &a, &b), &mul(&f, &a, &c))
        );
        assert_eq!(add(&f, &a, &neg(&f, &a)), zero(&f));
        assert_eq!(mul(&f, &a, &one(&f)), a);
        assert_eq!(sqr(&f, &a), mul(&f, &a, &a));
    }

    #[test]
    fn inversion() {
        let f = ctx();
        let a = elem(&f, 1234, 5678);
        let a_inv = inv(&f, &a).unwrap();
        assert!(is_one(&f, &mul(&f, &a, &a_inv)));
        assert!(inv(&f, &zero(&f)).is_none());
        // Pure-imaginary and pure-real elements invert too.
        let i = elem(&f, 0, 1);
        assert!(is_one(&f, &mul(&f, &i, &inv(&f, &i).unwrap())));
    }

    #[test]
    fn conjugation_is_frobenius() {
        let f = ctx();
        let a = elem(&f, 31337, 999);
        assert_eq!(pow(&f, &a, f.modulus()), conj(&f, &a));
        // Norm = a * conj(a) lands in Fp.
        let n = mul(&f, &a, &conj(&f, &a));
        assert!(n.c1.is_zero());
        assert_eq!(n.c0, norm(&f, &a));
    }

    #[test]
    fn multiplicative_group_order() {
        let f = ctx();
        let a = elem(&f, 42, 43);
        // a^(p²−1) = 1.
        let p = f.modulus();
        let e = &(p * p) - &BigUint::one();
        assert!(is_one(&f, &pow(&f, &a, &e)));
    }

    #[test]
    fn pow_edge_cases() {
        let f = ctx();
        let a = elem(&f, 9, 4);
        assert!(is_one(&f, &pow(&f, &a, &BigUint::zero())));
        assert_eq!(pow(&f, &a, &BigUint::one()), a);
        assert_eq!(pow(&f, &a, &BigUint::two()), sqr(&f, &a));
    }

    #[test]
    fn byte_roundtrip() {
        let f = ctx();
        let a = elem(&f, 0xdeadbeef, 0xcafebabe);
        let bytes = to_bytes(&f, &a);
        assert_eq!(bytes.len(), 2 * f.byte_len());
        assert_eq!(from_bytes(&f, &bytes).unwrap(), a);
        assert!(from_bytes(&f, &bytes[1..]).is_err());
        // Unreduced encoding rejected.
        let mut bad = vec![0xffu8; 2 * f.byte_len()];
        bad[0] = 0xff;
        assert_eq!(from_bytes(&f, &bad), Err(crate::DecodeError::NotReduced));
    }
}
