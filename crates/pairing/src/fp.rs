//! The base field `F_p` with a Montgomery-backed context.

use crate::fixed::{self, FixedCtx};
use sempair_bigint::{modular, BigUint, Error as BigintError, MontElem, Montgomery};

/// An element of `F_p`, stored in Montgomery form.
///
/// Elements carry no back-pointer to their field; all operations go
/// through the [`FpCtx`] that created them. Mixing elements from
/// different contexts is a logic error (caught by limb-length
/// `debug_assert!`s in the underlying arithmetic).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Fp(pub(crate) MontElem);

impl Fp {
    /// `true` iff this is the zero element.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Constant-time equality: folds all limb differences into one
    /// accumulator instead of the derived `PartialEq`'s early-exit
    /// compare. Use this whenever either side is secret-derived (key
    /// material, half-signatures, blinding factors).
    pub fn ct_eq(&self, other: &Self) -> bool {
        self.0.ct_eq(&other.0)
    }

    /// Securely erases the element in place (volatile limb zeroing;
    /// the result is the zero element of the same context).
    pub fn zeroize(&mut self) {
        self.0.zeroize();
    }
}

/// Arithmetic context for `F_p` (`p` an odd prime, `p ≡ 3 (mod 4)` for
/// the curves in this crate, although the context itself only requires
/// oddness).
#[derive(Clone, Debug)]
pub struct FpCtx {
    mont: Montgomery,
    /// `(p + 1) / 4`, the square-root exponent for `p ≡ 3 (mod 4)`.
    sqrt_exp: Option<BigUint>,
    /// Fixed-width backend for moduli of ≤ 8 limbs. Montgomery forms
    /// are limb-compatible between the two backends (both use
    /// `R = 2^(64·limbs)`), so elements cross over by limb copy.
    fixed: Option<FixedCtx>,
}

impl FpCtx {
    /// Creates a field context for the odd prime `p`.
    ///
    /// # Errors
    ///
    /// Returns an error if `p` is even or `p <= 1`. Primality is the
    /// caller's responsibility.
    pub fn new(p: &BigUint) -> Result<Self, BigintError> {
        let mont = Montgomery::new(p)?;
        let sqrt_exp = if p.limbs()[0] & 3 == 3 {
            Some(&(p + &BigUint::one()) >> 2)
        } else {
            None
        };
        let fixed = FixedCtx::from_modulus(p);
        Ok(FpCtx {
            mont,
            sqrt_exp,
            fixed,
        })
    }

    /// The fixed-width backend, if the modulus fits one.
    pub(crate) fn fixed(&self) -> Option<&FixedCtx> {
        self.fixed.as_ref()
    }

    /// `true` iff the fixed-width backend is active for this modulus.
    /// Exposed for differential tests and benchmarks.
    #[doc(hidden)]
    pub fn has_fixed_backend(&self) -> bool {
        self.fixed.is_some()
    }

    /// Disables the fixed-width backend so every operation runs on the
    /// variable-width reference path. Test-only hook for differential
    /// checks; not part of the public API contract.
    #[doc(hidden)]
    pub fn force_bigint_backend(&mut self) {
        self.fixed = None;
    }

    /// The field characteristic `p`.
    pub fn modulus(&self) -> &BigUint {
        self.mont.modulus()
    }

    /// Canonical byte length of a serialized field element.
    pub fn byte_len(&self) -> usize {
        self.modulus().bits().div_ceil(8)
    }

    /// The additive identity.
    pub fn zero(&self) -> Fp {
        Fp(self.mont.zero())
    }

    /// The multiplicative identity.
    pub fn one(&self) -> Fp {
        Fp(self.mont.one())
    }

    /// Embeds an integer (reduced mod `p`).
    pub fn from_uint(&self, v: &BigUint) -> Fp {
        Fp(self.mont.to_mont(v))
    }

    /// Embeds a small integer.
    pub fn from_u64(&self, v: u64) -> Fp {
        self.from_uint(&BigUint::from(v))
    }

    /// Canonical integer representative in `[0, p)`.
    pub fn to_uint(&self, a: &Fp) -> BigUint {
        self.mont.from_mont(&a.0)
    }

    /// `a + b`.
    pub fn add(&self, a: &Fp, b: &Fp) -> Fp {
        Fp(self.mont.add(&a.0, &b.0))
    }

    /// `a - b`.
    pub fn sub(&self, a: &Fp, b: &Fp) -> Fp {
        Fp(self.mont.sub(&a.0, &b.0))
    }

    /// `a * b`.
    pub fn mul(&self, a: &Fp, b: &Fp) -> Fp {
        Fp(self.mont.mul(&a.0, &b.0))
    }

    /// `a²`.
    pub fn sqr(&self, a: &Fp) -> Fp {
        Fp(self.mont.sqr(&a.0))
    }

    /// `2a`.
    pub fn double(&self, a: &Fp) -> Fp {
        Fp(self.mont.double(&a.0))
    }

    /// `-a`.
    pub fn neg(&self, a: &Fp) -> Fp {
        Fp(self.mont.neg(&a.0))
    }

    /// `a^e`.
    pub fn pow(&self, a: &Fp, e: &BigUint) -> Fp {
        if let Some(fx) = self.fixed() {
            return fixed::fp_pow(fx, a, e);
        }
        Fp(self.mont.pow(&a.0, e))
    }

    /// `a⁻¹`, or `None` for zero.
    pub fn inv(&self, a: &Fp) -> Option<Fp> {
        if let Some(fx) = self.fixed() {
            return fixed::fp_inv(fx, a);
        }
        self.mont.inv(&a.0).ok().map(Fp)
    }

    /// `true` iff `a` is a quadratic residue (zero counts as a square).
    pub fn is_square(&self, a: &Fp) -> bool {
        let canonical = self.to_uint(a);
        if canonical.is_zero() {
            return true;
        }
        modular::jacobi(&canonical, self.modulus()) == 1
    }

    /// A square root of `a`, if one exists.
    ///
    /// For `p ≡ 3 (mod 4)` this is a single exponentiation; otherwise it
    /// falls back to Tonelli–Shanks on the canonical representative.
    /// The returned root is the one with even canonical representative
    /// parity being unspecified — callers that need a canonical choice
    /// should compare with [`FpCtx::neg`].
    pub fn sqrt(&self, a: &Fp) -> Option<Fp> {
        if a.is_zero() {
            return Some(self.zero());
        }
        if let Some(exp) = &self.sqrt_exp {
            let r = self.pow(a, exp);
            if self.sqr(&r) == *a {
                return Some(r);
            }
            return None;
        }
        let canonical = self.to_uint(a);
        modular::sqrt_mod(&canonical, self.modulus())
            .ok()
            .map(|r| self.from_uint(&r))
    }

    /// Canonical big-endian fixed-width encoding.
    pub fn to_bytes(&self, a: &Fp) -> Vec<u8> {
        self.to_uint(a).to_be_bytes_padded(self.byte_len())
    }

    /// Parity (lsb) of the canonical representative — used as the sign
    /// bit in compressed point encodings.
    pub fn parity(&self, a: &Fp) -> bool {
        self.to_uint(a).is_odd()
    }
}

/// The bigint-backed context runs the same generic curve and Miller
/// kernels as the fixed-width backend; this impl is the reference
/// engine those kernels fall back to when the modulus is wider than
/// eight limbs (or the fixed backend is disabled for testing).
///
/// The `ext2_mul`/`ext2_sqr` defaults are kept: they are the exact
/// Karatsuba/complex formulas both backends agree on.
impl sempair_field::FieldOps for FpCtx {
    type Elem = Fp;

    fn zero(&self) -> Fp {
        FpCtx::zero(self)
    }
    fn one(&self) -> Fp {
        FpCtx::one(self)
    }
    fn is_zero(&self, a: &Fp) -> bool {
        a.is_zero()
    }
    fn equals(&self, a: &Fp, b: &Fp) -> bool {
        a == b
    }
    fn add(&self, a: &Fp, b: &Fp) -> Fp {
        FpCtx::add(self, a, b)
    }
    fn sub(&self, a: &Fp, b: &Fp) -> Fp {
        FpCtx::sub(self, a, b)
    }
    fn neg(&self, a: &Fp) -> Fp {
        FpCtx::neg(self, a)
    }
    fn double(&self, a: &Fp) -> Fp {
        FpCtx::double(self, a)
    }
    fn mul(&self, a: &Fp, b: &Fp) -> Fp {
        FpCtx::mul(self, a, b)
    }
    fn sqr(&self, a: &Fp) -> Fp {
        FpCtx::sqr(self, a)
    }
    fn inv(&self, a: &Fp) -> Option<Fp> {
        FpCtx::inv(self, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FpCtx {
        // 2^127 - 1 is a Mersenne prime ≡ 3 (mod 4).
        let p = &(BigUint::one() << 127) - &BigUint::one();
        FpCtx::new(&p).unwrap()
    }

    #[test]
    fn field_axioms_spot_checks() {
        let f = ctx();
        let a = f.from_u64(123456789);
        let b = f.from_u64(987654321);
        assert_eq!(f.add(&a, &b), f.add(&b, &a));
        assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
        assert_eq!(f.sub(&a, &a), f.zero());
        assert_eq!(f.add(&a, &f.neg(&a)), f.zero());
        assert_eq!(f.mul(&a, &f.one()), a);
        assert_eq!(f.double(&a), f.add(&a, &a));
        assert_eq!(f.sqr(&a), f.mul(&a, &a));
    }

    #[test]
    fn inverse_and_pow() {
        let f = ctx();
        let a = f.from_u64(31337);
        let inv = f.inv(&a).unwrap();
        assert_eq!(f.mul(&a, &inv), f.one());
        assert!(f.inv(&f.zero()).is_none());
        // Fermat: a^(p-1) = 1.
        let e = f.modulus() - &BigUint::one();
        assert_eq!(f.pow(&a, &e), f.one());
    }

    #[test]
    fn sqrt_on_3mod4_prime() {
        let f = ctx();
        for v in [2u64, 3, 5, 101, 123456] {
            let a = f.from_u64(v);
            let sq = f.sqr(&a);
            assert!(f.is_square(&sq));
            let r = f.sqrt(&sq).unwrap();
            assert!(r == a || r == f.neg(&a));
        }
        assert_eq!(f.sqrt(&f.zero()), Some(f.zero()));
    }

    #[test]
    fn nonresidue_has_no_root() {
        let f = ctx();
        // Find some non-residue by scanning.
        let mut v = 2u64;
        loop {
            let a = f.from_u64(v);
            if !f.is_square(&a) {
                assert!(f.sqrt(&a).is_none());
                break;
            }
            v += 1;
        }
    }

    #[test]
    fn byte_encoding_fixed_width() {
        let f = ctx();
        let a = f.from_u64(7);
        let bytes = f.to_bytes(&a);
        assert_eq!(bytes.len(), f.byte_len());
        assert_eq!(BigUint::from_be_bytes(&bytes), BigUint::from(7u64));
    }

    #[test]
    fn parity_distinguishes_negatives() {
        let f = ctx();
        let a = f.from_u64(10);
        // p odd, so a and -a have opposite canonical parities when a != 0.
        assert_ne!(f.parity(&a), f.parity(&f.neg(&a)));
    }
}
