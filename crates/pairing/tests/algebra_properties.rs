//! Property-based tests of the algebraic structures: `F_p`, `F_p²`,
//! the curve group, and the pairing — the invariants everything above
//! them silently assumes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_bigint::{modular, BigUint};
use sempair_pairing::{fp2, CurveParams, FpCtx, G1Affine};
use std::sync::OnceLock;

/// A fixed 127-bit Mersenne prime field (p ≡ 3 mod 4).
fn field() -> &'static FpCtx {
    static F: OnceLock<FpCtx> = OnceLock::new();
    F.get_or_init(|| {
        let p = &(BigUint::one() << 127) - &BigUint::one();
        FpCtx::new(&p).unwrap()
    })
}

fn params() -> &'static CurveParams {
    static P: OnceLock<CurveParams> = OnceLock::new();
    P.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xA1);
        CurveParams::generate(&mut rng, 96, 48).unwrap()
    })
}

fn fp_elem(limbs: (u64, u64)) -> BigUint {
    BigUint::from(limbs.0 as u128 | ((limbs.1 as u128) << 64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fp_field_axioms(a in any::<(u64, u64)>(), b in any::<(u64, u64)>(), c in any::<(u64, u64)>()) {
        let f = field();
        let (a, b, c) = (
            f.from_uint(&fp_elem(a)),
            f.from_uint(&fp_elem(b)),
            f.from_uint(&fp_elem(c)),
        );
        prop_assert_eq!(f.add(&a, &b), f.add(&b, &a));
        prop_assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
        prop_assert_eq!(
            f.mul(&a, &f.add(&b, &c)),
            f.add(&f.mul(&a, &b), &f.mul(&a, &c))
        );
        prop_assert_eq!(f.add(&a, &f.neg(&a)), f.zero());
        prop_assert_eq!(f.sub(&a, &b), f.add(&a, &f.neg(&b)));
        if !a.is_zero() {
            let inv = f.inv(&a).unwrap();
            prop_assert_eq!(f.mul(&a, &inv), f.one());
        }
    }

    #[test]
    fn fp_sqrt_of_squares(a in any::<(u64, u64)>()) {
        let f = field();
        let a = f.from_uint(&fp_elem(a));
        let sq = f.sqr(&a);
        let r = f.sqrt(&sq).expect("square has a root");
        prop_assert!(r == a || r == f.neg(&a));
        prop_assert!(f.is_square(&sq));
    }

    #[test]
    fn fp2_field_axioms(
        a in any::<(u64, u64)>(), b in any::<(u64, u64)>(),
        c in any::<(u64, u64)>(), d in any::<(u64, u64)>(),
    ) {
        let f = field();
        let x = fp2::Fp2 { c0: f.from_uint(&fp_elem(a)), c1: f.from_uint(&fp_elem(b)) };
        let y = fp2::Fp2 { c0: f.from_uint(&fp_elem(c)), c1: f.from_uint(&fp_elem(d)) };
        prop_assert_eq!(fp2::mul(f, &x, &y), fp2::mul(f, &y, &x));
        prop_assert_eq!(fp2::sqr(f, &x), fp2::mul(f, &x, &x));
        prop_assert_eq!(fp2::add(f, &x, &fp2::neg(f, &x)), fp2::zero(f));
        if !x.is_zero() {
            let inv = fp2::inv(f, &x).unwrap();
            prop_assert!(fp2::is_one(f, &fp2::mul(f, &x, &inv)));
        }
        // Conjugation is multiplicative.
        prop_assert_eq!(
            fp2::conj(f, &fp2::mul(f, &x, &y)),
            fp2::mul(f, &fp2::conj(f, &x), &fp2::conj(f, &y))
        );
        // Norm is multiplicative.
        prop_assert_eq!(
            fp2::norm(f, &fp2::mul(f, &x, &y)),
            f.mul(&fp2::norm(f, &x), &fp2::norm(f, &y))
        );
    }

    #[test]
    fn group_law_properties(ka in 1u64..1 << 40, kb in 1u64..1 << 40) {
        let prm = params();
        let a = prm.mul_generator(&BigUint::from(ka));
        let b = prm.mul_generator(&BigUint::from(kb));
        // Commutativity and the homomorphism from scalars.
        prop_assert_eq!(prm.add(&a, &b), prm.add(&b, &a));
        prop_assert_eq!(
            prm.add(&a, &b),
            prm.mul_generator(&BigUint::from(ka as u128 + kb as u128))
        );
        // Inverses and identity.
        prop_assert!(prm.sub(&a, &a).is_infinity());
        prop_assert_eq!(prm.add(&a, &G1Affine::infinity()), a.clone());
        // Compression roundtrip on arbitrary points.
        let bytes = prm.point_to_bytes(&a);
        prop_assert_eq!(prm.point_from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn scalar_mul_respects_order(k in any::<u64>()) {
        let prm = params();
        let k = BigUint::from(k);
        let direct = prm.mul_generator(&k);
        let reduced = prm.mul_generator(&(&k % prm.order()));
        prop_assert_eq!(direct, reduced);
    }

    #[test]
    fn pairing_bilinear_small_scalars(a in 1u64..1000, b in 1u64..1000) {
        let prm = params();
        let g = prm.generator();
        let pa = prm.mul_generator(&BigUint::from(a));
        let pb = prm.mul_generator(&BigUint::from(b));
        let lhs = prm.pairing(&pa, &pb);
        let ab = modular::mod_mul(&BigUint::from(a), &BigUint::from(b), prm.order());
        let rhs = prm.gt_pow(&prm.pairing(g, g), &ab);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn hash_to_g1_always_in_subgroup(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let prm = params();
        let point = prm.hash_to_g1(b"prop-h1", &data);
        prop_assert!(prm.is_in_group(&point));
        prop_assert!(!point.is_infinity());
    }
}

/// Deterministic exhaustive check: `n·G` for n in `0..=order` on a tiny
/// curve walks the whole subgroup and returns to the identity.
#[test]
fn generator_orbit_closes() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    let prm = CurveParams::generate(&mut rng, 24, 8).unwrap();
    let order = prm.order().to_u64().unwrap();
    let mut seen = std::collections::HashSet::new();
    for n in 1..order {
        let point = prm.mul_generator(&BigUint::from(n));
        assert!(!point.is_infinity(), "n={n} < order must not be identity");
        let bytes = prm.point_to_bytes(&point);
        assert!(seen.insert(bytes), "n={n} revisited a point early");
    }
    assert!(prm.mul_generator(prm.order()).is_infinity());
}
