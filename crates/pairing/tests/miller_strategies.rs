//! The projective (inversion-free, subfield-scaled) Miller loop must
//! compute exactly the same reduced Tate pairing as the textbook affine
//! loop, on every input shape.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_pairing::{CurveParams, G1Affine, MillerStrategy};

fn assert_strategies_agree(prm: &CurveParams, a: &G1Affine, b: &G1Affine) {
    let affine = prm.pairing_with_strategy(a, b, MillerStrategy::Affine);
    let projective = prm.pairing_with_strategy(a, b, MillerStrategy::Projective);
    assert_eq!(affine, projective);
    assert_eq!(prm.pairing(a, b), projective, "default is projective");
}

#[test]
fn agree_on_generated_params_random_points() {
    let mut rng = StdRng::seed_from_u64(777);
    let prm = CurveParams::generate(&mut rng, 128, 64).unwrap();
    let g = prm.generator().clone();
    for _ in 0..8 {
        let a = prm.mul(&prm.random_scalar(&mut rng), &g);
        let b = prm.mul(&prm.random_scalar(&mut rng), &g);
        assert_strategies_agree(&prm, &a, &b);
    }
}

#[test]
fn agree_on_generator_and_small_multiples() {
    let prm = CurveParams::fast_insecure();
    let g = prm.generator().clone();
    for k in 1u64..6 {
        let kg = prm.mul(&k.into(), &g);
        assert_strategies_agree(&prm, &g, &kg);
        assert_strategies_agree(&prm, &kg, &g);
    }
}

#[test]
fn agree_on_negated_and_identity_inputs() {
    let prm = CurveParams::fast_insecure();
    let g = prm.generator().clone();
    assert_strategies_agree(&prm, &g, &prm.neg(&g));
    assert_strategies_agree(&prm, &prm.neg(&g), &prm.neg(&g));
    let inf = G1Affine::infinity();
    assert_strategies_agree(&prm, &inf, &g);
    assert_strategies_agree(&prm, &g, &inf);
}

#[test]
fn projective_bilinearity_on_paper_params() {
    let prm = CurveParams::paper_default();
    let g = prm.generator().clone();
    let e = prm.pairing(&g, &g);
    assert!(!prm.gt_is_one(&e));
    let g2 = prm.mul(&2u64.into(), &g);
    let g3 = prm.mul(&3u64.into(), &g);
    assert_eq!(prm.pairing(&g2, &g3), prm.gt_pow(&e, &6u64.into()));
}
