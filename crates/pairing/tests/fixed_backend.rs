//! Differential tests: the fixed-width backend must produce results
//! identical to the bigint reference on every public pairing-crate
//! operation, over both built-in parameter sets.
//!
//! Each test builds two copies of the same `CurveParams` — one with
//! the fixed backend active (the default for any modulus ≤ 8 limbs)
//! and one forced onto the bigint path — and drives both with the
//! same inputs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_pairing::{CurveParams, G1Affine, MillerStrategy};

/// Both-backend copies of a parameter set, plus a deterministic RNG.
fn both(make: fn() -> CurveParams, seed: u64) -> (CurveParams, CurveParams, StdRng) {
    let fast = make();
    assert!(
        fast.fp().has_fixed_backend(),
        "built-in params should activate the fixed backend"
    );
    let mut slow = make();
    slow.force_bigint_backend();
    assert!(!slow.fp().has_fixed_backend());
    (fast, slow, StdRng::seed_from_u64(seed))
}

fn random_points(prm: &CurveParams, rng: &mut StdRng, n: usize) -> Vec<G1Affine> {
    (0..n)
        .map(|_| prm.mul_generator(&prm.random_scalar(rng)))
        .collect()
}

#[test]
fn scalar_mul_agrees_on_fast_params() {
    let (fast, slow, mut rng) = both(CurveParams::fast_insecure, 1);
    for _ in 0..8 {
        let k = fast.random_scalar(&mut rng);
        let p = fast.mul_generator(&fast.random_scalar(&mut rng));
        assert_eq!(fast.mul(&k, &p), slow.mul(&k, &p));
        assert_eq!(fast.mul_generator(&k), slow.mul_generator_generic(&k));
    }
}

#[test]
fn scalar_mul_agrees_on_paper_params() {
    let (fast, slow, mut rng) = both(CurveParams::paper_default, 2);
    for _ in 0..3 {
        let k = fast.random_scalar(&mut rng);
        let p = fast.mul_generator(&fast.random_scalar(&mut rng));
        assert_eq!(fast.mul(&k, &p), slow.mul(&k, &p));
        assert_eq!(fast.mul_generator(&k), slow.mul_generator_generic(&k));
    }
}

#[test]
fn multi_mul_agrees() {
    let (fast, slow, mut rng) = both(CurveParams::fast_insecure, 3);
    for n in [1usize, 2, 5, 9] {
        let terms: Vec<_> = (0..n)
            .map(|_| {
                (
                    fast.random_scalar(&mut rng),
                    fast.mul_generator(&fast.random_scalar(&mut rng)),
                )
            })
            .collect();
        assert_eq!(fast.multi_mul(&terms), slow.multi_mul(&terms), "n={n}");
    }
}

#[test]
fn pairing_agrees_both_strategies() {
    let (fast, slow, mut rng) = both(CurveParams::fast_insecure, 4);
    let pts = random_points(&fast, &mut rng, 3);
    for p in &pts {
        for q in &pts {
            for s in [MillerStrategy::Affine, MillerStrategy::Projective] {
                assert_eq!(
                    fast.pairing_with_strategy(p, q, s),
                    slow.pairing_with_strategy(p, q, s),
                    "strategy {s:?}"
                );
            }
        }
    }
}

#[test]
fn pairing_agrees_on_paper_params() {
    let (fast, slow, mut rng) = both(CurveParams::paper_default, 5);
    let p = fast.mul_generator(&fast.random_scalar(&mut rng));
    let q = fast.mul_generator(&fast.random_scalar(&mut rng));
    let e = fast.pairing(&p, &q);
    assert_eq!(e, slow.pairing(&p, &q));
    // Sanity: non-degenerate.
    assert!(!fast.gt_is_one(&e));
}

#[test]
fn multi_pairing_agrees() {
    let (fast, slow, mut rng) = both(CurveParams::fast_insecure, 6);
    let pts = random_points(&fast, &mut rng, 6);
    let inf = G1Affine::infinity();
    let shapes: Vec<Vec<(&G1Affine, &G1Affine)>> = vec![
        vec![],
        vec![(&pts[0], &pts[1])],
        vec![(&pts[0], &pts[1]), (&pts[2], &pts[3])],
        vec![(&pts[0], &pts[1]), (&inf, &pts[2]), (&pts[3], &pts[4])],
        pts.iter().map(|p| (p, &pts[5])).collect(),
    ];
    for (i, pairs) in shapes.iter().enumerate() {
        assert_eq!(
            fast.multi_pairing(pairs),
            slow.multi_pairing(pairs),
            "shape {i}"
        );
    }
}

#[test]
fn prepared_pairing_agrees_across_backends() {
    let (fast, slow, mut rng) = both(CurveParams::fast_insecure, 7);
    let p = fast.mul_generator(&fast.random_scalar(&mut rng));
    let q = fast.mul_generator(&fast.random_scalar(&mut rng));
    let expect = slow.pairing(&p, &q);

    // Prepared on the fixed backend, replayed on both.
    let prep_fast = fast.prepare_g1(&p);
    assert_eq!(fast.pairing_prepared(&prep_fast, &q), expect);
    assert_eq!(slow.pairing_prepared(&prep_fast, &q), expect);

    // Prepared on the bigint backend, replayed on both (no fixed
    // steps cached — the fast context must fall back cleanly).
    let prep_slow = slow.prepare_g1(&p);
    assert_eq!(fast.pairing_prepared(&prep_slow, &q), expect);
    assert_eq!(slow.pairing_prepared(&prep_slow, &q), expect);
}

#[test]
fn multi_prepared_agrees() {
    let (fast, slow, mut rng) = both(CurveParams::fast_insecure, 8);
    let pts = random_points(&fast, &mut rng, 4);
    let preps: Vec<_> = pts.iter().map(|p| fast.prepare_g1(p)).collect();
    let pairs: Vec<_> = preps.iter().zip(pts.iter().rev()).collect();
    let expect = slow.multi_pairing(&pts.iter().zip(pts.iter().rev()).collect::<Vec<_>>());
    assert_eq!(fast.multi_pairing_prepared(&pairs), expect);
    assert_eq!(slow.multi_pairing_prepared(&pairs), expect);
}

#[test]
fn bilinearity_holds_on_fixed_backend() {
    let (fast, _, mut rng) = both(CurveParams::fast_insecure, 9);
    let g = fast.generator().clone();
    let a = fast.random_scalar(&mut rng);
    let b = fast.random_scalar(&mut rng);
    let lhs = fast.pairing(&fast.mul(&a, &g), &fast.mul(&b, &g));
    let ab = fast.gt_pow(&fast.pairing(&g, &g), &(&a * &b));
    assert_eq!(lhs, ab);
}

#[test]
fn gt_and_hash_paths_agree() {
    let (fast, slow, mut rng) = both(CurveParams::fast_insecure, 10);
    // hash_to_g1 runs sqrt / pow in Fp; the fixed backend must land
    // on the same points.
    for tag in [b"tag-a".as_slice(), b"tag-b".as_slice()] {
        let h_fast = fast.hash_to_g1(tag, b"identity");
        let h_slow = slow.hash_to_g1(tag, b"identity");
        assert_eq!(h_fast, h_slow);
    }
    // gt_pow / gt_inv route through Fp2 pow.
    let p = fast.mul_generator(&fast.random_scalar(&mut rng));
    let e = fast.pairing(&p, &p);
    let k = fast.random_scalar(&mut rng);
    assert_eq!(fast.gt_pow(&e, &k), slow.gt_pow(&e, &k));
    assert_eq!(fast.gt_inv(&e), slow.gt_inv(&e));
}

#[test]
fn pairing_equals_agrees() {
    let (fast, slow, mut rng) = both(CurveParams::fast_insecure, 11);
    let g = fast.generator().clone();
    let k = fast.random_scalar(&mut rng);
    let kg = fast.mul_generator(&k);
    let p = fast.mul_generator(&fast.random_scalar(&mut rng));
    let kp = fast.mul(&k, &p);
    // ê(kG, P) == ê(G, kP) — true on both backends.
    assert!(fast.pairing_equals(&kg, &p, &g, &kp));
    assert!(slow.pairing_equals(&kg, &p, &g, &kp));
    // And a false case stays false.
    let wrong = fast.add(&kp, &g);
    assert!(!fast.pairing_equals(&kg, &p, &g, &wrong));
    assert!(!slow.pairing_equals(&kg, &p, &g, &wrong));
}
