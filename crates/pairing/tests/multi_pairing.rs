//! The shared-loop pairing product must agree with products of
//! individual pairings on every input shape.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_pairing::{CurveParams, G1Affine};

fn setup() -> (CurveParams, StdRng) {
    let mut rng = StdRng::seed_from_u64(31337);
    (CurveParams::generate(&mut rng, 128, 64).unwrap(), rng)
}

#[test]
fn product_of_two_matches_separate_pairings() {
    let (prm, mut rng) = setup();
    let g = prm.generator().clone();
    for _ in 0..5 {
        let a = prm.mul(&prm.random_scalar(&mut rng), &g);
        let b = prm.mul(&prm.random_scalar(&mut rng), &g);
        let c = prm.mul(&prm.random_scalar(&mut rng), &g);
        let d = prm.mul(&prm.random_scalar(&mut rng), &g);
        let expect = prm.gt_mul(&prm.pairing(&a, &b), &prm.pairing(&c, &d));
        assert_eq!(prm.multi_pairing(&[(&a, &b), (&c, &d)]), expect);
    }
}

#[test]
fn product_of_many_matches() {
    let (prm, mut rng) = setup();
    let g = prm.generator().clone();
    let points: Vec<(G1Affine, G1Affine)> = (0..5)
        .map(|_| {
            (
                prm.mul(&prm.random_scalar(&mut rng), &g),
                prm.mul(&prm.random_scalar(&mut rng), &g),
            )
        })
        .collect();
    let pairs: Vec<(&G1Affine, &G1Affine)> = points.iter().map(|(a, b)| (a, b)).collect();
    let mut expect = prm.gt_one();
    for (a, b) in &points {
        expect = prm.gt_mul(&expect, &prm.pairing(a, b));
    }
    assert_eq!(prm.multi_pairing(&pairs), expect);
}

#[test]
fn empty_and_identity_inputs() {
    let (prm, _) = setup();
    let g = prm.generator().clone();
    assert!(prm.gt_is_one(&prm.multi_pairing(&[])));
    let inf = G1Affine::infinity();
    assert_eq!(
        prm.multi_pairing(&[(&inf, &g), (&g, &g)]),
        prm.pairing(&g, &g)
    );
    assert_eq!(prm.multi_pairing(&[(&g, &inf)]), prm.gt_one());
}

#[test]
fn single_pair_matches_plain_pairing() {
    let (prm, mut rng) = setup();
    let g = prm.generator().clone();
    let a = prm.mul(&prm.random_scalar(&mut rng), &g);
    assert_eq!(prm.multi_pairing(&[(&a, &g)]), prm.pairing(&a, &g));
}

#[test]
fn pairing_equals_accepts_valid_relations() {
    let (prm, mut rng) = setup();
    let g = prm.generator().clone();
    let x = prm.random_scalar(&mut rng);
    let h = prm.mul(&prm.random_scalar(&mut rng), &g);
    // The BLS verification relation: ê(P, x·H) = ê(x·P, H).
    let sig = prm.mul(&x, &h);
    let pk = prm.mul(&x, &g);
    assert!(prm.pairing_equals(&g, &sig, &pk, &h));
    // Perturbed relation rejected.
    let bad_sig = prm.add(&sig, &g);
    assert!(!prm.pairing_equals(&g, &bad_sig, &pk, &h));
}

#[test]
fn pairing_equals_handles_identities() {
    let (prm, _) = setup();
    let g = prm.generator().clone();
    let inf = G1Affine::infinity();
    assert!(prm.pairing_equals(&inf, &g, &g, &inf));
    assert!(!prm.pairing_equals(&inf, &g, &g, &g));
}

#[test]
fn negation_cancels_in_product() {
    let (prm, mut rng) = setup();
    let g = prm.generator().clone();
    let a = prm.mul(&prm.random_scalar(&mut rng), &g);
    let b = prm.mul(&prm.random_scalar(&mut rng), &g);
    let neg_a = prm.neg(&a);
    assert!(prm.gt_is_one(&prm.multi_pairing(&[(&a, &b), (&neg_a, &b)])));
}

#[test]
fn agrees_on_paper_params() {
    let prm = CurveParams::paper_default();
    let g = prm.generator().clone();
    let g2 = prm.mul(&2u64.into(), &g);
    let g3 = prm.mul(&3u64.into(), &g);
    let expect = prm.gt_mul(&prm.pairing(&g2, &g), &prm.pairing(&g, &g3));
    assert_eq!(prm.multi_pairing(&[(&g2, &g), (&g, &g3)]), expect);
    assert!(prm.pairing_equals(&g2, &g3, &g3, &g2));
}
