//! Validation of the pre-generated built-in parameter sets.

use sempair_bigint::modular;
use sempair_pairing::CurveParams;

#[test]
fn fast_insecure_loads_and_pairs() {
    let prm = CurveParams::fast_insecure();
    assert_eq!(prm.modulus().bits(), 256);
    assert_eq!(prm.order().bits(), 128);
    let g = prm.generator();
    let e = prm.pairing(g, g);
    assert!(!prm.gt_is_one(&e));
    // ê(2P, 3P) = ê(P,P)^6
    let p2 = prm.mul(&2u64.into(), g);
    let p3 = prm.mul(&3u64.into(), g);
    assert_eq!(prm.pairing(&p2, &p3), prm.gt_pow(&e, &6u64.into()));
}

#[test]
fn paper_default_loads_and_pairs() {
    let prm = CurveParams::paper_default();
    assert_eq!(prm.modulus().bits(), 512);
    assert_eq!(prm.order().bits(), 160);
    let g = prm.generator();
    let e = prm.pairing(g, g);
    assert!(!prm.gt_is_one(&e));
    assert!(prm.gt_is_one(&prm.gt_pow(&e, prm.order())));
    // §4's size claims: compressed points are ~513 bits = 65 bytes + flag.
    assert_eq!(prm.point_len(), 65);
    assert_eq!(prm.gt_to_bytes(&e).len(), 128);
}

#[test]
fn bilinearity_with_random_scalars_on_fast_params() {
    use rand::SeedableRng;
    let prm = CurveParams::fast_insecure();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let g = prm.generator().clone();
    for _ in 0..3 {
        let a = prm.random_scalar(&mut rng);
        let b = prm.random_scalar(&mut rng);
        let lhs = prm.pairing(&prm.mul(&a, &g), &prm.mul(&b, &g));
        let ab = modular::mod_mul(&a, &b, prm.order());
        let rhs = prm.gt_pow(&prm.pairing(&g, &g), &ab);
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn gdh_short_loads_and_reproduces_size_claim() {
    let prm = CurveParams::gdh_short_insecure();
    assert_eq!(prm.modulus().bits(), 176);
    assert_eq!(prm.order().bits(), 160);
    // §5's "160 bits": one compressed point here is 23 bytes = 184 bits
    // (the x-coordinate plus a flag byte) — the paper's size arithmetic.
    assert_eq!(prm.point_len() * 8, 184);
    // It pairs correctly like every other set.
    let g = prm.generator();
    let e = prm.pairing(g, g);
    assert!(!prm.gt_is_one(&e));
    assert!(prm.gt_is_one(&prm.gt_pow(&e, prm.order())));
}
