//! The `(t, n)` threshold Boneh–Franklin IBE of §3.
//!
//! The PKG acts as trusted dealer: it shares its master key `s` through
//! a degree-`t−1` polynomial `f`, publishes verification keys
//! `P_pub^(i) = f(i)·P`, and for each identity delivers the key share
//! `d_IDᵢ = f(i)·Q_ID` to player `i`. Any `t` players can jointly
//! decrypt `BasicIdent` ciphertexts by publishing decryption shares
//! `ê(U, d_IDᵢ)` which the recombiner combines with Lagrange exponents.
//!
//! *Robustness* (§3.2) is the non-interactive proof that a decryption
//! share is consistent with the player's public verification key: a
//! Fiat–Shamir proof of equality of the two pairing preimages
//! `ê(P, ·)` and `ê(U, ·)` at the secret point `d_IDᵢ`. With
//! `n ≥ 2t − 1`, honest players can always identify cheaters, discard
//! their shares and even *reconstruct* the cheater's key share from `t`
//! honest ones (implemented as [`ThresholdSystem::recover_key_share`]).

use crate::bf_ibe::{BasicCiphertext, IbePublicParams};
use crate::shamir::{self, Polynomial};
use crate::Error;
use rand::RngCore;
use sempair_bigint::BigUint;
use sempair_hash::derive;
use sempair_pairing::{CurveParams, G1Affine, Gt};

/// Public description of a `(t, n)` threshold IBE deployment.
#[derive(Debug, Clone)]
pub struct ThresholdSystem {
    params: IbePublicParams,
    t: usize,
    n: usize,
    /// `P_pub^(i) = f(i)·P`, indexed by player (position `i−1`).
    verification_keys: Vec<G1Affine>,
}

/// The dealer (PKG): holds the sharing polynomial.
#[derive(Debug)]
pub struct ThresholdPkg {
    system: ThresholdSystem,
    poly: Polynomial,
}

/// Player `i`'s private key share for one identity:
/// `d_IDᵢ = f(i)·Q_ID`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdKeyShare {
    /// The identity this share serves.
    pub id: String,
    /// Player index (`1..=n`).
    pub index: u32,
    /// The share point.
    pub point: G1Affine,
}

/// A published decryption share `ê(U, d_IDᵢ)`, optionally carrying the
/// §3.2 robustness proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecryptionShare {
    /// Player index.
    pub index: u32,
    /// `ê(U, d_IDᵢ)`.
    pub value: Gt,
    /// Robustness proof, if the player produced one.
    pub proof: Option<EqProof>,
}

/// Fiat–Shamir proof that `(v, g) = (ê(P, D), ê(U, D))` for one secret
/// point `D` (§3.2): commitments `w1 = ê(P, R)`, `w2 = ê(U, R)`,
/// challenge `e = H(g, v, w1, w2)`, response `V = R + e·D`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqProof {
    w1: Gt,
    w2: Gt,
    e: BigUint,
    v: G1Affine,
}

impl ThresholdPkg {
    /// `Setup` (§3.2): samples `s` and `f`, publishes
    /// `P_pub = sP` and `P_pub^(i) = f(i)P` for `i = 1..n`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadThresholdParams`] unless `1 ≤ t ≤ n`.
    pub fn setup(
        rng: &mut impl RngCore,
        curve: CurveParams,
        t: usize,
        n: usize,
    ) -> Result<Self, Error> {
        if t == 0 {
            return Err(Error::BadThresholdParams("t must be at least 1"));
        }
        if t > n {
            return Err(Error::BadThresholdParams("t cannot exceed n"));
        }
        let master = curve.random_scalar(rng);
        let poly = Polynomial::sample(rng, &master, t, curve.order());
        let p_pub = curve.mul_generator(&master);
        let verification_keys = (1..=n as u32)
            .map(|i| curve.mul_generator(&poly.eval_index(i)))
            .collect();
        let params = IbePublicParams::from_parts(curve, p_pub);
        Ok(ThresholdPkg {
            system: ThresholdSystem {
                params,
                t,
                n,
                verification_keys,
            },
            poly,
        })
    }

    /// The public system description.
    pub fn system(&self) -> &ThresholdSystem {
        &self.system
    }

    /// `Keygen` (§3.2): the key shares `d_IDᵢ = f(i)·Q_ID` for all `n`
    /// players.
    pub fn keygen(&self, id: &str) -> Vec<IdKeyShare> {
        let q_id = self.system.params.hash_identity(id);
        (1..=self.system.n as u32)
            .map(|i| IdKeyShare {
                id: id.to_string(),
                index: i,
                point: self
                    .system
                    .params
                    .curve()
                    .mul(&self.poly.eval_index(i), &q_id),
            })
            .collect()
    }

    /// The master secret `f(0)` (test hook: lets tests compare against
    /// the non-threshold scheme).
    pub fn master_for_tests(&self) -> &BigUint {
        self.poly.secret()
    }
}

impl ThresholdSystem {
    /// The embedded (non-threshold) public parameters.
    pub fn params(&self) -> &IbePublicParams {
        &self.params
    }

    /// Threshold `t`.
    pub fn threshold(&self) -> usize {
        self.t
    }

    /// Number of players `n`.
    pub fn players(&self) -> usize {
        self.n
    }

    /// `P_pub^(i)` for player `i` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of `1..=n`.
    pub fn verification_key(&self, i: u32) -> &G1Affine {
        &self.verification_keys[(i - 1) as usize]
    }

    /// The §3.2 sanity check players run at setup: for the index subset
    /// `s` of size `t`, `Σ Lᵢ·P_pub^(i) = P_pub`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShare`] (player 0 designating the dealer)
    /// if the check fails, or index errors from Lagrange.
    pub fn check_dealer_consistency(&self, subset: &[u32]) -> Result<(), Error> {
        if subset.len() != self.t {
            return Err(Error::BadThresholdParams("subset size must equal t"));
        }
        let q = self.params.curve().order();
        let mut terms = Vec::with_capacity(subset.len());
        for &i in subset {
            let li = shamir::lagrange_coefficient(subset, i, q)?;
            terms.push((li, self.verification_key(i).clone()));
        }
        if &self.params.curve().multi_mul(&terms) == self.params.p_pub() {
            Ok(())
        } else {
            Err(Error::InvalidShare { player: 0 })
        }
    }

    /// Player-side share validation (§3.2 `Keygen`):
    /// `ê(P_pub^(i), Q_ID) = ê(P, d_IDᵢ)`; on failure the player
    /// complains to the PKG.
    pub fn verify_key_share(&self, share: &IdKeyShare) -> bool {
        if share.index == 0 || share.index as usize > self.n {
            return false;
        }
        let curve = self.params.curve();
        let q_id = self.params.hash_identity(&share.id);
        curve.pairing_equals(
            self.verification_key(share.index),
            &q_id,
            curve.generator(),
            &share.point,
        )
    }

    /// `Decrypt` (player side): the decryption share `ê(U, d_IDᵢ)`.
    pub fn decryption_share(&self, key_share: &IdKeyShare, u: &G1Affine) -> DecryptionShare {
        DecryptionShare {
            index: key_share.index,
            value: self.params.curve().pairing(u, &key_share.point),
            proof: None,
        }
    }

    /// Robust variant: attaches the §3.2 NIZK so anyone can check the
    /// share against `P_pub^(i)` without interaction.
    pub fn decryption_share_robust(
        &self,
        rng: &mut impl RngCore,
        key_share: &IdKeyShare,
        u: &G1Affine,
    ) -> DecryptionShare {
        let curve = self.params.curve();
        let g_i = curve.pairing(u, &key_share.point);
        let v_i = curve.pairing(curve.generator(), &key_share.point);
        // Commitment.
        let rho = curve.random_scalar(rng);
        let r_point = curve.mul_generator(&rho);
        let w1 = curve.pairing(curve.generator(), &r_point);
        let w2 = curve.pairing(u, &r_point);
        let e = self.proof_challenge(&g_i, &v_i, &w1, &w2);
        // V = R + e·d_IDᵢ.
        let v = curve.add(&r_point, &curve.mul(&e, &key_share.point));
        DecryptionShare {
            index: key_share.index,
            value: g_i,
            proof: Some(EqProof { w1, w2, e, v }),
        }
    }

    /// Verifies a robust decryption share for identity `id` and
    /// ciphertext component `u`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidProof`] if no proof is attached or it fails;
    /// [`Error::InvalidShare`] for an out-of-range index.
    pub fn verify_decryption_share(
        &self,
        id: &str,
        u: &G1Affine,
        share: &DecryptionShare,
    ) -> Result<(), Error> {
        if share.index == 0 || share.index as usize > self.n {
            return Err(Error::InvalidShare {
                player: share.index,
            });
        }
        let Some(proof) = &share.proof else {
            return Err(Error::InvalidProof);
        };
        let curve = self.params.curve();
        let q_id = self.params.hash_identity(id);
        // Publicly computable v_i = ê(P_pub^(i), Q_ID) = ê(P, d_IDᵢ).
        let v_i = curve.pairing(self.verification_key(share.index), &q_id);
        let e = self.proof_challenge(&share.value, &v_i, &proof.w1, &proof.w2);
        if e != proof.e {
            return Err(Error::InvalidProof);
        }
        // ê(P, V) = w1 · v_iᵉ  and  ê(U, V) = w2 · g_iᵉ.
        let lhs1 = curve.pairing(curve.generator(), &proof.v);
        let rhs1 = curve.gt_mul(&proof.w1, &curve.gt_pow(&v_i, &e));
        if lhs1 != rhs1 {
            return Err(Error::InvalidProof);
        }
        let lhs2 = curve.pairing(u, &proof.v);
        let rhs2 = curve.gt_mul(&proof.w2, &curve.gt_pow(&share.value, &e));
        if lhs2 != rhs2 {
            return Err(Error::InvalidProof);
        }
        Ok(())
    }

    /// `Recombination` (§3.2): `g = Π ê(U, d_IDᵢ)^{Lᵢ}`, then
    /// `m = V ⊕ H2(g)`. Takes exactly the shares to use (≥ t; extra
    /// shares beyond the first `t` are ignored).
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughShares`], index errors, or propagated Lagrange
    /// failures.
    pub fn recombine_basic(
        &self,
        ciphertext: &BasicCiphertext,
        shares: &[DecryptionShare],
    ) -> Result<Vec<u8>, Error> {
        if shares.len() < self.t {
            return Err(Error::NotEnoughShares {
                needed: self.t,
                got: shares.len(),
            });
        }
        let used = &shares[..self.t];
        let indices: Vec<u32> = used.iter().map(|s| s.index).collect();
        let curve = self.params.curve();
        let q = curve.order();
        let mut g = curve.gt_one();
        for share in used {
            let li = shamir::lagrange_coefficient(&indices, share.index, q)?;
            g = curve.gt_mul(&g, &curve.gt_pow(&share.value, &li));
        }
        let mut m = ciphertext.v.clone();
        let mask = self.params.mask_h2(&g, m.len());
        sempair_hash::xor_in_place(&mut m, &mask);
        Ok(m)
    }

    /// Robust recombination: verifies every share first, discards
    /// invalid ones, reports the cheaters, and recombines from the
    /// valid remainder.
    ///
    /// Returns `(plaintext, cheater_indices)`.
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughShares`] if fewer than `t` shares survive
    /// verification.
    pub fn recombine_basic_robust(
        &self,
        id: &str,
        ciphertext: &BasicCiphertext,
        shares: &[DecryptionShare],
    ) -> Result<(Vec<u8>, Vec<u32>), Error> {
        let mut valid = Vec::new();
        let mut cheaters = Vec::new();
        for share in shares {
            match self.verify_decryption_share(id, &ciphertext.u, share) {
                Ok(()) => valid.push(share.clone()),
                Err(_) => cheaters.push(share.index),
            }
        }
        let m = self.recombine_basic(ciphertext, &valid)?;
        Ok((m, cheaters))
    }

    /// Reconstructs player `j`'s key share from `t` valid shares of
    /// other players (the §3.2 cheater-recovery step): Lagrange
    /// interpolation *in the group* at `x = j`.
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughShares`] or index errors.
    pub fn recover_key_share(&self, shares: &[IdKeyShare], j: u32) -> Result<IdKeyShare, Error> {
        if shares.len() < self.t {
            return Err(Error::NotEnoughShares {
                needed: self.t,
                got: shares.len(),
            });
        }
        let used = &shares[..self.t];
        let indices: Vec<u32> = used.iter().map(|s| s.index).collect();
        let curve = self.params.curve();
        let q = curve.order();
        let mut terms = Vec::with_capacity(used.len());
        for share in used {
            let li = shamir::lagrange_coefficient_at(&indices, share.index, j as u64, q)?;
            terms.push((li, share.point.clone()));
        }
        Ok(IdKeyShare {
            id: used[0].id.clone(),
            index: j,
            point: curve.multi_mul(&terms),
        })
    }

    /// Fiat–Shamir challenge `e = H(g_i, v_i, w1, w2) mod q`.
    fn proof_challenge(&self, g_i: &Gt, v_i: &Gt, w1: &Gt, w2: &Gt) -> BigUint {
        let curve = self.params.curve();
        let digest = derive::transcript_hash(
            b"sempair-threshold-eqproof",
            &[
                &curve.gt_to_bytes(g_i),
                &curve.gt_to_bytes(v_i),
                &curve.gt_to_bytes(w1),
                &curve.gt_to_bytes(w2),
            ],
        );
        &BigUint::from_be_bytes(&digest) % curve.order()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf_ibe::Pkg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(t: usize, n: usize) -> (ThresholdPkg, StdRng) {
        let mut rng = StdRng::seed_from_u64(81);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg = ThresholdPkg::setup(&mut rng, curve, t, n).unwrap();
        (pkg, rng)
    }

    #[test]
    fn bad_params_rejected() {
        let mut rng = StdRng::seed_from_u64(82);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        assert!(ThresholdPkg::setup(&mut rng, curve.clone(), 0, 3).is_err());
        assert!(ThresholdPkg::setup(&mut rng, curve, 4, 3).is_err());
    }

    #[test]
    fn dealer_consistency_check() {
        let (pkg, _) = setup(3, 5);
        let sys = pkg.system();
        sys.check_dealer_consistency(&[1, 2, 3]).unwrap();
        sys.check_dealer_consistency(&[2, 4, 5]).unwrap();
        assert!(sys.check_dealer_consistency(&[1, 2]).is_err(), "wrong size");
    }

    #[test]
    fn key_shares_verify_and_forgeries_fail() {
        let (pkg, _) = setup(2, 4);
        let shares = pkg.keygen("alice");
        for share in &shares {
            assert!(pkg.system().verify_key_share(share));
        }
        // A share for the wrong identity fails.
        let mut forged = shares[0].clone();
        forged.id = "bob".into();
        assert!(!pkg.system().verify_key_share(&forged));
        // A share with swapped index fails.
        let mut swapped = shares[0].clone();
        swapped.index = 2;
        assert!(!pkg.system().verify_key_share(&swapped));
    }

    #[test]
    fn threshold_decrypt_roundtrip_every_subset() {
        let (pkg, mut rng) = setup(3, 5);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys
            .params()
            .encrypt_basic(&mut rng, "alice", b"threshold msg");
        let dec: Vec<DecryptionShare> = shares
            .iter()
            .map(|ks| sys.decryption_share(ks, &c.u))
            .collect();
        for a in 0..5 {
            for b in a + 1..5 {
                for cc in b + 1..5 {
                    let subset = vec![dec[a].clone(), dec[b].clone(), dec[cc].clone()];
                    assert_eq!(sys.recombine_basic(&c, &subset).unwrap(), b"threshold msg");
                }
            }
        }
    }

    #[test]
    fn fewer_than_t_shares_insufficient() {
        let (pkg, mut rng) = setup(3, 5);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"msg");
        let dec: Vec<DecryptionShare> = shares[..2]
            .iter()
            .map(|ks| sys.decryption_share(ks, &c.u))
            .collect();
        assert_eq!(
            sys.recombine_basic(&c, &dec),
            Err(Error::NotEnoughShares { needed: 3, got: 2 })
        );
    }

    #[test]
    fn threshold_equals_centralized() {
        // Recombined key must match what a centralized PKG with the same
        // master would produce.
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let central =
            Pkg::from_master(sys.params().curve().clone(), pkg.master_for_tests().clone());
        assert_eq!(central.params().p_pub(), sys.params().p_pub());
        let c = sys.params().encrypt_basic(&mut rng, "carol", b"same msg");
        let key = central.extract("carol");
        let direct = central.params().decrypt_basic(&key, &c).unwrap();
        let shares = pkg.keygen("carol");
        let dec: Vec<DecryptionShare> = shares[..2]
            .iter()
            .map(|ks| sys.decryption_share(ks, &c.u))
            .collect();
        assert_eq!(sys.recombine_basic(&c, &dec).unwrap(), direct);
    }

    #[test]
    fn robust_shares_verify() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"msg");
        for ks in &shares {
            let ds = sys.decryption_share_robust(&mut rng, ks, &c.u);
            sys.verify_decryption_share("alice", &c.u, &ds).unwrap();
            // Proof bound to the identity: verification under another
            // identity fails.
            assert!(sys.verify_decryption_share("bob", &c.u, &ds).is_err());
        }
    }

    #[test]
    fn cheating_share_detected_and_bypassed() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"robust!");
        let mut dec: Vec<DecryptionShare> = shares
            .iter()
            .map(|ks| sys.decryption_share_robust(&mut rng, ks, &c.u))
            .collect();
        // Player 2 lies: swaps in a random Gt value, keeps its proof.
        let curve = sys.params().curve();
        let junk = curve.pairing(
            &curve.mul_generator(&BigUint::from(999u64)),
            curve.generator(),
        );
        dec[1].value = junk;
        let (m, cheaters) = sys.recombine_basic_robust("alice", &c, &dec).unwrap();
        assert_eq!(m, b"robust!");
        assert_eq!(cheaters, vec![2]);
    }

    #[test]
    fn unproved_share_rejected_by_robust_path() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"m");
        let ds = sys.decryption_share(&shares[0], &c.u); // no proof
        assert_eq!(
            sys.verify_decryption_share("alice", &c.u, &ds),
            Err(Error::InvalidProof)
        );
    }

    #[test]
    fn recover_cheaters_key_share() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        // Recover share 3 from shares 1 and 2.
        let recovered = sys.recover_key_share(&shares[..2], 3).unwrap();
        assert_eq!(recovered, shares[2]);
        assert!(sys.verify_key_share(&recovered));
        // And the recovered share decrypts.
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"recover");
        let dec = vec![
            sys.decryption_share(&shares[0], &c.u),
            sys.decryption_share(&recovered, &c.u),
        ];
        assert_eq!(sys.recombine_basic(&c, &dec).unwrap(), b"recover");
    }

    #[test]
    fn tampered_proof_rejected() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"m");
        let good = sys.decryption_share_robust(&mut rng, &shares[0], &c.u);
        // Tamper with each proof component.
        let proof = good.proof.clone().unwrap();
        let curve = sys.params().curve();
        let mut bad = good.clone();
        bad.proof = Some(EqProof {
            e: &proof.e + &BigUint::one(),
            ..proof.clone()
        });
        assert!(sys.verify_decryption_share("alice", &c.u, &bad).is_err());
        let mut bad = good.clone();
        bad.proof = Some(EqProof {
            v: curve.mul_generator(&BigUint::from(5u64)),
            ..proof.clone()
        });
        assert!(sys.verify_decryption_share("alice", &c.u, &bad).is_err());
        let mut bad = good.clone();
        bad.proof = Some(EqProof {
            w1: curve.gt_one(),
            ..proof.clone()
        });
        assert!(sys.verify_decryption_share("alice", &c.u, &bad).is_err());
    }
}
