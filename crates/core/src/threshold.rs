//! The `(t, n)` threshold Boneh–Franklin IBE of §3.
//!
//! The PKG acts as trusted dealer: it shares its master key `s` through
//! a degree-`t−1` polynomial `f`, publishes verification keys
//! `P_pub^(i) = f(i)·P`, and for each identity delivers the key share
//! `d_IDᵢ = f(i)·Q_ID` to player `i`. Any `t` players can jointly
//! decrypt `BasicIdent` ciphertexts by publishing decryption shares
//! `ê(U, d_IDᵢ)` which the recombiner combines with Lagrange exponents.
//!
//! *Robustness* (§3.2) is the non-interactive proof that a decryption
//! share is consistent with the player's public verification key: a
//! Fiat–Shamir proof of equality of the two pairing preimages
//! `ê(P, ·)` and `ê(U, ·)` at the secret point `d_IDᵢ`. With
//! `n ≥ 2t − 1`, honest players can always identify cheaters, discard
//! their shares and even *reconstruct* the cheater's key share from `t`
//! honest ones (implemented as [`ThresholdSystem::recover_key_share`]).

// Share bundles and system encodings arrive from untrusted peers;
// decoding goes through the bounds-checked [`Reader`] instead of
// indexing so malformed input fails closed.
#![warn(clippy::indexing_slicing)]
#![cfg_attr(test, allow(clippy::indexing_slicing))]

use crate::bf_ibe::{BasicCiphertext, IbePublicParams, Pkg};
use crate::cursor::Reader;
use crate::mediated::UserKey;
use crate::shamir::{self, Polynomial};
use crate::Error;
use rand::RngCore;
use sempair_bigint::BigUint;
use sempair_hash::derive;
use sempair_pairing::{CurveParams, G1Affine, Gt};

/// Public description of a `(t, n)` threshold IBE deployment.
#[derive(Debug, Clone)]
pub struct ThresholdSystem {
    params: IbePublicParams,
    t: usize,
    n: usize,
    /// `P_pub^(i) = f(i)·P`, indexed by player (position `i−1`).
    verification_keys: Vec<G1Affine>,
}

/// The dealer (PKG): holds the sharing polynomial.
///
/// The polynomial is the master secret in shared form; `Polynomial`'s
/// own `Debug` redaction and drop-erasure cover it.
pub struct ThresholdPkg {
    system: ThresholdSystem,
    poly: Polynomial,
}

impl std::fmt::Debug for ThresholdPkg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThresholdPkg")
            .field("poly", &"<redacted>")
            .finish_non_exhaustive()
    }
}

/// Player `i`'s private key share for one identity:
/// `d_IDᵢ = f(i)·Q_ID`.
///
/// Secret material: `Debug` redacts the point, equality is
/// constant-time, and dropping the share erases the point.
#[derive(Clone, Eq)]
pub struct IdKeyShare {
    /// The identity this share serves.
    pub id: String,
    /// Player index (`1..=n`).
    pub index: u32,
    /// The share point.
    pub point: G1Affine,
}

impl std::fmt::Debug for IdKeyShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdKeyShare")
            .field("id", &self.id)
            .field("index", &self.index)
            .field("point", &"<redacted>")
            .finish()
    }
}

impl PartialEq for IdKeyShare {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.index == other.index && self.point.ct_eq(&other.point)
    }
}

impl Drop for IdKeyShare {
    fn drop(&mut self) {
        self.point.zeroize();
    }
}

/// A published decryption share `ê(U, d_IDᵢ)`, optionally carrying the
/// §3.2 robustness proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecryptionShare {
    /// Player index.
    pub index: u32,
    /// `ê(U, d_IDᵢ)`.
    pub value: Gt,
    /// Robustness proof, if the player produced one.
    pub proof: Option<EqProof>,
}

/// Fiat–Shamir proof that `(v, g) = (ê(P, D), ê(U, D))` for one secret
/// point `D` (§3.2): commitments `w1 = ê(P, R)`, `w2 = ê(U, R)`,
/// challenge `e = H(g, v, w1, w2)`, response `V = R + e·D`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqProof {
    w1: Gt,
    w2: Gt,
    e: BigUint,
    v: G1Affine,
}

impl ThresholdPkg {
    /// `Setup` (§3.2): samples `s` and `f`, publishes
    /// `P_pub = sP` and `P_pub^(i) = f(i)P` for `i = 1..n`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadThresholdParams`] unless `1 ≤ t ≤ n`.
    pub fn setup(
        rng: &mut impl RngCore,
        curve: CurveParams,
        t: usize,
        n: usize,
    ) -> Result<Self, Error> {
        if t == 0 {
            return Err(Error::BadThresholdParams("t must be at least 1"));
        }
        if t > n {
            return Err(Error::BadThresholdParams("t cannot exceed n"));
        }
        let master = curve.random_scalar(rng);
        Self::from_master(rng, curve, master, t, n)
    }

    /// Deals a caller-supplied master secret instead of sampling one.
    ///
    /// This is how a SEM cluster dealer shares an *existing* secret
    /// (e.g. the SEM half `s − b` of a mediated key split) across `n`
    /// replicas: the constant term is fixed, only the blinding
    /// coefficients are random.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadThresholdParams`] unless `1 ≤ t ≤ n`.
    pub fn from_master(
        rng: &mut impl RngCore,
        curve: CurveParams,
        master: BigUint,
        t: usize,
        n: usize,
    ) -> Result<Self, Error> {
        if t == 0 {
            return Err(Error::BadThresholdParams("t must be at least 1"));
        }
        if t > n {
            return Err(Error::BadThresholdParams("t cannot exceed n"));
        }
        let master = &master % curve.order();
        let poly = Polynomial::sample(rng, &master, t, curve.order());
        let p_pub = curve.mul_generator(&master);
        let verification_keys = (1..=n as u32)
            .map(|i| curve.mul_generator(&poly.eval_index(i)))
            .collect();
        let params = IbePublicParams::from_parts(curve, p_pub);
        Ok(ThresholdPkg {
            system: ThresholdSystem {
                params,
                t,
                n,
                verification_keys,
            },
            poly,
        })
    }

    /// The public system description.
    pub fn system(&self) -> &ThresholdSystem {
        &self.system
    }

    /// `Keygen` (§3.2): the key shares `d_IDᵢ = f(i)·Q_ID` for all `n`
    /// players.
    pub fn keygen(&self, id: &str) -> Vec<IdKeyShare> {
        let q_id = self.system.params.hash_identity(id);
        (1..=self.system.n as u32)
            .map(|i| IdKeyShare {
                id: id.to_string(),
                index: i,
                point: self
                    .system
                    .params
                    .curve()
                    .mul(&self.poly.eval_index(i), &q_id),
            })
            .collect()
    }

    /// The master secret `f(0)` (test hook: lets tests compare against
    /// the non-threshold scheme).
    pub fn master_for_tests(&self) -> &BigUint {
        self.poly.secret()
    }
}

impl ThresholdSystem {
    /// The embedded (non-threshold) public parameters.
    pub fn params(&self) -> &IbePublicParams {
        &self.params
    }

    /// Threshold `t`.
    pub fn threshold(&self) -> usize {
        self.t
    }

    /// Number of players `n`.
    pub fn players(&self) -> usize {
        self.n
    }

    /// `P_pub^(i)` for player `i` (1-based); `None` if `i` is out of
    /// `1..=n`.
    pub fn verification_key(&self, i: u32) -> Option<&G1Affine> {
        let index = (i as usize).checked_sub(1)?;
        self.verification_keys.get(index)
    }

    /// The §3.2 sanity check players run at setup: for the index subset
    /// `s` of size `t`, `Σ Lᵢ·P_pub^(i) = P_pub`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShare`] (player 0 designating the dealer)
    /// if the check fails, or index errors from Lagrange.
    pub fn check_dealer_consistency(&self, subset: &[u32]) -> Result<(), Error> {
        if subset.len() != self.t {
            return Err(Error::BadThresholdParams("subset size must equal t"));
        }
        let q = self.params.curve().order();
        let mut terms = Vec::with_capacity(subset.len());
        for &i in subset {
            let li = shamir::lagrange_coefficient(subset, i, q)?;
            let vk = self
                .verification_key(i)
                .ok_or(Error::InvalidShare { player: i })?;
            terms.push((li, vk.clone()));
        }
        if &self.params.curve().multi_mul(&terms) == self.params.p_pub() {
            Ok(())
        } else {
            Err(Error::InvalidShare { player: 0 })
        }
    }

    /// Player-side share validation (§3.2 `Keygen`):
    /// `ê(P_pub^(i), Q_ID) = ê(P, d_IDᵢ)`; on failure the player
    /// complains to the PKG.
    pub fn verify_key_share(&self, share: &IdKeyShare) -> bool {
        if share.index == 0 || share.index as usize > self.n {
            return false;
        }
        let Some(vk) = self.verification_key(share.index) else {
            return false;
        };
        let curve = self.params.curve();
        let q_id = self.params.hash_identity(&share.id);
        curve.pairing_equals(vk, &q_id, curve.generator(), &share.point)
    }

    /// `Decrypt` (player side): the decryption share `ê(U, d_IDᵢ)`.
    pub fn decryption_share(&self, key_share: &IdKeyShare, u: &G1Affine) -> DecryptionShare {
        DecryptionShare {
            index: key_share.index,
            value: self.params.curve().pairing(u, &key_share.point),
            proof: None,
        }
    }

    /// Robust variant: attaches the §3.2 NIZK so anyone can check the
    /// share against `P_pub^(i)` without interaction.
    pub fn decryption_share_robust(
        &self,
        rng: &mut impl RngCore,
        key_share: &IdKeyShare,
        u: &G1Affine,
    ) -> DecryptionShare {
        robust_decryption_share(self.params.curve(), rng, key_share, u)
    }

    /// Verifies a robust decryption share for identity `id` and
    /// ciphertext component `u`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidProof`] if no proof is attached or it fails;
    /// [`Error::InvalidShare`] for an out-of-range index.
    pub fn verify_decryption_share(
        &self,
        id: &str,
        u: &G1Affine,
        share: &DecryptionShare,
    ) -> Result<(), Error> {
        if share.index == 0 || share.index as usize > self.n {
            return Err(Error::InvalidShare {
                player: share.index,
            });
        }
        let Some(proof) = &share.proof else {
            return Err(Error::InvalidProof);
        };
        let vk = self
            .verification_key(share.index)
            .ok_or(Error::InvalidShare {
                player: share.index,
            })?;
        let curve = self.params.curve();
        let q_id = self.params.hash_identity(id);
        // Publicly computable v_i = ê(P_pub^(i), Q_ID) = ê(P, d_IDᵢ).
        let v_i = curve.pairing(vk, &q_id);
        let e = self.proof_challenge(&share.value, &v_i, &proof.w1, &proof.w2);
        if e != proof.e {
            return Err(Error::InvalidProof);
        }
        // ê(P, V) = w1 · v_iᵉ, rewritten as
        // ê(P, V) · ê(−e·P_pub^(i), Q_ID) = w1 (since v_i =
        // ê(P_pub^(i), Q_ID)): one shared-squaring multi-Miller loop
        // and a single final exponentiation instead of a full pairing
        // plus a full-width `Gt` exponentiation.
        let neg_evk = curve.neg(&curve.mul(&e, vk));
        let lhs1 = curve.multi_pairing(&[(curve.generator(), &proof.v), (&neg_evk, &q_id)]);
        if lhs1 != proof.w1 {
            return Err(Error::InvalidProof);
        }
        let lhs2 = curve.pairing(u, &proof.v);
        let rhs2 = curve.gt_mul(&proof.w2, &curve.gt_pow(&share.value, &e));
        if lhs2 != rhs2 {
            return Err(Error::InvalidProof);
        }
        Ok(())
    }

    /// `Recombination` (§3.2): `g = Π ê(U, d_IDᵢ)^{Lᵢ}`, then
    /// `m = V ⊕ H2(g)`. Takes exactly the shares to use (≥ t; extra
    /// shares beyond the first `t` are ignored).
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughShares`], index errors, or propagated Lagrange
    /// failures.
    pub fn recombine_basic(
        &self,
        ciphertext: &BasicCiphertext,
        shares: &[DecryptionShare],
    ) -> Result<Vec<u8>, Error> {
        let used = shares.get(..self.t).ok_or(Error::NotEnoughShares {
            needed: self.t,
            got: shares.len(),
        })?;
        let indices: Vec<u32> = used.iter().map(|s| s.index).collect();
        let curve = self.params.curve();
        let q = curve.order();
        let mut g = curve.gt_one();
        for share in used {
            let li = shamir::lagrange_coefficient(&indices, share.index, q)?;
            g = curve.gt_mul(&g, &curve.gt_pow(&share.value, &li));
        }
        let mut m = ciphertext.v.clone();
        let mask = self.params.mask_h2(&g, m.len());
        sempair_hash::xor_in_place(&mut m, &mask);
        Ok(m)
    }

    /// Robust recombination: verifies every share first, discards
    /// invalid ones, reports the cheaters, and recombines from the
    /// valid remainder.
    ///
    /// Returns `(plaintext, cheater_indices)`.
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughShares`] if fewer than `t` shares survive
    /// verification.
    pub fn recombine_basic_robust(
        &self,
        id: &str,
        ciphertext: &BasicCiphertext,
        shares: &[DecryptionShare],
    ) -> Result<(Vec<u8>, Vec<u32>), Error> {
        let mut valid = Vec::new();
        let mut cheaters = Vec::new();
        for share in shares {
            match self.verify_decryption_share(id, &ciphertext.u, share) {
                Ok(()) => valid.push(share.clone()),
                Err(_) => cheaters.push(share.index),
            }
        }
        let m = self.recombine_basic(ciphertext, &valid)?;
        Ok((m, cheaters))
    }

    /// Reconstructs player `j`'s key share from `t` valid shares of
    /// other players (the §3.2 cheater-recovery step): Lagrange
    /// interpolation *in the group* at `x = j`.
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughShares`] or index errors.
    pub fn recover_key_share(&self, shares: &[IdKeyShare], j: u32) -> Result<IdKeyShare, Error> {
        let used = shares.get(..self.t).ok_or(Error::NotEnoughShares {
            needed: self.t,
            got: shares.len(),
        })?;
        let first = used
            .first()
            .ok_or(Error::NotEnoughShares { needed: 1, got: 0 })?;
        let indices: Vec<u32> = used.iter().map(|s| s.index).collect();
        let curve = self.params.curve();
        let q = curve.order();
        let mut terms = Vec::with_capacity(used.len());
        for share in used {
            let li = shamir::lagrange_coefficient_at(&indices, share.index, j as u64, q)?;
            terms.push((li, share.point.clone()));
        }
        Ok(IdKeyShare {
            id: first.id.clone(),
            index: j,
            point: curve.multi_mul(&terms),
        })
    }

    /// Fiat–Shamir challenge `e = H(g_i, v_i, w1, w2) mod q`.
    fn proof_challenge(&self, g_i: &Gt, v_i: &Gt, w1: &Gt, w2: &Gt) -> BigUint {
        eq_proof_challenge(self.params.curve(), g_i, v_i, w1, w2)
    }

    /// Verifies every share, discards invalid ones, and combines the
    /// first `t` valid shares in the *group*:
    /// `g = Π ê(U, d_IDᵢ)^{Lᵢ} = ê(U, s·Q_ID)`.
    ///
    /// This is the token-level analogue of
    /// [`recombine_basic_robust`](Self::recombine_basic_robust): a
    /// mediated deployment hands the combined `Gt` element to the user
    /// as a decryption token instead of unmasking a `BasicIdent`
    /// ciphertext. Returns `(token, cheater_indices)`; duplicate player
    /// indices beyond the first occurrence are discarded, not treated
    /// as cheating.
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughShares`] if fewer than `t` distinct shares
    /// survive verification, or propagated Lagrange failures.
    pub fn combine_token_robust(
        &self,
        id: &str,
        u: &G1Affine,
        shares: &[DecryptionShare],
    ) -> Result<(Gt, Vec<u32>), Error> {
        let mut valid: Vec<&DecryptionShare> = Vec::new();
        let mut cheaters = Vec::new();
        for share in shares {
            if valid.iter().any(|s| s.index == share.index) {
                continue;
            }
            match self.verify_decryption_share(id, u, share) {
                Ok(()) => valid.push(share),
                Err(_) => cheaters.push(share.index),
            }
        }
        let used = valid.get(..self.t).ok_or(Error::NotEnoughShares {
            needed: self.t,
            got: valid.len(),
        })?;
        let indices: Vec<u32> = used.iter().map(|s| s.index).collect();
        let curve = self.params.curve();
        let q = curve.order();
        let mut g = curve.gt_one();
        for share in used {
            let li = shamir::lagrange_coefficient(&indices, share.index, q)?;
            g = curve.gt_mul(&g, &curve.gt_pow(&share.value, &li));
        }
        Ok((g, cheaters))
    }
}

impl Pkg {
    /// Mediated `Keygen` for a *replicated* SEM (§4 meets §3.2): the
    /// full key `d_ID = s·Q_ID` splits into a user half
    /// `d_user = b·Q_ID` (uniform `b`) and a SEM half
    /// `(s − b)·Q_ID` that is never materialized anywhere — instead
    /// the scalar `s − b` is Shamir-dealt across `n` replicas as a
    /// per-identity [`ThresholdPkg`], so no single SEM box ever holds
    /// enough to issue a token alone.
    ///
    /// The returned [`ThresholdSystem`] (via
    /// [`ThresholdPkg::system`]) carries the verification keys a
    /// quorum client needs to NIZK-check each replica's partial token;
    /// `t` verified partials Lagrange-combine
    /// ([`ThresholdSystem::combine_token_robust`]) to
    /// `ê(U, (s − b)·Q_ID)`, which
    /// [`UserKey::finish_decrypt`](crate::mediated::UserKey::finish_decrypt)
    /// completes with `ê(U, b·Q_ID)` exactly like a single-SEM token.
    ///
    /// Note the user half is `b·Q_ID`, not the `b·P` of
    /// [`Pkg::extract_split`]: anchoring both halves on `Q_ID` is what
    /// makes the SEM half a *scalar* multiple of `Q_ID`, and therefore
    /// dealable through the §3.2 polynomial machinery with its share
    /// verification intact.
    ///
    /// # Errors
    ///
    /// [`Error::BadThresholdParams`] unless `1 ≤ t ≤ n`.
    pub fn extract_split_threshold(
        &self,
        rng: &mut impl RngCore,
        id: &str,
        t: usize,
        n: usize,
    ) -> Result<(UserKey, ThresholdPkg, Vec<IdKeyShare>), Error> {
        let curve = self.params().curve();
        let q = curve.order();
        let blind = &curve.random_scalar(rng) % q;
        let q_id = self.params().hash_identity(id);
        let d_user = curve.mul(&blind, &q_id);
        // s − b mod q, kept non-negative by adding q first.
        let sem_scalar = &(&(self.master() % q) + q) - &blind;
        let tpkg = ThresholdPkg::from_master(rng, curve.clone(), sem_scalar, t, n)?;
        let shares = tpkg.keygen(id);
        Ok((
            UserKey {
                id: id.to_string(),
                point: d_user,
            },
            tpkg,
            shares,
        ))
    }
}

/// Computes a robust decryption share (`ê(U, d_IDᵢ)` plus the §3.2
/// NIZK) from the curve alone — the SEM-replica-side entry point, which
/// holds a key share but not the cluster's `ThresholdSystem`.
pub fn robust_decryption_share(
    curve: &CurveParams,
    rng: &mut impl RngCore,
    key_share: &IdKeyShare,
    u: &G1Affine,
) -> DecryptionShare {
    let g_i = curve.pairing(u, &key_share.point);
    // Both `ê(P, ·)` pairings share the parameter set's cached
    // prepared generator — line evaluation only, no point arithmetic.
    let prep_p = curve.prepared_generator();
    let v_i = curve.pairing_prepared(prep_p, &key_share.point);
    // Commitment.
    let rho = curve.random_scalar(rng);
    let r_point = curve.mul_generator(&rho);
    let w1 = curve.pairing_prepared(prep_p, &r_point);
    let w2 = curve.pairing(u, &r_point);
    let e = eq_proof_challenge(curve, &g_i, &v_i, &w1, &w2);
    // V = R + e·d_IDᵢ.
    let v = curve.add(&r_point, &curve.mul(&e, &key_share.point));
    DecryptionShare {
        index: key_share.index,
        value: g_i,
        proof: Some(EqProof { w1, w2, e, v }),
    }
}

/// Fiat–Shamir challenge `e = H(g_i, v_i, w1, w2) mod q` shared by
/// prover and verifier.
fn eq_proof_challenge(curve: &CurveParams, g_i: &Gt, v_i: &Gt, w1: &Gt, w2: &Gt) -> BigUint {
    let digest = derive::transcript_hash(
        b"sempair-threshold-eqproof",
        &[
            &curve.gt_to_bytes(g_i),
            &curve.gt_to_bytes(v_i),
            &curve.gt_to_bytes(w1),
            &curve.gt_to_bytes(w2),
        ],
    );
    &BigUint::from_be_bytes(&digest) % curve.order()
}

// --- wire codec --------------------------------------------------------------
//
// `EqProof`'s fields are deliberately private (a proof is opaque), so
// the byte layout lives here rather than in `crate::wire`. Layout:
// `u32 index ‖ u8 has_proof ‖ u16 |g| ‖ g` and, when a proof rides
// along, `u16 |w1| ‖ w1 ‖ u16 |w2| ‖ w2 ‖ u16 |e| ‖ e ‖ point V`
// (compressed, fixed `point_len`). Trailing bytes are rejected.

fn push_chunk(out: &mut Vec<u8>, bytes: &[u8]) {
    debug_assert!(bytes.len() <= u16::MAX as usize);
    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn take_chunk<'a>(r: &mut Reader<'a>) -> Result<&'a [u8], Error> {
    let len = r.u16_be().ok_or(Error::InvalidCiphertext)? as usize;
    r.bytes(len).ok_or(Error::InvalidCiphertext)
}

/// Encodes a decryption share (with its robustness proof, if any) for
/// the wire.
pub fn decryption_share_to_bytes(curve: &CurveParams, share: &DecryptionShare) -> Vec<u8> {
    let mut out = share.index.to_be_bytes().to_vec();
    match &share.proof {
        None => {
            out.push(0);
            push_chunk(&mut out, &curve.gt_to_bytes(&share.value));
        }
        Some(proof) => {
            out.push(1);
            push_chunk(&mut out, &curve.gt_to_bytes(&share.value));
            push_chunk(&mut out, &curve.gt_to_bytes(&proof.w1));
            push_chunk(&mut out, &curve.gt_to_bytes(&proof.w2));
            push_chunk(&mut out, &proof.e.to_be_bytes());
            out.extend_from_slice(&curve.point_to_bytes(&proof.v));
        }
    }
    out
}

/// Decodes [`decryption_share_to_bytes`] output.
///
/// Decoding validates shape only (group membership of `V`, well-formed
/// `Gt` elements); whether the share is *honest* is decided by
/// [`ThresholdSystem::verify_decryption_share`].
///
/// # Errors
///
/// [`Error::InvalidCiphertext`] on malformed bytes.
pub fn decryption_share_from_bytes(
    curve: &CurveParams,
    bytes: &[u8],
) -> Result<DecryptionShare, Error> {
    let mut r = Reader::new(bytes);
    let index = r.u32_be().ok_or(Error::InvalidCiphertext)?;
    let has_proof = match r.u8().ok_or(Error::InvalidCiphertext)? {
        0 => false,
        1 => true,
        _ => return Err(Error::InvalidCiphertext),
    };
    let value = curve
        .gt_from_bytes(take_chunk(&mut r)?)
        .map_err(|_| Error::InvalidCiphertext)?;
    let proof = if has_proof {
        let w1 = curve
            .gt_from_bytes(take_chunk(&mut r)?)
            .map_err(|_| Error::InvalidCiphertext)?;
        let w2 = curve
            .gt_from_bytes(take_chunk(&mut r)?)
            .map_err(|_| Error::InvalidCiphertext)?;
        let e = BigUint::from_be_bytes(take_chunk(&mut r)?);
        let v_bytes = r.bytes(curve.point_len()).ok_or(Error::InvalidCiphertext)?;
        let v = curve
            .point_from_bytes(v_bytes)
            .map_err(|_| Error::InvalidCiphertext)?;
        Some(EqProof { w1, w2, e, v })
    } else {
        None
    };
    if !r.is_empty() {
        return Err(Error::InvalidCiphertext);
    }
    Ok(DecryptionShare {
        index,
        value,
        proof,
    })
}

/// Encodes a [`ThresholdSystem`] for persistence: `u32 t ‖ u32 n ‖
/// P_pub ‖ P_pub^(1) ‖ … ‖ P_pub^(n)` (all points compressed, fixed
/// `point_len`). The curve itself is *not* serialized — the decoder
/// supplies it, so one stored curve spec can back many systems.
pub fn threshold_system_to_bytes(system: &ThresholdSystem) -> Vec<u8> {
    let curve = system.params.curve();
    let mut out = (system.t as u32).to_be_bytes().to_vec();
    out.extend_from_slice(&(system.n as u32).to_be_bytes());
    out.extend_from_slice(&curve.point_to_bytes(system.params.p_pub()));
    for vk in &system.verification_keys {
        out.extend_from_slice(&curve.point_to_bytes(vk));
    }
    out
}

/// Decodes [`threshold_system_to_bytes`] output against `curve`.
///
/// # Errors
///
/// [`Error::InvalidCiphertext`] on malformed bytes;
/// [`Error::BadThresholdParams`] when the embedded `(t, n)` are not
/// `1 ≤ t ≤ n`.
pub fn threshold_system_from_bytes(
    curve: &CurveParams,
    bytes: &[u8],
) -> Result<ThresholdSystem, Error> {
    let mut r = Reader::new(bytes);
    let t = r.u32_be().ok_or(Error::InvalidCiphertext)? as usize;
    let n = r.u32_be().ok_or(Error::InvalidCiphertext)? as usize;
    if t == 0 {
        return Err(Error::BadThresholdParams("t must be at least 1"));
    }
    if t > n {
        return Err(Error::BadThresholdParams("t cannot exceed n"));
    }
    let point_len = curve.point_len();
    let rest = r.rest();
    // The length check above bounds `n` by the actual payload, so this
    // preallocation cannot exceed what the sender really transmitted.
    if rest.len()
        != point_len
            .checked_mul(n + 1)
            .ok_or(Error::InvalidCiphertext)?
    {
        return Err(Error::InvalidCiphertext);
    }
    let mut points = rest.chunks_exact(point_len).map(|chunk| {
        curve
            .point_from_bytes(chunk)
            .map_err(|_| Error::InvalidCiphertext)
    });
    let p_pub = points.next().ok_or(Error::InvalidCiphertext)??;
    let verification_keys = points.collect::<Result<Vec<_>, _>>()?;
    Ok(ThresholdSystem {
        params: IbePublicParams::from_parts(curve.clone(), p_pub),
        t,
        n,
        verification_keys,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf_ibe::Pkg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(t: usize, n: usize) -> (ThresholdPkg, StdRng) {
        let mut rng = StdRng::seed_from_u64(81);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg = ThresholdPkg::setup(&mut rng, curve, t, n).unwrap();
        (pkg, rng)
    }

    #[test]
    fn bad_params_rejected() {
        let mut rng = StdRng::seed_from_u64(82);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        assert!(ThresholdPkg::setup(&mut rng, curve.clone(), 0, 3).is_err());
        assert!(ThresholdPkg::setup(&mut rng, curve, 4, 3).is_err());
    }

    #[test]
    fn dealer_consistency_check() {
        let (pkg, _) = setup(3, 5);
        let sys = pkg.system();
        sys.check_dealer_consistency(&[1, 2, 3]).unwrap();
        sys.check_dealer_consistency(&[2, 4, 5]).unwrap();
        assert!(sys.check_dealer_consistency(&[1, 2]).is_err(), "wrong size");
    }

    #[test]
    fn key_shares_verify_and_forgeries_fail() {
        let (pkg, _) = setup(2, 4);
        let shares = pkg.keygen("alice");
        for share in &shares {
            assert!(pkg.system().verify_key_share(share));
        }
        // A share for the wrong identity fails.
        let mut forged = shares[0].clone();
        forged.id = "bob".into();
        assert!(!pkg.system().verify_key_share(&forged));
        // A share with swapped index fails.
        let mut swapped = shares[0].clone();
        swapped.index = 2;
        assert!(!pkg.system().verify_key_share(&swapped));
    }

    #[test]
    fn threshold_decrypt_roundtrip_every_subset() {
        let (pkg, mut rng) = setup(3, 5);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys
            .params()
            .encrypt_basic(&mut rng, "alice", b"threshold msg");
        let dec: Vec<DecryptionShare> = shares
            .iter()
            .map(|ks| sys.decryption_share(ks, &c.u))
            .collect();
        for a in 0..5 {
            for b in a + 1..5 {
                for cc in b + 1..5 {
                    let subset = vec![dec[a].clone(), dec[b].clone(), dec[cc].clone()];
                    assert_eq!(sys.recombine_basic(&c, &subset).unwrap(), b"threshold msg");
                }
            }
        }
    }

    #[test]
    fn fewer_than_t_shares_insufficient() {
        let (pkg, mut rng) = setup(3, 5);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"msg");
        let dec: Vec<DecryptionShare> = shares[..2]
            .iter()
            .map(|ks| sys.decryption_share(ks, &c.u))
            .collect();
        assert_eq!(
            sys.recombine_basic(&c, &dec),
            Err(Error::NotEnoughShares { needed: 3, got: 2 })
        );
    }

    #[test]
    fn threshold_equals_centralized() {
        // Recombined key must match what a centralized PKG with the same
        // master would produce.
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let central =
            Pkg::from_master(sys.params().curve().clone(), pkg.master_for_tests().clone());
        assert_eq!(central.params().p_pub(), sys.params().p_pub());
        let c = sys.params().encrypt_basic(&mut rng, "carol", b"same msg");
        let key = central.extract("carol");
        let direct = central.params().decrypt_basic(&key, &c).unwrap();
        let shares = pkg.keygen("carol");
        let dec: Vec<DecryptionShare> = shares[..2]
            .iter()
            .map(|ks| sys.decryption_share(ks, &c.u))
            .collect();
        assert_eq!(sys.recombine_basic(&c, &dec).unwrap(), direct);
    }

    #[test]
    fn robust_shares_verify() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"msg");
        for ks in &shares {
            let ds = sys.decryption_share_robust(&mut rng, ks, &c.u);
            sys.verify_decryption_share("alice", &c.u, &ds).unwrap();
            // Proof bound to the identity: verification under another
            // identity fails.
            assert!(sys.verify_decryption_share("bob", &c.u, &ds).is_err());
        }
    }

    #[test]
    fn cheating_share_detected_and_bypassed() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"robust!");
        let mut dec: Vec<DecryptionShare> = shares
            .iter()
            .map(|ks| sys.decryption_share_robust(&mut rng, ks, &c.u))
            .collect();
        // Player 2 lies: swaps in a random Gt value, keeps its proof.
        let curve = sys.params().curve();
        let junk = curve.pairing(
            &curve.mul_generator(&BigUint::from(999u64)),
            curve.generator(),
        );
        dec[1].value = junk;
        let (m, cheaters) = sys.recombine_basic_robust("alice", &c, &dec).unwrap();
        assert_eq!(m, b"robust!");
        assert_eq!(cheaters, vec![2]);
    }

    #[test]
    fn unproved_share_rejected_by_robust_path() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"m");
        let ds = sys.decryption_share(&shares[0], &c.u); // no proof
        assert_eq!(
            sys.verify_decryption_share("alice", &c.u, &ds),
            Err(Error::InvalidProof)
        );
    }

    #[test]
    fn recover_cheaters_key_share() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        // Recover share 3 from shares 1 and 2.
        let recovered = sys.recover_key_share(&shares[..2], 3).unwrap();
        assert_eq!(recovered, shares[2]);
        assert!(sys.verify_key_share(&recovered));
        // And the recovered share decrypts.
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"recover");
        let dec = vec![
            sys.decryption_share(&shares[0], &c.u),
            sys.decryption_share(&recovered, &c.u),
        ];
        assert_eq!(sys.recombine_basic(&c, &dec).unwrap(), b"recover");
    }

    #[test]
    fn tampered_proof_rejected() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"m");
        let good = sys.decryption_share_robust(&mut rng, &shares[0], &c.u);
        // Tamper with each proof component.
        let proof = good.proof.clone().unwrap();
        let curve = sys.params().curve();
        let mut bad = good.clone();
        bad.proof = Some(EqProof {
            e: &proof.e + &BigUint::one(),
            ..proof.clone()
        });
        assert!(sys.verify_decryption_share("alice", &c.u, &bad).is_err());
        let mut bad = good.clone();
        bad.proof = Some(EqProof {
            v: curve.mul_generator(&BigUint::from(5u64)),
            ..proof.clone()
        });
        assert!(sys.verify_decryption_share("alice", &c.u, &bad).is_err());
        let mut bad = good.clone();
        bad.proof = Some(EqProof {
            w1: curve.gt_one(),
            ..proof.clone()
        });
        assert!(sys.verify_decryption_share("alice", &c.u, &bad).is_err());
    }

    #[test]
    fn from_master_deals_the_given_secret() {
        let mut rng = StdRng::seed_from_u64(91);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let master = curve.random_scalar(&mut rng);
        let pkg = ThresholdPkg::from_master(&mut rng, curve.clone(), master.clone(), 2, 3).unwrap();
        assert_eq!(pkg.master_for_tests(), &master);
        // P_pub must be master·P, so it matches a centralized PKG.
        let central = Pkg::from_master(curve, master);
        assert_eq!(central.params().p_pub(), pkg.system().params().p_pub());
        // Dealt shares pass the standard player-side validation.
        for share in pkg.keygen("alice") {
            assert!(pkg.system().verify_key_share(&share));
        }
        pkg.system().check_dealer_consistency(&[1, 3]).unwrap();
    }

    #[test]
    fn combine_token_robust_matches_direct_pairing_and_names_cheaters() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"m");
        let curve = sys.params().curve();
        let mut dec: Vec<DecryptionShare> = shares
            .iter()
            .map(|ks| sys.decryption_share_robust(&mut rng, ks, &c.u))
            .collect();
        // Corrupt player 1's share value.
        dec[0].value = curve.gt_mul(&dec[0].value, &dec[1].value);
        let (token, cheaters) = sys.combine_token_robust("alice", &c.u, &dec).unwrap();
        assert_eq!(cheaters, vec![1]);
        // The combined token equals ê(U, s·Q_ID).
        let q_id = sys.params().hash_identity("alice");
        let d_id = curve.mul(pkg.master_for_tests(), &q_id);
        assert_eq!(token, curve.pairing(&c.u, &d_id));
        // A duplicated index is skipped, not double-counted.
        let dup = vec![dec[1].clone(), dec[1].clone(), dec[2].clone()];
        let (token2, cheaters2) = sys.combine_token_robust("alice", &c.u, &dup).unwrap();
        assert_eq!(token2, token);
        assert!(cheaters2.is_empty());
        // Fewer than t valid shares is a typed failure.
        assert_eq!(
            sys.combine_token_robust("alice", &c.u, &dec[..1]),
            Err(Error::NotEnoughShares { needed: 2, got: 0 })
        );
    }

    #[test]
    fn free_function_share_verifies_under_the_system() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"m");
        // Replica-side path: curve only, no ThresholdSystem in scope.
        let ds = robust_decryption_share(sys.params().curve(), &mut rng, &shares[0], &c.u);
        sys.verify_decryption_share("alice", &c.u, &ds).unwrap();
    }

    #[test]
    fn decryption_share_codec_roundtrip() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let curve = sys.params().curve();
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"m");
        // With proof.
        let robust = sys.decryption_share_robust(&mut rng, &shares[0], &c.u);
        let bytes = decryption_share_to_bytes(curve, &robust);
        let back = decryption_share_from_bytes(curve, &bytes).unwrap();
        assert_eq!(back, robust);
        sys.verify_decryption_share("alice", &c.u, &back).unwrap();
        // Without proof.
        let plain = sys.decryption_share(&shares[1], &c.u);
        let bytes = decryption_share_to_bytes(curve, &plain);
        assert_eq!(decryption_share_from_bytes(curve, &bytes).unwrap(), plain);
        // Malformed inputs are rejected, never panic.
        assert!(decryption_share_from_bytes(curve, &[]).is_err());
        let bytes = decryption_share_to_bytes(curve, &robust);
        assert!(decryption_share_from_bytes(curve, &bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decryption_share_from_bytes(curve, &trailing).is_err());
        let mut bad_flag = bytes;
        bad_flag[4] = 7;
        assert!(decryption_share_from_bytes(curve, &bad_flag).is_err());
    }

    #[test]
    fn threshold_system_codec_roundtrip() {
        let (pkg, mut rng) = setup(2, 3);
        let sys = pkg.system();
        let curve = sys.params().curve();
        let bytes = threshold_system_to_bytes(sys);
        let back = threshold_system_from_bytes(curve, &bytes).unwrap();
        assert_eq!(back.threshold(), 2);
        assert_eq!(back.players(), 3);
        assert_eq!(back.params().p_pub(), sys.params().p_pub());
        // The decoded system verifies live shares like the original.
        let shares = pkg.keygen("alice");
        let c = sys.params().encrypt_basic(&mut rng, "alice", b"m");
        let ds = robust_decryption_share(curve, &mut rng, &shares[0], &c.u);
        back.verify_decryption_share("alice", &c.u, &ds).unwrap();
        // Malformed inputs are rejected, never panic.
        assert!(threshold_system_from_bytes(curve, &[]).is_err());
        assert!(threshold_system_from_bytes(curve, &bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(threshold_system_from_bytes(curve, &trailing).is_err());
        let mut bad_t = bytes.clone();
        bad_t[..4].copy_from_slice(&9u32.to_be_bytes());
        assert!(threshold_system_from_bytes(curve, &bad_t).is_err());
        let mut zero_t = bytes;
        zero_t[..4].copy_from_slice(&0u32.to_be_bytes());
        assert!(threshold_system_from_bytes(curve, &zero_t).is_err());
    }

    #[test]
    fn mediated_threshold_split_decrypts_end_to_end() {
        use crate::mediated::DecryptToken;
        let mut rng = StdRng::seed_from_u64(91);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg = Pkg::setup(&mut rng, curve);
        let (user, tpkg, shares) = pkg
            .extract_split_threshold(&mut rng, "alice", 2, 3)
            .unwrap();
        // Every dealt share verifies against the per-identity system.
        for share in &shares {
            assert!(tpkg.system().verify_key_share(share));
        }
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"quorum mail")
            .unwrap();
        // Replicas emit robust partials; two of three combine.
        let curve = pkg.params().curve();
        let partials: Vec<DecryptionShare> = shares[..2]
            .iter()
            .map(|s| robust_decryption_share(curve, &mut rng, s, &c.u))
            .collect();
        let (g, cheaters) = tpkg
            .system()
            .combine_token_robust("alice", &c.u, &partials)
            .unwrap();
        assert!(cheaters.is_empty());
        // The combined Gt element is a drop-in mediated token.
        let m = user
            .finish_decrypt(pkg.params(), &c, &DecryptToken(g))
            .unwrap();
        assert_eq!(m, b"quorum mail");
        // Bad params surface as typed errors.
        assert!(pkg.extract_split_threshold(&mut rng, "x", 0, 3).is_err());
        assert!(pkg.extract_split_threshold(&mut rng, "x", 4, 3).is_err());
    }
}
