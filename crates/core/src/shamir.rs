//! Shamir secret sharing over `Z_q` and Lagrange recombination.
//!
//! Both the threshold IBE (§3) and the threshold GDH signature (§5 via
//! Boldyreva \[2\]) share a secret scalar through a random degree-`t−1`
//! polynomial and recombine *in the exponent* with Lagrange
//! coefficients evaluated at 0.

use crate::Error;
use rand::RngCore;
use sempair_bigint::{modular, rng as brng, BigInt, BigUint};

/// A random polynomial `f(x) = s + a₁x + … + a_{t−1}x^{t−1}` over `Z_q`.
///
/// Every coefficient is secret (together they determine the shared
/// secret): `Debug` redacts them and dropping the polynomial erases
/// them.
#[derive(Clone)]
pub struct Polynomial {
    /// Coefficients, constant term first. `coeffs[0]` is the secret.
    coeffs: Vec<BigUint>,
    q: BigUint,
}

impl std::fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Polynomial")
            .field("coeffs", &"<redacted>")
            .field("degree", &(self.coeffs.len().saturating_sub(1)))
            .field("q_bits", &self.q.bits())
            .finish()
    }
}

impl Drop for Polynomial {
    fn drop(&mut self) {
        for c in &mut self.coeffs {
            c.zeroize();
        }
    }
}

impl Polynomial {
    /// Samples a polynomial of degree `t − 1` with constant term
    /// `secret`, for a `(t, n)` sharing.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `q < 2`.
    pub fn sample(rng: &mut impl RngCore, secret: &BigUint, t: usize, q: &BigUint) -> Self {
        assert!(t >= 1, "threshold must be at least 1");
        assert!(q > &BigUint::one(), "modulus too small");
        let mut coeffs = Vec::with_capacity(t);
        coeffs.push(secret % q);
        for _ in 1..t {
            coeffs.push(brng::random_below(rng, q));
        }
        Polynomial {
            coeffs,
            q: q.clone(),
        }
    }

    /// The shared secret `f(0)`.
    pub fn secret(&self) -> &BigUint {
        &self.coeffs[0]
    }

    /// Threshold `t` (number of shares needed to reconstruct).
    pub fn threshold(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates `f(x)` by Horner's rule.
    pub fn eval(&self, x: &BigUint) -> BigUint {
        let mut acc = BigUint::zero();
        for c in self.coeffs.iter().rev() {
            acc = modular::mod_add(&modular::mod_mul(&acc, x, &self.q), c, &self.q);
        }
        acc
    }

    /// Evaluates at a small player index (players are `1..=n`).
    pub fn eval_index(&self, i: u32) -> BigUint {
        self.eval(&BigUint::from(i as u64))
    }

    /// Produces the shares `(i, f(i))` for players `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < t`.
    pub fn shares(&self, n: usize) -> Vec<Share> {
        assert!(n >= self.threshold(), "need n >= t");
        (1..=n as u32)
            .map(|i| Share {
                index: i,
                value: self.eval_index(i),
            })
            .collect()
    }
}

/// One share `(i, f(i))`.
///
/// The share value is secret material: `Debug` redacts it, equality is
/// constant-time in the value, and dropping the share erases it.
#[derive(Clone, Eq)]
pub struct Share {
    /// Player index `i ≥ 1`.
    pub index: u32,
    /// Share value `f(i) mod q`.
    pub value: BigUint,
}

impl std::fmt::Debug for Share {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Share")
            .field("index", &self.index)
            .field("value", &"<redacted>")
            .finish()
    }
}

impl PartialEq for Share {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.value.ct_eq(&other.value)
    }
}

impl Drop for Share {
    fn drop(&mut self) {
        self.value.zeroize();
    }
}

/// Lagrange coefficient `λ_i = Π_{j ≠ i} (x − j)/(i − j) mod q`
/// evaluated at `x` for the index set `indices`.
///
/// # Errors
///
/// Returns [`Error::DuplicateShare`] on repeated indices and
/// [`Error::BadThresholdParams`] for a zero index.
pub fn lagrange_coefficient_at(
    indices: &[u32],
    i: u32,
    x: u64,
    q: &BigUint,
) -> Result<BigUint, Error> {
    check_indices(indices)?;
    debug_assert!(indices.contains(&i));
    let xi = BigInt::from(x as i64);
    let mut num = BigInt::one();
    let mut den = BigInt::one();
    for &j in indices {
        if j == i {
            continue;
        }
        num = &num * &(&xi - &BigInt::from(j as i64));
        den = &den * &BigInt::from(i as i64 - j as i64);
    }
    let num_mod = num.rem_euclid(q);
    let den_mod = den.rem_euclid(q);
    let den_inv = modular::mod_inv(&den_mod, q)
        .map_err(|_| Error::BadThresholdParams("index difference not invertible"))?;
    Ok(modular::mod_mul(&num_mod, &den_inv, q))
}

/// Lagrange coefficient at `x = 0` (secret reconstruction).
///
/// # Errors
///
/// See [`lagrange_coefficient_at`].
pub fn lagrange_coefficient(indices: &[u32], i: u32, q: &BigUint) -> Result<BigUint, Error> {
    lagrange_coefficient_at(indices, i, 0, q)
}

/// Reconstructs the secret `f(0)` from at least `t` shares (uses
/// exactly the shares given — pass a `t`-subset).
///
/// # Errors
///
/// Returns [`Error::DuplicateShare`] / [`Error::BadThresholdParams`] on
/// malformed inputs.
pub fn reconstruct(shares: &[Share], q: &BigUint) -> Result<BigUint, Error> {
    if shares.is_empty() {
        return Err(Error::NotEnoughShares { needed: 1, got: 0 });
    }
    let indices: Vec<u32> = shares.iter().map(|s| s.index).collect();
    check_indices(&indices)?;
    let mut acc = BigUint::zero();
    for share in shares {
        let li = lagrange_coefficient(&indices, share.index, q)?;
        acc = modular::mod_add(&acc, &modular::mod_mul(&li, &share.value, q), q);
    }
    Ok(acc)
}

fn check_indices(indices: &[u32]) -> Result<(), Error> {
    for (k, &i) in indices.iter().enumerate() {
        if i == 0 {
            return Err(Error::BadThresholdParams(
                "player index 0 is the secret position",
            ));
        }
        if indices[k + 1..].contains(&i) {
            return Err(Error::DuplicateShare { player: i });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q() -> BigUint {
        "0xffffffffffffffc5".parse().unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(61)
    }

    #[test]
    fn any_t_subset_reconstructs() {
        let mut rng = rng();
        let q = q();
        let secret = brng::random_below(&mut rng, &q);
        let poly = Polynomial::sample(&mut rng, &secret, 3, &q);
        let shares = poly.shares(5);
        // All C(5,3) subsets.
        for a in 0..5 {
            for b in a + 1..5 {
                for c in b + 1..5 {
                    let subset = vec![shares[a].clone(), shares[b].clone(), shares[c].clone()];
                    assert_eq!(reconstruct(&subset, &q).unwrap(), secret);
                }
            }
        }
    }

    #[test]
    fn fewer_than_t_shares_give_wrong_secret() {
        let mut rng = rng();
        let q = q();
        let secret = BigUint::from(42u64);
        let poly = Polynomial::sample(&mut rng, &secret, 3, &q);
        let shares = poly.shares(5);
        // 2 shares interpolate a line — almost surely not the secret.
        let partial = vec![shares[0].clone(), shares[1].clone()];
        assert_ne!(reconstruct(&partial, &q).unwrap(), secret);
    }

    #[test]
    fn t_equals_one_is_replication() {
        let mut rng = rng();
        let q = q();
        let secret = BigUint::from(7u64);
        let poly = Polynomial::sample(&mut rng, &secret, 1, &q);
        for share in poly.shares(4) {
            assert_eq!(share.value, secret);
        }
    }

    #[test]
    fn duplicate_and_zero_indices_rejected() {
        let q = q();
        let shares = vec![
            Share {
                index: 2,
                value: BigUint::from(1u64),
            },
            Share {
                index: 2,
                value: BigUint::from(2u64),
            },
        ];
        assert_eq!(
            reconstruct(&shares, &q),
            Err(Error::DuplicateShare { player: 2 })
        );
        let shares = vec![Share {
            index: 0,
            value: BigUint::one(),
        }];
        assert!(matches!(
            reconstruct(&shares, &q),
            Err(Error::BadThresholdParams(_))
        ));
        assert!(reconstruct(&[], &q).is_err());
    }

    #[test]
    fn lagrange_at_general_point_interpolates_share() {
        // The proof of Thm 3.1 uses interpolation at arbitrary points:
        // f(x) = Σ λ_i(x) f(i). Check against direct evaluation.
        let mut rng = rng();
        let q = q();
        let poly = Polynomial::sample(&mut rng, &BigUint::from(99u64), 4, &q);
        let indices = [1u32, 3, 5, 8];
        for x in [0u64, 2, 7, 11] {
            let mut acc = BigUint::zero();
            for &i in &indices {
                let li = lagrange_coefficient_at(&indices, i, x, &q).unwrap();
                acc = modular::mod_add(&acc, &modular::mod_mul(&li, &poly.eval_index(i), &q), &q);
            }
            assert_eq!(acc, poly.eval(&BigUint::from(x)), "x={x}");
        }
    }

    #[test]
    fn coefficients_sum_property() {
        // Σ λ_i(0) · i⁰-weighted check: for f(x) = 1 constant, any
        // subset reconstructs 1, i.e. Σ λ_i = 1.
        let q = q();
        let indices = [2u32, 4, 9];
        let mut acc = BigUint::zero();
        for &i in &indices {
            acc = modular::mod_add(&acc, &lagrange_coefficient(&indices, i, &q).unwrap(), &q);
        }
        assert!(acc.is_one());
    }

    #[test]
    fn polynomial_eval_matches_manual() {
        let q = BigUint::from(97u64);
        let poly = Polynomial {
            coeffs: vec![
                BigUint::from(3u64),
                BigUint::from(5u64),
                BigUint::from(7u64),
            ],
            q: q.clone(),
        };
        // f(x) = 3 + 5x + 7x² mod 97; f(10) = 3 + 50 + 700 = 753 ≡ 73.
        assert_eq!(poly.eval(&BigUint::from(10u64)), BigUint::from(753u64 % 97));
        assert_eq!(poly.secret(), &BigUint::from(3u64));
        assert_eq!(poly.threshold(), 3);
    }
}
