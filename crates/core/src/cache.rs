//! A bounded, weighted LRU cache primitive for precomputed crypto
//! values.
//!
//! Every scheme in this crate leans on values that are pure functions
//! of `(params, identity)` — the mask base `ê(P_pub, Q_ID)`, the hashed
//! identity point `Q_ID`, a half-key's prepared Miller lines. They are
//! expensive to build (a pairing, a hash-to-curve, a Miller-chain
//! walk) and small to keep, which makes a long-lived server want a
//! cache — and the repo's bounded-state discipline (DESIGN.md §9)
//! demands that cache be capped, counted, and observable.
//!
//! [`BoundedLru`] is the single-threaded primitive: a map plus a lazy
//! recency queue, bounded by an **entry cap** and accounting a
//! caller-supplied per-entry **weight** (approximate bytes) so
//! occupancy can be exported in memory terms, not just entry counts.
//! [`SharedLru`] wraps it in a [`crate::lockdep::TrackedMutex`] for the
//! get-outside-compute-insert pattern used by every consumer: look up
//! under the lock, compute the miss outside it (concurrent misses on
//! one key duplicate work instead of serializing it), insert the
//! result. Counters (hits, misses, evictions, occupancy, weight) are
//! monotone and cheap to snapshot.
//!
//! The recency queue is *lazy*: a touch pushes a fresh `(stamp, key)`
//! slot instead of splicing the old one out, and eviction skips slots
//! whose stamp no longer matches the live entry. The queue is kept
//! bounded by compacting whenever stale slots outnumber live ones —
//! the same tombstone idea that fixes the idempotency-window churn bug
//! in `sem-net` (DESIGN.md §14).

use crate::lockdep::{LockClass, TrackedMutex};
use std::borrow::Borrow;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Monotone hit/miss/eviction counters plus current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (including lookups on a disabled cache).
    pub misses: u64,
    /// Live entries removed to make room for an insert.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Sum of the resident entries' weights (approximate bytes).
    pub weight: usize,
}

/// One resident entry: the value, its weight, and the recency stamp of
/// its newest queue slot (older slots for the same key are stale).
#[derive(Debug)]
struct Slot<V> {
    value: V,
    weight: usize,
    stamp: u64,
}

/// A bounded LRU map with weight accounting.
///
/// `capacity` is the maximum number of resident entries; `0` disables
/// the cache entirely (lookups miss, inserts drop — the disabled state
/// still counts misses so a misconfigured cache is visible in
/// metrics). Weights do not bound admission; they are accounting, so
/// operators can translate an entry cap into bytes.
#[derive(Debug)]
pub struct BoundedLru<K, V> {
    map: HashMap<K, Slot<V>>,
    /// Recency queue, oldest first. Slots are `(stamp, key)`; a slot is
    /// live iff the map entry for `key` carries the same stamp.
    order: VecDeque<(u64, K)>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    weight: usize,
}

impl<K: Eq + Hash + Clone, V> BoundedLru<K, V> {
    /// Creates a cache holding at most `capacity` entries (`0`
    /// disables).
    pub fn new(capacity: usize) -> Self {
        BoundedLru {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            weight: 0,
        }
    }

    /// The configured entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency on
    /// a hit.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.clock += 1;
        let stamp = self.clock;
        let owned = match self.map.get_key_value(key) {
            Some((k, _)) => k.clone(),
            None => {
                self.misses += 1;
                return None;
            }
        };
        self.hits += 1;
        if let Some(slot) = self.map.get_mut(key) {
            slot.stamp = stamp;
        }
        self.order.push_back((stamp, owned));
        self.compact_if_bloated();
        self.map.get(key).map(|slot| &slot.value)
    }

    /// Looks up `key` without touching recency or counters.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.get(key).map(|slot| &slot.value)
    }

    /// Inserts `key → value` with the given weight, evicting
    /// least-recently-used entries if the cache is full. A re-insert of
    /// a resident key replaces its value and refreshes recency. On a
    /// disabled cache (`capacity == 0`) this is a no-op.
    pub fn insert(&mut self, key: K, value: V, weight: usize) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let stamp = self.clock;
        if let Some(slot) = self.map.get_mut(&key) {
            self.weight = self.weight - slot.weight + weight;
            *slot = Slot {
                value,
                weight,
                stamp,
            };
            self.order.push_back((stamp, key));
            self.compact_if_bloated();
            return;
        }
        while self.map.len() >= self.capacity {
            if !self.evict_oldest() {
                break;
            }
        }
        self.weight += weight;
        self.map.insert(
            key.clone(),
            Slot {
                value,
                weight,
                stamp,
            },
        );
        self.order.push_back((stamp, key));
        self.compact_if_bloated();
    }

    /// Removes `key`, returning its value. The stale queue slot is left
    /// behind and skipped at eviction time.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let slot = self.map.remove(key)?;
        self.weight -= slot.weight;
        Some(slot.value)
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.weight = 0;
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            weight: self.weight,
        }
    }

    /// Pops queue slots until one live entry has been evicted. Stale
    /// slots (key gone, or re-touched under a newer stamp) are
    /// discarded without counting as evictions — the fix for the FIFO
    /// churn bug: a removed or refreshed key must never take a live
    /// entry down with it.
    fn evict_oldest(&mut self) -> bool {
        while let Some((stamp, key)) = self.order.pop_front() {
            let live = self.map.get(&key).is_some_and(|slot| slot.stamp == stamp);
            if live {
                if let Some(slot) = self.map.remove(&key) {
                    self.weight -= slot.weight;
                }
                self.evictions += 1;
                return true;
            }
        }
        false
    }

    /// Rebuilds the queue when stale slots dominate, keeping its length
    /// within a small multiple of the resident entry count.
    fn compact_if_bloated(&mut self) {
        if self.order.len() <= 2 * self.map.len() + 8 {
            return;
        }
        let map = &self.map;
        self.order
            .retain(|(stamp, key)| map.get(key).is_some_and(|slot| slot.stamp == *stamp));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = BoundedLru::new(2);
        cache.insert("a", 1, 10);
        cache.insert("b", 2, 10);
        assert_eq!(cache.get("a"), Some(&1)); // refresh "a"
        cache.insert("c", 3, 10); // evicts "b", the LRU
        assert_eq!(cache.peek("a"), Some(&1));
        assert_eq!(cache.peek("b"), None);
        assert_eq!(cache.peek("c"), Some(&3));
        let counters = cache.counters();
        assert_eq!(counters.evictions, 1);
        assert_eq!(counters.entries, 2);
        assert_eq!(counters.weight, 20);
    }

    #[test]
    fn removed_key_does_not_evict_live_entries() {
        // The churn scenario: remove a key, re-insert it, then fill the
        // cache. The stale slot for the first insert must not take the
        // re-inserted entry down when it reaches the queue front.
        let mut cache = BoundedLru::new(2);
        cache.insert("x", 1, 1);
        cache.remove("x");
        cache.insert("x", 2, 1);
        cache.insert("y", 3, 1);
        // One more insert evicts exactly one live entry ("x", the LRU),
        // not two.
        cache.insert("z", 4, 1);
        assert_eq!(cache.peek("x"), None);
        assert_eq!(cache.peek("y"), Some(&3));
        assert_eq!(cache.peek("z"), Some(&4));
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_but_counts() {
        let mut cache = BoundedLru::new(0);
        cache.insert("a", 1, 1);
        assert_eq!(cache.get("a"), None);
        assert_eq!(cache.get("a"), None);
        let counters = cache.counters();
        assert_eq!(counters.entries, 0);
        assert_eq!(counters.misses, 2);
        assert_eq!(counters.weight, 0);
    }

    #[test]
    fn reinsert_updates_weight_in_place() {
        let mut cache = BoundedLru::new(4);
        cache.insert("a", 1, 100);
        cache.insert("a", 2, 40);
        let counters = cache.counters();
        assert_eq!(counters.entries, 1);
        assert_eq!(counters.weight, 40);
        assert_eq!(cache.peek("a"), Some(&2));
    }

    #[test]
    fn queue_stays_bounded_under_touch_churn() {
        let mut cache = BoundedLru::new(8);
        for i in 0..8 {
            cache.insert(i, i, 1);
        }
        for round in 0..1000 {
            assert!(cache.get(&(round % 8)).is_some());
        }
        assert!(
            cache.order.len() <= 2 * cache.map.len() + 8,
            "lazy queue must compact: len {}",
            cache.order.len()
        );
    }

    #[test]
    fn shared_lru_single_entry_for_concurrent_misses() {
        let cache: SharedLru<String, u64> = SharedLru::new(16);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for _ in 0..3 {
                        let value = match cache.get("k") {
                            Some(v) => v,
                            None => {
                                // "Compute" outside the lock.
                                cache.insert("k".to_string(), 7, 8);
                                7
                            }
                        };
                        assert_eq!(value, 7);
                    }
                });
            }
        });
        let counters = cache.counters();
        assert_eq!(counters.hits + counters.misses, 12);
        assert_eq!(counters.entries, 1);
    }
}

/// A [`BoundedLru`] behind a [`TrackedMutex`] (lock class
/// `CacheTier`, the innermost serving-path class: revocation takes it
/// while holding a shard write lock), for sharing across server
/// worker threads. Values are returned by clone, so consumers
/// typically store `Arc`s (or small copy-on-clone values like `Gt`).
#[derive(Debug)]
pub struct SharedLru<K, V> {
    inner: TrackedMutex<BoundedLru<K, V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> SharedLru<K, V> {
    /// Creates a shared cache holding at most `capacity` entries (`0`
    /// disables).
    pub fn new(capacity: usize) -> Self {
        SharedLru {
            // lock:class(CacheTier)
            inner: TrackedMutex::new(LockClass::CacheTier, BoundedLru::new(capacity)),
        }
    }

    /// Cloning lookup; counts a hit or miss.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.inner.lock().get(key).cloned()
    }

    /// Inserts `key → value` with the given weight.
    pub fn insert(&self, key: K, value: V, weight: usize) {
        self.inner.lock().insert(key, value, weight);
    }

    /// Removes `key` (revocation-coherence hook: call while holding the
    /// state write lock so no stale entry survives a revoke).
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.inner.lock().remove(key)
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// The configured entry cap.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        self.inner.lock().counters()
    }
}
