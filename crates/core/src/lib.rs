//! # sempair-core
//!
//! The paper's contribution (Libert & Quisquater, PODC 2003):
//! revocation-capable and threshold pairing-based cryptosystems.
//!
//! * [`bf_ibe`] — the Boneh–Franklin identity-based encryption scheme:
//!   `BasicIdent` (IND-ID-CPA) and `FullIdent` (Fujisaki–Okamoto,
//!   IND-ID-CCA), the substrate of §§3–4.
//! * [`shamir`] — Shamir secret sharing over `Z_q` with Lagrange
//!   recombination, used by every threshold construction.
//! * [`threshold`] — §3: the `(t, n)` threshold IBE with verifiable key
//!   shares and the pairing-equality NIZK that makes decryption
//!   *robust* (cheating players are detected).
//! * [`mediated`] — §4: the mediated (SEM) Boneh–Franklin IBE with
//!   instant revocation; a user+SEM collusion breaks only revocation,
//!   never other users' confidentiality.
//! * [`gdh`] — §5: the GDH (BLS) signature, Boldyreva's threshold
//!   variant, and the mediated GDH signature whose SEM→user token is a
//!   single short group element.
//! * [`elgamal`] — the §4 closing remark: mediated FO-ElGamal (a plain
//!   public-key scheme with SEM revocation, no pairing needed).
//! * [`encryptor`] — a long-lived encryption handle caching the
//!   per-identity mask base `ê(P_pub, Q_ID)` behind a bounded map, with
//!   cache misses computed through a prepared pairing.
//! * [`cache`] — the bounded, weighted LRU primitive behind every
//!   precompute cache: entry-capped, weight-accounted, with monotone
//!   hit/miss/eviction counters for metrics export.
//! * [`signcryption`] — the conclusion's future-work item: a mediated
//!   signcryption where *both* the sender's and the receiver's
//!   capabilities are instantly revocable.
//! * [`dkg`] — joint-Feldman distributed key generation for the
//!   threshold GDH scheme, removing the trusted dealer (the extension
//!   Boldyreva \[2\] points to).
//! * [`checked`] — the Fouque–Pointcheval validity-proof mechanism
//!   §3.3 sketches for a chosen-ciphertext-secure threshold IBE:
//!   servers verify ciphertexts *before* issuing shares.
//!
//! ```
//! use sempair_core::bf_ibe::Pkg;
//! use sempair_pairing::CurveParams;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
//! let pkg = Pkg::setup(&mut rng, curve);
//! let key = pkg.extract("bob@example.com");
//! let c = pkg.params().encrypt_full(&mut rng, "bob@example.com", b"hello bob").unwrap();
//! assert_eq!(pkg.params().decrypt_full(&key, &c).unwrap(), b"hello bob");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bf_ibe;
pub mod cache;
pub mod checked;
pub mod cursor;
pub mod dkg;
pub mod elgamal;
pub mod encryptor;
pub mod gdh;
pub mod lockdep;
pub mod mediated;
pub mod shamir;
pub mod signcryption;
pub mod threshold;
pub mod wire;

use std::error::Error as StdError;
use std::fmt;

/// Errors across the pairing-based schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Ciphertext failed its validity check (`U ≠ rP` after FO
    /// decapsulation) or has malformed components.
    InvalidCiphertext,
    /// The identity is revoked; the SEM refuses to serve it.
    Revoked,
    /// The SEM/PKG holds no key material for this identity.
    UnknownIdentity,
    /// A decryption/signature share failed verification.
    InvalidShare {
        /// Index of the offending player.
        player: u32,
    },
    /// Fewer than `t` valid shares were provided.
    NotEnoughShares {
        /// Threshold required.
        needed: usize,
        /// Valid shares available.
        got: usize,
    },
    /// Two shares carry the same player index.
    DuplicateShare {
        /// The duplicated index.
        player: u32,
    },
    /// Signature rejected.
    InvalidSignature,
    /// A zero-knowledge proof failed verification.
    InvalidProof,
    /// Threshold parameters are inconsistent (`t = 0`, `t > n`, index 0…).
    BadThresholdParams(&'static str),
    /// A wire frame (or one of its fields) exceeds the protocol size
    /// limits and was rejected at encode time rather than emitted
    /// corrupt.
    FrameTooLarge,
    /// The transport to the SEM failed (connection refused, torn, or
    /// deadline exceeded) after exhausting any configured retries.
    Transport,
    /// Fewer than `t` live, honest SEM replicas answered: the quorum
    /// needed to combine a token no longer exists.
    QuorumLost,
    /// The SEM shed the request because its bounded job queue is full;
    /// the request was **not** executed and may be retried later.
    Overloaded,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidCiphertext => write!(f, "invalid ciphertext"),
            Error::Revoked => write!(f, "identity is revoked"),
            Error::UnknownIdentity => write!(f, "identity unknown"),
            Error::InvalidShare { player } => write!(f, "invalid share from player {player}"),
            Error::NotEnoughShares { needed, got } => {
                write!(f, "not enough valid shares: need {needed}, got {got}")
            }
            Error::DuplicateShare { player } => {
                write!(f, "duplicate share for player {player}")
            }
            Error::InvalidSignature => write!(f, "invalid signature"),
            Error::InvalidProof => write!(f, "invalid zero-knowledge proof"),
            Error::BadThresholdParams(why) => write!(f, "bad threshold parameters: {why}"),
            Error::FrameTooLarge => write!(f, "frame exceeds protocol size limits"),
            Error::Transport => write!(f, "transport failure talking to the SEM"),
            Error::QuorumLost => write!(f, "fewer than t live honest SEM replicas"),
            Error::Overloaded => write!(f, "SEM overloaded: request queue is full"),
        }
    }
}

impl StdError for Error {}
