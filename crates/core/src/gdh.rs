//! The GDH (BLS) signature and its threshold/mediated variants (§5).
//!
//! The base scheme is Boneh–Lynn–Shacham short signatures over a
//! Gap-Diffie-Hellman group: `σ = x·H(m)`, verified by checking that
//! `(P, R = xP, H(m), σ)` is a Diffie–Hellman tuple via the pairing:
//! `ê(P, σ) = ê(R, H(m))`.
//!
//! * [`ThresholdGdh`] — Boldyreva's `(t, n)` threshold version \[2\]:
//!   partial signatures `σᵢ = f(i)·H(m)` recombine with Lagrange
//!   coefficients. Non-interactive and deterministic, which is exactly
//!   why §5 singles it out: probabilistic threshold signatures would
//!   force extra SEM↔user rounds for joint nonce generation.
//! * [`GdhSem`]/[`GdhUser`] — the mediated version: a 2-of-2 additive
//!   split `x = x_user + x_sem`; the SEM's token is a *single
//!   compressed G1 element* (~`|p|` bits vs 1024 for mRSA, the paper's
//!   headline bandwidth win).

use crate::shamir::{self, Polynomial};
use crate::Error;
use rand::RngCore;
use sempair_bigint::{modular, BigUint};
use sempair_hash::derive;
use sempair_pairing::{CurveParams, G1Affine};
use std::collections::{HashMap, HashSet};

/// Domain tag for the message hash `h : {0,1}* → G1`.
const MSG_TAG: &[u8] = b"sempair-gdh-h";

/// A GDH public key `R = xP`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GdhPublicKey {
    /// The public point.
    pub point: G1Affine,
}

/// A GDH secret key `x`.
///
/// Secret material: `Debug` redacts the scalar and dropping the key
/// erases it.
#[derive(Clone)]
pub struct GdhSecretKey {
    /// The secret scalar.
    pub scalar: BigUint,
}

impl std::fmt::Debug for GdhSecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GdhSecretKey")
            .field("scalar", &"<redacted>")
            .finish()
    }
}

impl Drop for GdhSecretKey {
    fn drop(&mut self) {
        self.scalar.zeroize();
    }
}

/// A (short) GDH signature `σ = x·H(m) ∈ G1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub G1Affine);

/// Hashes a message onto `G1`.
pub fn hash_message(curve: &CurveParams, message: &[u8]) -> G1Affine {
    curve.hash_to_g1(MSG_TAG, message)
}

/// Generates a keypair.
pub fn keygen(rng: &mut impl RngCore, curve: &CurveParams) -> (GdhSecretKey, GdhPublicKey) {
    let x = curve.random_scalar(rng);
    let point = curve.mul_generator(&x);
    (GdhSecretKey { scalar: x }, GdhPublicKey { point })
}

/// Signs: `σ = x·H(m)`.
pub fn sign(curve: &CurveParams, key: &GdhSecretKey, message: &[u8]) -> Signature {
    Signature(curve.mul(&key.scalar, &hash_message(curve, message)))
}

/// Verifies `ê(P, σ) = ê(R, H(m))`.
///
/// # Errors
///
/// Returns [`Error::InvalidSignature`] on mismatch or malformed point.
pub fn verify(
    curve: &CurveParams,
    key: &GdhPublicKey,
    message: &[u8],
    sig: &Signature,
) -> Result<(), Error> {
    if !curve.is_in_group(&sig.0) {
        return Err(Error::InvalidSignature);
    }
    let h = hash_message(curve, message);
    if curve.pairing_equals(curve.generator(), &sig.0, &key.point, &h) {
        Ok(())
    } else {
        Err(Error::InvalidSignature)
    }
}

// --- batch verification ------------------------------------------------------

/// Domain tag for batch-verification coefficient derivation.
const BATCH_TAG: &[u8] = b"sempair-gdh-batch";

/// Small-exponent soundness parameter: coefficients are `ℓ`-bit, so a
/// bad batch survives the combined check with probability `≈ 2⁻ℓ`.
const BATCH_COEFF_BITS: usize = 64;

/// Hash-derived batch coefficients bound to the batch transcript
/// (Fiat–Shamir style, so callers need no RNG): the signatures are
/// fixed *before* the combination that tests them is known, which is
/// what makes the random-linear-combination check sound against
/// adversarially correlated forgeries.
///
/// Coefficients use the small-exponents test (Bellare–Garay–Rabin):
/// `cᵢ ∈ [1, 2^ℓ)` with `ℓ = 64` (capped below the group order for toy
/// curves) keeps the failure probability at `2⁻ℓ` while making the
/// combiner's multi-scalar multiplications run over `ℓ`-bit scalars
/// instead of full-width ones.
fn batch_coefficients(
    tag: &[u8],
    curve: &CurveParams,
    transcript: &[u8],
    n: usize,
) -> Vec<BigUint> {
    let ell = BATCH_COEFF_BITS.min(curve.order().bits() - 1);
    let bound = BigUint::one() << ell;
    (0..n)
        .map(|i| {
            let mut input = Vec::with_capacity(transcript.len() + 8);
            input.extend_from_slice(transcript);
            input.extend_from_slice(&(i as u64).to_be_bytes());
            derive::hash_to_scalar(tag, &input, &bound)
        })
        .collect()
}

/// The 2-pairing random-linear-combination check for a same-key batch.
/// Assumes every signature already passed the group-membership check.
///
/// Hash side, fast path first: combine the *pre-cofactor-clearing*
/// first candidates and clear once — `Σ cᵢ·H(mᵢ) = cofactor ·
/// Σ cᵢ·Candᵢ`, one cofactor multiplication per batch instead of one
/// per message. The identity fails only for inputs whose first
/// candidate clears to infinity (`hash_to_g1`'s retry guard then picks
/// the next candidate), so a fast-path mismatch is re-checked against
/// the exact per-message hashes before the batch is declared bad:
/// completeness is exact, and a fast-path *accept* diverging from the
/// exact hashes would require an input found by `≈ r` hash evaluations
/// (collision-search class, see
/// [`CurveParams::hash_to_g1_candidate`]).
fn batch_check_same_key(
    curve: &CurveParams,
    key: &GdhPublicKey,
    entries: &[(&[u8], &Signature)],
) -> bool {
    let fast = batch_check_fast(curve, key, entries);
    if fast.accepted {
        return true;
    }
    // Exact fallback: only differs from the fast path when a candidate
    // tripped the infinity guard, so skip the second pairing otherwise.
    let hash_terms: Vec<(BigUint, G1Affine)> = fast
        .coeffs
        .iter()
        .zip(entries)
        .map(|(c, (message, _))| (c.clone(), hash_message(curve, message)))
        .collect();
    let exact_hash = curve.multi_mul(&hash_terms);
    fast.recheck_exact(curve, key, &exact_hash)
}

/// Outcome of the candidate fast path, carrying what the exact
/// fallback needs so callers that already hold (or go on to compute)
/// the per-message hashes never redo the transcript/MSM work.
struct FastBatchCheck {
    accepted: bool,
    coeffs: Vec<BigUint>,
    combined_sig: G1Affine,
    fast_hash: G1Affine,
}

impl FastBatchCheck {
    /// The exact-fallback decision given the combined exact hash.
    fn recheck_exact(
        &self,
        curve: &CurveParams,
        key: &GdhPublicKey,
        exact_hash: &G1Affine,
    ) -> bool {
        if *exact_hash == self.fast_hash {
            // Same combined point the fast pairing already rejected.
            return false;
        }
        curve.pairing_equals(
            curve.generator(),
            &self.combined_sig,
            &key.point,
            exact_hash,
        )
    }
}

fn batch_check_fast(
    curve: &CurveParams,
    key: &GdhPublicKey,
    entries: &[(&[u8], &Signature)],
) -> FastBatchCheck {
    let mut transcript = curve.point_to_bytes(&key.point);
    for (message, sig) in entries {
        transcript.extend_from_slice(&(message.len() as u64).to_be_bytes());
        transcript.extend_from_slice(message);
        transcript.extend_from_slice(&curve.point_to_bytes(&sig.0));
    }
    let coeffs = batch_coefficients(BATCH_TAG, curve, &transcript, entries.len());
    let sig_terms: Vec<(BigUint, G1Affine)> = coeffs
        .iter()
        .zip(entries)
        .map(|(c, (_, sig))| (c.clone(), sig.0.clone()))
        .collect();
    let combined_sig = curve.multi_mul(&sig_terms);
    let candidate_terms: Vec<(BigUint, G1Affine)> = coeffs
        .iter()
        .zip(entries)
        .map(|(c, (message, _))| (c.clone(), curve.hash_to_g1_candidate(MSG_TAG, message)))
        .collect();
    let fast_hash = curve.mul(curve.cofactor(), &curve.multi_mul(&candidate_terms));
    let accepted = curve.pairing_equals(curve.generator(), &combined_sig, &key.point, &fast_hash);
    FastBatchCheck {
        accepted,
        coeffs,
        combined_sig,
        fast_hash,
    }
}

/// Per-point order-`r` subgroup check over a batch.
///
/// Deliberately **not** batched with a random linear combination: the
/// cofactor `(p+1)/r` is always even (`p` odd, `r` an odd prime), so
/// the curve carries 2-torsion outside the order-`r` subgroup, and an
/// `ℓ`-bit combination `Σ dᵢ·σᵢ` is blind to order-2 components
/// whenever the tainted positions' coefficients sum to an even number
/// — probability 1/2, not `2⁻ℓ`. With transcript-derived coefficients
/// an attacker grinds signatures locally until the cancellation
/// happens, so a batched membership check would accept points that
/// [`verify`] rejects. Soundness of the 2-pairing batch equation rests
/// on each point individually having order dividing `r`.
fn points_in_group(curve: &CurveParams, points: &[&G1Affine]) -> bool {
    points.iter().all(|point| curve.is_in_group(point))
}

/// Batch verification of `n` signatures under **one** public key.
///
/// Checks `ê(P, Σcᵢσᵢ) = ê(R, ΣcᵢH(mᵢ))` with hash-derived random
/// coefficients `cᵢ` — two pairings total instead of `2n`. Since each
/// signature verifies as `ê(P, σᵢ) = ê(R, H(mᵢ))`, the combined
/// equation holds whenever all do; once every signature has passed the
/// per-point order-`r` check, a batch containing an invalid signature
/// survives the combined equation only with probability `≈ 2⁻ℓ`
/// (`ℓ = 64`) over the coefficient choice. Use [`batch_find_invalid`]
/// to localize a failure.
///
/// An empty batch is vacuously valid.
///
/// # Errors
///
/// [`Error::InvalidSignature`] if any signature is outside the group or
/// the combined check fails.
pub fn batch_verify(
    curve: &CurveParams,
    key: &GdhPublicKey,
    entries: &[(&[u8], &Signature)],
) -> Result<(), Error> {
    if entries.is_empty() {
        return Ok(());
    }
    let points: Vec<&G1Affine> = entries.iter().map(|(_, sig)| &sig.0).collect();
    if !points_in_group(curve, &points) {
        return Err(Error::InvalidSignature);
    }
    if batch_check_same_key(curve, key, entries) {
        Ok(())
    } else {
        Err(Error::InvalidSignature)
    }
}

/// Locates the invalid signatures in a batch by recursive bisection.
///
/// A passing sub-batch costs one 2-pairing check regardless of size, so
/// `k` bad signatures among `n` are localized with `O(k·log n)` batch
/// checks instead of `n` individual verifications. Returns the indices
/// (into `entries`, ascending) that fail; empty means the whole batch
/// verifies.
pub fn batch_find_invalid(
    curve: &CurveParams,
    key: &GdhPublicKey,
    entries: &[(&[u8], &Signature)],
) -> Vec<usize> {
    // Group-membership failures are individually attributable without
    // any pairing work (the check is per point — see
    // [`points_in_group`] for why it cannot be batched soundly).
    let mut bad: Vec<usize> = Vec::new();
    let mut candidates: Vec<usize> = Vec::new();
    for (i, (_, sig)) in entries.iter().enumerate() {
        if curve.is_in_group(&sig.0) {
            candidates.push(i);
        } else {
            bad.push(i);
        }
    }
    let subset: Vec<(&[u8], &Signature)> = candidates.iter().map(|&i| entries[i]).collect();
    let fast = batch_check_fast(curve, key, &subset);
    if !fast.accepted {
        // The batch looks bad: hash every message exactly once, redo
        // the root check against the exact hashes (reusing the fast
        // path's coefficients and combined signature), and only bisect
        // if it still fails — no sub-batch ever re-hashes.
        let hashes: Vec<G1Affine> = entries
            .iter()
            .map(|(message, _)| hash_message(curve, message))
            .collect();
        let exact_terms: Vec<(BigUint, G1Affine)> = fast
            .coeffs
            .iter()
            .zip(&candidates)
            .map(|(c, &i)| (c.clone(), hashes[i].clone()))
            .collect();
        let exact_hash = curve.multi_mul(&exact_terms);
        if !fast.recheck_exact(curve, key, &exact_hash) {
            bisect_same_key(curve, key, entries, &hashes, &candidates, &mut bad);
        }
    }
    bad.sort_unstable();
    bad
}

/// The 2-pairing subset check of the bisection path, over exact cached
/// hashes (no candidate fast path needed: hashing is already paid).
fn batch_check_cached(
    curve: &CurveParams,
    key: &GdhPublicKey,
    entries: &[(&[u8], &Signature)],
    hashes: &[G1Affine],
    indices: &[usize],
) -> bool {
    let mut transcript = curve.point_to_bytes(&key.point);
    for &i in indices {
        let (message, sig) = entries[i];
        transcript.extend_from_slice(&(message.len() as u64).to_be_bytes());
        transcript.extend_from_slice(message);
        transcript.extend_from_slice(&curve.point_to_bytes(&sig.0));
    }
    let coeffs = batch_coefficients(BATCH_TAG, curve, &transcript, indices.len());
    let sig_terms: Vec<(BigUint, G1Affine)> = coeffs
        .iter()
        .zip(indices)
        .map(|(c, &i)| (c.clone(), entries[i].1 .0.clone()))
        .collect();
    let hash_terms: Vec<(BigUint, G1Affine)> = coeffs
        .iter()
        .zip(indices)
        .map(|(c, &i)| (c.clone(), hashes[i].clone()))
        .collect();
    let combined_sig = curve.multi_mul(&sig_terms);
    let combined_hash = curve.multi_mul(&hash_terms);
    curve.pairing_equals(curve.generator(), &combined_sig, &key.point, &combined_hash)
}

fn bisect_same_key(
    curve: &CurveParams,
    key: &GdhPublicKey,
    entries: &[(&[u8], &Signature)],
    hashes: &[G1Affine],
    indices: &[usize],
    bad: &mut Vec<usize>,
) {
    if indices.is_empty() {
        return;
    }
    if let [index] = indices {
        // Leaf: the individual pairing equation against the exact hash
        // (membership already passed), so the localization agrees with
        // [`verify`] by construction.
        let sig = entries[*index].1;
        if !curve.pairing_equals(curve.generator(), &sig.0, &key.point, &hashes[*index]) {
            bad.push(*index);
        }
        return;
    }
    if batch_check_cached(curve, key, entries, hashes, indices) {
        return;
    }
    let mid = indices.len() / 2;
    bisect_same_key(curve, key, entries, hashes, &indices[..mid], bad);
    bisect_same_key(curve, key, entries, hashes, &indices[mid..], bad);
}

// --- threshold GDH (Boldyreva) ----------------------------------------------

/// A `(t, n)` threshold GDH signature deployment.
#[derive(Debug, Clone)]
pub struct ThresholdGdh {
    curve: CurveParams,
    t: usize,
    n: usize,
    public: GdhPublicKey,
    /// Per-player verification keys `Rᵢ = f(i)·P`.
    verification_keys: Vec<G1Affine>,
}

/// Player `i`'s signing-key share `f(i)`.
///
/// Secret material: `Debug` redacts the scalar and dropping the share
/// erases it.
#[derive(Clone)]
pub struct GdhKeyShare {
    /// Player index (1-based).
    pub index: u32,
    /// The scalar share.
    pub scalar: BigUint,
}

impl std::fmt::Debug for GdhKeyShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GdhKeyShare")
            .field("index", &self.index)
            .field("scalar", &"<redacted>")
            .finish()
    }
}

impl Drop for GdhKeyShare {
    fn drop(&mut self) {
        self.scalar.zeroize();
    }
}

/// A partial signature `σᵢ = f(i)·H(m)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialSignature {
    /// Player index.
    pub index: u32,
    /// The partial-signature point.
    pub point: G1Affine,
}

impl ThresholdGdh {
    /// Dealer setup: shares a fresh key among `n` players with
    /// threshold `t`. Returns the system plus each player's share.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadThresholdParams`] unless `1 ≤ t ≤ n`.
    pub fn setup(
        rng: &mut impl RngCore,
        curve: CurveParams,
        t: usize,
        n: usize,
    ) -> Result<(Self, Vec<GdhKeyShare>), Error> {
        if t == 0 || t > n {
            return Err(Error::BadThresholdParams("need 1 <= t <= n"));
        }
        let x = curve.random_scalar(rng);
        let poly = Polynomial::sample(rng, &x, t, curve.order());
        let shares: Vec<GdhKeyShare> = poly
            .shares(n)
            .into_iter()
            .map(|share| GdhKeyShare {
                index: share.index,
                scalar: share.value.clone(),
            })
            .collect();
        let verification_keys = shares
            .iter()
            .map(|s| curve.mul_generator(&s.scalar))
            .collect();
        let public = GdhPublicKey {
            point: curve.mul_generator(&x),
        };
        Ok((
            ThresholdGdh {
                curve,
                t,
                n,
                public,
                verification_keys,
            },
            shares,
        ))
    }

    /// Assembles a threshold system from externally generated parts
    /// (the DKG of [`crate::dkg`] uses this; invariants are the
    /// caller's responsibility).
    pub(crate) fn from_parts(
        curve: CurveParams,
        t: usize,
        n: usize,
        public: GdhPublicKey,
        verification_keys: Vec<G1Affine>,
    ) -> Self {
        debug_assert_eq!(verification_keys.len(), n);
        ThresholdGdh {
            curve,
            t,
            n,
            public,
            verification_keys,
        }
    }

    /// The combined public key `R = xP`.
    pub fn public_key(&self) -> &GdhPublicKey {
        &self.public
    }

    /// The threshold `t`.
    pub fn threshold(&self) -> usize {
        self.t
    }

    /// The player count `n`.
    pub fn players(&self) -> usize {
        self.n
    }

    /// Player-side signing: `σᵢ = f(i)·H(m)`.
    pub fn partial_sign(&self, share: &GdhKeyShare, message: &[u8]) -> PartialSignature {
        PartialSignature {
            index: share.index,
            point: self
                .curve
                .mul(&share.scalar, &hash_message(&self.curve, message)),
        }
    }

    /// Verifies a partial signature against player `i`'s verification
    /// key: `ê(P, σᵢ) = ê(Rᵢ, H(m))` — GDH signatures are *natively*
    /// robust, no extra NIZK needed.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidShare`] when the check fails.
    pub fn verify_partial(&self, message: &[u8], partial: &PartialSignature) -> Result<(), Error> {
        let err = Error::InvalidShare {
            player: partial.index,
        };
        if partial.index == 0 || partial.index as usize > self.n {
            return Err(err);
        }
        let vk = &self.verification_keys[(partial.index - 1) as usize];
        let h = hash_message(&self.curve, message);
        if self
            .curve
            .pairing_equals(self.curve.generator(), &partial.point, vk, &h)
        {
            Ok(())
        } else {
            Err(err)
        }
    }

    /// Combines `t` partial signatures: `σ = Σ Lᵢ·σᵢ`, then verifies
    /// the result under the combined public key.
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughShares`], index errors, or
    /// [`Error::InvalidSignature`] if the combination does not verify
    /// (some unverified partial was bogus).
    pub fn combine(
        &self,
        message: &[u8],
        partials: &[PartialSignature],
    ) -> Result<Signature, Error> {
        if partials.len() < self.t {
            return Err(Error::NotEnoughShares {
                needed: self.t,
                got: partials.len(),
            });
        }
        let used = &partials[..self.t];
        let indices: Vec<u32> = used.iter().map(|p| p.index).collect();
        let q = self.curve.order();
        let mut terms = Vec::with_capacity(used.len());
        for partial in used {
            let li = shamir::lagrange_coefficient(&indices, partial.index, q)?;
            terms.push((li, partial.point.clone()));
        }
        let sig = Signature(self.curve.multi_mul(&terms));
        verify(&self.curve, &self.public, message, &sig)?;
        Ok(sig)
    }

    /// Batch verification of partial signatures on one message:
    /// `ê(P, Σcᵢσᵢ) = ê(ΣcᵢRᵢ, H(m))` with hash-derived coefficients —
    /// two pairings for the whole set instead of two per partial
    /// (exploiting that all partials share `H(m)` while differing in
    /// verification key, the dual of [`batch_verify`]'s shape).
    ///
    /// An empty set is vacuously valid.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidShare`] naming the first offending player when
    /// an index is out of range; [`Error::InvalidSignature`] when the
    /// combined check fails (use
    /// [`ThresholdGdh::find_invalid_partials`] to attribute it).
    pub fn batch_verify_partials(
        &self,
        message: &[u8],
        partials: &[PartialSignature],
    ) -> Result<(), Error> {
        if partials.is_empty() {
            return Ok(());
        }
        for partial in partials {
            if partial.index == 0 || partial.index as usize > self.n {
                return Err(Error::InvalidShare {
                    player: partial.index,
                });
            }
        }
        let h = hash_message(&self.curve, message);
        if self.batch_check_partials(&h, message, partials) {
            Ok(())
        } else {
            Err(Error::InvalidSignature)
        }
    }

    /// Indices (into `partials`, ascending) of the partial signatures
    /// that fail verification, localized by bisection over the
    /// 2-pairing batch check — empty when everything verifies, which
    /// costs a single batch check.
    pub fn find_invalid_partials(
        &self,
        message: &[u8],
        partials: &[PartialSignature],
    ) -> Vec<usize> {
        // Out-of-range indices are individually attributable.
        let mut bad: Vec<usize> = Vec::new();
        let mut candidates: Vec<usize> = Vec::new();
        for (i, partial) in partials.iter().enumerate() {
            if partial.index == 0 || partial.index as usize > self.n {
                bad.push(i);
            } else {
                candidates.push(i);
            }
        }
        let h = hash_message(&self.curve, message);
        self.bisect_partials(&h, message, partials, &candidates, &mut bad);
        bad.sort_unstable();
        bad
    }

    /// The 2-pairing check for a subset of partials (indices assumed in
    /// range).
    fn batch_check_partials(
        &self,
        h: &G1Affine,
        message: &[u8],
        partials: &[PartialSignature],
    ) -> bool {
        let curve = &self.curve;
        let mut transcript = curve.point_to_bytes(&self.public.point);
        transcript.extend_from_slice(&(message.len() as u64).to_be_bytes());
        transcript.extend_from_slice(message);
        for partial in partials {
            transcript.extend_from_slice(&partial.index.to_be_bytes());
            transcript.extend_from_slice(&curve.point_to_bytes(&partial.point));
        }
        let coeffs = batch_coefficients(BATCH_TAG, curve, &transcript, partials.len());
        let sig_terms: Vec<(BigUint, G1Affine)> = coeffs
            .iter()
            .zip(partials)
            .map(|(c, partial)| (c.clone(), partial.point.clone()))
            .collect();
        let vk_terms: Vec<(BigUint, G1Affine)> = coeffs
            .iter()
            .zip(partials)
            .map(|(c, partial)| {
                (
                    c.clone(),
                    self.verification_keys[(partial.index - 1) as usize].clone(),
                )
            })
            .collect();
        let combined_sig = curve.multi_mul(&sig_terms);
        let combined_vk = curve.multi_mul(&vk_terms);
        curve.pairing_equals(curve.generator(), &combined_sig, &combined_vk, h)
    }

    fn bisect_partials(
        &self,
        h: &G1Affine,
        message: &[u8],
        partials: &[PartialSignature],
        indices: &[usize],
        bad: &mut Vec<usize>,
    ) {
        if indices.is_empty() {
            return;
        }
        let subset: Vec<PartialSignature> = indices.iter().map(|&i| partials[i].clone()).collect();
        if self.batch_check_partials(h, message, &subset) {
            return;
        }
        if indices.len() == 1 {
            bad.push(indices[0]);
            return;
        }
        let mid = indices.len() / 2;
        self.bisect_partials(h, message, partials, &indices[..mid], bad);
        self.bisect_partials(h, message, partials, &indices[mid..], bad);
    }

    /// Robust combine: discards invalid partials, returns the signature
    /// and the cheater list.
    ///
    /// The honest-majority fast path costs one 2-pairing batch check
    /// for the whole set (via [`ThresholdGdh::find_invalid_partials`]);
    /// only a batch containing actual cheaters pays for localization.
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughShares`] if fewer than `t` partials survive.
    pub fn combine_robust(
        &self,
        message: &[u8],
        partials: &[PartialSignature],
    ) -> Result<(Signature, Vec<u32>), Error> {
        let bad = self.find_invalid_partials(message, partials);
        let cheaters: Vec<u32> = bad.iter().map(|&i| partials[i].index).collect();
        let valid: Vec<PartialSignature> = partials
            .iter()
            .enumerate()
            .filter(|(i, _)| !bad.contains(i))
            .map(|(_, partial)| partial.clone())
            .collect();
        let sig = self.combine(message, &valid)?;
        Ok((sig, cheaters))
    }
}

// --- aggregate / multi / blind signatures (Boldyreva [2]'s other schemes) ----

/// Aggregates signatures on *distinct* messages into one point:
/// `σ_agg = Σ σᵢ` (BLS aggregation).
pub fn aggregate(curve: &CurveParams, sigs: &[Signature]) -> Signature {
    let mut acc = G1Affine::infinity();
    for sig in sigs {
        acc = curve.add(&acc, &sig.0);
    }
    Signature(acc)
}

/// Verifies an aggregate signature over `(public key, message)` pairs:
/// `ê(P, σ_agg) = Π ê(Rᵢ, H(mᵢ))`, checked with one shared-loop
/// multi-pairing.
///
/// Messages must be pairwise distinct (the standard aggregation
/// requirement that blocks rogue-key-style forgeries in this setting).
///
/// # Errors
///
/// [`Error::InvalidSignature`] on duplicate messages, arity mismatch or
/// verification failure.
pub fn verify_aggregate(
    curve: &CurveParams,
    entries: &[(&GdhPublicKey, &[u8])],
    sig: &Signature,
) -> Result<(), Error> {
    if entries.is_empty() || !curve.is_in_group(&sig.0) {
        return Err(Error::InvalidSignature);
    }
    for (i, (_, m)) in entries.iter().enumerate() {
        if entries[i + 1..].iter().any(|(_, m2)| m2 == m) {
            return Err(Error::InvalidSignature); // distinct-message rule
        }
    }
    // ê(−P, σ)·Π ê(Rᵢ, H(mᵢ)) = 1
    let neg_p = curve.neg(curve.generator());
    let hashes: Vec<G1Affine> = entries
        .iter()
        .map(|(_, m)| hash_message(curve, m))
        .collect();
    let mut pairs: Vec<(&G1Affine, &G1Affine)> = vec![(&neg_p, &sig.0)];
    for ((pk, _), h) in entries.iter().zip(hashes.iter()) {
        pairs.push((&pk.point, h));
    }
    if curve.gt_is_one(&curve.multi_pairing(&pairs)) {
        Ok(())
    } else {
        Err(Error::InvalidSignature)
    }
}

/// Multisignature: `n` signers on the *same* message. Verification uses
/// the aggregated public key `Σ Rᵢ`, so cost is independent of `n`.
///
/// # Errors
///
/// [`Error::InvalidSignature`] on empty input or failure.
pub fn verify_multisignature(
    curve: &CurveParams,
    keys: &[&GdhPublicKey],
    message: &[u8],
    sig: &Signature,
) -> Result<(), Error> {
    if keys.is_empty() {
        return Err(Error::InvalidSignature);
    }
    let mut agg_pk = G1Affine::infinity();
    for key in keys {
        agg_pk = curve.add(&agg_pk, &key.point);
    }
    verify(curve, &GdhPublicKey { point: agg_pk }, message, sig)
}

/// A blinded message `H(m) + ρ·P`, hiding `m` from the signer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlindedMessage(pub G1Affine);

/// The requester's unblinding state (keep secret until unblinding).
///
/// `rho` is secret while a blind-signing session is live: `Debug`
/// redacts it and dropping the factor erases it.
#[derive(Clone)]
pub struct BlindingFactor {
    rho: BigUint,
}

impl std::fmt::Debug for BlindingFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlindingFactor")
            .field("rho", &"<redacted>")
            .finish()
    }
}

impl Drop for BlindingFactor {
    fn drop(&mut self) {
        self.rho.zeroize();
    }
}

/// Requester side, step 1: blind the message.
pub fn blind(
    rng: &mut impl RngCore,
    curve: &CurveParams,
    message: &[u8],
) -> (BlindedMessage, BlindingFactor) {
    let rho = curve.random_scalar(rng);
    let blinded = curve.add(&hash_message(curve, message), &curve.mul_generator(&rho));
    (BlindedMessage(blinded), BlindingFactor { rho })
}

/// Signer side, step 2: sign the blinded point `x·(H(m) + ρP)` —
/// without learning `m` (the signer sees a uniformly random point).
pub fn blind_sign(curve: &CurveParams, key: &GdhSecretKey, blinded: &BlindedMessage) -> Signature {
    Signature(curve.mul(&key.scalar, &blinded.0))
}

/// Requester side, step 3: unblind `σ' − ρ·R = x·H(m)` — an ordinary
/// GDH signature, verifiable by anyone with [`verify`].
pub fn unblind(
    curve: &CurveParams,
    public: &GdhPublicKey,
    factor: &BlindingFactor,
    blinded_sig: &Signature,
) -> Signature {
    Signature(curve.sub(&blinded_sig.0, &curve.mul(&factor.rho, &public.point)))
}

// --- mediated GDH (§5) --------------------------------------------------------

/// The trusted authority of §5: generates `x = x_user + x_sem` splits.
///
/// Returns `(user key, SEM record, public key)`; the TA discards the
/// full `x` afterwards.
pub fn mediated_keygen(
    rng: &mut impl RngCore,
    curve: &CurveParams,
    id: &str,
) -> (GdhUser, GdhSemKey, GdhPublicKey) {
    let x_user = curve.random_scalar(rng);
    let x_sem = curve.random_scalar(rng);
    let sum = modular::mod_add(&x_user, &x_sem, curve.order());
    let public = GdhPublicKey {
        point: curve.mul_generator(&sum),
    };
    (
        GdhUser {
            id: id.to_string(),
            public: public.clone(),
            x_user,
        },
        GdhSemKey {
            id: id.to_string(),
            x_sem,
        },
        public,
    )
}

/// The user's half of a mediated GDH signing key.
///
/// `x_user` is secret: `Debug` redacts it and dropping the key erases
/// it.
#[derive(Clone)]
pub struct GdhUser {
    /// The user's identity label.
    pub id: String,
    /// The combined public key `(x_user + x_sem)·P`.
    pub public: GdhPublicKey,
    x_user: BigUint,
}

impl std::fmt::Debug for GdhUser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GdhUser")
            .field("id", &self.id)
            .field("x_user", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Drop for GdhUser {
    fn drop(&mut self) {
        self.x_user.zeroize();
    }
}

/// The SEM's half-key record for one user.
///
/// `x_sem` is secret: `Debug` redacts it and dropping the record
/// erases it.
#[derive(Clone)]
pub struct GdhSemKey {
    /// Identity served.
    pub id: String,
    x_sem: BigUint,
}

impl std::fmt::Debug for GdhSemKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GdhSemKey")
            .field("id", &self.id)
            .field("x_sem", &"<redacted>")
            .finish()
    }
}

impl Drop for GdhSemKey {
    fn drop(&mut self) {
        self.x_sem.zeroize();
    }
}

/// A SEM half-signature `S_sem = x_sem·H(m)` — one compressed G1
/// element, the short token §5 highlights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HalfSignature(pub G1Affine);

/// The signing mediator: half-keys plus revocation list.
#[derive(Debug, Default)]
pub struct GdhSem {
    keys: HashMap<String, GdhSemKey>,
    revoked: HashSet<String>,
}

impl GdhUser {
    /// Keystore encoding: `u16 id-len ‖ id ‖ compressed public point ‖
    /// fixed-width x_user scalar`.
    pub fn to_bytes(&self, curve: &CurveParams) -> Vec<u8> {
        let id = self.id.as_bytes();
        let scalar_len = curve.order().bits().div_ceil(8);
        let mut out = Vec::with_capacity(2 + id.len() + curve.point_len() + scalar_len);
        out.extend_from_slice(&(id.len() as u16).to_be_bytes());
        out.extend_from_slice(id);
        out.extend_from_slice(&curve.point_to_bytes(&self.public.point));
        out.extend_from_slice(&self.x_user.to_be_bytes_padded(scalar_len));
        out
    }

    /// Decodes [`GdhUser::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSignature`] on malformed bytes.
    pub fn from_bytes(curve: &CurveParams, bytes: &[u8]) -> Result<Self, Error> {
        let mut r = crate::cursor::Reader::new(bytes);
        let id_len = r.u16_be().ok_or(Error::InvalidSignature)? as usize;
        let scalar_len = curve.order().bits().div_ceil(8);
        let id = String::from_utf8(r.bytes(id_len).ok_or(Error::InvalidSignature)?.to_vec())
            .map_err(|_| Error::InvalidSignature)?;
        let point = curve
            .point_from_bytes(r.bytes(curve.point_len()).ok_or(Error::InvalidSignature)?)
            .map_err(|_| Error::InvalidSignature)?;
        if r.remaining() != scalar_len {
            return Err(Error::InvalidSignature);
        }
        let x_user = BigUint::from_be_bytes(r.rest());
        if &x_user >= curve.order() {
            return Err(Error::InvalidSignature);
        }
        Ok(GdhUser {
            id,
            public: GdhPublicKey { point },
            x_user,
        })
    }
}

impl GdhSemKey {
    /// Provisioning encoding: `u16 id-len ‖ id ‖ fixed-width x_sem`.
    pub fn to_bytes(&self, curve: &CurveParams) -> Vec<u8> {
        let id = self.id.as_bytes();
        let scalar_len = curve.order().bits().div_ceil(8);
        let mut out = Vec::with_capacity(2 + id.len() + scalar_len);
        out.extend_from_slice(&(id.len() as u16).to_be_bytes());
        out.extend_from_slice(id);
        out.extend_from_slice(&self.x_sem.to_be_bytes_padded(scalar_len));
        out
    }

    /// Decodes [`GdhSemKey::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSignature`] on malformed bytes.
    pub fn from_bytes(curve: &CurveParams, bytes: &[u8]) -> Result<Self, Error> {
        let mut r = crate::cursor::Reader::new(bytes);
        let id_len = r.u16_be().ok_or(Error::InvalidSignature)? as usize;
        let scalar_len = curve.order().bits().div_ceil(8);
        let id = String::from_utf8(r.bytes(id_len).ok_or(Error::InvalidSignature)?.to_vec())
            .map_err(|_| Error::InvalidSignature)?;
        if r.remaining() != scalar_len {
            return Err(Error::InvalidSignature);
        }
        let x_sem = BigUint::from_be_bytes(r.rest());
        if &x_sem >= curve.order() {
            return Err(Error::InvalidSignature);
        }
        Ok(GdhSemKey { id, x_sem })
    }
}

impl GdhSem {
    /// Creates an empty signing SEM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a user's half-key.
    pub fn install(&mut self, key: GdhSemKey) {
        self.keys.insert(key.id.clone(), key);
    }

    /// Revokes signing capability instantly.
    pub fn revoke(&mut self, id: &str) {
        self.revoked.insert(id.to_string());
    }

    /// Reinstates an identity.
    pub fn unrevoke(&mut self, id: &str) {
        self.revoked.remove(id);
    }

    /// `true` iff revoked.
    pub fn is_revoked(&self, id: &str) -> bool {
        self.revoked.contains(id)
    }

    /// SEM signing step (§5): check revocation, return
    /// `S_sem = x_sem·H(m)`.
    ///
    /// # Errors
    ///
    /// [`Error::Revoked`] or [`Error::UnknownIdentity`].
    pub fn half_sign(
        &self,
        curve: &CurveParams,
        id: &str,
        message: &[u8],
    ) -> Result<HalfSignature, Error> {
        if self.revoked.contains(id) {
            return Err(Error::Revoked);
        }
        let key = self.keys.get(id).ok_or(Error::UnknownIdentity)?;
        Ok(HalfSignature(
            curve.mul(&key.x_sem, &hash_message(curve, message)),
        ))
    }
}

impl GdhUser {
    /// User signing step (§5): `σ = S_sem + x_user·H(m)`, verified
    /// before being returned (protocol step 3).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSignature`] if the combined signature fails
    /// verification (SEM misbehaviour or token/message mismatch).
    pub fn finish_sign(
        &self,
        curve: &CurveParams,
        message: &[u8],
        half: &HalfSignature,
    ) -> Result<Signature, Error> {
        let own = curve.mul(&self.x_user, &hash_message(curve, message));
        let sig = Signature(curve.add(&half.0, &own));
        verify(curve, &self.public, message, &sig)?;
        Ok(sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn curve() -> (CurveParams, StdRng) {
        let mut rng = StdRng::seed_from_u64(101);
        (CurveParams::generate(&mut rng, 128, 64).unwrap(), rng)
    }

    #[test]
    fn plain_sign_verify() {
        let (curve, mut rng) = curve();
        let (sk, pk) = keygen(&mut rng, &curve);
        let sig = sign(&curve, &sk, b"message");
        verify(&curve, &pk, b"message", &sig).unwrap();
        assert_eq!(
            verify(&curve, &pk, b"other", &sig),
            Err(Error::InvalidSignature)
        );
        let (_, pk2) = keygen(&mut rng, &curve);
        assert_eq!(
            verify(&curve, &pk2, b"message", &sig),
            Err(Error::InvalidSignature)
        );
    }

    #[test]
    fn signature_is_deterministic_and_short() {
        let (curve, mut rng) = curve();
        let (sk, _) = keygen(&mut rng, &curve);
        assert_eq!(sign(&curve, &sk, b"m"), sign(&curve, &sk, b"m"));
        // One compressed point: |p|/8 + 1 bytes.
        let sig = sign(&curve, &sk, b"m");
        assert_eq!(curve.point_to_bytes(&sig.0).len(), curve.point_len());
    }

    #[test]
    fn threshold_roundtrip_all_subsets() {
        let (curve, mut rng) = curve();
        let (sys, shares) = ThresholdGdh::setup(&mut rng, curve, 2, 4).unwrap();
        let partials: Vec<PartialSignature> = shares
            .iter()
            .map(|s| sys.partial_sign(s, b"vote"))
            .collect();
        for a in 0..4 {
            for b in a + 1..4 {
                let sig = sys
                    .combine(b"vote", &[partials[a].clone(), partials[b].clone()])
                    .unwrap();
                verify(&sys.curve, sys.public_key(), b"vote", &sig).unwrap();
            }
        }
    }

    #[test]
    fn threshold_partial_verification_catches_cheater() {
        let (curve, mut rng) = curve();
        let (sys, shares) = ThresholdGdh::setup(&mut rng, curve.clone(), 2, 3).unwrap();
        let mut partials: Vec<PartialSignature> =
            shares.iter().map(|s| sys.partial_sign(s, b"m")).collect();
        // Player 1 cheats.
        partials[0].point = curve.mul_generator(&BigUint::from(31337u64));
        assert!(sys.verify_partial(b"m", &partials[0]).is_err());
        let (sig, cheaters) = sys.combine_robust(b"m", &partials).unwrap();
        assert_eq!(cheaters, vec![1]);
        verify(&curve, sys.public_key(), b"m", &sig).unwrap();
    }

    #[test]
    fn threshold_insufficient_shares() {
        let (curve, mut rng) = curve();
        let (sys, shares) = ThresholdGdh::setup(&mut rng, curve, 3, 5).unwrap();
        let partials: Vec<PartialSignature> = shares[..2]
            .iter()
            .map(|s| sys.partial_sign(s, b"m"))
            .collect();
        assert_eq!(
            sys.combine(b"m", &partials),
            Err(Error::NotEnoughShares { needed: 3, got: 2 })
        );
    }

    #[test]
    fn threshold_bad_params() {
        let (curve, mut rng) = curve();
        assert!(ThresholdGdh::setup(&mut rng, curve.clone(), 0, 2).is_err());
        assert!(ThresholdGdh::setup(&mut rng, curve, 3, 2).is_err());
    }

    #[test]
    fn batch_verify_accepts_valid_batch() {
        let (curve, mut rng) = curve();
        let (sk, pk) = keygen(&mut rng, &curve);
        let msgs: Vec<Vec<u8>> = (0..8).map(|i| format!("msg {i}").into_bytes()).collect();
        let sigs: Vec<Signature> = msgs.iter().map(|m| sign(&curve, &sk, m)).collect();
        let entries: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        batch_verify(&curve, &pk, &entries).unwrap();
        assert!(batch_find_invalid(&curve, &pk, &entries).is_empty());
        // Empty batch is vacuously valid.
        batch_verify(&curve, &pk, &[]).unwrap();
    }

    #[test]
    fn batch_verify_rejects_and_localizes_forgeries() {
        let (curve, mut rng) = curve();
        let (sk, pk) = keygen(&mut rng, &curve);
        let msgs: Vec<Vec<u8>> = (0..9).map(|i| format!("msg {i}").into_bytes()).collect();
        let mut sigs: Vec<Signature> = msgs.iter().map(|m| sign(&curve, &sk, m)).collect();
        // Forge two signatures: a wrong-but-in-group point and a
        // signature swapped onto the wrong message.
        sigs[2] = Signature(curve.mul_generator(&BigUint::from(99u64)));
        sigs[7] = sign(&curve, &sk, b"some other message");
        let entries: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        assert_eq!(
            batch_verify(&curve, &pk, &entries),
            Err(Error::InvalidSignature)
        );
        assert_eq!(batch_find_invalid(&curve, &pk, &entries), vec![2, 7]);
        // Swapping a pair of signatures breaks both positions even
        // though their sum still matches: the random coefficients see
        // through the cancellation a fixed-weight check would miss.
        let mut swapped: Vec<Signature> = msgs.iter().map(|m| sign(&curve, &sk, m)).collect();
        swapped.swap(0, 1);
        let entries: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(&swapped)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        assert_eq!(batch_find_invalid(&curve, &pk, &entries), vec![0, 1]);
    }

    #[test]
    fn batch_verify_rejects_out_of_subgroup_point() {
        let (curve, mut rng) = curve();
        let (sk, pk) = keygen(&mut rng, &curve);
        let msgs: Vec<Vec<u8>> = (0..4).map(|i| format!("msg {i}").into_bytes()).collect();
        let mut sigs: Vec<Signature> = msgs.iter().map(|m| sign(&curve, &sk, m)).collect();
        // An on-curve point outside the order-r subgroup: only the
        // per-point membership check can catch it, the pairing equation
        // is not even defined for it.
        let mut x = BigUint::two();
        let rogue = loop {
            if let Some((point, _)) = curve.lift_x(&x) {
                if !curve.is_in_group(&point) {
                    break point;
                }
            }
            x = &x + &BigUint::one();
        };
        assert!(curve.is_on_curve(&rogue));
        sigs[1] = Signature(rogue);
        let entries: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        assert_eq!(
            batch_verify(&curve, &pk, &entries),
            Err(Error::InvalidSignature)
        );
        assert_eq!(batch_find_invalid(&curve, &pk, &entries), vec![1]);
    }

    #[test]
    fn batch_verify_rejects_paired_two_torsion_tampering() {
        // The cofactor (p+1)/r is even, so (0, 0) — the 2-torsion point
        // of y² = x³ + x — always exists. Adding it to an *even number*
        // of valid signatures is the malleability a randomly-combined
        // membership check is blind to half the time (and that grinding
        // on transcript-derived coefficients makes reliable); the
        // per-point check must reject every tampered position
        // unconditionally, agreeing with individual verification.
        let (curve, mut rng) = curve();
        let (sk, pk) = keygen(&mut rng, &curve);
        let (two_torsion, _) = curve.lift_x(&BigUint::zero()).unwrap();
        assert!(!two_torsion.is_infinity());
        assert!(curve.is_on_curve(&two_torsion) && !curve.is_in_group(&two_torsion));
        assert!(curve.add(&two_torsion, &two_torsion).is_infinity());
        let msgs: Vec<Vec<u8>> = (0..6).map(|i| format!("msg {i}").into_bytes()).collect();
        let mut sigs: Vec<Signature> = msgs.iter().map(|m| sign(&curve, &sk, m)).collect();
        for i in [0usize, 3] {
            sigs[i] = Signature(curve.add(&sigs[i].0, &two_torsion));
        }
        let entries: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        assert_eq!(
            batch_verify(&curve, &pk, &entries),
            Err(Error::InvalidSignature)
        );
        assert_eq!(batch_find_invalid(&curve, &pk, &entries), vec![0, 3]);
        for (i, ((m, s), _)) in entries.iter().zip(&msgs).enumerate() {
            assert_eq!(verify(&curve, &pk, m, s).is_ok(), ![0usize, 3].contains(&i));
        }
    }

    #[test]
    fn batch_verify_partials_matches_individual() {
        let (curve, mut rng) = curve();
        let (sys, shares) = ThresholdGdh::setup(&mut rng, curve.clone(), 3, 6).unwrap();
        let mut partials: Vec<PartialSignature> = shares
            .iter()
            .map(|s| sys.partial_sign(s, b"ballot"))
            .collect();
        sys.batch_verify_partials(b"ballot", &partials).unwrap();
        assert!(sys.find_invalid_partials(b"ballot", &partials).is_empty());
        // Corrupt two partials; localization must agree with the
        // per-partial verifier.
        partials[1].point = curve.mul_generator(&BigUint::from(5u64));
        partials[4].point = curve.generator().clone();
        assert_eq!(
            sys.batch_verify_partials(b"ballot", &partials),
            Err(Error::InvalidSignature)
        );
        assert_eq!(sys.find_invalid_partials(b"ballot", &partials), vec![1, 4]);
        for (i, partial) in partials.iter().enumerate() {
            let individually_ok = sys.verify_partial(b"ballot", partial).is_ok();
            assert_eq!(individually_ok, ![1usize, 4].contains(&i));
        }
        // Out-of-range index reported by player number.
        partials[0].index = 99;
        assert_eq!(
            sys.batch_verify_partials(b"ballot", &partials),
            Err(Error::InvalidShare { player: 99 })
        );
        assert_eq!(
            sys.find_invalid_partials(b"ballot", &partials),
            vec![0, 1, 4]
        );
    }

    #[test]
    fn aggregate_signatures_verify() {
        let (curve, mut rng) = curve();
        let mut entries = Vec::new();
        let mut sigs = Vec::new();
        let keys: Vec<_> = (0..4).map(|_| keygen(&mut rng, &curve)).collect();
        let msgs: Vec<Vec<u8>> = (0..4).map(|i| format!("msg {i}").into_bytes()).collect();
        for ((sk, _), m) in keys.iter().zip(&msgs) {
            sigs.push(sign(&curve, sk, m));
        }
        for ((_, pk), m) in keys.iter().zip(&msgs) {
            entries.push((pk, m.as_slice()));
        }
        let agg = aggregate(&curve, &sigs);
        verify_aggregate(&curve, &entries, &agg).unwrap();
        // Dropping one signature breaks it.
        let partial = aggregate(&curve, &sigs[..3]);
        assert!(verify_aggregate(&curve, &entries, &partial).is_err());
        // Duplicate messages rejected outright.
        let dup = [entries[0], entries[0]];
        assert!(verify_aggregate(&curve, &dup, &agg).is_err());
        assert!(verify_aggregate(&curve, &[], &agg).is_err());
    }

    #[test]
    fn multisignature_verifies_with_aggregated_key() {
        let (curve, mut rng) = curve();
        let keys: Vec<_> = (0..3).map(|_| keygen(&mut rng, &curve)).collect();
        let msg = b"joint statement";
        let sigs: Vec<_> = keys.iter().map(|(sk, _)| sign(&curve, sk, msg)).collect();
        let multi = aggregate(&curve, &sigs);
        let pks: Vec<&GdhPublicKey> = keys.iter().map(|(_, pk)| pk).collect();
        verify_multisignature(&curve, &pks, msg, &multi).unwrap();
        // Missing one signer fails.
        let partial = aggregate(&curve, &sigs[..2]);
        assert!(verify_multisignature(&curve, &pks, msg, &partial).is_err());
    }

    #[test]
    fn blind_signature_roundtrip_and_blindness() {
        let (curve, mut rng) = curve();
        let (sk, pk) = keygen(&mut rng, &curve);
        let msg = b"the signer never sees this";
        let (blinded, factor) = blind(&mut rng, &curve, msg);
        // Blindness: the blinded point differs from H(m) and between runs.
        assert_ne!(blinded.0, hash_message(&curve, msg));
        let (blinded2, _) = blind(&mut rng, &curve, msg);
        assert_ne!(blinded.0, blinded2.0);
        // Sign blinded, unblind, verify as a plain GDH signature.
        let blind_sig = blind_sign(&curve, &sk, &blinded);
        let sig = unblind(&curve, &pk, &factor, &blind_sig);
        verify(&curve, &pk, msg, &sig).unwrap();
        assert_eq!(
            sig,
            sign(&curve, &sk, msg),
            "unblinds to the unique BLS signature"
        );
        // Wrong blinding factor yields garbage.
        let (_, wrong_factor) = blind(&mut rng, &curve, msg);
        let bad = unblind(&curve, &pk, &wrong_factor, &blind_sig);
        assert!(verify(&curve, &pk, msg, &bad).is_err());
    }

    #[test]
    fn mediated_sign_roundtrip() {
        let (curve, mut rng) = curve();
        let (user, sem_key, pk) = mediated_keygen(&mut rng, &curve, "alice");
        let mut sem = GdhSem::new();
        sem.install(sem_key);
        let half = sem.half_sign(&curve, "alice", b"pay bob 5").unwrap();
        let sig = user.finish_sign(&curve, b"pay bob 5", &half).unwrap();
        verify(&curve, &pk, b"pay bob 5", &sig).unwrap();
    }

    #[test]
    fn mediated_revocation_blocks_signing() {
        let (curve, mut rng) = curve();
        let (user, sem_key, _pk) = mediated_keygen(&mut rng, &curve, "alice");
        let mut sem = GdhSem::new();
        sem.install(sem_key);
        sem.revoke("alice");
        assert_eq!(sem.half_sign(&curve, "alice", b"m"), Err(Error::Revoked));
        sem.unrevoke("alice");
        let half = sem.half_sign(&curve, "alice", b"m").unwrap();
        user.finish_sign(&curve, b"m", &half).unwrap();
    }

    #[test]
    fn mediated_user_cannot_sign_alone() {
        let (curve, mut rng) = curve();
        let (user, _sem_key, pk) = mediated_keygen(&mut rng, &curve, "alice");
        // Without the SEM half the user's "signature" never verifies.
        let own = curve.mul(&user.x_user, &hash_message(&curve, b"m"));
        assert_eq!(
            verify(&curve, &pk, b"m", &Signature(own)),
            Err(Error::InvalidSignature)
        );
    }

    #[test]
    fn mediated_token_bound_to_message() {
        let (curve, mut rng) = curve();
        let (user, sem_key, _) = mediated_keygen(&mut rng, &curve, "alice");
        let mut sem = GdhSem::new();
        sem.install(sem_key);
        let half = sem.half_sign(&curve, "alice", b"message-a").unwrap();
        assert_eq!(
            user.finish_sign(&curve, b"message-b", &half),
            Err(Error::InvalidSignature)
        );
    }

    #[test]
    fn mediated_key_serialization_roundtrip() {
        let (curve, mut rng) = curve();
        let (user, sem_key, pk) = mediated_keygen(&mut rng, &curve, "store-me");
        let u2 = GdhUser::from_bytes(&curve, &user.to_bytes(&curve)).unwrap();
        let s2 = GdhSemKey::from_bytes(&curve, &sem_key.to_bytes(&curve)).unwrap();
        assert_eq!(u2.id, "store-me");
        assert_eq!(u2.public, pk);
        // The deserialized halves still sign together.
        let mut sem = GdhSem::new();
        sem.install(s2);
        let half = sem.half_sign(&curve, "store-me", b"persisted").unwrap();
        let sig = u2.finish_sign(&curve, b"persisted", &half).unwrap();
        verify(&curve, &pk, b"persisted", &sig).unwrap();
        // Malformed inputs rejected.
        assert!(GdhUser::from_bytes(&curve, &[0, 9, 1]).is_err());
        assert!(GdhSemKey::from_bytes(&curve, &[]).is_err());
    }

    #[test]
    fn mediated_unknown_identity() {
        let (curve, _) = curve();
        let sem = GdhSem::new();
        assert_eq!(
            sem.half_sign(&curve, "ghost", b"m"),
            Err(Error::UnknownIdentity)
        );
    }
}
