//! Canonical byte encodings for keys, tokens and signatures.
//!
//! Everything a deployment persists or transmits gets a fixed, versioned
//! byte layout here: SEM tokens cross the network every operation,
//! half-keys are written to user keystores, signatures travel with
//! documents. Sizes are exactly the E1/E3 numbers — these functions
//! *are* the wire the paper's bandwidth comparison talks about.

// Decoders here consume untrusted bytes; indexing would turn malformed
// input into a panic, so reads go through the bounds-checked [`Reader`].
#![warn(clippy::indexing_slicing)]
#![cfg_attr(test, allow(clippy::indexing_slicing))]

use crate::bf_ibe::PrivateKey;
use crate::cursor::Reader;
use crate::gdh::{HalfSignature, Signature};
use crate::mediated::{DecryptToken, SemKey, UserKey};
use crate::threshold::IdKeyShare;
use crate::Error;
use sempair_pairing::CurveParams;

/// Encodes a mediated-IBE decryption token (`2·|p|/8` bytes).
pub fn token_to_bytes(curve: &CurveParams, token: &DecryptToken) -> Vec<u8> {
    curve.gt_to_bytes(&token.0)
}

/// Decodes [`token_to_bytes`] output.
///
/// # Errors
///
/// [`Error::InvalidCiphertext`] on malformed bytes.
pub fn token_from_bytes(curve: &CurveParams, bytes: &[u8]) -> Result<DecryptToken, Error> {
    curve
        .gt_from_bytes(bytes)
        .map(DecryptToken)
        .map_err(|_| Error::InvalidCiphertext)
}

/// Encodes a GDH signature (one compressed point).
pub fn signature_to_bytes(curve: &CurveParams, sig: &Signature) -> Vec<u8> {
    curve.point_to_bytes(&sig.0)
}

/// Decodes [`signature_to_bytes`] output (validating group membership).
///
/// # Errors
///
/// [`Error::InvalidSignature`] on malformed bytes.
pub fn signature_from_bytes(curve: &CurveParams, bytes: &[u8]) -> Result<Signature, Error> {
    curve
        .point_from_bytes(bytes)
        .map(Signature)
        .map_err(|_| Error::InvalidSignature)
}

/// Encodes a GDH half-signature token (one compressed point — the §5
/// "160 bits").
pub fn half_signature_to_bytes(curve: &CurveParams, half: &HalfSignature) -> Vec<u8> {
    curve.point_to_bytes(&half.0)
}

/// Decodes [`half_signature_to_bytes`] output.
///
/// # Errors
///
/// [`Error::InvalidSignature`] on malformed bytes.
pub fn half_signature_from_bytes(
    curve: &CurveParams,
    bytes: &[u8],
) -> Result<HalfSignature, Error> {
    curve
        .point_from_bytes(bytes)
        .map(HalfSignature)
        .map_err(|_| Error::InvalidSignature)
}

/// Layout shared by every identity-bound key record:
/// `u16 id-len ‖ id ‖ compressed point`.
fn keyed_point_to_bytes(
    curve: &CurveParams,
    id: &str,
    point: &sempair_pairing::G1Affine,
) -> Vec<u8> {
    let id_bytes = id.as_bytes();
    let mut out = Vec::with_capacity(2 + id_bytes.len() + curve.point_len());
    out.extend_from_slice(&(id_bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(id_bytes);
    out.extend_from_slice(&curve.point_to_bytes(point));
    out
}

fn keyed_point_from_bytes(
    curve: &CurveParams,
    bytes: &[u8],
) -> Result<(String, sempair_pairing::G1Affine), Error> {
    let mut r = Reader::new(bytes);
    let id_len = r.u16_be().ok_or(Error::InvalidCiphertext)? as usize;
    let id_bytes = r.bytes(id_len).ok_or(Error::InvalidCiphertext)?;
    let id = String::from_utf8(id_bytes.to_vec()).map_err(|_| Error::InvalidCiphertext)?;
    let point_bytes = r.bytes(curve.point_len()).ok_or(Error::InvalidCiphertext)?;
    if !r.is_empty() {
        return Err(Error::InvalidCiphertext);
    }
    let point = curve
        .point_from_bytes(point_bytes)
        .map_err(|_| Error::InvalidCiphertext)?;
    Ok((id, point))
}

/// Encodes a user half-key for keystore storage.
pub fn user_key_to_bytes(curve: &CurveParams, key: &UserKey) -> Vec<u8> {
    keyed_point_to_bytes(curve, &key.id, &key.point)
}

/// Decodes [`user_key_to_bytes`] output.
///
/// # Errors
///
/// [`Error::InvalidCiphertext`] on malformed bytes.
pub fn user_key_from_bytes(curve: &CurveParams, bytes: &[u8]) -> Result<UserKey, Error> {
    keyed_point_from_bytes(curve, bytes).map(|(id, point)| UserKey { id, point })
}

/// Encodes a SEM half-key (PKG → SEM provisioning message).
pub fn sem_key_to_bytes(curve: &CurveParams, key: &SemKey) -> Vec<u8> {
    keyed_point_to_bytes(curve, &key.id, &key.point)
}

/// Decodes [`sem_key_to_bytes`] output.
///
/// # Errors
///
/// [`Error::InvalidCiphertext`] on malformed bytes.
pub fn sem_key_from_bytes(curve: &CurveParams, bytes: &[u8]) -> Result<SemKey, Error> {
    keyed_point_from_bytes(curve, bytes).map(|(id, point)| SemKey { id, point })
}

/// Encodes a full (non-mediated) private key.
pub fn private_key_to_bytes(curve: &CurveParams, key: &PrivateKey) -> Vec<u8> {
    keyed_point_to_bytes(curve, &key.id, &key.point)
}

/// Decodes [`private_key_to_bytes`] output.
///
/// # Errors
///
/// [`Error::InvalidCiphertext`] on malformed bytes.
pub fn private_key_from_bytes(curve: &CurveParams, bytes: &[u8]) -> Result<PrivateKey, Error> {
    keyed_point_from_bytes(curve, bytes).map(|(id, point)| PrivateKey { id, point })
}

/// Encodes a threshold key share:
/// `u32 index ‖ u16 id-len ‖ id ‖ point`.
pub fn key_share_to_bytes(curve: &CurveParams, share: &IdKeyShare) -> Vec<u8> {
    let mut out = share.index.to_be_bytes().to_vec();
    out.extend_from_slice(&keyed_point_to_bytes(curve, &share.id, &share.point));
    out
}

/// Decodes [`key_share_to_bytes`] output.
///
/// # Errors
///
/// [`Error::InvalidCiphertext`] on malformed bytes.
pub fn key_share_from_bytes(curve: &CurveParams, bytes: &[u8]) -> Result<IdKeyShare, Error> {
    let mut r = Reader::new(bytes);
    let index = r.u32_be().ok_or(Error::InvalidCiphertext)?;
    let (id, point) = keyed_point_from_bytes(curve, r.rest())?;
    Ok(IdKeyShare { id, index, point })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf_ibe::Pkg;
    use crate::gdh;
    use crate::mediated::Sem;
    use crate::threshold::ThresholdPkg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Pkg, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x31);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        (Pkg::setup(&mut rng, curve), rng)
    }

    #[test]
    fn token_roundtrip_and_still_decrypts() {
        let (pkg, mut rng) = setup();
        let curve = pkg.params().curve();
        let (user, sem_key) = pkg.extract_split(&mut rng, "alice");
        let mut sem = Sem::new();
        sem.install(sem_key);
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"over the wire")
            .unwrap();
        let token = sem.decrypt_token(pkg.params(), "alice", &c.u).unwrap();
        let bytes = token_to_bytes(curve, &token);
        assert_eq!(bytes.len(), 2 * curve.fp().byte_len());
        let parsed = token_from_bytes(curve, &bytes).unwrap();
        assert_eq!(parsed, token);
        assert_eq!(
            user.finish_decrypt(pkg.params(), &c, &parsed).unwrap(),
            b"over the wire"
        );
        assert!(token_from_bytes(curve, &bytes[1..]).is_err());
    }

    #[test]
    fn signature_roundtrip() {
        let (pkg, mut rng) = setup();
        let curve = pkg.params().curve();
        let (sk, pk) = gdh::keygen(&mut rng, curve);
        let sig = gdh::sign(curve, &sk, b"doc");
        let bytes = signature_to_bytes(curve, &sig);
        assert_eq!(bytes.len(), curve.point_len());
        let parsed = signature_from_bytes(curve, &bytes).unwrap();
        gdh::verify(curve, &pk, b"doc", &parsed).unwrap();
        // Corrupt a byte: decoding must fail (off-curve or wrong point).
        let mut bad = bytes.clone();
        bad[0] ^= 0x01;
        if let Ok(sig2) = signature_from_bytes(curve, &bad) {
            assert!(gdh::verify(curve, &pk, b"doc", &sig2).is_err());
        }
    }

    #[test]
    fn half_signature_roundtrip() {
        let (pkg, mut rng) = setup();
        let curve = pkg.params().curve();
        let (user, sem_key, pk) = gdh::mediated_keygen(&mut rng, curve, "s");
        let mut sem = gdh::GdhSem::new();
        sem.install(sem_key);
        let half = sem.half_sign(curve, "s", b"m").unwrap();
        let parsed =
            half_signature_from_bytes(curve, &half_signature_to_bytes(curve, &half)).unwrap();
        let sig = user.finish_sign(curve, b"m", &parsed).unwrap();
        gdh::verify(curve, &pk, b"m", &sig).unwrap();
    }

    #[test]
    fn key_records_roundtrip() {
        let (pkg, mut rng) = setup();
        let curve = pkg.params().curve();
        let (user, sem_key) = pkg.extract_split(&mut rng, "kiwi@example.com");
        let full = pkg.extract("kiwi@example.com");

        let u2 = user_key_from_bytes(curve, &user_key_to_bytes(curve, &user)).unwrap();
        assert_eq!(u2, user);
        let s2 = sem_key_from_bytes(curve, &sem_key_to_bytes(curve, &sem_key)).unwrap();
        assert_eq!(s2, sem_key);
        let f2 = private_key_from_bytes(curve, &private_key_to_bytes(curve, &full)).unwrap();
        assert_eq!(f2, full);
        // Recombination still works after the byte trip.
        assert_eq!(u2.collude(pkg.params(), &s2), full);
    }

    #[test]
    fn key_share_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x32);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let tpkg = ThresholdPkg::setup(&mut rng, curve.clone(), 2, 3).unwrap();
        for share in tpkg.keygen("vault") {
            let parsed = key_share_from_bytes(&curve, &key_share_to_bytes(&curve, &share)).unwrap();
            assert_eq!(parsed, share);
            assert!(tpkg.system().verify_key_share(&parsed));
        }
        assert!(key_share_from_bytes(&curve, &[1, 2, 3]).is_err());
    }

    #[test]
    fn malformed_key_records_rejected() {
        let (pkg, mut rng) = setup();
        let curve = pkg.params().curve();
        let (user, _) = pkg.extract_split(&mut rng, "x");
        let bytes = user_key_to_bytes(curve, &user);
        assert!(user_key_from_bytes(curve, &bytes[..bytes.len() - 1]).is_err());
        assert!(user_key_from_bytes(curve, &[]).is_err());
        let mut bad_len = bytes.clone();
        bad_len[0] = 0xff;
        bad_len[1] = 0xff;
        assert!(user_key_from_bytes(curve, &bad_len).is_err());
    }
}
