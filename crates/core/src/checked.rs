//! Publicly checkable threshold ciphertexts — the Fouque–Pointcheval
//! route the paper sketches (§3.3).
//!
//! §3.3 explains why the threshold `FullIdent` cannot be proven
//! IND-ID-TCCA: validity is only checked *at the end* of decryption, so
//! decryption servers (and any security-proof simulator) must operate
//! on possibly-invalid ciphertexts. It then notes: *"A possible method
//! is \[to\] slightly modify the scheme to apply to it the
//! Fouque-Pointcheval generic technique described in \[10\]"* — i.e.
//! attach a *publicly verifiable* proof of ciphertext validity so the
//! servers can reject bad ciphertexts **before** producing any share.
//!
//! This module implements that mechanism: a Fiat–Shamir Schnorr proof
//! of knowledge of the encryption randomness `r` (`U = rP`), with the
//! whole ciphertext bound into the challenge. Decryption servers verify
//! the proof and refuse to serve shares otherwise — closing exactly the
//! gap §2/§3.3 identify. (The full CCA security proof is the future
//! work the paper defers; the *mechanism* is what is reproduced here.)

use crate::bf_ibe::{BasicCiphertext, IbePublicParams};
use crate::threshold::{DecryptionShare, IdKeyShare, ThresholdSystem};
use crate::Error;
use rand::RngCore;
use sempair_bigint::{modular, BigUint};
use sempair_hash::derive;
use sempair_pairing::G1Affine;

/// A Schnorr proof of knowledge of `r` with `U = rP`, challenge-bound
/// to the full ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidityProof {
    /// Commitment `A = kP`.
    pub commitment: G1Affine,
    /// Response `z = k + c·r mod q`.
    pub z: BigUint,
}

/// A `BasicIdent` ciphertext carrying its validity proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckedCiphertext {
    /// The underlying ciphertext.
    pub inner: BasicCiphertext,
    /// The identity it is addressed to (bound into the challenge so a
    /// proof cannot be replayed onto another recipient).
    pub id: String,
    /// The proof of well-formedness.
    pub proof: ValidityProof,
}

fn challenge(params: &IbePublicParams, id: &str, c: &BasicCiphertext, a: &G1Affine) -> BigUint {
    let curve = params.curve();
    let digest = derive::transcript_hash(
        b"sempair-fp-validity",
        &[
            id.as_bytes(),
            &curve.point_to_uncompressed(&c.u),
            &c.v,
            &curve.point_to_uncompressed(a),
        ],
    );
    &BigUint::from_be_bytes(&digest) % curve.order()
}

/// Encrypts with an attached validity proof.
pub fn encrypt_checked(
    rng: &mut impl RngCore,
    params: &IbePublicParams,
    id: &str,
    message: &[u8],
) -> CheckedCiphertext {
    let curve = params.curve();
    let r = curve.random_scalar(rng);
    let inner = params.encrypt_basic_with_r(id, message, &r);
    let k = curve.random_scalar(rng);
    let commitment = curve.mul_generator(&k);
    let c = challenge(params, id, &inner, &commitment);
    let z = modular::mod_add(&k, &modular::mod_mul(&c, &r, curve.order()), curve.order());
    CheckedCiphertext {
        inner,
        id: id.to_string(),
        proof: ValidityProof { commitment, z },
    }
}

/// Public validity check: `z·P = A + c·U` (and group membership).
///
/// # Errors
///
/// [`Error::InvalidCiphertext`] when the proof fails.
pub fn verify_ciphertext(params: &IbePublicParams, ct: &CheckedCiphertext) -> Result<(), Error> {
    let curve = params.curve();
    if !curve.is_in_group(&ct.inner.u) || !curve.is_in_group(&ct.proof.commitment) {
        return Err(Error::InvalidCiphertext);
    }
    let c = challenge(params, &ct.id, &ct.inner, &ct.proof.commitment);
    let lhs = curve.mul_generator(&ct.proof.z);
    let rhs = curve.add(&ct.proof.commitment, &curve.mul(&c, &ct.inner.u));
    if lhs == rhs {
        Ok(())
    } else {
        Err(Error::InvalidCiphertext)
    }
}

impl ThresholdSystem {
    /// Server-side decryption for checked ciphertexts: the server
    /// verifies validity **before** computing its share — the property
    /// that makes simulation (and hence a CCA proof) possible.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidCiphertext`] when the proof fails — no share is
    /// produced for invalid ciphertexts.
    pub fn decryption_share_checked(
        &self,
        key_share: &IdKeyShare,
        ciphertext: &CheckedCiphertext,
    ) -> Result<DecryptionShare, Error> {
        verify_ciphertext(self.params(), ciphertext)?;
        Ok(self.decryption_share(key_share, &ciphertext.inner.u))
    }

    /// Recombination for checked ciphertexts (re-verifies, then
    /// recombines the plain way).
    ///
    /// # Errors
    ///
    /// Propagates validity and share-count errors.
    pub fn recombine_checked(
        &self,
        ciphertext: &CheckedCiphertext,
        shares: &[DecryptionShare],
    ) -> Result<Vec<u8>, Error> {
        verify_ciphertext(self.params(), ciphertext)?;
        self.recombine_basic(&ciphertext.inner, shares)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdPkg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sempair_pairing::CurveParams;

    fn setup() -> (ThresholdPkg, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xFB);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        (ThresholdPkg::setup(&mut rng, curve, 2, 3).unwrap(), rng)
    }

    #[test]
    fn checked_roundtrip() {
        let (pkg, mut rng) = setup();
        let sys = pkg.system();
        let shares = pkg.keygen("vault");
        let ct = encrypt_checked(&mut rng, sys.params(), "vault", b"checked!");
        verify_ciphertext(sys.params(), &ct).unwrap();
        let dec: Vec<_> = shares[..2]
            .iter()
            .map(|ks| sys.decryption_share_checked(ks, &ct).unwrap())
            .collect();
        assert_eq!(sys.recombine_checked(&ct, &dec).unwrap(), b"checked!");
    }

    #[test]
    fn servers_refuse_mauled_ciphertexts() {
        // The §3.3 point: with the FP proof, malleation is caught at
        // the SERVER, before any share leaks.
        let (pkg, mut rng) = setup();
        let sys = pkg.system();
        let shares = pkg.keygen("vault");
        let ct = encrypt_checked(&mut rng, sys.params(), "vault", b"original");
        // Maul V (the BasicIdent malleability attack).
        let mut mauled = ct.clone();
        mauled.inner.v[0] ^= 1;
        assert_eq!(
            sys.decryption_share_checked(&shares[0], &mauled),
            Err(Error::InvalidCiphertext)
        );
        // Maul U.
        let mut mauled = ct.clone();
        mauled.inner.u = sys.params().curve().mul_generator(&BigUint::from(9u64));
        assert_eq!(
            sys.decryption_share_checked(&shares[0], &mauled),
            Err(Error::InvalidCiphertext)
        );
        // Replay the proof under a different identity.
        let mut mauled = ct.clone();
        mauled.id = "other".into();
        assert_eq!(
            sys.decryption_share_checked(&shares[0], &mauled),
            Err(Error::InvalidCiphertext)
        );
    }

    #[test]
    fn proof_cannot_be_transplanted() {
        let (pkg, mut rng) = setup();
        let sys = pkg.system();
        let ct1 = encrypt_checked(&mut rng, sys.params(), "vault", b"one");
        let ct2 = encrypt_checked(&mut rng, sys.params(), "vault", b"two");
        let mut franken = ct2.clone();
        franken.proof = ct1.proof.clone();
        assert!(verify_ciphertext(sys.params(), &franken).is_err());
    }

    #[test]
    fn forged_proof_without_r_fails() {
        // An adversary who picks U without knowing r cannot prove.
        let (pkg, mut rng) = setup();
        let sys = pkg.system();
        let curve = sys.params().curve();
        let u = curve.mul_generator(&curve.random_scalar(&mut rng));
        let inner = BasicCiphertext {
            u,
            v: vec![0u8; 16],
        };
        let forged = CheckedCiphertext {
            inner,
            id: "vault".into(),
            proof: ValidityProof {
                commitment: curve.mul_generator(&curve.random_scalar(&mut rng)),
                z: curve.random_scalar(&mut rng),
            },
        };
        assert!(verify_ciphertext(sys.params(), &forged).is_err());
    }

    #[test]
    fn recombine_checked_rejects_invalid() {
        let (pkg, mut rng) = setup();
        let sys = pkg.system();
        let shares = pkg.keygen("vault");
        let ct = encrypt_checked(&mut rng, sys.params(), "vault", b"x");
        let dec: Vec<_> = shares[..2]
            .iter()
            .map(|ks| sys.decryption_share_checked(ks, &ct).unwrap())
            .collect();
        let mut mauled = ct.clone();
        mauled.inner.v[0] ^= 1;
        assert_eq!(
            sys.recombine_checked(&mauled, &dec),
            Err(Error::InvalidCiphertext)
        );
    }
}
