//! A bounds-checked byte cursor for decoding untrusted wire bytes.
//!
//! Every decoder in this workspace consumes attacker-controlled input:
//! ciphertexts, key records, share bundles, journal frames. Indexing
//! (`bytes[2..2 + id_len]`) or `try_into().expect(..)` in those paths
//! turns a malformed frame into a panic — a remote crash vector for a
//! SEM replica. [`Reader`] replaces both: every read is checked and
//! returns `None` past the end, so decoders reduce to `?`-chains that
//! fail closed.
//!
//! The methods return [`Option`] rather than a concrete error so each
//! codec can map exhaustion to its own domain error
//! (`InvalidCiphertext`, `InvalidSignature`, …) with `ok_or`.

/// A forward-only, bounds-checked view over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// `true` iff every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes and returns the next `n` bytes, or `None` if fewer
    /// remain.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let (head, tail) = (self.buf.get(..n)?, self.buf.get(n..)?);
        self.buf = tail;
        Some(head)
    }

    /// Consumes the rest of the buffer (possibly empty).
    pub fn rest(&mut self) -> &'a [u8] {
        std::mem::take(&mut self.buf)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    /// Consumes a big-endian `u16`.
    pub fn u16_be(&mut self) -> Option<u16> {
        self.bytes(2)
            .and_then(|b| Some(u16::from_be_bytes(b.try_into().ok()?)))
    }

    /// Consumes a big-endian `u32`.
    pub fn u32_be(&mut self) -> Option<u32> {
        self.bytes(4)
            .and_then(|b| Some(u32::from_be_bytes(b.try_into().ok()?)))
    }

    /// Consumes a big-endian `u64`.
    pub fn u64_be(&mut self) -> Option<u64> {
        self.bytes(8)
            .and_then(|b| Some(u64::from_be_bytes(b.try_into().ok()?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads() {
        let data = [0x01, 0x00, 0x02, 0xaa, 0xbb, 0xcc];
        let mut r = Reader::new(&data);
        assert_eq!(r.u8(), Some(0x01));
        assert_eq!(r.u16_be(), Some(2));
        assert_eq!(r.bytes(2), Some(&[0xaa, 0xbb][..]));
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.rest(), &[0xcc]);
        assert!(r.is_empty());
    }

    #[test]
    fn exhaustion_returns_none_without_panicking() {
        let mut r = Reader::new(&[0xff]);
        assert_eq!(r.u32_be(), None);
        // A failed read consumes nothing.
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.u8(), Some(0xff));
        assert_eq!(r.u8(), None);
        assert_eq!(r.bytes(usize::MAX), None);
    }

    #[test]
    fn wide_integers() {
        let data = [0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 9];
        let mut r = Reader::new(&data);
        assert_eq!(r.u32_be(), Some(7));
        assert_eq!(r.u64_be(), Some(9));
        assert!(r.is_empty());
    }
}
