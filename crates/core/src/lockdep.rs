//! Runtime lock-order verification ("lockdep").
//!
//! The serving daemon holds locks from several subsystems at once
//! (shards, the revocation journal, the warm set, the precompute
//! tier, …). Its deadlock freedom rests on a partial order over
//! *lock classes*: every thread must acquire locks in non-decreasing
//! class rank. Historically that order lived in prose comments; this
//! module makes it machine-checked.
//!
//! Two wrappers, [`TrackedMutex`] and [`TrackedRwLock`], stand in for
//! `Mutex`/`RwLock` at every construction site in the serving path.
//! Each carries a declared [`LockClass`]. With the `lockdep` cargo
//! feature enabled, every acquisition:
//!
//! 1. records a `held-class → acquired-class` edge in a global
//!    acquired-before graph (first-seen `file:line` sites kept per
//!    edge, via `#[track_caller]`),
//! 2. flags a **declared-order inversion** if the acquired class has
//!    a strictly lower [`LockClass::rank`] than any class already
//!    held by the thread,
//! 3. flags an **observed-order inversion** if the reverse edge is
//!    already in the graph (the two classes have equal rank, i.e. are
//!    incomparable in the declared order, but runtime history pins
//!    one direction), and
//! 4. flags a **cycle** if inserting the new edges closes a longer
//!    loop in the class graph (order-insensitive: whichever thread
//!    completes the cycle reports it).
//!
//! At most one violation is reported per acquisition event, so a
//! deliberate single inversion in a test produces exactly one report.
//! Same-class nesting (two locks of one class held together, e.g. two
//! cluster slots) is deliberately out of scope at class granularity.
//!
//! With the feature disabled the wrappers compile down to plain
//! non-poisoning `std::sync` locks — no globals, no thread-locals, no
//! atomics — so production builds pay nothing.

use std::sync::{Condvar, Mutex as StdMutex, PoisonError, RwLock as StdRwLock};
use std::time::Duration;

/// `true` when this build carries the lockdep machinery (`lockdep`
/// cargo feature). When `false` every query below returns zeros.
#[cfg(feature = "lockdep")]
pub const COMPILED: bool = true;
/// `true` when this build carries the lockdep machinery (`lockdep`
/// cargo feature). When `false` every query below returns zeros.
#[cfg(not(feature = "lockdep"))]
pub const COMPILED: bool = false;

/// Declared lock classes, one per protected subsystem.
///
/// [`LockClass::rank`] encodes the acquisition partial order: a
/// thread already holding a class may only acquire classes of equal
/// or higher rank. Equal-rank classes are incomparable (no declared
/// order between them); the runtime observed-edge and cycle checks
/// still police them. This table **is** the former prose invariant
/// "warm → journal → shard" from the TCP daemon, extended to every
/// lock in the serving path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockClass {
    /// Cluster-client slots and wave result collection (`cluster.rs`).
    Cluster,
    /// Fault-injection proxy state (`faults.rs`).
    Faults,
    /// Live-connection registry of the TCP daemon (`tcp.rs`).
    Conns,
    /// Per-connection handler join-handle list (`tcp.rs`).
    Handlers,
    /// Warm-identity set feeding the precompute tier (`tcp.rs`).
    Warm,
    /// Durable revocation/warm journal (`tcp.rs`).
    Journal,
    /// Key/revocation shard (`tcp.rs`, `server.rs`).
    Shard,
    /// Idempotency (exactly-once) window (`tcp.rs`).
    Idem,
    /// Worker-pool job queue (`tcp.rs`). Incomparable with
    /// [`LockClass::Inflight`] (equal rank): neither is ever held
    /// while taking the other.
    Pool,
    /// Per-connection in-flight pipeline gate (`tcp.rs`).
    Inflight,
    /// Precompute-tier LRU caches (`SharedLru`, `cache.rs`).
    CacheTier,
    /// Audit ring and metering state (`audit.rs`).
    AuditRing,
}

/// Number of declared lock classes.
pub const CLASS_COUNT: usize = 12;

impl LockClass {
    /// Every declared class, in rank order.
    pub const ALL: [LockClass; CLASS_COUNT] = [
        LockClass::Cluster,
        LockClass::Faults,
        LockClass::Conns,
        LockClass::Handlers,
        LockClass::Warm,
        LockClass::Journal,
        LockClass::Shard,
        LockClass::Idem,
        LockClass::Pool,
        LockClass::Inflight,
        LockClass::CacheTier,
        LockClass::AuditRing,
    ];

    /// Rank in the declared acquisition order (lower = outer, i.e.
    /// acquired first). Equal ranks are incomparable.
    ///
    /// The auditor's R5 rule cross-checks this table against the
    /// `lock:class(..)` annotations in the serving crates; keep the
    /// `LockClass::Name => rank` arms one per line.
    pub const fn rank(self) -> u8 {
        match self {
            LockClass::Cluster => 0,
            LockClass::Faults => 1,
            LockClass::Conns => 2,
            LockClass::Handlers => 3,
            LockClass::Warm => 4,
            LockClass::Journal => 5,
            LockClass::Shard => 6,
            LockClass::Idem => 7,
            LockClass::Pool => 8,
            LockClass::Inflight => 8,
            LockClass::CacheTier => 10,
            LockClass::AuditRing => 11,
        }
    }

    /// Stable display name (matches the variant identifier).
    pub const fn name(self) -> &'static str {
        match self {
            LockClass::Cluster => "Cluster",
            LockClass::Faults => "Faults",
            LockClass::Conns => "Conns",
            LockClass::Handlers => "Handlers",
            LockClass::Warm => "Warm",
            LockClass::Journal => "Journal",
            LockClass::Shard => "Shard",
            LockClass::Idem => "Idem",
            LockClass::Pool => "Pool",
            LockClass::Inflight => "Inflight",
            LockClass::CacheTier => "CacheTier",
            LockClass::AuditRing => "AuditRing",
        }
    }

    /// Parses a class from its [`LockClass::name`].
    pub fn from_name(name: &str) -> Option<LockClass> {
        LockClass::ALL.iter().copied().find(|c| c.name() == name)
    }

    #[cfg(feature = "lockdep")]
    const fn index(self) -> usize {
        match self {
            LockClass::Cluster => 0,
            LockClass::Faults => 1,
            LockClass::Conns => 2,
            LockClass::Handlers => 3,
            LockClass::Warm => 4,
            LockClass::Journal => 5,
            LockClass::Shard => 6,
            LockClass::Idem => 7,
            LockClass::Pool => 8,
            LockClass::Inflight => 9,
            LockClass::CacheTier => 10,
            LockClass::AuditRing => 11,
        }
    }
}

/// What an acquisition violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// The acquired class ranks strictly below a held class.
    DeclaredOrder,
    /// Equal ranks, but the reverse edge was observed earlier.
    ObservedOrder,
    /// Inserting this acquisition's edges closed a longer cycle.
    Cycle,
}

/// One detected lock-order violation.
#[derive(Clone, Debug)]
pub struct LockdepViolation {
    /// Which check fired.
    pub kind: ViolationKind,
    /// Class already held by the thread.
    pub held: LockClass,
    /// Class being acquired.
    pub acquired: LockClass,
    /// `file:line` where the held lock was acquired.
    pub held_site: String,
    /// `file:line` of the violating acquisition.
    pub acquire_site: String,
}

impl std::fmt::Display for LockdepViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: acquired {} (at {}) while holding {} (from {})",
            self.kind,
            self.acquired.name(),
            self.acquire_site,
            self.held.name(),
            self.held_site
        )
    }
}

/// One first-seen acquired-before edge.
#[derive(Clone, Debug)]
pub struct LockdepEdge {
    /// Class held first.
    pub from: LockClass,
    /// Class acquired while `from` was held.
    pub to: LockClass,
    /// `file:line` where the `from` lock was first seen acquired.
    pub from_site: String,
    /// `file:line` where the nested `to` acquisition was first seen.
    pub to_site: String,
}

/// Snapshot of the global lockdep state.
#[derive(Clone, Debug, Default)]
pub struct LockdepReport {
    /// Observed acquired-before edges with first-seen sites.
    pub edges: Vec<LockdepEdge>,
    /// Detected violations (detail list capped; see
    /// [`LockdepReport::violation_count`] for the true total).
    pub violations: Vec<LockdepViolation>,
    /// Total acquisition checks performed.
    pub checks: u64,
    /// Total violations detected (monotonic, never capped).
    pub violation_count: u64,
}

#[cfg(feature = "lockdep")]
mod imp {
    use super::{
        LockClass, LockdepEdge, LockdepReport, LockdepViolation, ViolationKind, CLASS_COUNT,
    };
    use std::cell::RefCell;
    use std::panic::Location;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, PoisonError};

    /// Detail cap on the stored violation list (the counter keeps
    /// counting past it).
    const MAX_VIOLATIONS: usize = 64;

    type Site = &'static Location<'static>;

    pub(super) static ENABLED: AtomicBool = AtomicBool::new(true);
    static CHECKS: AtomicU64 = AtomicU64::new(0);
    static VIOLATIONS: AtomicU64 = AtomicU64::new(0);
    static EDGES: AtomicU64 = AtomicU64::new(0);

    struct Graph {
        /// Adjacency bitmask: bit `to` set in `adj[from]` iff the
        /// edge `from → to` has been observed.
        adj: [u16; CLASS_COUNT],
        /// First-seen `(from_site, to_site)` per edge.
        sites: [[Option<(Site, Site)>; CLASS_COUNT]; CLASS_COUNT],
        violations: Vec<LockdepViolation>,
    }

    impl Graph {
        const fn new() -> Self {
            const NONE_ROW: [Option<(Site, Site)>; CLASS_COUNT] = [None; CLASS_COUNT];
            Graph {
                adj: [0; CLASS_COUNT],
                sites: [NONE_ROW; CLASS_COUNT],
                violations: Vec::new(),
            }
        }

        /// Bitmask of classes reachable from `start` (excluding
        /// `start` itself unless it sits on a cycle).
        fn reachable(&self, start: usize) -> u16 {
            let mut seen: u16 = 0;
            let mut frontier = self.adj[start];
            while frontier != 0 {
                let next = frontier & !seen;
                if next == 0 {
                    break;
                }
                seen |= next;
                frontier = 0;
                for i in 0..CLASS_COUNT {
                    if next & (1 << i) != 0 {
                        frontier |= self.adj[i];
                    }
                }
            }
            seen
        }
    }

    static STATE: Mutex<Graph> = Mutex::new(Graph::new());

    struct Held {
        class: LockClass,
        site: Site,
        token: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static THREAD_VIOLATIONS: RefCell<Vec<LockdepViolation>> =
            const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(1) };
    }

    fn site_str(site: Site) -> String {
        format!("{}:{}", site.file(), site.line())
    }

    fn record_violation(v: LockdepViolation) {
        VIOLATIONS.fetch_add(1, Ordering::Relaxed);
        let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
        if state.violations.len() < MAX_VIOLATIONS {
            state.violations.push(v.clone());
        }
        drop(state);
        THREAD_VIOLATIONS.with(|t| t.borrow_mut().push(v));
    }

    /// Registers an acquisition of `class` at `site`; returns the
    /// held-set token the matching release must pass back.
    pub(super) fn on_acquire(class: LockClass, site: Site) -> u64 {
        if !ENABLED.load(Ordering::Relaxed) {
            return 0;
        }
        CHECKS.fetch_add(1, Ordering::Relaxed);
        let held: Vec<(LockClass, Site)> = HELD.with(|h| {
            h.borrow()
                .iter()
                .map(|entry| (entry.class, entry.site))
                .collect()
        });
        let mut violation: Option<LockdepViolation> = None;
        // Pass 1: declared-rank inversions (no graph lock needed).
        for &(h_class, h_site) in &held {
            if h_class == class {
                continue;
            }
            if class.rank() < h_class.rank() {
                violation = Some(LockdepViolation {
                    kind: ViolationKind::DeclaredOrder,
                    held: h_class,
                    acquired: class,
                    held_site: site_str(h_site),
                    acquire_site: site_str(site),
                });
                break;
            }
        }
        // Pass 2: record edges and run the observed-order / cycle
        // checks against the global graph.
        if !held.is_empty() {
            let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
            let to = class.index();
            for &(h_class, h_site) in &held {
                if h_class == class {
                    continue;
                }
                let from = h_class.index();
                if violation.is_none() && state.adj[to] & (1 << from) != 0 {
                    // The reverse edge (class → h_class) is already
                    // in the graph: runtime history pinned the other
                    // direction first.
                    violation = Some(LockdepViolation {
                        kind: ViolationKind::ObservedOrder,
                        held: h_class,
                        acquired: class,
                        held_site: site_str(h_site),
                        acquire_site: site_str(site),
                    });
                }
                // Record the edge only when it respects the declared
                // partial order (incomparable equal-rank pairs are
                // recorded in whichever direction runtime history pins
                // first). A rank-inverted edge is the violation itself,
                // not history — recording it would make every later
                // declared-consistent acquisition of the same pair
                // flag ObservedOrder.
                if h_class.rank() <= class.rank() && state.adj[from] & (1 << to) == 0 {
                    state.adj[from] |= 1 << to;
                    state.sites[from][to] = Some((h_site, site));
                    EDGES.fetch_add(1, Ordering::Relaxed);
                }
            }
            if violation.is_none() {
                // Cycle check: did this acquisition's edges close a
                // loop `class ⇝ held ⇝ class`? Direct 2-cycles were
                // caught above; this finds the longer ones.
                let reach = state.reachable(to);
                for &(h_class, h_site) in &held {
                    if h_class == class {
                        continue;
                    }
                    if reach & (1 << h_class.index()) != 0 {
                        violation = Some(LockdepViolation {
                            kind: ViolationKind::Cycle,
                            held: h_class,
                            acquired: class,
                            held_site: site_str(h_site),
                            acquire_site: site_str(site),
                        });
                        break;
                    }
                }
            }
            drop(state);
        }
        if let Some(v) = violation {
            record_violation(v);
        }
        let token = NEXT_TOKEN.with(|t| {
            let mut t = t.borrow_mut();
            let token = *t;
            *t += 1;
            token
        });
        HELD.with(|h| h.borrow_mut().push(Held { class, site, token }));
        token
    }

    /// Releases the held-set entry registered under `token` (tokens
    /// tolerate out-of-order guard drops).
    pub(super) fn on_release(token: u64) {
        if token == 0 {
            return;
        }
        HELD.with(|h| h.borrow_mut().retain(|entry| entry.token != token));
    }

    pub(super) fn checks() -> u64 {
        CHECKS.load(Ordering::Relaxed)
    }

    pub(super) fn violation_count() -> u64 {
        VIOLATIONS.load(Ordering::Relaxed)
    }

    pub(super) fn edge_count() -> u64 {
        EDGES.load(Ordering::Relaxed)
    }

    pub(super) fn report() -> LockdepReport {
        let state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
        let mut edges = Vec::new();
        for from in LockClass::ALL {
            for to in LockClass::ALL {
                if let Some((from_site, to_site)) = state.sites[from.index()][to.index()] {
                    edges.push(LockdepEdge {
                        from,
                        to,
                        from_site: site_str(from_site),
                        to_site: site_str(to_site),
                    });
                }
            }
        }
        LockdepReport {
            edges,
            violations: state.violations.clone(),
            checks: checks(),
            violation_count: violation_count(),
        }
    }

    pub(super) fn take_thread_violations() -> Vec<LockdepViolation> {
        THREAD_VIOLATIONS.with(|t| std::mem::take(&mut *t.borrow_mut()))
    }

    pub(super) fn reset() {
        let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
        *state = Graph::new();
        drop(state);
        CHECKS.store(0, Ordering::Relaxed);
        VIOLATIONS.store(0, Ordering::Relaxed);
        EDGES.store(0, Ordering::Relaxed);
        THREAD_VIOLATIONS.with(|t| t.borrow_mut().clear());
    }
}

/// Enables or disables runtime tracking (compiled builds start
/// enabled). No-op without the `lockdep` feature.
pub fn set_enabled(enabled: bool) {
    #[cfg(feature = "lockdep")]
    imp::ENABLED.store(enabled, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "lockdep"))]
    let _ = enabled;
}

/// Whether runtime tracking is currently active.
pub fn enabled() -> bool {
    #[cfg(feature = "lockdep")]
    {
        imp::ENABLED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "lockdep"))]
    {
        false
    }
}

/// Total acquisition checks performed (0 without the feature).
pub fn checks() -> u64 {
    #[cfg(feature = "lockdep")]
    {
        imp::checks()
    }
    #[cfg(not(feature = "lockdep"))]
    {
        0
    }
}

/// Total violations detected (0 without the feature).
pub fn violation_count() -> u64 {
    #[cfg(feature = "lockdep")]
    {
        imp::violation_count()
    }
    #[cfg(not(feature = "lockdep"))]
    {
        0
    }
}

/// Distinct acquired-before edges observed (0 without the feature).
pub fn edge_count() -> u64 {
    #[cfg(feature = "lockdep")]
    {
        imp::edge_count()
    }
    #[cfg(not(feature = "lockdep"))]
    {
        0
    }
}

/// Snapshots the global edge graph and violation list.
pub fn report() -> LockdepReport {
    #[cfg(feature = "lockdep")]
    {
        imp::report()
    }
    #[cfg(not(feature = "lockdep"))]
    {
        LockdepReport::default()
    }
}

/// Drains the calling thread's violation capture (test hook: lets a
/// test assert on exactly the violations its own thread produced,
/// immune to parallel tests elsewhere in the process).
pub fn take_thread_violations() -> Vec<LockdepViolation> {
    #[cfg(feature = "lockdep")]
    {
        imp::take_thread_violations()
    }
    #[cfg(not(feature = "lockdep"))]
    {
        Vec::new()
    }
}

/// Clears the global graph, violation list and counters (test hook).
pub fn reset() {
    #[cfg(feature = "lockdep")]
    imp::reset();
}

/// A mutex registered under a [`LockClass`].
///
/// Semantics match the workspace `parking_lot` shim: non-poisoning
/// (a panicking holder does not wedge later acquisitions), guard
/// implements `Deref`/`DerefMut`. Built over `std::sync::Mutex` so
/// [`TrackedMutexGuard::wait_timeout`] can park on a
/// `std::sync::Condvar`.
pub struct TrackedMutex<T: ?Sized> {
    #[cfg(feature = "lockdep")]
    class: LockClass,
    inner: StdMutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Creates a mutex registered under `class`.
    pub const fn new(class: LockClass, value: T) -> Self {
        #[cfg(not(feature = "lockdep"))]
        let _ = class;
        TrackedMutex {
            #[cfg(feature = "lockdep")]
            class,
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// Acquires the mutex, blocking until available. The acquisition
    /// site (`file:line` of the caller) tags the lockdep edge graph.
    #[track_caller]
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let token = imp::on_acquire(self.class, std::panic::Location::caller());
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        TrackedMutexGuard {
            inner: Some(guard),
            #[cfg(feature = "lockdep")]
            token,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("TrackedMutex");
        #[cfg(feature = "lockdep")]
        s.field("class", &self.class);
        s.finish_non_exhaustive()
    }
}

/// Guard for [`TrackedMutex`]; releases the lockdep held-set entry on
/// drop.
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    /// `Option` so [`TrackedMutexGuard::wait_timeout`] can hand the
    /// inner guard to a `Condvar` and take it back, without `unsafe`
    /// (both serving crates forbid it). Always `Some` outside that
    /// window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(feature = "lockdep")]
    token: u64,
}

impl<T> TrackedMutexGuard<'_, T> {
    /// Atomically releases the mutex and parks on `cv` until notified
    /// or `timeout` elapses, then reacquires. Returns `true` if the
    /// wait timed out. The lock-class held-set entry is kept across
    /// the wait: the thread is parked, so it cannot acquire anything
    /// else in the window where the lock is released.
    pub fn wait_timeout(&mut self, cv: &Condvar, timeout: Duration) -> bool {
        match self.inner.take() {
            Some(guard) => {
                let (guard, result) = match cv.wait_timeout(guard, timeout) {
                    Ok((guard, result)) => (guard, result),
                    Err(poisoned) => poisoned.into_inner(),
                };
                self.inner = Some(guard);
                result.timed_out()
            }
            None => true,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(guard) => guard,
            // Unreachable: `inner` is only `None` inside
            // `wait_timeout`, which holds `&mut self`.
            None => unreachable!("guard accessed during condvar wait"),
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(guard) => guard,
            None => unreachable!("guard accessed during condvar wait"),
        }
    }
}

impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lockdep")]
        imp::on_release(self.token);
    }
}

/// A reader-writer lock registered under a [`LockClass`].
///
/// Non-poisoning, like the workspace `parking_lot` shim. Both `read`
/// and `write` acquisitions feed the same class into the lockdep
/// graph (ordering discipline is direction-agnostic).
pub struct TrackedRwLock<T: ?Sized> {
    #[cfg(feature = "lockdep")]
    class: LockClass,
    inner: StdRwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Creates a reader-writer lock registered under `class`.
    pub const fn new(class: LockClass, value: T) -> Self {
        #[cfg(not(feature = "lockdep"))]
        let _ = class;
        TrackedRwLock {
            #[cfg(feature = "lockdep")]
            class,
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    /// Acquires shared read access.
    #[track_caller]
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let token = imp::on_acquire(self.class, std::panic::Location::caller());
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        TrackedReadGuard {
            inner: guard,
            #[cfg(feature = "lockdep")]
            token,
        }
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let token = imp::on_acquire(self.class, std::panic::Location::caller());
        let guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        TrackedWriteGuard {
            inner: guard,
            #[cfg(feature = "lockdep")]
            token,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("TrackedRwLock");
        #[cfg(feature = "lockdep")]
        s.field("class", &self.class);
        s.finish_non_exhaustive()
    }
}

/// Shared-read guard for [`TrackedRwLock`].
pub struct TrackedReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(feature = "lockdep")]
    token: u64,
}

impl<T: ?Sized> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lockdep")]
        imp::on_release(self.token);
    }
}

/// Exclusive-write guard for [`TrackedRwLock`].
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "lockdep")]
    token: u64,
}

impl<T: ?Sized> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lockdep")]
        imp::on_release(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_monotone_over_the_declared_chain() {
        // The promoted tcp.rs invariant: warm → journal → shard, and
        // the shard may feed the precompute tier.
        assert!(LockClass::Warm.rank() < LockClass::Journal.rank());
        assert!(LockClass::Journal.rank() < LockClass::Shard.rank());
        assert!(LockClass::Shard.rank() < LockClass::CacheTier.rank());
        // Pool and Inflight are deliberately incomparable.
        assert_eq!(LockClass::Pool.rank(), LockClass::Inflight.rank());
    }

    #[test]
    fn names_round_trip() {
        for class in LockClass::ALL {
            assert_eq!(LockClass::from_name(class.name()), Some(class));
        }
        assert_eq!(LockClass::from_name("NoSuchClass"), None);
    }

    #[test]
    fn tracked_mutex_behaves_like_a_mutex() {
        // lock:class(Shard) — test-local lock, class is arbitrary.
        let m = TrackedMutex::new(LockClass::Shard, 41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn tracked_rwlock_behaves_like_a_rwlock() {
        // lock:class(Shard) — test-local lock, class is arbitrary.
        let l = TrackedRwLock::new(LockClass::Shard, vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn wait_timeout_times_out_and_keeps_the_value() {
        // lock:class(Pool) — test-local lock, class is arbitrary.
        let m = TrackedMutex::new(LockClass::Pool, 7u32);
        let cv = Condvar::new();
        let mut guard = m.lock();
        let timed_out = guard.wait_timeout(&cv, Duration::from_millis(5));
        assert!(timed_out);
        assert_eq!(*guard, 7);
    }
}
