//! Distributed key generation (joint Feldman / Pedersen DKG) for the
//! threshold GDH scheme.
//!
//! The paper's constructions use a *trusted dealer* (the PKG or TA)
//! for key sharing. Boldyreva's threshold GDH paper \[2\] — which §5
//! builds on — notes the dealer can be removed with a standard DKG.
//! This module implements that extension over the same `G1` group:
//!
//! 1. every player `i` deals a random degree-`t−1` polynomial `fᵢ`,
//!    broadcasting Feldman commitments `Aᵢₖ = aᵢₖ·P` and privately
//!    sending `sᵢⱼ = fᵢ(j)` to each player `j`;
//! 2. players verify `sᵢⱼ·P = Σₖ jᵏ·Aᵢₖ` and disqualify dealers whose
//!    shares fail;
//! 3. the qualified set's polynomials sum to the (never materialized)
//!    secret `x = Σ fᵢ(0)`; player `j` holds `xⱼ = Σ sᵢⱼ`, and the
//!    public key / verification keys come from the summed commitments.
//!
//! The outcome is byte-compatible with [`ThresholdGdh`]: the resulting
//! shares sign and combine exactly as dealer-generated ones do.

use crate::gdh::{GdhKeyShare, GdhPublicKey, ThresholdGdh};
use crate::Error;
use rand::RngCore;
use sempair_bigint::{modular, BigUint};
use sempair_pairing::{CurveParams, G1Affine};

/// One player's dealing: secret polynomial plus public commitments.
///
/// The coefficients are this dealer's contribution to the joint master
/// key: `Debug` redacts them and dropping the dealing erases them.
#[derive(Clone)]
pub struct DkgDealer {
    /// This dealer's player index (1-based).
    pub index: u32,
    coeffs: Vec<BigUint>,
    commitments: Vec<G1Affine>,
}

impl std::fmt::Debug for DkgDealer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DkgDealer")
            .field("index", &self.index)
            .field("coeffs", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Drop for DkgDealer {
    fn drop(&mut self) {
        for c in &mut self.coeffs {
            c.zeroize();
        }
    }
}

impl DkgDealer {
    /// Samples a fresh dealing for a `(t, n)` DKG.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn deal(rng: &mut impl RngCore, curve: &CurveParams, t: usize, index: u32) -> Self {
        assert!(t >= 1, "threshold must be positive");
        let coeffs: Vec<BigUint> = (0..t).map(|_| curve.random_scalar(rng)).collect();
        let commitments = coeffs.iter().map(|a| curve.mul_generator(a)).collect();
        DkgDealer {
            index,
            coeffs,
            commitments,
        }
    }

    /// The broadcast Feldman commitments `Aₖ = aₖ·P`.
    pub fn commitments(&self) -> &[G1Affine] {
        &self.commitments
    }

    /// The private share `f(j)` for player `j`.
    pub fn share_for(&self, curve: &CurveParams, j: u32) -> BigUint {
        let q = curve.order();
        let x = BigUint::from(j as u64);
        let mut acc = BigUint::zero();
        for c in self.coeffs.iter().rev() {
            acc = modular::mod_add(&modular::mod_mul(&acc, &x, q), c, q);
        }
        acc
    }
}

/// Evaluates a commitment vector at `j` in the exponent:
/// `Σₖ jᵏ·Aₖ` — what `f(j)·P` must equal.
pub fn commitment_eval(curve: &CurveParams, commitments: &[G1Affine], j: u32) -> G1Affine {
    let q = curve.order();
    let mut power = BigUint::one();
    let mut terms = Vec::with_capacity(commitments.len());
    for a in commitments {
        terms.push((power.clone(), a.clone()));
        power = modular::mod_mul(&power, &BigUint::from(j as u64), q);
    }
    curve.multi_mul(&terms)
}

/// Player-side check of a received share against the dealer's
/// broadcast commitments.
pub fn verify_dealt_share(
    curve: &CurveParams,
    commitments: &[G1Affine],
    j: u32,
    share: &BigUint,
) -> bool {
    curve.mul_generator(share) == commitment_eval(curve, commitments, j)
}

/// Result of a DKG run.
#[derive(Debug)]
pub struct DkgOutcome {
    /// The threshold system (public key + per-player verification keys).
    pub system: ThresholdGdh,
    /// Each (qualified-protocol) player's final key share.
    pub shares: Vec<GdhKeyShare>,
    /// Dealers disqualified for sending inconsistent shares.
    pub disqualified: Vec<u32>,
}

/// Runs the full DKG among `n` simulated honest players, with
/// `cheaters` optionally corrupting the shares they deal (their
/// dealings are then excluded by everyone).
///
/// # Errors
///
/// [`Error::BadThresholdParams`] for inconsistent `(t, n)`, or
/// [`Error::NotEnoughShares`] if disqualifications leave no qualified
/// dealer.
pub fn run_dkg(
    rng: &mut impl RngCore,
    curve: &CurveParams,
    t: usize,
    n: usize,
    cheaters: &[u32],
) -> Result<DkgOutcome, Error> {
    if t == 0 || t > n {
        return Err(Error::BadThresholdParams("need 1 <= t <= n"));
    }
    // Round 1: everyone deals.
    let dealers: Vec<DkgDealer> = (1..=n as u32)
        .map(|i| DkgDealer::deal(rng, curve, t, i))
        .collect();

    // Cheaters send corrupted shares to player 1 (enough for detection).
    let corrupted = |dealer: u32, recipient: u32| cheaters.contains(&dealer) && recipient == 1;

    // Round 2: share distribution + verification → qualified set.
    let q = curve.order();
    let mut disqualified = Vec::new();
    for dealer in &dealers {
        let mut ok = true;
        for j in 1..=n as u32 {
            let mut share = dealer.share_for(curve, j);
            if corrupted(dealer.index, j) {
                share = modular::mod_add(&share, &BigUint::one(), q);
            }
            if !verify_dealt_share(curve, dealer.commitments(), j, &share) {
                ok = false; // player j broadcasts a complaint
            }
        }
        if !ok {
            disqualified.push(dealer.index);
        }
    }
    let qualified: Vec<&DkgDealer> = dealers
        .iter()
        .filter(|d| !disqualified.contains(&d.index))
        .collect();
    if qualified.is_empty() {
        return Err(Error::NotEnoughShares { needed: 1, got: 0 });
    }

    // Round 3: aggregation.
    let shares: Vec<GdhKeyShare> = (1..=n as u32)
        .map(|j| {
            let mut acc = BigUint::zero();
            for dealer in &qualified {
                acc = modular::mod_add(&acc, &dealer.share_for(curve, j), q);
            }
            GdhKeyShare {
                index: j,
                scalar: acc,
            }
        })
        .collect();
    let mut public = G1Affine::infinity();
    for dealer in &qualified {
        public = curve.add(&public, &dealer.commitments()[0]);
    }
    let verification_keys: Vec<G1Affine> = shares
        .iter()
        .map(|s| curve.mul_generator(&s.scalar))
        .collect();

    let system = ThresholdGdh::from_parts(
        curve.clone(),
        t,
        n,
        GdhPublicKey { point: public },
        verification_keys,
    );
    Ok(DkgOutcome {
        system,
        shares,
        disqualified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gdh;
    use crate::shamir::{self, Share};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn curve() -> (CurveParams, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xD6);
        (CurveParams::generate(&mut rng, 128, 64).unwrap(), rng)
    }

    #[test]
    fn dealt_shares_verify_against_commitments() {
        let (curve, mut rng) = curve();
        let dealer = DkgDealer::deal(&mut rng, &curve, 3, 1);
        for j in 1..=5 {
            let share = dealer.share_for(&curve, j);
            assert!(verify_dealt_share(&curve, dealer.commitments(), j, &share));
            let bad = modular::mod_add(&share, &BigUint::one(), curve.order());
            assert!(!verify_dealt_share(&curve, dealer.commitments(), j, &bad));
        }
    }

    #[test]
    fn honest_dkg_produces_working_threshold_system() {
        let (curve, mut rng) = curve();
        let outcome = run_dkg(&mut rng, &curve, 2, 4, &[]).unwrap();
        assert!(outcome.disqualified.is_empty());
        let sys = &outcome.system;
        let msg = b"dkg-signed";
        let partials: Vec<_> = outcome
            .shares
            .iter()
            .map(|s| sys.partial_sign(s, msg))
            .collect();
        for p in &partials {
            sys.verify_partial(msg, p).unwrap();
        }
        // Every 2-subset combines to the same verifying signature.
        let sig_a = sys.combine(msg, &partials[..2]).unwrap();
        let sig_b = sys.combine(msg, &partials[2..]).unwrap();
        assert_eq!(sig_a, sig_b, "BLS signatures are unique");
        gdh::verify(&curve, sys.public_key(), msg, &sig_a).unwrap();
    }

    #[test]
    fn shares_interpolate_to_public_key_secret() {
        // Reconstructing x from t shares and multiplying P must give
        // the DKG public key (we never materialize x in the protocol,
        // but the test is allowed to).
        let (curve, mut rng) = curve();
        let outcome = run_dkg(&mut rng, &curve, 3, 5, &[]).unwrap();
        let subset: Vec<Share> = outcome.shares[..3]
            .iter()
            .map(|s| Share {
                index: s.index,
                value: s.scalar.clone(),
            })
            .collect();
        let x = shamir::reconstruct(&subset, curve.order()).unwrap();
        assert_eq!(&curve.mul_generator(&x), &outcome.system.public_key().point);
    }

    #[test]
    fn cheating_dealer_disqualified_but_dkg_succeeds() {
        let (curve, mut rng) = curve();
        let outcome = run_dkg(&mut rng, &curve, 2, 4, &[3]).unwrap();
        assert_eq!(outcome.disqualified, vec![3]);
        let sys = &outcome.system;
        let msg = b"survives cheaters";
        let partials: Vec<_> = outcome
            .shares
            .iter()
            .map(|s| sys.partial_sign(s, msg))
            .collect();
        let sig = sys.combine(msg, &partials[..2]).unwrap();
        gdh::verify(&curve, sys.public_key(), msg, &sig).unwrap();
    }

    #[test]
    fn all_dealers_cheating_fails() {
        let (curve, mut rng) = curve();
        assert!(matches!(
            run_dkg(&mut rng, &curve, 2, 3, &[1, 2, 3]),
            Err(Error::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn bad_params_rejected() {
        let (curve, mut rng) = curve();
        assert!(run_dkg(&mut rng, &curve, 0, 3, &[]).is_err());
        assert!(run_dkg(&mut rng, &curve, 4, 3, &[]).is_err());
    }

    #[test]
    fn dkg_system_interoperates_with_mediated_verify() {
        // Signatures from a DKG-generated threshold key verify with the
        // ordinary GDH equation — verifiers cannot tell how the key was
        // born (dealer, DKG, or SEM split).
        let (curve, mut rng) = curve();
        let outcome = run_dkg(&mut rng, &curve, 2, 3, &[]).unwrap();
        let sys = &outcome.system;
        let partials: Vec<_> = outcome
            .shares
            .iter()
            .take(2)
            .map(|s| sys.partial_sign(s, b"interop"))
            .collect();
        let sig = sys.combine(b"interop", &partials).unwrap();
        let pk = gdh::GdhPublicKey {
            point: sys.public_key().point.clone(),
        };
        gdh::verify(&curve, &pk, b"interop", &sig).unwrap();
    }
}
