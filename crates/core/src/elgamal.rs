//! Mediated hashed ElGamal with the Fujisaki–Okamoto transform.
//!
//! The paper's §4 closes by noting that "the El Gamal cryptosystem …,
//! when padded with the Fujisaki–Okamoto transform, can also support a
//! security mediator that turns it into a weakly semantically secure
//! mediated cryptosystem". This module implements that remark over the
//! same `G1` group the pairing schemes use (no pairing needed —
//! ordinary DDH-hard ElGamal):
//!
//! * key: `x = x_user + x_sem (mod r)`, public `Y = xP`;
//! * encrypt: `σ ← {0,1}^256`, `r = H3(σ, m)`, `U = rP`,
//!   `V = σ ⊕ H2(rY)`, `W = m ⊕ H4(σ)`;
//! * decrypt: SEM token `x_sem·U` (one `G1` point — even shorter than
//!   the IBE token), user adds `x_user·U`, unmasks, and runs the FO
//!   re-encryption check.
//!
//! Unlike the mediated IBE this is *not* identity based — it needs a
//! certified `Y` — which is exactly the trade-off the paper's
//! comparison table between §2 and §4 is about.

use crate::Error;
use rand::RngCore;
use sempair_bigint::{modular, BigUint};
use sempair_hash::{derive, xor_in_place};
use sempair_pairing::{CurveParams, G1Affine};
use std::collections::{HashMap, HashSet};

/// FO commitment length in bytes.
pub const SIGMA_LEN: usize = 32;

mod tags {
    pub const H2: &[u8] = b"sempair-meg-h2";
    pub const H3: &[u8] = b"sempair-meg-h3";
    pub const H4: &[u8] = b"sempair-meg-h4";
}

/// A mediated-ElGamal public key `Y = (x_user + x_sem)·P`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElGamalPublicKey {
    /// The public point.
    pub point: G1Affine,
}

/// The user's half `x_user`.
///
/// `x_user` is secret: `Debug` redacts it and dropping the key erases
/// it.
#[derive(Clone)]
pub struct ElGamalUser {
    /// Identity label (for SEM bookkeeping).
    pub id: String,
    /// The (certified) public key.
    pub public: ElGamalPublicKey,
    x_user: BigUint,
}

impl std::fmt::Debug for ElGamalUser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElGamalUser")
            .field("id", &self.id)
            .field("x_user", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Drop for ElGamalUser {
    fn drop(&mut self) {
        self.x_user.zeroize();
    }
}

/// The SEM's half `x_sem` for one user.
///
/// `x_sem` is secret: `Debug` redacts it and dropping the record
/// erases it.
#[derive(Clone)]
pub struct ElGamalSemKey {
    /// Identity served.
    pub id: String,
    x_sem: BigUint,
}

impl std::fmt::Debug for ElGamalSemKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElGamalSemKey")
            .field("id", &self.id)
            .field("x_sem", &"<redacted>")
            .finish()
    }
}

impl Drop for ElGamalSemKey {
    fn drop(&mut self) {
        self.x_sem.zeroize();
    }
}

/// A ciphertext `⟨U, V, W⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElGamalCiphertext {
    /// `U = rP`.
    pub u: G1Affine,
    /// `V = σ ⊕ H2(rY)`, [`SIGMA_LEN`] bytes.
    pub v: Vec<u8>,
    /// `W = m ⊕ H4(σ)`.
    pub w: Vec<u8>,
}

/// A SEM decryption token `x_sem·U ∈ G1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElGamalToken(pub G1Affine);

/// The ElGamal-serving mediator.
#[derive(Debug, Default)]
pub struct ElGamalSem {
    keys: HashMap<String, ElGamalSemKey>,
    revoked: HashSet<String>,
}

/// CA-side keygen: splits a fresh key between user and SEM.
pub fn keygen(
    rng: &mut impl RngCore,
    curve: &CurveParams,
    id: &str,
) -> (ElGamalUser, ElGamalSemKey, ElGamalPublicKey) {
    let x_user = curve.random_scalar(rng);
    let x_sem = curve.random_scalar(rng);
    let x = modular::mod_add(&x_user, &x_sem, curve.order());
    let public = ElGamalPublicKey {
        point: curve.mul_generator(&x),
    };
    (
        ElGamalUser {
            id: id.to_string(),
            public: public.clone(),
            x_user,
        },
        ElGamalSemKey {
            id: id.to_string(),
            x_sem,
        },
        public,
    )
}

fn fo_randomness(curve: &CurveParams, sigma: &[u8], message: &[u8]) -> BigUint {
    let mut input = Vec::with_capacity(sigma.len() + 8 + message.len());
    input.extend_from_slice(&(sigma.len() as u64).to_be_bytes());
    input.extend_from_slice(sigma);
    input.extend_from_slice(message);
    derive::hash_to_scalar(tags::H3, &input, curve.order())
}

fn mask_point(curve: &CurveParams, point: &G1Affine, len: usize) -> Vec<u8> {
    derive::kdf(tags::H2, &curve.point_to_uncompressed(point), len)
}

/// Encrypts `message` to `key` (FO-hashed ElGamal).
pub fn encrypt(
    rng: &mut impl RngCore,
    curve: &CurveParams,
    key: &ElGamalPublicKey,
    message: &[u8],
) -> ElGamalCiphertext {
    let mut sigma = [0u8; SIGMA_LEN];
    rng.fill_bytes(&mut sigma);
    let r = fo_randomness(curve, &sigma, message);
    let u = curve.mul_generator(&r);
    let shared = curve.mul(&r, &key.point);
    let mut v = sigma.to_vec();
    let mask = mask_point(curve, &shared, SIGMA_LEN);
    xor_in_place(&mut v, &mask);
    let mut w = message.to_vec();
    let mask = derive::kdf(tags::H4, &sigma, w.len());
    xor_in_place(&mut w, &mask);
    ElGamalCiphertext { u, v, w }
}

impl ElGamalSem {
    /// Creates an empty SEM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a half-key.
    pub fn install(&mut self, key: ElGamalSemKey) {
        self.keys.insert(key.id.clone(), key);
    }

    /// Revokes / reinstates an identity.
    pub fn revoke(&mut self, id: &str) {
        self.revoked.insert(id.to_string());
    }

    /// Reinstates an identity.
    pub fn unrevoke(&mut self, id: &str) {
        self.revoked.remove(id);
    }

    /// `true` iff revoked.
    pub fn is_revoked(&self, id: &str) -> bool {
        self.revoked.contains(id)
    }

    /// The decryption token `x_sem·U`.
    ///
    /// # Errors
    ///
    /// [`Error::Revoked`], [`Error::UnknownIdentity`], or
    /// [`Error::InvalidCiphertext`] if `U` is outside the group.
    pub fn decrypt_token(
        &self,
        curve: &CurveParams,
        id: &str,
        u: &G1Affine,
    ) -> Result<ElGamalToken, Error> {
        if self.revoked.contains(id) {
            return Err(Error::Revoked);
        }
        let key = self.keys.get(id).ok_or(Error::UnknownIdentity)?;
        if !curve.is_in_group(u) {
            return Err(Error::InvalidCiphertext);
        }
        Ok(ElGamalToken(curve.mul(&key.x_sem, u)))
    }
}

impl ElGamalUser {
    /// Completes decryption: `rY = x_user·U + token`, unmask, FO check.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidCiphertext`] on any validity failure.
    pub fn finish_decrypt(
        &self,
        curve: &CurveParams,
        c: &ElGamalCiphertext,
        token: &ElGamalToken,
    ) -> Result<Vec<u8>, Error> {
        if c.v.len() != SIGMA_LEN || !curve.is_in_group(&c.u) || c.u.is_infinity() {
            return Err(Error::InvalidCiphertext);
        }
        let shared = curve.add(&curve.mul(&self.x_user, &c.u), &token.0);
        let mut sigma = [0u8; SIGMA_LEN];
        sigma.copy_from_slice(&c.v);
        let mask = mask_point(curve, &shared, SIGMA_LEN);
        xor_in_place(&mut sigma, &mask);
        let mut m = c.w.clone();
        let mask = derive::kdf(tags::H4, &sigma, m.len());
        xor_in_place(&mut m, &mask);
        let r = fo_randomness(curve, &sigma, &m);
        if curve.mul_generator(&r) != c.u {
            return Err(Error::InvalidCiphertext);
        }
        Ok(m)
    }
}

// --- (t, n) threshold ElGamal -------------------------------------------------
//
// The paper's thesis runs threshold → mediated: "a mediated cryptosystem
// can be built from any threshold cryptosystem". The 2-of-2 mediated
// scheme above is the special case of this general (t, n) threshold
// hashed ElGamal, with robustness from the classic Chaum–Pedersen
// discrete-log-equality proof (no pairing needed — a useful contrast
// with the §3.2 pairing NIZK).

/// Public description of a `(t, n)` threshold ElGamal deployment.
#[derive(Debug, Clone)]
pub struct ThresholdElGamal {
    curve: CurveParams,
    t: usize,
    n: usize,
    public: ElGamalPublicKey,
    /// `Yᵢ = xᵢ·P` per player.
    verification_keys: Vec<G1Affine>,
}

/// Player `i`'s key share `xᵢ = f(i)`.
///
/// Secret material: `Debug` redacts the scalar and dropping the share
/// erases it.
#[derive(Clone)]
pub struct ElGamalKeyShare {
    /// Player index (1-based).
    pub index: u32,
    scalar: BigUint,
}

impl std::fmt::Debug for ElGamalKeyShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElGamalKeyShare")
            .field("index", &self.index)
            .field("scalar", &"<redacted>")
            .finish()
    }
}

impl Drop for ElGamalKeyShare {
    fn drop(&mut self) {
        self.scalar.zeroize();
    }
}

/// A decryption share `Sᵢ = xᵢ·U`, optionally with its Chaum–Pedersen
/// proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElGamalDecShare {
    /// Player index.
    pub index: u32,
    /// The share point.
    pub point: G1Affine,
    /// Robustness proof, if produced.
    pub proof: Option<DleqProof>,
}

/// Chaum–Pedersen proof that `log_P(Yᵢ) = log_U(Sᵢ)`:
/// commitments `(kP, kU)`, challenge `c = H(…)`, response
/// `z = k + c·xᵢ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DleqProof {
    a1: G1Affine,
    a2: G1Affine,
    z: BigUint,
}

impl ThresholdElGamal {
    /// Dealer setup: shares a fresh key with threshold `t` among `n`
    /// players.
    ///
    /// # Errors
    ///
    /// [`Error::BadThresholdParams`] unless `1 ≤ t ≤ n`.
    pub fn setup(
        rng: &mut impl RngCore,
        curve: CurveParams,
        t: usize,
        n: usize,
    ) -> Result<(Self, Vec<ElGamalKeyShare>), Error> {
        if t == 0 || t > n {
            return Err(Error::BadThresholdParams("need 1 <= t <= n"));
        }
        let x = curve.random_scalar(rng);
        let poly = crate::shamir::Polynomial::sample(rng, &x, t, curve.order());
        let shares: Vec<ElGamalKeyShare> = (1..=n as u32)
            .map(|i| ElGamalKeyShare {
                index: i,
                scalar: poly.eval_index(i),
            })
            .collect();
        let verification_keys = shares
            .iter()
            .map(|s| curve.mul_generator(&s.scalar))
            .collect();
        let public = ElGamalPublicKey {
            point: curve.mul_generator(&x),
        };
        Ok((
            ThresholdElGamal {
                curve,
                t,
                n,
                public,
                verification_keys,
            },
            shares,
        ))
    }

    /// The combined public key.
    pub fn public_key(&self) -> &ElGamalPublicKey {
        &self.public
    }

    /// The threshold `t`.
    pub fn threshold(&self) -> usize {
        self.t
    }

    fn dleq_challenge(
        &self,
        u: &G1Affine,
        v_i: &G1Affine,
        s_i: &G1Affine,
        a1: &G1Affine,
        a2: &G1Affine,
    ) -> BigUint {
        let c = &self.curve;
        let digest = derive::transcript_hash(
            b"sempair-teg-dleq",
            &[
                &c.point_to_uncompressed(u),
                &c.point_to_uncompressed(v_i),
                &c.point_to_uncompressed(s_i),
                &c.point_to_uncompressed(a1),
                &c.point_to_uncompressed(a2),
            ],
        );
        &BigUint::from_be_bytes(&digest) % c.order()
    }

    /// Player-side decryption share `Sᵢ = xᵢ·U` with a Chaum–Pedersen
    /// proof.
    pub fn decryption_share(
        &self,
        rng: &mut impl RngCore,
        share: &ElGamalKeyShare,
        c: &ElGamalCiphertext,
    ) -> ElGamalDecShare {
        let curve = &self.curve;
        let point = curve.mul(&share.scalar, &c.u);
        let k = curve.random_scalar(rng);
        let a1 = curve.mul_generator(&k);
        let a2 = curve.mul(&k, &c.u);
        let v_i = &self.verification_keys[(share.index - 1) as usize];
        let ch = self.dleq_challenge(&c.u, v_i, &point, &a1, &a2);
        let z = modular::mod_add(
            &k,
            &modular::mod_mul(&ch, &share.scalar, curve.order()),
            curve.order(),
        );
        ElGamalDecShare {
            index: share.index,
            point,
            proof: Some(DleqProof { a1, a2, z }),
        }
    }

    /// Verifies a decryption share:
    /// `zP = A₁ + c·Yᵢ` and `zU = A₂ + c·Sᵢ`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidShare`] / [`Error::InvalidProof`] on failure.
    pub fn verify_share(
        &self,
        c: &ElGamalCiphertext,
        share: &ElGamalDecShare,
    ) -> Result<(), Error> {
        if share.index == 0 || share.index as usize > self.n {
            return Err(Error::InvalidShare {
                player: share.index,
            });
        }
        let Some(proof) = &share.proof else {
            return Err(Error::InvalidProof);
        };
        let curve = &self.curve;
        let v_i = &self.verification_keys[(share.index - 1) as usize];
        let ch = self.dleq_challenge(&c.u, v_i, &share.point, &proof.a1, &proof.a2);
        let lhs1 = curve.mul_generator(&proof.z);
        let rhs1 = curve.add(&proof.a1, &curve.mul(&ch, v_i));
        if lhs1 != rhs1 {
            return Err(Error::InvalidProof);
        }
        let lhs2 = curve.mul(&proof.z, &c.u);
        let rhs2 = curve.add(&proof.a2, &curve.mul(&ch, &share.point));
        if lhs2 != rhs2 {
            return Err(Error::InvalidProof);
        }
        Ok(())
    }

    /// Recombines `t` shares (`S = Σ λᵢ·Sᵢ = x·U`), unmasks and runs
    /// the FO validity check.
    ///
    /// # Errors
    ///
    /// Share-count/index errors, or [`Error::InvalidCiphertext`] if the
    /// FO re-encryption check fails.
    pub fn recombine(
        &self,
        c: &ElGamalCiphertext,
        shares: &[ElGamalDecShare],
    ) -> Result<Vec<u8>, Error> {
        if shares.len() < self.t {
            return Err(Error::NotEnoughShares {
                needed: self.t,
                got: shares.len(),
            });
        }
        let used = &shares[..self.t];
        let indices: Vec<u32> = used.iter().map(|s| s.index).collect();
        let curve = &self.curve;
        let q = curve.order();
        let mut terms = Vec::with_capacity(used.len());
        for share in used {
            let li = crate::shamir::lagrange_coefficient(&indices, share.index, q)?;
            terms.push((li, share.point.clone()));
        }
        let shared = curve.multi_mul(&terms);
        if c.v.len() != SIGMA_LEN {
            return Err(Error::InvalidCiphertext);
        }
        let mut sigma = [0u8; SIGMA_LEN];
        sigma.copy_from_slice(&c.v);
        let mask = mask_point(curve, &shared, SIGMA_LEN);
        xor_in_place(&mut sigma, &mask);
        let mut m = c.w.clone();
        let mask = derive::kdf(tags::H4, &sigma, m.len());
        xor_in_place(&mut m, &mask);
        let r = fo_randomness(curve, &sigma, &m);
        if curve.mul_generator(&r) != c.u {
            return Err(Error::InvalidCiphertext);
        }
        Ok(m)
    }

    /// Robust recombination: verify shares, drop cheaters, recombine.
    ///
    /// Returns `(plaintext, cheater_indices)`.
    ///
    /// # Errors
    ///
    /// [`Error::NotEnoughShares`] if fewer than `t` survive.
    pub fn recombine_robust(
        &self,
        c: &ElGamalCiphertext,
        shares: &[ElGamalDecShare],
    ) -> Result<(Vec<u8>, Vec<u32>), Error> {
        let mut valid = Vec::new();
        let mut cheaters = Vec::new();
        for share in shares {
            match self.verify_share(c, share) {
                Ok(()) => valid.push(share.clone()),
                Err(_) => cheaters.push(share.index),
            }
        }
        let m = self.recombine(c, &valid)?;
        Ok((m, cheaters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        CurveParams,
        ElGamalUser,
        ElGamalSem,
        ElGamalPublicKey,
        StdRng,
    ) {
        let mut rng = StdRng::seed_from_u64(131);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let (user, sem_key, pk) = keygen(&mut rng, &curve, "alice");
        let mut sem = ElGamalSem::new();
        sem.install(sem_key);
        (curve, user, sem, pk, rng)
    }

    #[test]
    fn roundtrip() {
        let (curve, user, sem, pk, mut rng) = setup();
        for len in [0usize, 1, 40, 200] {
            let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let c = encrypt(&mut rng, &curve, &pk, &msg);
            let token = sem.decrypt_token(&curve, "alice", &c.u).unwrap();
            assert_eq!(
                user.finish_decrypt(&curve, &c, &token).unwrap(),
                msg,
                "len={len}"
            );
        }
    }

    #[test]
    fn revocation_blocks_tokens() {
        let (curve, user, mut sem, pk, mut rng) = setup();
        let c = encrypt(&mut rng, &curve, &pk, b"m");
        sem.revoke("alice");
        assert_eq!(
            sem.decrypt_token(&curve, "alice", &c.u),
            Err(Error::Revoked)
        );
        sem.unrevoke("alice");
        let token = sem.decrypt_token(&curve, "alice", &c.u).unwrap();
        assert_eq!(user.finish_decrypt(&curve, &c, &token).unwrap(), b"m");
    }

    #[test]
    fn tamper_detected_by_fo_check() {
        let (curve, user, sem, pk, mut rng) = setup();
        let c = encrypt(&mut rng, &curve, &pk, b"payload");
        let token = sem.decrypt_token(&curve, "alice", &c.u).unwrap();
        for mutate in 0..3 {
            let mut bad = c.clone();
            match mutate {
                0 => bad.v[0] ^= 1,
                1 => bad.w[0] ^= 1,
                _ => bad.u = curve.mul_generator(&BigUint::from(5u64)),
            }
            let tok = if mutate == 2 {
                sem.decrypt_token(&curve, "alice", &bad.u).unwrap()
            } else {
                token.clone()
            };
            assert!(
                user.finish_decrypt(&curve, &bad, &tok).is_err(),
                "mutation {mutate}"
            );
        }
    }

    #[test]
    fn token_bound_to_ciphertext() {
        let (curve, user, sem, pk, mut rng) = setup();
        let c1 = encrypt(&mut rng, &curve, &pk, b"one");
        let c2 = encrypt(&mut rng, &curve, &pk, b"two");
        let t1 = sem.decrypt_token(&curve, "alice", &c1.u).unwrap();
        assert!(user.finish_decrypt(&curve, &c2, &t1).is_err());
    }

    #[test]
    fn user_alone_fails() {
        let (curve, user, _sem, pk, mut rng) = setup();
        let c = encrypt(&mut rng, &curve, &pk, b"m");
        let bogus = ElGamalToken(G1Affine::infinity());
        assert!(user.finish_decrypt(&curve, &c, &bogus).is_err());
    }

    #[test]
    fn threshold_roundtrip_all_subsets() {
        let mut rng = StdRng::seed_from_u64(132);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let (sys, shares) = ThresholdElGamal::setup(&mut rng, curve.clone(), 2, 4).unwrap();
        let c = encrypt(&mut rng, &curve, sys.public_key(), b"threshold elgamal");
        let dec: Vec<_> = shares
            .iter()
            .map(|s| sys.decryption_share(&mut rng, s, &c))
            .collect();
        for a in 0..4 {
            for b in a + 1..4 {
                let m = sys
                    .recombine(&c, &[dec[a].clone(), dec[b].clone()])
                    .unwrap();
                assert_eq!(m, b"threshold elgamal");
            }
        }
    }

    #[test]
    fn threshold_dleq_catches_cheater() {
        let mut rng = StdRng::seed_from_u64(133);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let (sys, shares) = ThresholdElGamal::setup(&mut rng, curve.clone(), 2, 3).unwrap();
        let c = encrypt(&mut rng, &curve, sys.public_key(), b"robust!");
        let mut dec: Vec<_> = shares
            .iter()
            .map(|s| sys.decryption_share(&mut rng, s, &c))
            .collect();
        for d in &dec {
            sys.verify_share(&c, d).unwrap();
        }
        // Player 1 swaps in garbage.
        dec[0].point = curve.mul_generator(&BigUint::from(5u64));
        assert!(sys.verify_share(&c, &dec[0]).is_err());
        let (m, cheaters) = sys.recombine_robust(&c, &dec).unwrap();
        assert_eq!(m, b"robust!");
        assert_eq!(cheaters, vec![1]);
    }

    #[test]
    fn threshold_too_few_shares() {
        let mut rng = StdRng::seed_from_u64(134);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let (sys, shares) = ThresholdElGamal::setup(&mut rng, curve.clone(), 3, 4).unwrap();
        let c = encrypt(&mut rng, &curve, sys.public_key(), b"m");
        let dec: Vec<_> = shares[..2]
            .iter()
            .map(|s| sys.decryption_share(&mut rng, s, &c))
            .collect();
        assert!(matches!(
            sys.recombine(&c, &dec),
            Err(Error::NotEnoughShares { needed: 3, got: 2 })
        ));
        assert!(ThresholdElGamal::setup(&mut rng, curve, 0, 4).is_err());
    }

    #[test]
    fn mediated_is_the_two_of_two_case() {
        // Dealer-share a (2,2) threshold key; both shares together
        // behave exactly like the mediated user+SEM split.
        let mut rng = StdRng::seed_from_u64(135);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let (sys, shares) = ThresholdElGamal::setup(&mut rng, curve.clone(), 2, 2).unwrap();
        let c = encrypt(&mut rng, &curve, sys.public_key(), b"2-of-2 = SEM");
        let dec: Vec<_> = shares
            .iter()
            .map(|s| sys.decryption_share(&mut rng, s, &c))
            .collect();
        assert_eq!(sys.recombine(&c, &dec).unwrap(), b"2-of-2 = SEM");
        // One share alone is useless (FO check fails).
        assert!(sys.recombine(&c, &dec[..1]).is_err());
    }

    #[test]
    fn token_is_single_point() {
        // The remark that motivates this variant: the SEM token here is
        // ONE compressed G1 point, even shorter than the IBE token
        // (an F_p² element).
        let (curve, _, sem, pk, mut rng) = setup();
        let c = encrypt(&mut rng, &curve, &pk, b"m");
        let token = sem.decrypt_token(&curve, "alice", &c.u).unwrap();
        let token_bytes = curve.point_to_bytes(&token.0);
        assert_eq!(token_bytes.len(), curve.point_len());
        assert!(token_bytes.len() < 2 * curve.fp().byte_len());
    }
}
