//! Identity-base caching for the encryption hot path.
//!
//! Every Boneh–Franklin encryption starts from the same expensive
//! value, the per-identity mask base `g_ID = ê(P_pub, Q_ID)` — one
//! hash-to-curve plus one full pairing that depends only on the public
//! parameters and the recipient identity, never on the message or the
//! randomness. A mail gateway encrypting a thread to the same few
//! recipients recomputes it on every message for nothing.
//!
//! [`IbeEncryptor`] is a long-lived encryption handle that
//!
//! * caches `g_ID` per identity in a bounded LRU map (the
//!   [`crate::cache::BoundedLru`] primitive shared with the server-side
//!   precompute tier) guarded by a [`parking_lot::Mutex`] (share the
//!   handle across threads via `Arc`), and
//! * computes cache misses through a [`PreparedG1`] of `P_pub`, so
//!   even the first encryption to an identity skips the
//!   point-arithmetic half of the Miller loop.
//!
//! # Cache invalidation
//!
//! Entries are keyed by the identity string alone, which is sound
//! because an encryptor owns an immutable clone of its
//! [`IbePublicParams`]: `g_ID` is a pure function of `(params, id)` and
//! the params half is fixed at construction. The invalidation rule is
//! therefore *per-handle*: if the system parameters or `P_pub` ever
//! change (new PKG, rotated master key), drop the encryptor and build a
//! new one — never reuse a handle across parameter sets.

use crate::bf_ibe::{BasicCiphertext, FullCiphertext, IbePublicParams, SIGMA_LEN};
use crate::cache::BoundedLru;
use crate::Error;
use parking_lot::Mutex;
use rand::RngCore;
use sempair_bigint::BigUint;
use sempair_pairing::{Gt, PreparedG1};

/// Default identity-cache capacity (entries).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Cache hit/miss counters (see [`IbeEncryptor::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute the pairing.
    pub misses: u64,
    /// Identities currently cached.
    pub entries: usize,
}

/// A long-lived encryption handle caching per-identity mask bases.
///
/// Produces ciphertexts byte-identical to the uncached
/// [`IbePublicParams`] methods (property-tested in
/// `tests/properties.rs`), decryptable by the plain, mediated and
/// threshold decryption paths alike — only the encryptor's cost profile
/// differs. Thread-safe behind `&self`; wrap in `Arc` to share.
#[derive(Debug)]
pub struct IbeEncryptor {
    params: IbePublicParams,
    /// `P_pub` with precomputed Miller-loop coefficients: cache misses
    /// pay only the line-evaluation half of the pairing.
    prepared_p_pub: PreparedG1,
    cache: Mutex<BoundedLru<String, Gt>>,
    /// Weight charged per cached `Gt` (two `F_p` coordinates).
    gt_weight: usize,
}

impl IbeEncryptor {
    /// Wraps public parameters with a [`DEFAULT_CACHE_CAPACITY`]-entry
    /// cache.
    pub fn new(params: IbePublicParams) -> Self {
        Self::with_capacity(params, DEFAULT_CACHE_CAPACITY)
    }

    /// Wraps public parameters with an explicit cache capacity
    /// (`capacity = 0` disables caching but keeps the prepared-pairing
    /// speedup).
    pub fn with_capacity(params: IbePublicParams, capacity: usize) -> Self {
        let prepared_p_pub = params.curve().prepare_g1(params.p_pub());
        let gt_weight = 2 * (params.curve().point_len() - 1);
        IbeEncryptor {
            params,
            prepared_p_pub,
            cache: Mutex::new(BoundedLru::new(capacity)),
            gt_weight,
        }
    }

    /// The wrapped public parameters.
    pub fn params(&self) -> &IbePublicParams {
        &self.params
    }

    /// The cached-or-computed mask base `g_ID = ê(P_pub, Q_ID)`.
    pub fn identity_base(&self, id: &str) -> Gt {
        if let Some(g) = self.cache.lock().get(id) {
            return g.clone();
        }
        // Pairing computed outside the lock: concurrent misses on the
        // same identity duplicate work instead of serializing it.
        let q_id = self.params.hash_identity(id);
        let base = self
            .params
            .curve()
            .pairing_prepared(&self.prepared_p_pub, &q_id);
        self.cache
            .lock()
            .insert(id.to_string(), base.clone(), self.gt_weight);
        base
    }

    /// Cached-base `BasicIdent` encryption
    /// (cf. [`IbePublicParams::encrypt_basic`]).
    pub fn encrypt_basic(
        &self,
        rng: &mut impl RngCore,
        id: &str,
        message: &[u8],
    ) -> BasicCiphertext {
        let r = self.params.curve().random_scalar(rng);
        self.encrypt_basic_with_r(id, message, &r)
    }

    /// Cached-base deterministic `BasicIdent` encryption
    /// (cf. [`IbePublicParams::encrypt_basic_with_r`]).
    pub fn encrypt_basic_with_r(&self, id: &str, message: &[u8], r: &BigUint) -> BasicCiphertext {
        self.params
            .encrypt_basic_with_base(&self.identity_base(id), message, r)
    }

    /// Cached-base `FullIdent` encryption
    /// (cf. [`IbePublicParams::encrypt_full`]).
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface stability.
    pub fn encrypt_full(
        &self,
        rng: &mut impl RngCore,
        id: &str,
        message: &[u8],
    ) -> Result<FullCiphertext, Error> {
        let mut sigma = [0u8; SIGMA_LEN];
        rng.fill_bytes(&mut sigma);
        Ok(self.encrypt_full_with_sigma(id, message, &sigma))
    }

    /// Cached-base deterministic `FullIdent` encryption
    /// (cf. [`IbePublicParams::encrypt_full_with_sigma`]).
    pub fn encrypt_full_with_sigma(
        &self,
        id: &str,
        message: &[u8],
        sigma: &[u8; SIGMA_LEN],
    ) -> FullCiphertext {
        self.params
            .encrypt_full_with_base(&self.identity_base(id), message, sigma)
    }

    /// Hit/miss/occupancy counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        let counters = self.cache.lock().counters();
        CacheStats {
            hits: counters.hits,
            misses: counters.misses,
            entries: counters.entries,
        }
    }

    /// Drops every cached base (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf_ibe::Pkg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sempair_pairing::CurveParams;

    fn pkg() -> Pkg {
        let mut rng = StdRng::seed_from_u64(171);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        Pkg::setup(&mut rng, curve)
    }

    #[test]
    fn cached_base_matches_uncached() {
        let pkg = pkg();
        let enc = IbeEncryptor::new(pkg.params().clone());
        for id in ["alice", "bob", "alice"] {
            assert_eq!(enc.identity_base(id), pkg.params().identity_base(id));
        }
        let stats = enc.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    }

    #[test]
    fn ciphertexts_identical_to_uncached_and_decryptable() {
        let pkg = pkg();
        let enc = IbeEncryptor::new(pkg.params().clone());
        let sigma = [9u8; SIGMA_LEN];
        let c_cached = enc.encrypt_full_with_sigma("alice", b"payload", &sigma);
        let c_plain = pkg
            .params()
            .encrypt_full_with_sigma("alice", b"payload", &sigma);
        assert_eq!(c_cached, c_plain, "caching must not change the ciphertext");
        let key = pkg.extract("alice");
        assert_eq!(
            pkg.params().decrypt_full(&key, &c_cached).unwrap(),
            b"payload"
        );

        let r = BigUint::from(123_456u64);
        let b_cached = enc.encrypt_basic_with_r("alice", b"basic", &r);
        let b_plain = pkg.params().encrypt_basic_with_r("alice", b"basic", &r);
        assert_eq!(b_cached, b_plain);
        assert_eq!(
            pkg.params().decrypt_basic(&key, &b_cached).unwrap(),
            b"basic"
        );
    }

    #[test]
    fn mediated_decryption_of_cached_ciphertext() {
        let pkg = pkg();
        let mut rng = StdRng::seed_from_u64(172);
        let (user, sem_key) = pkg.extract_split(&mut rng, "carol");
        let mut sem = crate::mediated::Sem::new();
        sem.install(sem_key);
        let enc = IbeEncryptor::new(pkg.params().clone());
        let c = enc.encrypt_full(&mut rng, "carol", b"via sem").unwrap();
        let token = sem.decrypt_token(pkg.params(), "carol", &c.u).unwrap();
        assert_eq!(
            user.finish_decrypt(pkg.params(), &c, &token).unwrap(),
            b"via sem"
        );
    }

    #[test]
    fn cache_is_bounded_lru() {
        let pkg = pkg();
        let enc = IbeEncryptor::with_capacity(pkg.params().clone(), 2);
        enc.identity_base("a");
        enc.identity_base("b");
        enc.identity_base("c"); // evicts "a", the least recently used
        assert_eq!(enc.cache_stats().entries, 2);
        enc.identity_base("b"); // still cached
        assert_eq!(enc.cache_stats().hits, 1);
        enc.identity_base("a"); // was evicted: miss
        assert_eq!(enc.cache_stats().misses, 4);
        enc.clear_cache();
        assert_eq!(enc.cache_stats().entries, 0);
        // Zero capacity: never caches, never breaks.
        let enc0 = IbeEncryptor::with_capacity(pkg.params().clone(), 0);
        enc0.identity_base("x");
        enc0.identity_base("x");
        assert_eq!(enc0.cache_stats().entries, 0);
        assert_eq!(enc0.cache_stats().misses, 2);
    }

    #[test]
    fn shared_across_threads() {
        let pkg = pkg();
        let enc = std::sync::Arc::new(IbeEncryptor::new(pkg.params().clone()));
        let expected = pkg.params().identity_base("dave");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let enc = std::sync::Arc::clone(&enc);
                let expected = expected.clone();
                scope.spawn(move || {
                    for _ in 0..3 {
                        assert_eq!(enc.identity_base("dave"), expected);
                    }
                });
            }
        });
        let stats = enc.cache_stats();
        assert_eq!(stats.hits + stats.misses, 12);
        assert_eq!(stats.entries, 1);
    }
}
