//! The Boneh–Franklin identity-based encryption scheme.
//!
//! Implements both variants from \[5\] as the paper uses them:
//!
//! * **BasicIdent** (IND-ID-CPA): `C = ⟨rP, m ⊕ H2(ê(P_pub, Q_ID)^r)⟩` —
//!   the scheme the §3 threshold construction shares.
//! * **FullIdent** (IND-ID-CCA via Fujisaki–Okamoto): `C = ⟨rP,
//!   σ ⊕ H2(g^r), m ⊕ H4(σ)⟩` with `r = H3(σ, m)` — the scheme the §4
//!   mediated construction splits.
//!
//! Messages are arbitrary-length byte strings; `H2`/`H4` are
//! instantiated with the MGF1-based KDF from `sempair-hash`.

use crate::Error;
use rand::RngCore;
use sempair_bigint::BigUint;
use sempair_hash::{derive, xor_in_place};
use sempair_pairing::{CurveParams, G1Affine, Gt};

/// Domain-separation tags for the scheme's random oracles.
pub(crate) mod tags {
    /// `H1 : {0,1}* → G1` (identity hashing).
    pub const H1: &[u8] = b"sempair-bf-h1";
    /// `H2 : G2 → {0,1}^n` (session-key mask).
    pub const H2: &[u8] = b"sempair-bf-h2";
    /// `H3 : {0,1}^σ × {0,1}^n → Z_q*` (FO randomness derivation).
    pub const H3: &[u8] = b"sempair-bf-h3";
    /// `H4 : {0,1}^σ → {0,1}^n` (FO message mask).
    pub const H4: &[u8] = b"sempair-bf-h4";
}

/// Length of the FO commitment string `σ` in bytes.
pub const SIGMA_LEN: usize = 32;

/// The PKG's public parameters: the curve system and `P_pub = sP`.
#[derive(Debug, Clone)]
pub struct IbePublicParams {
    curve: CurveParams,
    p_pub: G1Affine,
}

/// A user's full private key `d_ID = s·Q_ID` (the unsplit, non-mediated
/// key of the original scheme).
///
/// Secret material: `Debug` redacts the point, equality is
/// constant-time, and dropping the key erases the point.
#[derive(Clone, Eq)]
pub struct PrivateKey {
    /// The identity this key decrypts for.
    pub id: String,
    /// The key point.
    pub point: G1Affine,
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivateKey")
            .field("id", &self.id)
            .field("point", &"<redacted>")
            .finish()
    }
}

impl PartialEq for PrivateKey {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.point.ct_eq(&other.point)
    }
}

impl Drop for PrivateKey {
    fn drop(&mut self) {
        self.point.zeroize();
    }
}

/// A `BasicIdent` ciphertext `⟨U, V⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicCiphertext {
    /// `U = rP`.
    pub u: G1Affine,
    /// `V = m ⊕ H2(g^r)`.
    pub v: Vec<u8>,
}

/// A `FullIdent` ciphertext `⟨U, V, W⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullCiphertext {
    /// `U = rP` with `r = H3(σ, m)`.
    pub u: G1Affine,
    /// `V = σ ⊕ H2(g^r)` (always [`SIGMA_LEN`] bytes).
    pub v: Vec<u8>,
    /// `W = m ⊕ H4(σ)`.
    pub w: Vec<u8>,
}

/// The private key generator (holds the master key `s`).
///
/// The master key is the system's root secret: `Debug` redacts it and
/// dropping the PKG erases it.
pub struct Pkg {
    params: IbePublicParams,
    master: BigUint,
}

impl std::fmt::Debug for Pkg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Params are public but still limb-bearing; eliding them keeps
        // the invariant that secret-type Debug output never contains
        // limb hex at all (enforced by tests/secret_hygiene.rs).
        f.debug_struct("Pkg")
            .field("master", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Drop for Pkg {
    fn drop(&mut self) {
        self.master.zeroize();
    }
}

impl Pkg {
    /// `Setup`: samples the master key `s` and publishes `P_pub = sP`.
    pub fn setup(rng: &mut impl RngCore, curve: CurveParams) -> Self {
        let master = curve.random_scalar(rng);
        let p_pub = curve.mul_generator(&master);
        Pkg {
            params: IbePublicParams { curve, p_pub },
            master,
        }
    }

    /// Reconstructs a PKG from an existing master key (used by the
    /// threshold dealer and by tests).
    pub fn from_master(curve: CurveParams, master: BigUint) -> Self {
        let master = &master % curve.order();
        let p_pub = curve.mul_generator(&master);
        Pkg {
            params: IbePublicParams { curve, p_pub },
            master,
        }
    }

    /// The public parameters to distribute.
    pub fn params(&self) -> &IbePublicParams {
        &self.params
    }

    /// The master key. Crate-internal: the threshold and split
    /// constructions re-deal `s` without exposing it to callers.
    pub(crate) fn master(&self) -> &BigUint {
        &self.master
    }

    /// `Extract`: the full private key `d_ID = s·H1(ID)`.
    pub fn extract(&self, id: &str) -> PrivateKey {
        let q_id = self.params.hash_identity(id);
        PrivateKey {
            id: id.to_string(),
            point: self.params.curve.mul(&self.master, &q_id),
        }
    }
}

impl IbePublicParams {
    /// Builds parameters from parts (threshold dealer publishes these).
    pub(crate) fn from_parts(curve: CurveParams, p_pub: G1Affine) -> Self {
        IbePublicParams { curve, p_pub }
    }

    /// The underlying curve system.
    pub fn curve(&self) -> &CurveParams {
        &self.curve
    }

    /// `P_pub = sP`.
    pub fn p_pub(&self) -> &G1Affine {
        &self.p_pub
    }

    /// `H1(ID) ∈ G1`.
    pub fn hash_identity(&self, id: &str) -> G1Affine {
        self.curve.hash_to_g1(tags::H1, id.as_bytes())
    }

    /// `true` iff `key` is the correct private key for its identity:
    /// `ê(P, d_ID) = ê(P_pub, Q_ID)` (the §3.2 share check, full-key
    /// version).
    pub fn verify_private_key(&self, key: &PrivateKey) -> bool {
        let q_id = self.hash_identity(&key.id);
        self.curve
            .pairing_equals(self.curve.generator(), &key.point, &self.p_pub, &q_id)
    }

    /// The per-identity mask base `g_ID = ê(P_pub, Q_ID)`.
    pub fn identity_base(&self, id: &str) -> Gt {
        let q_id = self.hash_identity(id);
        self.curve.pairing(&self.p_pub, &q_id)
    }

    /// `BasicIdent` encryption of an arbitrary-length message.
    pub fn encrypt_basic(
        &self,
        rng: &mut impl RngCore,
        id: &str,
        message: &[u8],
    ) -> BasicCiphertext {
        let r = self.curve.random_scalar(rng);
        self.encrypt_basic_with_r(id, message, &r)
    }

    /// `BasicIdent` encryption with caller-chosen randomness (the FO
    /// transform and the threshold tests need this determinism).
    pub fn encrypt_basic_with_r(&self, id: &str, message: &[u8], r: &BigUint) -> BasicCiphertext {
        self.encrypt_basic_with_base(&self.identity_base(id), message, r)
    }

    /// [`IbePublicParams::encrypt_basic_with_r`] with the identity base
    /// `g_ID` supplied by the caller — the hook
    /// [`crate::encryptor::IbeEncryptor`] uses to skip the per-call
    /// pairing.
    pub(crate) fn encrypt_basic_with_base(
        &self,
        base: &Gt,
        message: &[u8],
        r: &BigUint,
    ) -> BasicCiphertext {
        let u = self.curve.mul_generator(r);
        let g_r = self.curve.gt_pow(base, r);
        let mut v = message.to_vec();
        let mask = self.mask_h2(&g_r, v.len());
        xor_in_place(&mut v, &mask);
        BasicCiphertext { u, v }
    }

    /// `BasicIdent` decryption: `m = V ⊕ H2(ê(U, d_ID))`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCiphertext`] if `U` is not in the group.
    pub fn decrypt_basic(&self, key: &PrivateKey, c: &BasicCiphertext) -> Result<Vec<u8>, Error> {
        if !self.curve.is_in_group(&c.u) {
            return Err(Error::InvalidCiphertext);
        }
        let g = self.curve.pairing(&c.u, &key.point);
        let mut m = c.v.clone();
        let mask = self.mask_h2(&g, m.len());
        xor_in_place(&mut m, &mask);
        Ok(m)
    }

    /// `FullIdent` encryption (Fujisaki–Okamoto).
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface stability.
    pub fn encrypt_full(
        &self,
        rng: &mut impl RngCore,
        id: &str,
        message: &[u8],
    ) -> Result<FullCiphertext, Error> {
        let mut sigma = [0u8; SIGMA_LEN];
        rng.fill_bytes(&mut sigma);
        Ok(self.encrypt_full_with_sigma(id, message, &sigma))
    }

    /// Deterministic core of [`IbePublicParams::encrypt_full`].
    pub fn encrypt_full_with_sigma(
        &self,
        id: &str,
        message: &[u8],
        sigma: &[u8; SIGMA_LEN],
    ) -> FullCiphertext {
        self.encrypt_full_with_base(&self.identity_base(id), message, sigma)
    }

    /// [`IbePublicParams::encrypt_full_with_sigma`] with the identity
    /// base `g_ID` supplied by the caller (see
    /// [`crate::encryptor::IbeEncryptor`]).
    pub(crate) fn encrypt_full_with_base(
        &self,
        base: &Gt,
        message: &[u8],
        sigma: &[u8; SIGMA_LEN],
    ) -> FullCiphertext {
        let r = self.fo_randomness(sigma, message);
        let u = self.curve.mul_generator(&r);
        let g_r = self.curve.gt_pow(base, &r);
        let mut v = sigma.to_vec();
        xor_in_place(&mut v, &self.mask_h2(&g_r, SIGMA_LEN));
        let mut w = message.to_vec();
        let mask = derive::kdf(tags::H4, sigma, w.len());
        xor_in_place(&mut w, &mask);
        FullCiphertext { u, v, w }
    }

    /// `FullIdent` decryption with the FO validity check.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCiphertext`] when the re-encryption
    /// check `U = H3(σ, m)·P` fails or components are malformed.
    pub fn decrypt_full(&self, key: &PrivateKey, c: &FullCiphertext) -> Result<Vec<u8>, Error> {
        if !self.curve.is_in_group(&c.u) || c.u.is_infinity() || c.v.len() != SIGMA_LEN {
            return Err(Error::InvalidCiphertext);
        }
        let g = self.curve.pairing(&c.u, &key.point);
        self.finish_full_decrypt(c, &g)
    }

    /// Shared tail of FullIdent decryption, given the unmasking value
    /// `g = ê(U, d_ID)` — also used by the mediated scheme where `g`
    /// is assembled from the SEM token and the user half (§4).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCiphertext`] when the FO check fails.
    pub fn finish_full_decrypt(&self, c: &FullCiphertext, g: &Gt) -> Result<Vec<u8>, Error> {
        if c.v.len() != SIGMA_LEN {
            return Err(Error::InvalidCiphertext);
        }
        let mut sigma = [0u8; SIGMA_LEN];
        sigma.copy_from_slice(&c.v);
        xor_in_place(&mut sigma, &self.mask_h2(g, SIGMA_LEN));
        let mut m = c.w.clone();
        let mask = derive::kdf(tags::H4, &sigma, m.len());
        xor_in_place(&mut m, &mask);
        // Validity check: U must equal H3(σ, m)·P.
        let r = self.fo_randomness(&sigma, &m);
        if self.curve.mul_generator(&r) != c.u {
            return Err(Error::InvalidCiphertext);
        }
        Ok(m)
    }

    /// `H2` mask bytes for a target-group element.
    pub(crate) fn mask_h2(&self, g: &Gt, len: usize) -> Vec<u8> {
        derive::kdf(tags::H2, &self.curve.gt_to_bytes(g), len)
    }

    /// `r = H3(σ, m) ∈ [1, q)`.
    pub(crate) fn fo_randomness(&self, sigma: &[u8], message: &[u8]) -> BigUint {
        let mut input = Vec::with_capacity(sigma.len() + 8 + message.len());
        input.extend_from_slice(&(sigma.len() as u64).to_be_bytes());
        input.extend_from_slice(sigma);
        input.extend_from_slice(message);
        derive::hash_to_scalar(tags::H3, &input, self.curve.order())
    }
}

// --- ciphertext wire format -------------------------------------------------

impl FullCiphertext {
    /// Serializes as `point ‖ V ‖ u32-len ‖ W`.
    pub fn to_bytes(&self, params: &IbePublicParams) -> Vec<u8> {
        let mut out = params.curve().point_to_bytes(&self.u);
        out.extend_from_slice(&self.v);
        out.extend_from_slice(&(self.w.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.w);
        out
    }

    /// Parses [`FullCiphertext::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCiphertext`] on malformed input.
    pub fn from_bytes(params: &IbePublicParams, bytes: &[u8]) -> Result<Self, Error> {
        let mut r = crate::cursor::Reader::new(bytes);
        let u = params
            .curve()
            .point_from_bytes(
                r.bytes(params.curve().point_len())
                    .ok_or(Error::InvalidCiphertext)?,
            )
            .map_err(|_| Error::InvalidCiphertext)?;
        let v = r.bytes(SIGMA_LEN).ok_or(Error::InvalidCiphertext)?.to_vec();
        let w_len = r.u32_be().ok_or(Error::InvalidCiphertext)? as usize;
        if r.remaining() != w_len {
            return Err(Error::InvalidCiphertext);
        }
        Ok(FullCiphertext {
            u,
            v,
            w: r.rest().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pkg() -> Pkg {
        let mut rng = StdRng::seed_from_u64(71);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        Pkg::setup(&mut rng, curve)
    }

    #[test]
    fn basic_roundtrip() {
        let pkg = pkg();
        let mut rng = StdRng::seed_from_u64(72);
        let key = pkg.extract("alice");
        let c = pkg
            .params()
            .encrypt_basic(&mut rng, "alice", b"basic message");
        assert_eq!(
            pkg.params().decrypt_basic(&key, &c).unwrap(),
            b"basic message"
        );
    }

    #[test]
    fn full_roundtrip_various_lengths() {
        let pkg = pkg();
        let mut rng = StdRng::seed_from_u64(73);
        let key = pkg.extract("alice");
        for len in [0usize, 1, 31, 32, 33, 200] {
            let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let c = pkg.params().encrypt_full(&mut rng, "alice", &msg).unwrap();
            assert_eq!(
                pkg.params().decrypt_full(&key, &c).unwrap(),
                msg,
                "len={len}"
            );
        }
    }

    #[test]
    fn wrong_identity_key_fails() {
        let pkg = pkg();
        let mut rng = StdRng::seed_from_u64(74);
        let bob_key = pkg.extract("bob");
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"for alice")
            .unwrap();
        assert_eq!(
            pkg.params().decrypt_full(&bob_key, &c),
            Err(Error::InvalidCiphertext)
        );
        // BasicIdent has no validity check: wrong key yields garbage,
        // not an error — the malleability the paper points out.
        let cb = pkg.params().encrypt_basic(&mut rng, "alice", b"for alice");
        let garbage = pkg.params().decrypt_basic(&bob_key, &cb).unwrap();
        assert_ne!(garbage, b"for alice");
    }

    #[test]
    fn full_ciphertext_tamper_detected() {
        let pkg = pkg();
        let mut rng = StdRng::seed_from_u64(75);
        let key = pkg.extract("alice");
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"payload!")
            .unwrap();
        // Flip a bit of W.
        let mut bad = c.clone();
        bad.w[0] ^= 1;
        assert!(pkg.params().decrypt_full(&key, &bad).is_err());
        // Flip a bit of V.
        let mut bad = c.clone();
        bad.v[0] ^= 1;
        assert!(pkg.params().decrypt_full(&key, &bad).is_err());
        // Replace U.
        let mut bad = c.clone();
        bad.u = pkg.params().curve().mul_generator(&BigUint::from(12345u64));
        assert!(pkg.params().decrypt_full(&key, &bad).is_err());
    }

    #[test]
    fn basic_is_malleable_full_is_not() {
        // Demonstrates why §3 calls BasicIdent malleable: XORing V
        // flips plaintext bits undetected.
        let pkg = pkg();
        let mut rng = StdRng::seed_from_u64(76);
        let key = pkg.extract("alice");
        let c = pkg.params().encrypt_basic(&mut rng, "alice", b"pay 1 euro");
        let mut mauled = c.clone();
        mauled.v[4] ^= b'1' ^ b'9';
        assert_eq!(
            pkg.params().decrypt_basic(&key, &mauled).unwrap(),
            b"pay 9 euro"
        );
    }

    #[test]
    fn private_key_verification() {
        let pkg = pkg();
        let key = pkg.extract("alice");
        assert!(pkg.params().verify_private_key(&key));
        let forged = PrivateKey {
            id: "alice".into(),
            point: pkg.extract("bob").point.clone(),
        };
        assert!(!pkg.params().verify_private_key(&forged));
    }

    #[test]
    fn ciphertext_wire_roundtrip() {
        let pkg = pkg();
        let mut rng = StdRng::seed_from_u64(77);
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"wire format")
            .unwrap();
        let bytes = c.to_bytes(pkg.params());
        let back = FullCiphertext::from_bytes(pkg.params(), &bytes).unwrap();
        assert_eq!(back, c);
        assert!(FullCiphertext::from_bytes(pkg.params(), &bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(FullCiphertext::from_bytes(pkg.params(), &extended).is_err());
    }

    #[test]
    fn from_master_reproduces_pkg() {
        let mut rng = StdRng::seed_from_u64(78);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg1 = Pkg::setup(&mut rng, curve.clone());
        let pkg2 = Pkg::from_master(curve, pkg1.master().clone());
        assert_eq!(pkg1.params().p_pub(), pkg2.params().p_pub());
        assert_eq!(pkg1.extract("x"), pkg2.extract("x"));
    }

    #[test]
    fn deterministic_encrypt_with_sigma() {
        let pkg = pkg();
        let sigma = [7u8; SIGMA_LEN];
        let c1 = pkg.params().encrypt_full_with_sigma("alice", b"m", &sigma);
        let c2 = pkg.params().encrypt_full_with_sigma("alice", b"m", &sigma);
        assert_eq!(c1, c2);
    }
}
