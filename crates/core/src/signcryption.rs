//! Mediated signcryption — the open problem the paper's conclusion
//! poses, instantiated by composition:
//!
//! > "Another possible goal for future research is to find \[a\]
//! > signcryption scheme where both the capabilities of the sender and
//! > those of the receiver can be removed using this kind of
//! > architecture."
//!
//! This module gives the natural *sign-then-encrypt* composition of the
//! paper's own two mediated primitives:
//!
//! * the **sender** produces a mediated GDH signature (§5) over
//!   `recipient ‖ message` — revoking the sender kills this step;
//! * the result is wrapped in a **mediated IBE** ciphertext (§4) for
//!   the recipient's identity — revoking the recipient kills
//!   designcryption.
//!
//! Both parties therefore need a live SEM token per operation, so both
//! capabilities are instantly revocable, which is exactly the property
//! asked for. (A single-primitive signcryption with a tighter security
//! reduction remains future work — this composition inherits the
//! component guarantees: EUF from §5, weak IND-CCA from §4.)

use crate::bf_ibe::{FullCiphertext, IbePublicParams};
use crate::encryptor::IbeEncryptor;
use crate::gdh::{self, GdhPublicKey, GdhUser, HalfSignature, Signature};
use crate::mediated::{DecryptToken, UserKey};
use crate::Error;
use rand::RngCore;

/// A signcrypted message: outwardly just a mediated-IBE ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signcrypted {
    /// The wrapping ciphertext, addressed to the recipient identity.
    pub ciphertext: FullCiphertext,
}

/// The signed payload layout: `u16 sender-id len ‖ sender-id ‖
/// compressed signature point ‖ message`.
fn encode_payload(
    params: &IbePublicParams,
    sender_id: &str,
    sig: &Signature,
    message: &[u8],
) -> Vec<u8> {
    let sid = sender_id.as_bytes();
    let mut out = Vec::with_capacity(2 + sid.len() + params.curve().point_len() + message.len());
    out.extend_from_slice(&(sid.len() as u16).to_be_bytes());
    out.extend_from_slice(sid);
    out.extend_from_slice(&params.curve().point_to_bytes(&sig.0));
    out.extend_from_slice(message);
    out
}

fn decode_payload(
    params: &IbePublicParams,
    payload: &[u8],
) -> Result<(String, Signature, Vec<u8>), Error> {
    let mut r = crate::cursor::Reader::new(payload);
    let id_len = r.u16_be().ok_or(Error::InvalidCiphertext)? as usize;
    let sender_id = String::from_utf8(r.bytes(id_len).ok_or(Error::InvalidCiphertext)?.to_vec())
        .map_err(|_| Error::InvalidCiphertext)?;
    let sig_point = params
        .curve()
        .point_from_bytes(
            r.bytes(params.curve().point_len())
                .ok_or(Error::InvalidCiphertext)?,
        )
        .map_err(|_| Error::InvalidCiphertext)?;
    let message = r.rest().to_vec();
    Ok((sender_id, Signature(sig_point), message))
}

/// What the sender signs: domain-separated `recipient ‖ message`, so a
/// signcryption for Bob cannot be re-wrapped for Carol.
fn signed_content(recipient_id: &str, message: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + recipient_id.len() + message.len());
    out.extend_from_slice(b"sempair-signcrypt");
    out.extend_from_slice(&(recipient_id.len() as u16).to_be_bytes());
    out.extend_from_slice(recipient_id.as_bytes());
    out.extend_from_slice(message);
    out
}

/// The exact bytes the sender's SEM must half-sign for
/// [`signcrypt`] — senders pass this to `GdhSem::half_sign` (or the
/// threaded server) to obtain the `sender_half` argument.
pub fn content_to_sign(recipient_id: &str, message: &[u8]) -> Vec<u8> {
    signed_content(recipient_id, message)
}

/// Signcrypts `message` from `sender` to `recipient_id`.
///
/// `sender_half` is the SEM half-signature over
/// [`content_to_sign`]`(recipient_id, message)` — obtaining it is where
/// the sender's revocation status is enforced.
///
/// # Errors
///
/// [`Error::InvalidSignature`] if the half-signature does not combine
/// (SEM misbehaviour or wrong message).
pub fn signcrypt(
    rng: &mut impl RngCore,
    params: &IbePublicParams,
    sender: &GdhUser,
    sender_half: &HalfSignature,
    recipient_id: &str,
    message: &[u8],
) -> Result<Signcrypted, Error> {
    let content = signed_content(recipient_id, message);
    let sig = sender.finish_sign(params.curve(), &content, sender_half)?;
    let payload = encode_payload(params, &sender.id, &sig, message);
    let ciphertext = params.encrypt_full(rng, recipient_id, &payload)?;
    Ok(Signcrypted { ciphertext })
}

/// [`signcrypt`] through a caching [`IbeEncryptor`]: a gateway
/// signcrypting a stream of messages to the same recipients pays the
/// `ê(P_pub, Q_ID)` pairing once per recipient instead of once per
/// message. Output is identical to [`signcrypt`] for the same
/// randomness.
///
/// # Errors
///
/// [`Error::InvalidSignature`] if the half-signature does not combine.
pub fn signcrypt_with(
    rng: &mut impl RngCore,
    encryptor: &IbeEncryptor,
    sender: &GdhUser,
    sender_half: &HalfSignature,
    recipient_id: &str,
    message: &[u8],
) -> Result<Signcrypted, Error> {
    let params = encryptor.params();
    let content = signed_content(recipient_id, message);
    let sig = sender.finish_sign(params.curve(), &content, sender_half)?;
    let payload = encode_payload(params, &sender.id, &sig, message);
    let ciphertext = encryptor.encrypt_full(rng, recipient_id, &payload)?;
    Ok(Signcrypted { ciphertext })
}

/// Designcrypts: decrypt with the recipient's SEM token, then verify
/// the embedded signature under `sender_pk`.
///
/// Returns `(sender_id, message)`.
///
/// # Errors
///
/// [`Error::InvalidCiphertext`] for decryption/validity failures,
/// [`Error::InvalidSignature`] if the inner signature does not verify.
pub fn designcrypt(
    params: &IbePublicParams,
    recipient: &UserKey,
    recipient_token: &DecryptToken,
    sc: &Signcrypted,
    sender_pk: &GdhPublicKey,
) -> Result<(String, Vec<u8>), Error> {
    let payload = recipient.finish_decrypt(params, &sc.ciphertext, recipient_token)?;
    let (sender_id, sig, message) = decode_payload(params, &payload)?;
    let content = signed_content(&recipient.id, &message);
    gdh::verify(params.curve(), sender_pk, &content, &sig)?;
    Ok((sender_id, message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf_ibe::Pkg;
    use crate::gdh::GdhSem;
    use crate::mediated::Sem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sempair_pairing::CurveParams;

    struct World {
        pkg: Pkg,
        ibe_sem: Sem,
        gdh_sem: GdhSem,
        alice: GdhUser,
        alice_pk: GdhPublicKey,
        bob: UserKey,
        rng: StdRng,
    }

    fn setup() -> World {
        let mut rng = StdRng::seed_from_u64(141);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg = Pkg::setup(&mut rng, curve);
        // Sender: mediated GDH identity "alice".
        let (alice, alice_sem, alice_pk) =
            gdh::mediated_keygen(&mut rng, pkg.params().curve(), "alice");
        let mut gdh_sem = GdhSem::new();
        gdh_sem.install(alice_sem);
        // Recipient: mediated IBE identity "bob".
        let (bob, bob_sem) = pkg.extract_split(&mut rng, "bob");
        let mut ibe_sem = Sem::new();
        ibe_sem.install(bob_sem);
        World {
            pkg,
            ibe_sem,
            gdh_sem,
            alice,
            alice_pk,
            bob,
            rng,
        }
    }

    fn do_signcrypt(w: &mut World, msg: &[u8]) -> Signcrypted {
        let content = content_to_sign("bob", msg);
        let half = w
            .gdh_sem
            .half_sign(w.pkg.params().curve(), "alice", &content)
            .expect("sender not revoked");
        signcrypt(&mut w.rng, w.pkg.params(), &w.alice, &half, "bob", msg).expect("signcrypt")
    }

    #[test]
    fn roundtrip() {
        let mut w = setup();
        let sc = do_signcrypt(&mut w, b"signed and sealed");
        let token = w
            .ibe_sem
            .decrypt_token(w.pkg.params(), "bob", &sc.ciphertext.u)
            .unwrap();
        let (sender, msg) = designcrypt(w.pkg.params(), &w.bob, &token, &sc, &w.alice_pk).unwrap();
        assert_eq!(sender, "alice");
        assert_eq!(msg, b"signed and sealed");
    }

    #[test]
    fn cached_encryptor_roundtrip() {
        let mut w = setup();
        let enc = IbeEncryptor::new(w.pkg.params().clone());
        for i in 0..3 {
            let msg = format!("stream item {i}").into_bytes();
            let content = content_to_sign("bob", &msg);
            let half = w
                .gdh_sem
                .half_sign(w.pkg.params().curve(), "alice", &content)
                .unwrap();
            let sc = signcrypt_with(&mut w.rng, &enc, &w.alice, &half, "bob", &msg).unwrap();
            let token = w
                .ibe_sem
                .decrypt_token(w.pkg.params(), "bob", &sc.ciphertext.u)
                .unwrap();
            let (sender, got) =
                designcrypt(w.pkg.params(), &w.bob, &token, &sc, &w.alice_pk).unwrap();
            assert_eq!(sender, "alice");
            assert_eq!(got, msg);
        }
        // One miss for "bob", hits for the rest of the stream.
        let stats = enc.cache_stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    #[test]
    fn revoking_sender_blocks_signcryption() {
        let mut w = setup();
        w.gdh_sem.revoke("alice");
        let content = content_to_sign("bob", b"m");
        assert_eq!(
            w.gdh_sem
                .half_sign(w.pkg.params().curve(), "alice", &content),
            Err(Error::Revoked)
        );
    }

    #[test]
    fn revoking_recipient_blocks_designcryption() {
        let mut w = setup();
        let sc = do_signcrypt(&mut w, b"m");
        w.ibe_sem.revoke("bob");
        assert_eq!(
            w.ibe_sem
                .decrypt_token(w.pkg.params(), "bob", &sc.ciphertext.u),
            Err(Error::Revoked)
        );
    }

    #[test]
    fn wrong_sender_key_rejected() {
        let mut w = setup();
        let sc = do_signcrypt(&mut w, b"m");
        let token = w
            .ibe_sem
            .decrypt_token(w.pkg.params(), "bob", &sc.ciphertext.u)
            .unwrap();
        let (_, _, mallory_pk) =
            gdh::mediated_keygen(&mut w.rng, w.pkg.params().curve(), "mallory");
        assert_eq!(
            designcrypt(w.pkg.params(), &w.bob, &token, &sc, &mallory_pk),
            Err(Error::InvalidSignature)
        );
    }

    #[test]
    fn signature_binds_recipient() {
        // A signature produced for Bob cannot be re-wrapped for Carol.
        let mut w = setup();
        let msg = b"pay 100";
        let content_bob = content_to_sign("bob", msg);
        let half = w
            .gdh_sem
            .half_sign(w.pkg.params().curve(), "alice", &content_bob)
            .unwrap();
        let sig = w
            .alice
            .finish_sign(w.pkg.params().curve(), &content_bob, &half)
            .unwrap();
        // Mallory re-encrypts payload to carol.
        let payload = encode_payload(w.pkg.params(), "alice", &sig, msg);
        let (carol, carol_sem) = {
            let mut s = Sem::new();
            let (k, sk) = w.pkg.extract_split(&mut w.rng, "carol");
            s.install(sk);
            (k, s)
        };
        let ct = w
            .pkg
            .params()
            .encrypt_full(&mut w.rng, "carol", &payload)
            .unwrap();
        let rewrapped = Signcrypted { ciphertext: ct };
        let token = carol_sem
            .decrypt_token(w.pkg.params(), "carol", &rewrapped.ciphertext.u)
            .unwrap();
        assert_eq!(
            designcrypt(w.pkg.params(), &carol, &token, &rewrapped, &w.alice_pk),
            Err(Error::InvalidSignature)
        );
    }

    #[test]
    fn tampered_message_rejected() {
        let mut w = setup();
        let mut sc = do_signcrypt(&mut w, b"original");
        sc.ciphertext.w[10] ^= 1;
        let token = w
            .ibe_sem
            .decrypt_token(w.pkg.params(), "bob", &sc.ciphertext.u)
            .unwrap();
        assert!(designcrypt(w.pkg.params(), &w.bob, &token, &sc, &w.alice_pk).is_err());
    }

    #[test]
    fn malformed_payload_rejected() {
        let w = setup();
        assert!(decode_payload(w.pkg.params(), &[]).is_err());
        assert!(decode_payload(w.pkg.params(), &[0, 200, 1, 2]).is_err());
    }
}
