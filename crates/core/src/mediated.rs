//! The mediated (SEM) Boneh–Franklin IBE of §4 — the paper's main
//! construction.
//!
//! `Keygen` splits the identity key additively in `G1`:
//! `d_ID = s·Q_ID = d_user + d_sem` with `d_user` uniform. Decryption of
//! a `FullIdent` ciphertext `⟨U, V, W⟩` then needs both halves of the
//! pairing value:
//!
//! ```text
//! g = ê(U, d_sem) · ê(U, d_user) = ê(U, d_ID) = ê(P_pub, Q_ID)^r
//! ```
//!
//! The SEM contributes `g_sem = ê(U, d_sem)` — the *token* — only after
//! checking its revocation list, which is how the scheme gets
//! fine-grained, instantaneous revocation without the PKG re-issuing
//! keys. Security properties reproduced as tests here and in
//! `tests/security_games.rs`:
//!
//! * the SEM never learns the plaintext (it never sees `g_user`);
//! * tokens are ciphertext-specific and useless for other ciphertexts
//!   (`U` binds them through `r = H3(σ, M)`);
//! * a user+SEM collusion recovers only *that user's* `d_ID` — other
//!   identities stay secure (contrast with IB-mRSA, where it factors
//!   the shared modulus).

use crate::bf_ibe::{FullCiphertext, IbePublicParams, Pkg};
use crate::cache::SharedLru;
use crate::Error;
use rand::RngCore;
use sempair_pairing::{G1Affine, Gt, PreparedG1};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// The user's half-key `d_user ∈ G1`.
///
/// Secret material: `Debug` redacts the point, equality is
/// constant-time, and dropping the key erases the point.
#[derive(Clone, Eq)]
pub struct UserKey {
    /// The identity this half-key belongs to.
    pub id: String,
    /// The half-key point.
    pub point: G1Affine,
}

impl fmt::Debug for UserKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UserKey")
            .field("id", &self.id)
            .field("point", &"<redacted>")
            .finish()
    }
}

impl PartialEq for UserKey {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.point.ct_eq(&other.point)
    }
}

impl Drop for UserKey {
    fn drop(&mut self) {
        self.point.zeroize();
    }
}

/// The SEM's half-key `d_sem = d_ID − d_user` for one identity.
///
/// Secret material: `Debug` redacts the point, equality is
/// constant-time, and dropping the key erases the point.
#[derive(Clone, Eq)]
pub struct SemKey {
    /// The identity this half-key serves.
    pub id: String,
    /// The half-key point.
    pub point: G1Affine,
}

impl fmt::Debug for SemKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SemKey")
            .field("id", &self.id)
            .field("point", &"<redacted>")
            .finish()
    }
}

impl PartialEq for SemKey {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.point.ct_eq(&other.point)
    }
}

impl Drop for SemKey {
    fn drop(&mut self) {
        self.point.zeroize();
    }
}

/// A decryption token `g_sem = ê(U, d_sem)`.
///
/// A random-looking element of `G2` that carries no information about
/// `d_sem` (computing `d_sem` from it is the pairing-inversion/CDH
/// problem, as §4 argues).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecryptToken(pub Gt);

impl Pkg {
    /// `Keygen` (§4): extracts `d_ID` and splits it into
    /// `(d_user, d_sem)` with `d_user` uniform in `G1`.
    pub fn extract_split(&self, rng: &mut impl RngCore, id: &str) -> (UserKey, SemKey) {
        let full = self.extract(id);
        let curve = self.params().curve();
        // Uniform d_user: a random multiple of the generator is uniform
        // in the order-r subgroup that d_ID lives in.
        let blind = curve.random_scalar(rng);
        let d_user = curve.mul_generator(&blind);
        let d_sem = curve.sub(&full.point, &d_user);
        (
            UserKey {
                id: id.to_string(),
                point: d_user,
            },
            SemKey {
                id: id.to_string(),
                point: d_sem,
            },
        )
    }
}

/// The security mediator: half-keys plus the revocation list.
///
/// Distinct from the PKG (§4): the SEM stays online for the system's
/// lifetime while the PKG can go offline after issuing keys.
#[derive(Debug, Default)]
pub struct Sem {
    keys: HashMap<String, SemKey>,
    revoked: HashSet<String>,
}

impl Sem {
    /// Creates an empty SEM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a half-key received from the PKG.
    pub fn install(&mut self, key: SemKey) {
        self.keys.insert(key.id.clone(), key);
    }

    /// Revokes an identity: takes effect on the very next token request
    /// (the paper's headline "instantaneous revocation").
    pub fn revoke(&mut self, id: &str) {
        self.revoked.insert(id.to_string());
    }

    /// Reinstates an identity.
    pub fn unrevoke(&mut self, id: &str) {
        self.revoked.remove(id);
    }

    /// `true` iff the identity is currently revoked.
    pub fn is_revoked(&self, id: &str) -> bool {
        self.revoked.contains(id)
    }

    /// Number of enrolled identities.
    pub fn enrolled(&self) -> usize {
        self.keys.len()
    }

    /// SEM step of `Decrypt` (§4): check revocation, then return
    /// `g_sem = ê(U, d_sem)`.
    ///
    /// Note the SEM *cannot* validate the ciphertext: the FO check
    /// happens at the end of decryption, on the user side — exactly the
    /// obstacle to insider-CCA proofs the paper identifies in §2.
    ///
    /// # Errors
    ///
    /// [`Error::Revoked`], [`Error::UnknownIdentity`], or
    /// [`Error::InvalidCiphertext`] for an off-curve `U`.
    pub fn decrypt_token(
        &self,
        params: &IbePublicParams,
        id: &str,
        u: &G1Affine,
    ) -> Result<DecryptToken, Error> {
        if self.revoked.contains(id) {
            return Err(Error::Revoked);
        }
        let key = self.keys.get(id).ok_or(Error::UnknownIdentity)?;
        if !params.curve().is_in_group(u) {
            return Err(Error::InvalidCiphertext);
        }
        Ok(DecryptToken(params.curve().pairing(u, &key.point)))
    }

    /// [`Sem::decrypt_token`] through a shared cache of prepared
    /// half-keys: the Miller-loop line coefficients of `d_sem` are
    /// computed once per identity and replayed for every subsequent
    /// token (the modified pairing is symmetric, so
    /// `ê(U, d_sem) = ê(d_sem, U)` with `d_sem` as the prepared
    /// argument). Identical output to the uncached path; only the cost
    /// profile differs.
    ///
    /// Cache coherence is the caller's contract: entries must be
    /// removed whenever the identity's half-key is replaced (the
    /// serving layer invalidates under its state write lock).
    ///
    /// # Errors
    ///
    /// Exactly those of [`Sem::decrypt_token`].
    pub fn decrypt_token_cached(
        &self,
        params: &IbePublicParams,
        id: &str,
        u: &G1Affine,
        prepared: &SharedLru<String, Arc<PreparedG1>>,
    ) -> Result<DecryptToken, Error> {
        if self.revoked.contains(id) {
            return Err(Error::Revoked);
        }
        let key = self.keys.get(id).ok_or(Error::UnknownIdentity)?;
        if !params.curve().is_in_group(u) {
            return Err(Error::InvalidCiphertext);
        }
        let prep = match prepared.get(id) {
            Some(prep) => prep,
            None => {
                // Prepared outside the cache lock; concurrent misses on
                // one identity duplicate work instead of serializing.
                let prep = Arc::new(params.curve().prepare_g1(&key.point));
                prepared.insert(
                    id.to_string(),
                    Arc::clone(&prep),
                    prepared_weight(params, &prep),
                );
                prep
            }
        };
        Ok(DecryptToken(params.curve().pairing_prepared(&prep, u)))
    }

    /// Prepares `d_sem`'s Miller lines into `prepared` ahead of
    /// traffic (warm-start); a no-op for unknown identities.
    pub fn warm_prepared(
        &self,
        params: &IbePublicParams,
        id: &str,
        prepared: &SharedLru<String, Arc<PreparedG1>>,
    ) {
        if let Some(key) = self.keys.get(id) {
            let prep = Arc::new(params.curve().prepare_g1(&key.point));
            prepared.insert(
                id.to_string(),
                Arc::clone(&prep),
                prepared_weight(params, &prep),
            );
        }
    }

    /// **Collusion hook** (tests/E9): what a compromised SEM leaks for
    /// one identity — its half-key.
    pub fn leak_key_for_attack_demo(&self, id: &str) -> Option<&SemKey> {
        self.keys.get(id)
    }
}

/// Approximate resident bytes of a prepared point: three `F_p`
/// line coefficients per cached Miller step.
pub fn prepared_weight(params: &IbePublicParams, prep: &PreparedG1) -> usize {
    prep.len() * 3 * (params.curve().point_len() - 1)
}

impl UserKey {
    /// User step of `Decrypt` (§4): compute `g_user = ê(U, d_user)`,
    /// assemble `g = g_sem · g_user`, unmask, and run the FO validity
    /// check `U = H3(σ, M)·P`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidCiphertext`] if the ciphertext fails validation
    /// (including when the token belongs to a different ciphertext).
    pub fn finish_decrypt(
        &self,
        params: &IbePublicParams,
        ciphertext: &FullCiphertext,
        token: &DecryptToken,
    ) -> Result<Vec<u8>, Error> {
        if !params.curve().is_in_group(&ciphertext.u) || ciphertext.u.is_infinity() {
            return Err(Error::InvalidCiphertext);
        }
        let g_user = params.curve().pairing(&ciphertext.u, &self.point);
        let g = params.curve().gt_mul(&token.0, &g_user);
        params.finish_full_decrypt(ciphertext, &g)
    }

    /// Recombines the full key from both halves — what a user+SEM
    /// collusion obtains (§4's security discussion). Exposed for the
    /// security-game tests.
    pub fn collude(&self, params: &IbePublicParams, sem_key: &SemKey) -> crate::bf_ibe::PrivateKey {
        crate::bf_ibe::PrivateKey {
            id: self.id.clone(),
            point: params.curve().add(&self.point, &sem_key.point),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sempair_pairing::CurveParams;

    fn setup() -> (Pkg, Sem, UserKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(91);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg = Pkg::setup(&mut rng, curve);
        let (user, sem_key) = pkg.extract_split(&mut rng, "alice");
        let mut sem = Sem::new();
        sem.install(sem_key);
        (pkg, sem, user, rng)
    }

    #[test]
    fn mediated_decrypt_roundtrip() {
        let (pkg, sem, user, mut rng) = setup();
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"mediated hello")
            .unwrap();
        let token = sem.decrypt_token(pkg.params(), "alice", &c.u).unwrap();
        assert_eq!(
            user.finish_decrypt(pkg.params(), &c, &token).unwrap(),
            b"mediated hello"
        );
    }

    #[test]
    fn cached_token_path_is_byte_identical() {
        let (pkg, mut sem, user, mut rng) = setup();
        let prepared = SharedLru::new(16);
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"prepared path")
            .unwrap();
        let plain = sem.decrypt_token(pkg.params(), "alice", &c.u).unwrap();
        let cached = sem
            .decrypt_token_cached(pkg.params(), "alice", &c.u, &prepared)
            .unwrap();
        assert_eq!(plain, cached, "prepared pairing must match ê(U, d_sem)");
        assert_eq!(
            user.finish_decrypt(pkg.params(), &c, &cached).unwrap(),
            b"prepared path"
        );
        // Second call hits the cache and still matches.
        let again = sem
            .decrypt_token_cached(pkg.params(), "alice", &c.u, &prepared)
            .unwrap();
        assert_eq!(again, plain);
        let counters = prepared.counters();
        assert_eq!(
            (counters.hits, counters.misses, counters.entries),
            (1, 1, 1)
        );
        assert!(counters.weight > 0, "prepared entries must carry weight");
        // Error ordering is preserved: revoked beats unknown/invalid.
        sem.revoke("alice");
        assert_eq!(
            sem.decrypt_token_cached(pkg.params(), "alice", &c.u, &prepared),
            Err(Error::Revoked)
        );
        assert_eq!(
            sem.decrypt_token_cached(pkg.params(), "nobody", &c.u, &prepared),
            Err(Error::UnknownIdentity)
        );
    }

    #[test]
    fn split_recombines_to_full_key() {
        let (pkg, sem, user, _) = setup();
        let full = pkg.extract("alice");
        let sem_key = sem.leak_key_for_attack_demo("alice").unwrap();
        assert_eq!(user.collude(pkg.params(), sem_key), full);
        assert!(pkg.params().verify_private_key(&full));
    }

    #[test]
    fn revocation_blocks_tokens_instantly() {
        let (pkg, mut sem, user, mut rng) = setup();
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"msg")
            .unwrap();
        sem.revoke("alice");
        assert_eq!(
            sem.decrypt_token(pkg.params(), "alice", &c.u),
            Err(Error::Revoked)
        );
        // Unrevoke restores service (the §4 note that a corrupt SEM can
        // only un/re-revoke, not decrypt).
        sem.unrevoke("alice");
        let token = sem.decrypt_token(pkg.params(), "alice", &c.u).unwrap();
        assert_eq!(
            user.finish_decrypt(pkg.params(), &c, &token).unwrap(),
            b"msg"
        );
    }

    #[test]
    fn user_cannot_decrypt_without_token() {
        let (pkg, _, user, mut rng) = setup();
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"msg")
            .unwrap();
        // Identity token (1 ∈ G2) leaves g = g_user: FO check must fail.
        let bogus = DecryptToken(pkg.params().curve().gt_one());
        assert_eq!(
            user.finish_decrypt(pkg.params(), &c, &bogus),
            Err(Error::InvalidCiphertext)
        );
    }

    #[test]
    fn token_is_ciphertext_specific() {
        // §4: "the user cannot use the same decryption token twice" —
        // a token for c1 must not decrypt c2.
        let (pkg, sem, user, mut rng) = setup();
        let c1 = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"first")
            .unwrap();
        let c2 = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"second")
            .unwrap();
        let token1 = sem.decrypt_token(pkg.params(), "alice", &c1.u).unwrap();
        assert!(user.finish_decrypt(pkg.params(), &c2, &token1).is_err());
        assert_eq!(
            user.finish_decrypt(pkg.params(), &c1, &token1).unwrap(),
            b"first"
        );
    }

    #[test]
    fn token_useless_to_other_users() {
        // §4: the token ê(U, d_ID,sem) is useless to any user other
        // than Alice.
        let (pkg, mut sem, _alice, mut rng) = setup();
        let (bob, bob_sem) = pkg.extract_split(&mut rng, "bob");
        sem.install(bob_sem);
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"for alice")
            .unwrap();
        let alice_token = sem.decrypt_token(pkg.params(), "alice", &c.u).unwrap();
        assert!(bob.finish_decrypt(pkg.params(), &c, &alice_token).is_err());
    }

    #[test]
    fn unknown_identity_rejected() {
        let (pkg, sem, _, _) = setup();
        assert_eq!(
            sem.decrypt_token(pkg.params(), "mallory", pkg.params().curve().generator()),
            Err(Error::UnknownIdentity)
        );
    }

    #[test]
    fn sem_validates_group_membership_of_u() {
        let (pkg, sem, _, _) = setup();
        // A point on the curve but outside the order-r subgroup must be
        // rejected (small-subgroup defence).
        let curve = pkg.params().curve();
        let mut x = sempair_bigint::BigUint::one();
        let outside = loop {
            if let Some((p1, _)) = curve.lift_x(&x) {
                if !p1.is_infinity() && !curve.is_in_group(&p1) {
                    break p1;
                }
            }
            x = &x + &sempair_bigint::BigUint::one();
        };
        assert_eq!(
            sem.decrypt_token(pkg.params(), "alice", &outside),
            Err(Error::InvalidCiphertext)
        );
    }

    #[test]
    fn collusion_breaks_only_that_identity() {
        // The §4 contrast with IB-mRSA: alice+SEM recover alice's key,
        // but bob's ciphertexts remain undecryptable to them.
        let (pkg, mut sem, alice, mut rng) = setup();
        let (_bob_key, bob_sem) = pkg.extract_split(&mut rng, "bob");
        sem.install(bob_sem);
        let full_alice =
            alice.collude(pkg.params(), sem.leak_key_for_attack_demo("alice").unwrap());
        // Colluders decrypt alice's mail directly, bypassing revocation…
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"alice mail")
            .unwrap();
        sem.revoke("alice");
        assert_eq!(
            pkg.params().decrypt_full(&full_alice, &c).unwrap(),
            b"alice mail"
        );
        // …but a key assembled from alice's user half and bob's SEM half
        // is NOT bob's key: decryption of bob's mail fails.
        let franken = alice.collude(pkg.params(), sem.leak_key_for_attack_demo("bob").unwrap());
        let cb = pkg
            .params()
            .encrypt_full(&mut rng, "bob", b"bob mail")
            .unwrap();
        let franken_bob = crate::bf_ibe::PrivateKey {
            id: "bob".into(),
            point: franken.point.clone(),
        };
        assert!(pkg.params().decrypt_full(&franken_bob, &cb).is_err());
    }
}
