//! Property-based tests for the paper's schemes.
//!
//! Parameters are generated once (128/64-bit test curve) and shared
//! across cases; proptest drives messages, identities and split
//! points.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sempair_core::bf_ibe::{Pkg, SIGMA_LEN};
use sempair_core::encryptor::IbeEncryptor;
use sempair_core::gdh;
use sempair_core::mediated::Sem;
use sempair_core::shamir::{self, Polynomial, Share};
use sempair_core::threshold::ThresholdPkg;
use sempair_pairing::CurveParams;
use std::sync::OnceLock;

fn curve() -> &'static CurveParams {
    static CURVE: OnceLock<CurveParams> = OnceLock::new();
    CURVE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        CurveParams::generate(&mut rng, 128, 64).unwrap()
    })
}

fn pkg() -> &'static Pkg {
    static PKG: OnceLock<Pkg> = OnceLock::new();
    PKG.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        Pkg::setup(&mut rng, curve().clone())
    })
}

/// Shared across cases so later cases exercise the cache-hit path.
fn encryptor() -> &'static IbeEncryptor {
    static ENC: OnceLock<IbeEncryptor> = OnceLock::new();
    ENC.get_or_init(|| IbeEncryptor::new(pkg().params().clone()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_ibe_roundtrips_any_message(
        msg in proptest::collection::vec(any::<u8>(), 0..300),
        id in "[a-z]{1,16}@[a-z]{1,10}\\.com",
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = pkg().extract(&id);
        let c = pkg().params().encrypt_full(&mut rng, &id, &msg).unwrap();
        prop_assert_eq!(pkg().params().decrypt_full(&key, &c).unwrap(), msg);
    }

    #[test]
    fn basic_ibe_roundtrips_any_message(
        msg in proptest::collection::vec(any::<u8>(), 0..300),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = pkg().extract("prop");
        let c = pkg().params().encrypt_basic(&mut rng, "prop", &msg);
        prop_assert_eq!(pkg().params().decrypt_basic(&key, &c).unwrap(), msg);
    }

    #[test]
    fn mediated_roundtrips_and_revocation_blocks(
        msg in proptest::collection::vec(any::<u8>(), 0..200),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (user, sem_key) = pkg().extract_split(&mut rng, "prop-med");
        let mut sem = Sem::new();
        sem.install(sem_key);
        let c = pkg().params().encrypt_full(&mut rng, "prop-med", &msg).unwrap();
        let token = sem.decrypt_token(pkg().params(), "prop-med", &c.u).unwrap();
        prop_assert_eq!(user.finish_decrypt(pkg().params(), &c, &token).unwrap(), msg);
        sem.revoke("prop-med");
        prop_assert!(sem.decrypt_token(pkg().params(), "prop-med", &c.u).is_err());
    }

    #[test]
    fn split_is_additive_and_uniformly_rerandomized(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (u1, s1) = pkg().extract_split(&mut rng, "resplit");
        let (u2, s2) = pkg().extract_split(&mut rng, "resplit");
        let full = pkg().extract("resplit");
        // Different splits, same sum.
        prop_assert_eq!(u1.collude(pkg().params(), &s1), full.clone());
        prop_assert_eq!(u2.collude(pkg().params(), &s2), full);
        prop_assert_ne!(&u1.point, &u2.point);
    }

    #[test]
    fn ciphertext_wire_roundtrip(
        msg in proptest::collection::vec(any::<u8>(), 0..200),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = pkg().params().encrypt_full(&mut rng, "wire", &msg).unwrap();
        let bytes = c.to_bytes(pkg().params());
        let parsed = sempair_core::bf_ibe::FullCiphertext::from_bytes(pkg().params(), &bytes).unwrap();
        prop_assert_eq!(parsed, c);
    }

    #[test]
    fn gdh_sign_verify_any_message(
        msg in proptest::collection::vec(any::<u8>(), 0..100),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (sk, pk) = gdh::keygen(&mut rng, curve());
        let sig = gdh::sign(curve(), &sk, &msg);
        prop_assert!(gdh::verify(curve(), &pk, &msg, &sig).is_ok());
        // Any other message fails (overwhelmingly).
        let mut other = msg.clone();
        other.push(0x42);
        prop_assert!(gdh::verify(curve(), &pk, &other, &sig).is_err());
    }

    #[test]
    fn prepared_pairing_matches_fresh(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = curve().mul_generator(&curve().random_scalar(&mut rng));
        let q = curve().mul_generator(&curve().random_scalar(&mut rng));
        let prepared = curve().prepare_g1(&p);
        prop_assert_eq!(curve().pairing_prepared(&prepared, &q), curve().pairing(&p, &q));
        // The prepared handle is reusable across second arguments.
        let q2 = curve().mul_generator(&curve().random_scalar(&mut rng));
        prop_assert_eq!(curve().pairing_prepared(&prepared, &q2), curve().pairing(&p, &q2));
    }

    #[test]
    fn batch_verify_accepts_valid_and_localizes_forgery(
        n in 1usize..10,
        forge_slot in 0usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (sk, pk) = gdh::keygen(&mut rng, curve());
        let messages: Vec<Vec<u8>> = (0..n).map(|i| format!("m{i}").into_bytes()).collect();
        let mut sigs: Vec<gdh::Signature> =
            messages.iter().map(|m| gdh::sign(curve(), &sk, m)).collect();
        {
            let entries: Vec<(&[u8], &gdh::Signature)> =
                messages.iter().map(|m| m.as_slice()).zip(sigs.iter()).collect();
            prop_assert!(gdh::batch_verify(curve(), &pk, &entries).is_ok());
            prop_assert!(gdh::batch_find_invalid(curve(), &pk, &entries).is_empty());
        }
        // Forge one position: the batch must fail and the bisection
        // must name exactly that index.
        let forged_at = forge_slot % n;
        sigs[forged_at] = gdh::sign(curve(), &sk, b"some other statement");
        let entries: Vec<(&[u8], &gdh::Signature)> =
            messages.iter().map(|m| m.as_slice()).zip(sigs.iter()).collect();
        prop_assert!(gdh::batch_verify(curve(), &pk, &entries).is_err());
        prop_assert_eq!(gdh::batch_find_invalid(curve(), &pk, &entries), vec![forged_at]);
    }

    #[test]
    fn cached_encryptor_ciphertexts_identical_and_decryptable(
        msg in proptest::collection::vec(any::<u8>(), 0..200),
        id in "[a-z]{1,12}",
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sigma = [0u8; SIGMA_LEN];
        rng.fill_bytes(&mut sigma);
        let c_cached = encryptor().encrypt_full_with_sigma(&id, &msg, &sigma);
        let c_plain = pkg().params().encrypt_full_with_sigma(&id, &msg, &sigma);
        prop_assert_eq!(&c_cached, &c_plain);
        let key = pkg().extract(&id);
        prop_assert_eq!(pkg().params().decrypt_full(&key, &c_cached).unwrap(), msg);
    }

    #[test]
    fn threshold_gdh_any_t_subset(seed in any::<u64>(), t in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = t + 2;
        let (sys, shares) = gdh::ThresholdGdh::setup(&mut rng, curve().clone(), t, n).unwrap();
        let partials: Vec<_> = shares.iter().map(|s| sys.partial_sign(s, b"prop")).collect();
        // Random t-subset via seed.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..n {
            let j = (seed as usize).wrapping_mul(31).wrapping_add(i * 7) % n;
            idx.swap(i, j);
        }
        let subset: Vec<_> = idx[..t].iter().map(|&i| partials[i].clone()).collect();
        let sig = sys.combine(b"prop", &subset).unwrap();
        prop_assert!(gdh::verify(curve(), sys.public_key(), b"prop", &sig).is_ok());
    }

    #[test]
    fn shamir_reconstructs_from_shifted_subsets(
        secret in any::<u64>(),
        t in 1usize..6,
        extra in 0usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q: sempair_bigint::BigUint = "0xffffffffffffffc5".parse().unwrap();
        let secret = sempair_bigint::BigUint::from(secret) % &q;
        let n = t + extra;
        let poly = Polynomial::sample(&mut rng, &secret, t, &q);
        let shares = poly.shares(n);
        // Last t shares (not just the first t).
        let subset: Vec<Share> = shares[extra..].to_vec();
        prop_assert_eq!(shamir::reconstruct(&subset, &q).unwrap(), secret);
    }

    #[test]
    fn elgamal_roundtrips(
        msg in proptest::collection::vec(any::<u8>(), 0..150),
        seed in any::<u64>(),
    ) {
        use sempair_core::elgamal;
        let mut rng = StdRng::seed_from_u64(seed);
        let (user, sem_key, pk) = elgamal::keygen(&mut rng, curve(), "prop-eg");
        let mut sem = elgamal::ElGamalSem::new();
        sem.install(sem_key);
        let c = elgamal::encrypt(&mut rng, curve(), &pk, &msg);
        let token = sem.decrypt_token(curve(), "prop-eg", &c.u).unwrap();
        prop_assert_eq!(user.finish_decrypt(curve(), &c, &token).unwrap(), msg);
    }
}

/// Threshold IBE roundtrip across random subsets (non-proptest loop to
/// amortize the dealer setup).
#[test]
fn threshold_ibe_random_subsets() {
    let mut rng = StdRng::seed_from_u64(909);
    let tpkg = ThresholdPkg::setup(&mut rng, curve().clone(), 3, 6).unwrap();
    let sys = tpkg.system();
    let shares = tpkg.keygen("subset-test");
    for round in 0..6 {
        let msg = format!("round {round}");
        let c = sys
            .params()
            .encrypt_basic(&mut rng, "subset-test", msg.as_bytes());
        // Rotate which 3 players respond.
        let chosen = [(round) % 6, (round + 2) % 6, (round + 4) % 6];
        let dec: Vec<_> = chosen
            .iter()
            .map(|&i| sys.decryption_share(&shares[i], &c.u))
            .collect();
        assert_eq!(sys.recombine_basic(&c, &dec).unwrap(), msg.as_bytes());
    }
}

/// Identity separation: keys never decrypt across identities, for many
/// random identity pairs.
#[test]
fn identity_separation_sweep() {
    let mut rng = StdRng::seed_from_u64(910);
    for i in 0..5 {
        let id_a = format!("user-a-{i}");
        let id_b = format!("user-b-{i}");
        let key_b = pkg().extract(&id_b);
        let c = pkg()
            .params()
            .encrypt_full(&mut rng, &id_a, b"separated")
            .unwrap();
        assert!(pkg().params().decrypt_full(&key_b, &c).is_err());
    }
}
