//! Property tests for the lockdep core (ISSUE 10 satellite).
//!
//! The lockdep edge graph is process-global, so these properties are
//! written to be insensitive to interleaving with each other:
//! rank-consistent acquisitions only ever insert declared-consistent
//! edges (inverted edges are reported, not recorded), and the
//! incomparable-pair test is the only one touching Pool/Inflight.

#![cfg(feature = "lockdep")]

use proptest::prelude::*;
use sempair_core::lockdep::{self, LockClass, TrackedMutex, ViolationKind};

/// All classes in declared-rank order, equal ranks deduped, so any
/// subsequence acquires in strictly increasing rank.
fn strict_chain(mask: u16) -> Vec<LockClass> {
    let mut chain: Vec<LockClass> = Vec::new();
    for (i, &class) in LockClass::ALL.iter().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        if chain.last().is_none_or(|prev| prev.rank() < class.rank()) {
            chain.push(class);
        }
    }
    chain
}

fn acquire_chain(classes: &[LockClass]) -> Vec<lockdep::LockdepViolation> {
    let locks: Vec<TrackedMutex<u32>> = classes.iter().map(|&c| TrackedMutex::new(c, 0)).collect();
    let guards: Vec<_> = locks.iter().map(TrackedMutex::lock).collect();
    drop(guards);
    lockdep::take_thread_violations()
}

proptest! {
    /// Any acquisition sequence consistent with the declared partial
    /// order (strictly increasing rank) never reports a violation, no
    /// matter what edges earlier sequences left in the global graph.
    #[test]
    fn rank_consistent_sequences_never_violate(mask in 0u16..(1 << 12)) {
        let chain = strict_chain(mask);
        let violations = acquire_chain(&chain);
        prop_assert!(
            violations.is_empty(),
            "consistent chain {chain:?} flagged: {violations:?}"
        );
    }

    /// Injecting a back-edge — acquiring a strictly lower-ranked class
    /// while a higher-ranked one is held — is always detected, at any
    /// position in the chain and regardless of prior graph state.
    #[test]
    fn injected_back_edge_always_detected(
        mask in 0u16..(1 << 12),
        pick_a in any::<u16>(),
        pick_b in any::<u16>(),
    ) {
        let chain = strict_chain(mask);
        prop_assume!(chain.len() >= 2);
        let (a, b) = (
            usize::from(pick_a) % chain.len(),
            usize::from(pick_b) % chain.len(),
        );
        prop_assume!(a != b);
        let (lo, hi) = (chain[a.min(b)], chain[a.max(b)]);

        let outer = TrackedMutex::new(hi, 0u32);
        let inner = TrackedMutex::new(lo, 0u32);
        let _o = outer.lock();
        let _i = inner.lock();
        let violations = lockdep::take_thread_violations();
        prop_assert_eq!(violations.len(), 1, "chain {:?}", chain);
        let v = &violations[0];
        prop_assert_eq!(v.kind, ViolationKind::DeclaredOrder);
        prop_assert_eq!(v.held, hi);
        prop_assert_eq!(v.acquired, lo);
    }
}

/// Pool and Inflight share a rank (declared incomparable), so the
/// declared check is silent and ordering falls to the observed-edge
/// graph: whichever direction runtime history pins first, the reverse
/// nesting is detected. The cycle/observed check is order-insensitive —
/// it does not matter that the legal direction was seen first.
#[test]
fn incomparable_pair_reverse_nesting_is_detected() {
    let pool = TrackedMutex::new(LockClass::Pool, 0u32);
    let inflight = TrackedMutex::new(LockClass::Inflight, 0u32);

    // Pin pool → inflight as the observed direction.
    {
        let _p = pool.lock();
        let _f = inflight.lock();
    }
    let legal = lockdep::take_thread_violations();
    assert!(
        legal.is_empty(),
        "first observed direction flagged: {legal:?}"
    );

    // Repeating the pinned direction stays clean.
    {
        let _p = pool.lock();
        let _f = inflight.lock();
    }
    assert!(lockdep::take_thread_violations().is_empty());

    // The reverse nesting closes a 2-cycle in the class graph.
    {
        let _f = inflight.lock();
        let _p = pool.lock();
    }
    let violations = lockdep::take_thread_violations();
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert_eq!(v.kind, ViolationKind::ObservedOrder);
    assert_eq!(v.held, LockClass::Inflight);
    assert_eq!(v.acquired, LockClass::Pool);
}
