//! Regression tests for secret hygiene.
//!
//! A SEM half-key or a Shamir share reaching a log line through
//! `{:?}` breaks the paper's trust separation (§4/§5: the SEM must
//! never learn full keys, users must never learn other shares) far
//! more quietly than any protocol bug. These tests pin the invariant:
//! **the `Debug` output of a secret-bearing type contains a redaction
//! marker and no limb hex of any kind** — not even public points,
//! so a leak can never hide behind a "that field was public" argument.
//! None of these types implement `Display`, so `Debug` is the only
//! formatting surface.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_bigint::BigUint;
use sempair_core::bf_ibe::Pkg;
use sempair_core::dkg::DkgDealer;
use sempair_core::shamir::Polynomial;
use sempair_core::threshold::ThresholdPkg;
use sempair_core::{elgamal, gdh};
use sempair_pairing::CurveParams;

fn curve() -> (CurveParams, StdRng) {
    let mut rng = StdRng::seed_from_u64(0x5EC2E7);
    let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
    (curve, rng)
}

/// `BigUint` prints as `BigUint(0x…)`, `MontElem` as `MontElem([…])`,
/// and `Fp`/`G1Affine` derive through `MontElem` — so any limb leak
/// necessarily contains one of these markers (or a raw `0x`).
fn assert_redacted(what: &str, debug: String) {
    assert!(
        debug.contains("redacted"),
        "{what}: missing redaction marker: {debug}"
    );
    for leak in ["MontElem", "BigUint", "0x", "limbs"] {
        assert!(
            !debug.contains(leak),
            "{what}: leaks limb material ({leak}): {debug}"
        );
    }
}

#[test]
fn ibe_key_types_redact_debug() {
    let (curve, mut rng) = curve();
    let pkg = Pkg::setup(&mut rng, curve);
    let full = pkg.extract("alice@example.com");
    let (user, sem) = pkg.extract_split(&mut rng, "alice@example.com");
    assert_redacted("Pkg", format!("{pkg:?}"));
    assert_redacted("PrivateKey", format!("{full:?}"));
    assert_redacted("UserKey", format!("{user:?}"));
    assert_redacted("SemKey", format!("{sem:?}"));
    // The identity label itself must survive redaction — operators
    // need to know *whose* key a record is without seeing the key.
    assert!(format!("{user:?}").contains("alice@example.com"));
}

#[test]
fn threshold_and_shamir_types_redact_debug() {
    let (curve, mut rng) = curve();
    let q: BigUint = "0xffffffffffffffc5".parse().unwrap();
    let poly = Polynomial::sample(&mut rng, &BigUint::from(42u64), 3, &q);
    assert_redacted("Polynomial", format!("{poly:?}"));
    for share in poly.shares(5) {
        assert_redacted("Share", format!("{share:?}"));
    }
    let tpkg = ThresholdPkg::setup(&mut rng, curve, 2, 3).unwrap();
    assert_redacted("ThresholdPkg", format!("{tpkg:?}"));
    for ks in tpkg.keygen("vault") {
        assert_redacted("IdKeyShare", format!("{ks:?}"));
    }
}

#[test]
fn gdh_key_types_redact_debug() {
    let (curve, mut rng) = curve();
    let (sk, _pk) = gdh::keygen(&mut rng, &curve);
    assert_redacted("GdhSecretKey", format!("{sk:?}"));
    let (user, sem_key, _) = gdh::mediated_keygen(&mut rng, &curve, "signer");
    assert_redacted("GdhUser", format!("{user:?}"));
    assert_redacted("GdhSemKey", format!("{sem_key:?}"));
    let (_, shares) = gdh::ThresholdGdh::setup(&mut rng, curve.clone(), 2, 3).unwrap();
    for s in &shares {
        assert_redacted("GdhKeyShare", format!("{s:?}"));
    }
    let (_blinded, factor) = gdh::blind(&mut rng, &curve, b"msg");
    assert_redacted("BlindingFactor", format!("{factor:?}"));
}

#[test]
fn elgamal_and_dkg_types_redact_debug() {
    let (curve, mut rng) = curve();
    let (user, sem_key, _pk) = elgamal::keygen(&mut rng, &curve, "eg");
    assert_redacted("ElGamalUser", format!("{user:?}"));
    assert_redacted("ElGamalSemKey", format!("{sem_key:?}"));
    let (_sys, shares) = elgamal::ThresholdElGamal::setup(&mut rng, curve.clone(), 2, 3).unwrap();
    for s in &shares {
        assert_redacted("ElGamalKeyShare", format!("{s:?}"));
    }
    let dealer = DkgDealer::deal(&mut rng, &curve, 2, 1);
    assert_redacted("DkgDealer", format!("{dealer:?}"));
}

#[test]
fn constant_time_equality_still_behaves_like_equality() {
    // The manual `PartialEq` impls route through `ct_eq`; they must
    // keep the semantics tests rely on (assert_eq on roundtrips).
    let (curve, mut rng) = curve();
    let pkg = Pkg::setup(&mut rng, curve);
    let a1 = pkg.extract("a");
    let a2 = pkg.extract("a");
    let b = pkg.extract("b");
    assert_eq!(a1, a2);
    assert_ne!(a1, b);
    let (u1, s1) = pkg.extract_split(&mut rng, "a");
    assert_eq!(u1.clone(), u1);
    assert_eq!(s1.clone(), s1);
    assert_ne!(u1.collude(pkg.params(), &s1), b);
    assert_eq!(u1.collude(pkg.params(), &s1), a1);
}

#[test]
fn cloned_secret_drop_leaves_original_usable() {
    // Drop-erasure must act on the dropped copy only: a cloned key
    // dropped early cannot corrupt the surviving original.
    let (curve, mut rng) = curve();
    let pkg = Pkg::setup(&mut rng, curve);
    let (user, sem) = pkg.extract_split(&mut rng, "alice");
    {
        let _scratch = (user.clone(), sem.clone());
    }
    let full = pkg.extract("alice");
    assert_eq!(user.collude(pkg.params(), &sem), full);
}
