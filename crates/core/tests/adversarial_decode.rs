//! Adversarial decoding: every `core` wire decoder must reject (never
//! panic on, never over-allocate for) hostile bytes — random garbage,
//! truncations, and valid encodings whose embedded length/count fields
//! are inflated to lie about the payload.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_core::bf_ibe::{FullCiphertext, Pkg};
use sempair_core::gdh;
use sempair_core::mediated::Sem;
use sempair_core::threshold::{
    decryption_share_from_bytes, decryption_share_to_bytes, threshold_system_from_bytes,
    threshold_system_to_bytes, ThresholdPkg,
};
use sempair_core::wire;
use sempair_pairing::CurveParams;
use std::sync::OnceLock;

fn curve() -> &'static CurveParams {
    static CURVE: OnceLock<CurveParams> = OnceLock::new();
    CURVE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xDEC0DE);
        CurveParams::generate(&mut rng, 128, 64).unwrap()
    })
}

fn pkg() -> &'static Pkg {
    static PKG: OnceLock<Pkg> = OnceLock::new();
    PKG.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xDEC1);
        Pkg::setup(&mut rng, curve().clone())
    })
}

/// Corpus of valid encodings to mutate: one of each record kind.
fn corpus() -> &'static Vec<Vec<u8>> {
    static CORPUS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xDEC2);
        let c = curve();
        let (user, sem_key) = pkg().extract_split(&mut rng, "adv@example.com");
        let full = pkg().extract("adv@example.com");
        let mut sem = Sem::new();
        sem.install(sem_key.clone());
        let ct = pkg()
            .params()
            .encrypt_full(&mut rng, "adv@example.com", b"payload")
            .unwrap();
        let token = sem
            .decrypt_token(pkg().params(), "adv@example.com", &ct.u)
            .unwrap();
        let (gdh_user, gdh_sem, _) = gdh::mediated_keygen(&mut rng, c, "adv");
        let tpkg = ThresholdPkg::setup(&mut rng, c.clone(), 2, 3).unwrap();
        let shares = tpkg.keygen("adv");
        let dec_share = tpkg
            .system()
            .decryption_share_robust(&mut rng, &shares[0], &ct.u);
        vec![
            wire::user_key_to_bytes(c, &user),
            wire::sem_key_to_bytes(c, &sem_key),
            wire::private_key_to_bytes(c, &full),
            wire::key_share_to_bytes(c, &shares[1]),
            wire::token_to_bytes(c, &token),
            ct.to_bytes(pkg().params()),
            gdh_user.to_bytes(c),
            gdh_sem_key_bytes(&gdh_sem),
            decryption_share_to_bytes(c, &dec_share),
            threshold_system_to_bytes(tpkg.system()),
        ]
    })
}

fn gdh_sem_key_bytes(k: &gdh::GdhSemKey) -> Vec<u8> {
    k.to_bytes(curve())
}

/// Runs every decoder over `bytes`; each must return without panicking.
fn all_decoders_survive(bytes: &[u8]) {
    let c = curve();
    let _ = wire::user_key_from_bytes(c, bytes);
    let _ = wire::sem_key_from_bytes(c, bytes);
    let _ = wire::private_key_from_bytes(c, bytes);
    let _ = wire::key_share_from_bytes(c, bytes);
    let _ = wire::token_from_bytes(c, bytes);
    let _ = wire::signature_from_bytes(c, bytes);
    let _ = wire::half_signature_from_bytes(c, bytes);
    let _ = FullCiphertext::from_bytes(pkg().params(), bytes);
    let _ = gdh::GdhUser::from_bytes(c, bytes);
    let _ = gdh::GdhSemKey::from_bytes(c, bytes);
    let _ = decryption_share_from_bytes(c, bytes);
    let _ = threshold_system_from_bytes(c, bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        all_decoders_survive(&bytes);
    }

    #[test]
    fn truncations_of_valid_records_never_panic(
        which in 0usize..10,
        cut in 0usize..4096,
    ) {
        let corpus = corpus();
        let valid = &corpus[which % corpus.len()];
        let cut = cut % (valid.len() + 1);
        all_decoders_survive(&valid[..cut]);
    }

    #[test]
    fn inflated_length_prefixes_are_rejected_not_trusted(
        which in 0usize..10,
        at in 0usize..4096,
        lie in any::<u8>(),
    ) {
        // Stomp a byte anywhere (length prefixes included) with an
        // arbitrary value; decoders must neither panic nor allocate
        // from the lie (over-allocation would abort the test binary).
        let corpus = corpus();
        let mut bytes = corpus[which % corpus.len()].clone();
        let at = at % bytes.len();
        bytes[at] = lie;
        all_decoders_survive(&bytes);
    }

    #[test]
    fn adversarial_count_headers_never_allocate(
        t in any::<u32>(),
        n in any::<u32>(),
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // threshold_system_from_bytes reads (t, n) counts from the
        // header; a huge `n` with a short payload must be rejected
        // before any `n`-sized work happens.
        let mut bytes = t.to_be_bytes().to_vec();
        bytes.extend_from_slice(&n.to_be_bytes());
        bytes.extend_from_slice(&tail);
        let _ = threshold_system_from_bytes(curve(), &bytes);
    }

    #[test]
    fn maximal_id_length_prefix_is_bounds_checked(
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // id_len = 0xFFFF with a tiny body: the reader must fail the
        // take rather than slice out of bounds.
        let mut bytes = vec![0xff, 0xff];
        bytes.extend_from_slice(&tail);
        all_decoders_survive(&bytes);
    }
}
