//! Random [`BigUint`] generation helpers.

use crate::BigUint;
use rand::RngCore;

/// A uniformly random integer with exactly `bits` significant bits
/// (the top bit is forced to 1). Returns zero when `bits == 0`.
pub fn random_bits(rng: &mut impl RngCore, bits: usize) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let limbs = bits.div_ceil(64);
    let mut v = vec![0u64; limbs];
    for limb in v.iter_mut() {
        *limb = rng.next_u64();
    }
    // Mask away excess high bits, then force the top bit.
    let top_bits = bits - (limbs - 1) * 64;
    if top_bits < 64 {
        v[limbs - 1] &= (1u64 << top_bits) - 1;
    }
    v[limbs - 1] |= 1u64 << (top_bits - 1);
    BigUint::from_limbs(v)
}

/// A uniformly random integer in `[0, bound)` by rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below(rng: &mut impl RngCore, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bits();
    let limbs = bits.div_ceil(64);
    let top_bits = bits - (limbs - 1) * 64;
    loop {
        let mut v = vec![0u64; limbs];
        for limb in v.iter_mut() {
            *limb = rng.next_u64();
        }
        if top_bits < 64 {
            v[limbs - 1] &= (1u64 << top_bits) - 1;
        }
        let candidate = BigUint::from_limbs(v);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// A uniformly random integer in `[1, bound)`.
///
/// # Panics
///
/// Panics if `bound <= 1`.
pub fn random_nonzero_below(rng: &mut impl RngCore, bound: &BigUint) -> BigUint {
    assert!(bound > &BigUint::one(), "bound must exceed 1");
    loop {
        let candidate = random_below(rng, bound);
        if !candidate.is_zero() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_has_exact_bit_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [1usize, 2, 63, 64, 65, 128, 521] {
            for _ in 0..8 {
                let v = random_bits(&mut rng, bits);
                assert_eq!(v.bits(), bits, "bits={bits}");
            }
        }
        assert!(random_bits(&mut rng, 0).is_zero());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(8);
        let bound: BigUint = "123456789012345678901".parse().unwrap();
        for _ in 0..50 {
            assert!(random_below(&mut rng, &bound) < bound);
        }
        // Tiny bound exercises rejection heavily.
        let three = BigUint::from(3u64);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = random_below(&mut rng, &three).to_u64().unwrap();
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn random_nonzero_never_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        let two = BigUint::two();
        for _ in 0..20 {
            assert_eq!(random_nonzero_below(&mut rng, &two), BigUint::one());
        }
    }
}
