//! Best-effort secure erasure of secret limb material.
//!
//! Dropping a master scalar, a Shamir share or a DRBG key must not
//! leave its limbs readable in freed heap memory: a later allocation
//! (or a crash dump) would hand the mediated-security story's secrets
//! to whoever reads it. A plain `for l in limbs { *l = 0 }` is not
//! enough — the compiler is allowed to elide stores to memory it can
//! prove is never read again, which is exactly the situation right
//! before a free.
//!
//! The erasure here is the classic volatile-write-plus-compiler-fence
//! pattern (the same mechanism the `zeroize` crate uses, hand-rolled
//! because this workspace builds offline with no registry access):
//! `ptr::write_volatile` forces each store to happen, and the
//! [`compiler_fence`] stops the optimizer from reordering the frees
//! ahead of them. This is *best effort* — copies made by earlier moves,
//! register spills or swap are out of scope, as `DESIGN.md` §11
//! documents.
//!
//! This module is the only `unsafe` code in the workspace's own crates;
//! the crate root narrows `#![deny(unsafe_code)]` with a scoped allow
//! here so the boundary stays visible in review.

#![allow(unsafe_code)]

use std::sync::atomic::{compiler_fence, Ordering};

/// Overwrites every limb with zero through volatile stores.
pub fn zeroize_limbs(limbs: &mut [u64]) {
    for limb in limbs.iter_mut() {
        // SAFETY: `limb` is a unique, valid, aligned reference obtained
        // from `iter_mut`; writing a plain `u64` through it is always
        // defined. Volatile only forbids the compiler from eliding or
        // reordering the store.
        unsafe { std::ptr::write_volatile(limb, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

/// Overwrites every byte with zero through volatile stores.
pub fn zeroize_bytes(bytes: &mut [u8]) {
    for byte in bytes.iter_mut() {
        // SAFETY: as in `zeroize_limbs` — unique valid reference,
        // plain-old-data store.
        unsafe { std::ptr::write_volatile(byte, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limbs_are_cleared() {
        let mut v = vec![0xdead_beef_dead_beefu64; 7];
        zeroize_limbs(&mut v);
        assert!(v.iter().all(|&l| l == 0));
    }

    #[test]
    fn bytes_are_cleared() {
        let mut v = [0xa5u8; 33];
        zeroize_bytes(&mut v);
        assert!(v.iter().all(|&b| b == 0));
    }

    #[test]
    fn empty_slices_are_fine() {
        zeroize_limbs(&mut []);
        zeroize_bytes(&mut []);
    }
}
