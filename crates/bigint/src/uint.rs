//! Dynamically sized unsigned big integers.
//!
//! Limbs are `u64`, stored little-endian, always normalized (no trailing
//! zero limbs; zero is the empty limb vector).

use std::cmp::Ordering;
use std::error::Error as StdError;
use std::fmt;
use std::ops::{Add, AddAssign, BitAnd, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision unsigned integer.
///
/// ```
/// use sempair_bigint::BigUint;
///
/// let a = BigUint::from(10u64).pow(20);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1".to_string() + &"0".repeat(40));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: no trailing zeros.
    limbs: Vec<u64>,
}

/// Error returned when parsing a [`BigUint`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer literal"),
        }
    }
}

impl StdError for ParseBigUintError {}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// The value `2`.
    pub fn two() -> Self {
        BigUint { limbs: vec![2] }
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// A read-only view of the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// `true` iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for the value zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => 64 * (self.limbs.len() - 1) + (64 - hi.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian; bit 0 is the least significant).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Constant-time equality on the limb values.
    ///
    /// The derived `PartialEq` compares limb vectors with an
    /// early-exit memcmp, so the time it takes leaks the position of
    /// the first differing limb. For comparisons involving secret
    /// scalars (half-keys, Shamir shares, master keys) use this
    /// instead: it always scans `max(len_a, len_b)` limbs and folds
    /// the differences into one accumulator. The limb *count* (i.e.
    /// the rough bit length) still shows — a dynamically sized,
    /// normalized integer cannot hide it; see `DESIGN.md` §11.
    pub fn ct_eq(&self, other: &Self) -> bool {
        let n = self.limbs.len().max(other.limbs.len());
        let mut acc = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            acc |= a ^ b;
        }
        acc == 0
    }

    /// Securely erases the value (volatile-zeroes every limb, then
    /// leaves `self` as zero). Used by the `Drop` impls of the
    /// secret-bearing types upstream.
    pub fn zeroize(&mut self) {
        crate::zeroize::zeroize_limbs(&mut self.limbs);
        self.limbs.clear();
    }

    /// Sets bit `i` to `value`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let (limb, off) = (i / 64, i % 64);
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits; `None` for the value zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Parses a big-endian byte string (leading zero bytes allowed).
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Minimal big-endian byte encoding (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Big-endian byte encoding zero-padded on the left to exactly `len`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        assert!(
            raw.len() <= len,
            "value needs {} bytes, but {} were requested",
            raw.len(),
            len
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a (case-insensitive) hexadecimal string, with or without a
    /// `0x` prefix.
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        if s.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut out = BigUint::zero();
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let digit = c.to_digit(16).ok_or(ParseBigUintError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            out = (&out << 4) + BigUint::from(digit as u64);
        }
        Ok(out)
    }

    /// Lowercase hexadecimal encoding without prefix (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        let mut iter = self.limbs.iter().rev();
        if let Some(hi) = iter.next() {
            s.push_str(&format!("{hi:x}"));
        }
        for limb in iter {
            s.push_str(&format!("{limb:016x}"));
        }
        s
    }

    /// Parses a decimal string.
    pub fn from_dec(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut out = BigUint::zero();
        let ten = BigUint::from(10u64);
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let digit = c.to_digit(10).ok_or(ParseBigUintError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            out = &out * &ten + BigUint::from(digit as u64);
        }
        Ok(out)
    }

    /// Checked subtraction; `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 || b2) as u64;
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(limbs))
    }

    /// Euclidean division: returns `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Division by a single limb; returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | limb as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (BigUint::from_limbs(quotient), rem as u64)
    }

    /// Knuth Algorithm D (TAOCP 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor << shift; // normalized divisor, top bit of top limb set
        let mut u = (self << shift).limbs;
        let n = v.limbs.len();
        let m = u.len() - n;
        u.push(0); // u has m + n + 1 limbs

        let v_hi = v.limbs[n - 1];
        let v_next = v.limbs[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate qhat from the top two limbs of the current window
            // divided by the top limb of v.
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = top / v_hi as u128;
            let mut rhat = top % v_hi as u128;
            // Correct qhat: it can be at most 2 too large.
            while qhat >> 64 != 0 || qhat * v_next as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_hi as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            let mut qhat = qhat as u64;

            // u[j..j+n+1] -= qhat * v
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                carry += qhat as u128 * v.limbs[i] as u128;
                let sub = (carry & u64::MAX as u128) as u64;
                carry >>= 64;
                let diff = u[j + i] as i128 - sub as i128 + borrow;
                u[j + i] = diff as u64;
                borrow = diff >> 64; // arithmetic shift: 0 or -1
            }
            let diff = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = diff as u64;

            // Add back if we subtracted one time too many (rare).
            if diff < 0 {
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let sum = u[j + i] as u128 + v.limbs[i] as u128 + carry;
                    u[j + i] = sum as u64;
                    carry = sum >> 64;
                }
                u[j + n] = (u[j + n] as u128).wrapping_add(carry) as u64;
            }
            q[j] = qhat;
        }

        u.truncate(n);
        let rem = BigUint::from_limbs(u) >> shift;
        (BigUint::from_limbs(q), rem)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let za = a.trailing_zeros().unwrap();
        let zb = b.trailing_zeros().unwrap();
        let common = za.min(zb);
        a = &a >> za;
        b = &b >> zb;
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).unwrap();
            if b.is_zero() {
                return &a << common;
            }
            b = &b >> b.trailing_zeros().unwrap();
        }
    }

    /// Integer exponentiation.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Integer square root (floor).
    pub fn isqrt(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        // Newton's method with a good initial guess.
        let mut x = BigUint::one() << self.bits().div_ceil(2);
        loop {
            // y = (x + self / x) / 2
            let y = (&x + &(self.div_rem(&x).0)) >> 1;
            if y >= x {
                return x;
            }
            x = y;
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    /// Parses decimal by default, hexadecimal with a `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.starts_with("0x") || s.starts_with("0X") {
            BigUint::from_hex(s)
        } else {
            BigUint::from_dec(s)
        }
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                Ordering::Equal
            }
            other => other,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// --- arithmetic operators (reference-based canonical implementations) ---

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = long.limbs.clone();
        let mut carry = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let rhs_limb = short.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(rhs_limb);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 || c2) as u64;
            if carry == 0 && i >= short.limbs.len() {
                break;
            }
        }
        if carry != 0 {
            limbs.push(carry);
        }
        BigUint { limbs }
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    /// # Panics
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

/// Limb count above which multiplication switches to Karatsuba.
///
/// 16 limbs = 1024 bits: below that the O(n²) schoolbook loop wins on
/// constants (measured in the E10 ablation bench `e10/mul_karatsuba`).
const KARATSUBA_THRESHOLD: usize = 16;

/// Schoolbook product of two limb slices.
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

impl BigUint {
    /// Splits into `(low m limbs, rest)` as values.
    fn split_at_limb(&self, m: usize) -> (BigUint, BigUint) {
        if m >= self.limbs.len() {
            return (self.clone(), BigUint::zero());
        }
        (
            BigUint::from_limbs(self.limbs[..m].to_vec()),
            BigUint::from_limbs(self.limbs[m..].to_vec()),
        )
    }

    /// Karatsuba recursion: `(a1·B^m + a0)(b1·B^m + b0)` via three
    /// half-size products.
    fn mul_karatsuba(&self, rhs: &BigUint) -> BigUint {
        let m = self.limbs.len().max(rhs.limbs.len()) / 2;
        let (a0, a1) = self.split_at_limb(m);
        let (b0, b1) = rhs.split_at_limb(m);
        let z0 = &a0 * &b0;
        let z2 = &a1 * &b1;
        let z1 = &(&(&a0 + &a1) * &(&b0 + &b1)) - &(&z0 + &z2);
        &(&(&z2 << (128 * m)) + &(&z1 << (64 * m))) + &z0
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        if self.limbs.len().min(rhs.limbs.len()) >= KARATSUBA_THRESHOLD {
            return self.mul_karatsuba(rhs);
        }
        BigUint::from_limbs(mul_schoolbook(&self.limbs, &rhs.limbs))
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut limbs: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let len = limbs.len();
            for i in 0..len {
                limbs[i] >>= bit_shift;
                if i + 1 < len {
                    limbs[i] |= limbs[i + 1] << (64 - bit_shift);
                }
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl BitAnd<&BigUint> for &BigUint {
    type Output = BigUint;
    fn bitand(self, rhs: &BigUint) -> BigUint {
        let limbs = self
            .limbs
            .iter()
            .zip(rhs.limbs.iter())
            .map(|(a, b)| a & b)
            .collect();
        BigUint::from_limbs(limbs)
    }
}

// Owned-operand conveniences, implemented in terms of the reference ops.
macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Rem, rem);

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        &self << shift
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        &self >> shift
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.last().unwrap().to_string();
        for chunk in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{chunk:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex())
    }
}

impl fmt::UpperHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex().to_uppercase())
    }
}

// --- serde: hex-string representation ---

impl serde::Serialize for BigUint {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&format!("0x{}", self.to_hex()))
    }
}

impl<'de> serde::Deserialize<'de> for BigUint {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = <&str as serde::Deserialize>::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert_eq!(BigUint::default(), BigUint::zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn from_limbs_normalizes() {
        assert_eq!(BigUint::from_limbs(vec![5, 0, 0]), BigUint::from(5u64));
        assert_eq!(BigUint::from_limbs(vec![0, 0]), BigUint::zero());
    }

    #[test]
    fn ct_eq_matches_derived_eq() {
        let cases = [
            ("0", "0"),
            ("0", "1"),
            ("1234567890123456789", "1234567890123456789"),
            (
                "0xdeadbeefcafebabe0123456789abcdef",
                "0xdeadbeefcafebabe0123456789abcdee",
            ),
            ("0xffffffffffffffff", "0x1ffffffffffffffff"),
        ];
        for (a, b) in cases {
            let (a, b) = (big(a), big(b));
            assert_eq!(a.ct_eq(&b), a == b, "{a} vs {b}");
            assert!(a.ct_eq(&a));
        }
    }

    #[test]
    fn zeroize_resets_to_zero() {
        let mut a = big("0xdeadbeefcafebabe0123456789abcdef");
        a.zeroize();
        assert!(a.is_zero());
        assert_eq!(a, BigUint::zero());
    }

    #[test]
    fn add_with_carry_propagation() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let sum = &a + &b;
        assert_eq!(sum, BigUint::from(1u128 << 64));
        assert_eq!(sum.limbs(), &[0, 1]);
    }

    #[test]
    fn sub_with_borrow_propagation() {
        let a = BigUint::from(1u128 << 64);
        let b = BigUint::one();
        assert_eq!(&a - &b, BigUint::from(u64::MAX));
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::two();
    }

    #[test]
    fn karatsuba_matches_schoolbook_across_threshold() {
        // Deterministic pseudo-random limbs straddling the threshold.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for limbs_a in [1usize, 15, 16, 17, 33, 64] {
            for limbs_b in [1usize, 16, 31, 64] {
                let a = BigUint::from_limbs((0..limbs_a).map(|_| next()).collect());
                let b = BigUint::from_limbs((0..limbs_b).map(|_| next()).collect());
                let expect = BigUint::from_limbs(mul_schoolbook(a.limbs(), b.limbs()));
                assert_eq!(&a * &b, expect, "sizes {limbs_a}x{limbs_b}");
            }
        }
    }

    #[test]
    fn mul_known_values() {
        let a = big("123456789012345678901234567890");
        let b = big("987654321098765432109876543210");
        let expected = big("121932631137021795226185032733622923332237463801111263526900");
        assert_eq!(&a * &b, expected);
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = big("123456789012345678901234567890");
        let (q, r) = a.div_rem_u64(97);
        assert_eq!(&q * &BigUint::from(97u64) + BigUint::from(r), a);
        assert!(r < 97);
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = big("340282366920938463463374607431768211455123456789987654321");
        let b = big("18446744073709551629"); // > 2^64
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_triggers_qhat_correction() {
        // Values engineered so the top limbs force qhat corrections.
        let a = BigUint::from_limbs(vec![0, 0, 0, u64::MAX, u64::MAX]);
        let b = BigUint::from_limbs(vec![u64::MAX, u64::MAX, 1]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_exact() {
        let b = big("98765432109876543210987654321");
        let q_expected = big("31415926535897932384626433832795028841");
        let a = &b * &q_expected;
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, q_expected);
        assert!(r.is_zero());
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big("0xdeadbeefcafebabe1234567890abcdef");
        assert_eq!(&(&a << 77) >> 77, a);
        assert_eq!(&a >> 200, BigUint::zero());
        assert_eq!(&a << 0, a);
    }

    #[test]
    fn hex_roundtrip_and_prefix() {
        let a = big("0xDEADbeef00");
        assert_eq!(a.to_hex(), "deadbeef00");
        assert_eq!(BigUint::from_hex("deadbeef00").unwrap(), a);
        assert_eq!(format!("{a:x}"), "deadbeef00");
        assert_eq!(format!("{a:#x}"), "0xdeadbeef00");
    }

    #[test]
    fn decimal_display_roundtrip() {
        let cases = [
            "0",
            "1",
            "10000000000000000000",
            "123456789012345678901234567890123",
        ];
        for c in cases {
            assert_eq!(big(c).to_string(), c);
        }
    }

    #[test]
    fn byte_roundtrip() {
        let a = big("0x0102030405060708090a0b0c0d0e0f1011");
        let bytes = a.to_be_bytes();
        assert_eq!(bytes.len(), 17);
        assert_eq!(BigUint::from_be_bytes(&bytes), a);
        assert_eq!(BigUint::from_be_bytes(&[0, 0, 1]), BigUint::one());
        let padded = a.to_be_bytes_padded(20);
        assert_eq!(padded.len(), 20);
        assert_eq!(BigUint::from_be_bytes(&padded), a);
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn padded_bytes_too_small_panics() {
        BigUint::from(256u64).to_be_bytes_padded(1);
    }

    #[test]
    fn parse_errors() {
        assert!(BigUint::from_hex("").is_err());
        assert!(BigUint::from_dec("12x3").is_err());
        assert!("".parse::<BigUint>().is_err());
    }

    #[test]
    fn bit_access() {
        let mut a = BigUint::zero();
        a.set_bit(100, true);
        assert!(a.bit(100));
        assert!(!a.bit(99));
        assert_eq!(a.bits(), 101);
        a.set_bit(100, false);
        assert!(a.is_zero());
    }

    #[test]
    fn gcd_known_values() {
        assert_eq!(big("48").gcd(&big("180")), big("12"));
        assert_eq!(BigUint::zero().gcd(&big("7")), big("7"));
        assert_eq!(big("7").gcd(&BigUint::zero()), big("7"));
        let a = big("123456789012345678901234567890");
        assert_eq!(a.gcd(&a), a);
    }

    #[test]
    fn pow_and_isqrt() {
        let a = big("99999999999999999999");
        let sq = a.pow(2);
        assert_eq!(sq.isqrt(), a);
        assert_eq!((&sq + &BigUint::one()).isqrt(), a);
        assert_eq!((&sq - &BigUint::one()).isqrt(), &a - &BigUint::one());
        assert_eq!(BigUint::two().pow(100), BigUint::one() << 100);
    }

    #[test]
    fn ordering() {
        assert!(big("100") > big("99"));
        assert!(big("0xffffffffffffffff") < big("0x10000000000000000"));
        assert_eq!(big("42").cmp(&big("42")), Ordering::Equal);
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(big("0x80000000000000000").trailing_zeros(), Some(67));
        assert_eq!(BigUint::one().trailing_zeros(), Some(0));
    }

    #[test]
    fn serde_roundtrip() {
        let a = big("123456789012345678901234567890");
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, format!("\"0x{}\"", a.to_hex()));
        let back: BigUint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
