//! Minimal signed big integers.
//!
//! [`BigInt`] exists to support the extended Euclidean algorithm and a
//! few places (Shamir interpolation, NIZK responses) where intermediate
//! values go negative before a final modular reduction. It deliberately
//! implements only the operations those call-sites need.

use crate::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`].
///
/// Zero is always represented with [`Sign::Plus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

/// A signed arbitrary-precision integer (sign-and-magnitude).
///
/// ```
/// use sempair_bigint::{BigInt, BigUint};
///
/// let a = BigInt::from(5i64) - BigInt::from(9i64);
/// assert_eq!(a.to_string(), "-4");
/// let m = BigUint::from(7u64);
/// assert_eq!(a.rem_euclid(&m), BigUint::from(3u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::one(),
        }
    }

    /// Builds a signed value from a sign and magnitude.
    ///
    /// A zero magnitude is normalized to [`Sign::Plus`].
    pub fn from_sign_magnitude(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign (zero reports [`Sign::Plus`]).
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|`.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// The least non-negative residue of `self` modulo `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem_euclid(&self, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modulus must be non-zero");
        let r = &self.mag % modulus;
        match self.sign {
            Sign::Plus => r,
            Sign::Minus => {
                if r.is_zero() {
                    r
                } else {
                    modulus - &r
                }
            }
        }
    }
}

impl From<&BigUint> for BigInt {
    fn from(v: &BigUint) -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: v.clone(),
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        BigInt {
            sign: Sign::Plus,
            mag,
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v < 0 {
            BigInt {
                sign: Sign::Minus,
                mag: BigUint::from(v.unsigned_abs()),
            }
        } else {
            BigInt {
                sign: Sign::Plus,
                mag: BigUint::from(v as u64),
            }
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        if self.is_zero() {
            self
        } else {
            let sign = match self.sign {
                Sign::Plus => Sign::Minus,
                Sign::Minus => Sign::Plus,
            };
            BigInt {
                sign,
                mag: self.mag,
            }
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.sign == rhs.sign {
            return BigInt::from_sign_magnitude(self.sign, &self.mag + &rhs.mag);
        }
        match self.mag.cmp(&rhs.mag) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_magnitude(self.sign, &self.mag - &rhs.mag),
            Ordering::Less => BigInt::from_sign_magnitude(rhs.sign, &rhs.mag - &self.mag),
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::from_sign_magnitude(sign, &self.mag * &rhs.mag)
    }
}

macro_rules! forward_int_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_int_binop!(Add, add);
forward_int_binop!(Sub, sub);
forward_int_binop!(Mul, mul);

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn sign_normalization() {
        let z = BigInt::from_sign_magnitude(Sign::Minus, BigUint::zero());
        assert_eq!(z.sign(), Sign::Plus);
        assert!(z.is_zero());
        assert!(!z.is_negative());
    }

    #[test]
    fn add_sub_mixed_signs() {
        assert_eq!(int(5) + int(-9), int(-4));
        assert_eq!(int(-5) + int(9), int(4));
        assert_eq!(int(-5) + int(-9), int(-14));
        assert_eq!(int(5) - int(9), int(-4));
        assert_eq!(int(-5) - int(-5), BigInt::zero());
    }

    #[test]
    fn mul_signs() {
        assert_eq!(int(-3) * int(4), int(-12));
        assert_eq!(int(-3) * int(-4), int(12));
        assert_eq!(int(0) * int(-4), BigInt::zero());
        assert!(!(int(0) * int(-4)).is_negative());
    }

    #[test]
    fn rem_euclid_negative() {
        let m = BigUint::from(7u64);
        assert_eq!(int(-1).rem_euclid(&m), BigUint::from(6u64));
        assert_eq!(int(-14).rem_euclid(&m), BigUint::zero());
        assert_eq!(int(15).rem_euclid(&m), BigUint::one());
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-10) < int(-9));
        assert!(int(-1) < int(0));
        assert!(int(0) < int(1));
        assert!(int(3) > int(-100));
    }

    #[test]
    fn display() {
        assert_eq!(int(-42).to_string(), "-42");
        assert_eq!(int(42).to_string(), "42");
        assert_eq!(BigInt::zero().to_string(), "0");
    }

    #[test]
    fn neg_involution() {
        let a = int(-7);
        assert_eq!(-(-a.clone()), a);
        assert_eq!(-BigInt::zero(), BigInt::zero());
    }
}
