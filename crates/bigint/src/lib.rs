//! # sempair-bigint
//!
//! Arbitrary-precision unsigned/signed integer arithmetic and modular
//! number theory, written from scratch as the substrate for the
//! `sempair` reproduction of Libert & Quisquater (PODC 2003).
//!
//! The crate provides everything the pairing tower and the RSA baseline
//! need:
//!
//! * [`BigUint`] — dynamically sized unsigned integers (little-endian
//!   `u64` limbs) with schoolbook multiplication and Knuth
//!   algorithm-D division.
//! * [`BigInt`] — a thin signed wrapper used by the extended Euclidean
//!   algorithm.
//! * [`Montgomery`] — a reusable Montgomery-reduction context for fast
//!   modular multiplication/exponentiation with a runtime odd modulus.
//! * [`modular`] — plain modular arithmetic, inverses, Jacobi symbols
//!   and modular square roots.
//! * [`prime`] — Miller–Rabin testing plus random, strong and safe prime
//!   generation.
//!
//! ## Example
//!
//! ```
//! use sempair_bigint::{BigUint, modular};
//!
//! let p = BigUint::from_hex("ffffffffffffffc5").unwrap(); // 2^64 - 59, prime
//! let a = BigUint::from(1234567890123456789u64);
//! let inv = modular::mod_inv(&a, &p).unwrap();
//! assert_eq!(modular::mod_mul(&a, &inv, &p), BigUint::one());
//! ```
//!
//! ## Security note
//!
//! This implementation is *not* constant time. It reproduces a 2003
//! research system; see the workspace `DESIGN.md`.

// `deny` rather than `forbid`: the `zeroize` module scopes a single
// allow for its volatile-write erasure (see its module docs); every
// other module stays unsafe-free and cannot opt out silently because
// the workspace auditor (`cargo run -p sempair-auditor`) and clippy
// gate new allows.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod int;
mod mont;
mod uint;

pub mod modular;
pub mod prime;
pub mod rng;
pub mod zeroize;

pub use int::{BigInt, Sign};
pub use mont::{MontElem, Montgomery};
pub use uint::{BigUint, ParseBigUintError};

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by fallible `sempair-bigint` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A modulus was zero where a positive modulus was required.
    ZeroModulus,
    /// Montgomery arithmetic requires an odd modulus greater than one.
    EvenModulus,
    /// The element is not invertible modulo the given modulus.
    NotInvertible,
    /// No square root exists (the element is a quadratic non-residue).
    NonResidue,
    /// Prime generation gave up after the configured number of attempts.
    PrimeSearchExhausted,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ZeroModulus => write!(f, "modulus must be non-zero"),
            Error::EvenModulus => write!(f, "montgomery context requires an odd modulus > 1"),
            Error::NotInvertible => write!(f, "element is not invertible modulo the modulus"),
            Error::NonResidue => write!(f, "element is a quadratic non-residue"),
            Error::PrimeSearchExhausted => write!(f, "prime search exhausted its attempt budget"),
        }
    }
}

impl StdError for Error {}
