//! Montgomery-form modular arithmetic for a fixed odd modulus.
//!
//! A [`Montgomery`] context precomputes everything needed for CIOS
//! (coarsely integrated operand scanning) Montgomery multiplication.
//! Elements live in Montgomery form as fixed-width [`MontElem`] values,
//! so chains of field operations avoid per-operation divisions entirely.
//! This is the engine under both the pairing field tower and RSA
//! exponentiation.

use crate::{modular, BigUint, Error};

/// Precomputed context for Montgomery arithmetic modulo an odd `n > 1`.
///
/// ```
/// use sempair_bigint::{BigUint, Montgomery};
///
/// let p: BigUint = "1000000007".parse().unwrap();
/// let ctx = Montgomery::new(&p).unwrap();
/// let a = ctx.to_mont(&BigUint::from(1234u64));
/// let b = ctx.to_mont(&BigUint::from(5678u64));
/// let prod = ctx.from_mont(&ctx.mul(&a, &b));
/// assert_eq!(prod, BigUint::from(1234u64 * 5678));
/// ```
#[derive(Clone, Debug)]
pub struct Montgomery {
    n: BigUint,
    limbs: Vec<u64>, // modulus limbs, length k
    k: usize,
    n0_inv: u64,  // -n^{-1} mod 2^64
    r1: Vec<u64>, // R mod n (Montgomery form of 1)
    r2: Vec<u64>, // R^2 mod n
}

/// An element in Montgomery form, tied to the [`Montgomery`] context that
/// produced it.
///
/// Mixing elements from different contexts is a logic error: the result
/// is an arbitrary (but memory-safe) wrong value, caught by a
/// `debug_assert!` in debug builds.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MontElem {
    limbs: Vec<u64>, // length k, value < n
}

impl std::fmt::Debug for MontElem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MontElem({:x?})", self.limbs)
    }
}

impl MontElem {
    /// `true` iff this is the additive identity (zero in any form).
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Constant-time equality between two elements of the same context.
    ///
    /// The derived `PartialEq` short-circuits at the first differing
    /// limb; this variant folds all limb differences into a single
    /// accumulator so the comparison time is independent of where the
    /// values diverge. Elements of the same context always have the
    /// same limb count, so no length is leaked.
    pub fn ct_eq(&self, other: &Self) -> bool {
        let n = self.limbs.len().max(other.limbs.len());
        let mut acc = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            acc |= a ^ b;
        }
        acc == 0
    }

    /// Securely erases the element in place (volatile-zeroes every
    /// limb). The limb count is preserved, so the value stays a valid
    /// zero element of its original context.
    pub fn zeroize(&mut self) {
        crate::zeroize::zeroize_limbs(&mut self.limbs);
    }

    /// The raw Montgomery-form limbs (little-endian, length `k`).
    ///
    /// A context with modulus limb count `k` uses `R = 2^{64k}`, which
    /// is exactly the convention of fixed-width backends instantiated
    /// at width `k` — so these limbs can be moved between the two
    /// representations verbatim, with no Montgomery conversion.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Rebuilds an element from raw Montgomery-form limbs.
    ///
    /// The caller asserts that `limbs` is a value `< n` in the
    /// Montgomery form of some context with matching limb count; this
    /// is the inverse of [`MontElem::limbs`] and performs no
    /// conversion or validation beyond what debug assertions in later
    /// arithmetic catch.
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        MontElem { limbs }
    }
}

/// Inverse of an odd `x` modulo 2^64 by Newton iteration.
fn inv_mod_u64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 3 bits since x*x ≡ 1 (mod 8) for odd x
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

/// Compares two equal-length little-endian limb slices.
fn limbs_lt(a: &[u64], b: &[u64]) -> bool {
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x < y;
        }
    }
    false
}

/// `a -= b` over equal-length limb slices; returns the final borrow.
fn limbs_sub_assign(a: &mut [u64], b: &[u64]) -> u64 {
    let mut borrow = 0u64;
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        let (d1, b1) = x.overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *x = d2;
        borrow = (b1 || b2) as u64;
    }
    borrow
}

/// `a += b` over equal-length limb slices; returns the final carry.
fn limbs_add_assign(a: &mut [u64], b: &[u64]) -> u64 {
    let mut carry = 0u64;
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        *x = s2;
        carry = (c1 || c2) as u64;
    }
    carry
}

impl Montgomery {
    /// Creates a context for the odd modulus `n > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EvenModulus`] if `n` is even or `n <= 1`.
    pub fn new(n: &BigUint) -> Result<Self, Error> {
        if n.is_even() || n.is_one() || n.is_zero() {
            return Err(Error::EvenModulus);
        }
        let limbs = n.limbs().to_vec();
        let k = limbs.len();
        let n0_inv = inv_mod_u64(limbs[0]).wrapping_neg();
        let r = &(BigUint::one() << (64 * k)) % n;
        let r2 = &(&r * &r) % n;
        let pad = |v: &BigUint| {
            let mut l = v.limbs().to_vec();
            l.resize(k, 0);
            l
        };
        Ok(Montgomery {
            n: n.clone(),
            r1: pad(&r),
            r2: pad(&r2),
            limbs,
            k,
            n0_inv,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Number of 64-bit limbs in the modulus.
    pub fn limb_count(&self) -> usize {
        self.k
    }

    /// Converts a canonical integer (reduced mod `n` first) into
    /// Montgomery form.
    pub fn to_mont(&self, a: &BigUint) -> MontElem {
        let a = if a < &self.n { a.clone() } else { a % &self.n };
        let mut limbs = a.limbs().to_vec();
        limbs.resize(self.k, 0);
        let mut out = vec![0u64; self.k];
        self.mont_mul(&limbs, &self.r2, &mut out);
        MontElem { limbs: out }
    }

    /// Converts a Montgomery-form element back to a canonical integer.
    pub fn from_mont(&self, a: &MontElem) -> BigUint {
        debug_assert_eq!(a.limbs.len(), self.k);
        let one = {
            let mut v = vec![0u64; self.k];
            v[0] = 1;
            v
        };
        let mut out = vec![0u64; self.k];
        self.mont_mul(&a.limbs, &one, &mut out);
        BigUint::from_limbs(out)
    }

    /// The Montgomery form of `0`.
    pub fn zero(&self) -> MontElem {
        MontElem {
            limbs: vec![0u64; self.k],
        }
    }

    /// The Montgomery form of `1`.
    pub fn one(&self) -> MontElem {
        MontElem {
            limbs: self.r1.clone(),
        }
    }

    /// CIOS Montgomery multiplication: `out = a * b * R^{-1} mod n`.
    fn mont_mul(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        let k = self.k;
        debug_assert!(a.len() == k && b.len() == k && out.len() == k);
        // t has k + 2 limbs.
        let mut t = vec![0u64; k + 2];
        #[allow(clippy::needless_range_loop)] // index drives both a[i] and the running window of t
        for i in 0..k {
            // t += a[i] * b
            let ai = a[i] as u128;
            let mut carry = 0u128;
            for j in 0..k {
                let cur = t[j] as u128 + ai * b[j] as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv) as u128;
            let cur = t[0] as u128 + m * self.limbs[0] as u128;
            debug_assert_eq!(cur as u64, 0);
            let mut carry = cur >> 64;
            for j in 1..k {
                let cur = t[j] as u128 + m * self.limbs[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1].wrapping_add((cur >> 64) as u64);
            t[k + 1] = 0;
        }
        // Conditional final subtraction.
        if t[k] != 0 || !limbs_lt(&t[..k], &self.limbs) {
            limbs_sub_assign(&mut t[..k], &self.limbs);
        }
        out.copy_from_slice(&t[..k]);
    }

    /// `a * b` in Montgomery form.
    pub fn mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        let mut out = vec![0u64; self.k];
        self.mont_mul(&a.limbs, &b.limbs, &mut out);
        MontElem { limbs: out }
    }

    /// `a²` in Montgomery form.
    pub fn sqr(&self, a: &MontElem) -> MontElem {
        self.mul(a, a)
    }

    /// `a + b mod n`.
    pub fn add(&self, a: &MontElem, b: &MontElem) -> MontElem {
        let mut out = a.limbs.clone();
        let carry = limbs_add_assign(&mut out, &b.limbs);
        if carry != 0 || !limbs_lt(&out, &self.limbs) {
            limbs_sub_assign(&mut out, &self.limbs);
        }
        MontElem { limbs: out }
    }

    /// `a - b mod n`.
    pub fn sub(&self, a: &MontElem, b: &MontElem) -> MontElem {
        let mut out = a.limbs.clone();
        let borrow = limbs_sub_assign(&mut out, &b.limbs);
        if borrow != 0 {
            limbs_add_assign(&mut out, &self.limbs);
        }
        MontElem { limbs: out }
    }

    /// `-a mod n`.
    pub fn neg(&self, a: &MontElem) -> MontElem {
        if a.is_zero() {
            a.clone()
        } else {
            let mut out = self.limbs.clone();
            limbs_sub_assign(&mut out, &a.limbs);
            MontElem { limbs: out }
        }
    }

    /// Doubles `a` modulo `n`.
    pub fn double(&self, a: &MontElem) -> MontElem {
        self.add(a, a)
    }

    /// `base^exp mod n` with a fixed 4-bit window.
    pub fn pow(&self, base: &MontElem, exp: &BigUint) -> MontElem {
        if exp.is_zero() {
            return self.one();
        }
        // Precompute base^0..base^15.
        let mut table = Vec::with_capacity(16);
        table.push(self.one());
        for i in 1..16 {
            table.push(self.mul(&table[i - 1], base));
        }
        let bits = exp.bits();
        let top_window = bits.div_ceil(4) * 4;
        let mut acc: Option<MontElem> = None;
        let mut w = top_window;
        while w >= 4 {
            w -= 4;
            let mut digit = 0usize;
            for b in 0..4 {
                if exp.bit(w + b) {
                    digit |= 1 << b;
                }
            }
            acc = Some(match acc {
                None => table[digit].clone(),
                Some(a) => {
                    let mut a = self.sqr(&a);
                    a = self.sqr(&a);
                    a = self.sqr(&a);
                    a = self.sqr(&a);
                    if digit != 0 {
                        a = self.mul(&a, &table[digit]);
                    }
                    a
                }
            });
        }
        acc.unwrap_or_else(|| self.one())
    }

    /// Multiplicative inverse in Montgomery form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInvertible`] if `gcd(a, n) != 1`.
    pub fn inv(&self, a: &MontElem) -> Result<MontElem, Error> {
        let canonical = self.from_mont(a);
        let inv = modular::mod_inv(&canonical, &self.n)?;
        Ok(self.to_mont(&inv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    fn ctx(s: &str) -> Montgomery {
        Montgomery::new(&big(s)).unwrap()
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(Montgomery::new(&BigUint::zero()).is_err());
        assert!(Montgomery::new(&BigUint::one()).is_err());
        assert!(Montgomery::new(&big("100")).is_err());
        assert!(Montgomery::new(&big("3")).is_ok());
    }

    #[test]
    fn inv_mod_u64_samples() {
        for x in [1u64, 3, 5, 0xffffffffffffffc5, 0x123456789abcdef1] {
            assert_eq!(x.wrapping_mul(inv_mod_u64(x)), 1);
        }
    }

    #[test]
    fn to_from_roundtrip() {
        let c = ctx("0xffffffffffffffc5");
        for v in ["0", "1", "2", "0xfffffffffffffe00", "1234567890"] {
            let v = big(v);
            assert_eq!(c.from_mont(&c.to_mont(&v)), v);
        }
        // Values above the modulus are reduced.
        let c97 = ctx("97");
        assert_eq!(
            c97.from_mont(&c97.to_mont(&big("1000"))),
            big("1000") % big("97")
        );
    }

    #[test]
    fn mul_matches_plain() {
        let m = big("0xffffffffffffffffffffffffffffff61"); // 128-bit odd
        let c = Montgomery::new(&m).unwrap();
        let a = big("0xdeadbeefcafebabe0123456789abcdef");
        let b = big("0xfeedfacedeadbeefcafebabe01234567");
        let got = c.from_mont(&c.mul(&c.to_mont(&a), &c.to_mont(&b)));
        assert_eq!(got, modular::mod_mul(&a, &b, &m));
    }

    #[test]
    fn add_sub_neg() {
        let c = ctx("97");
        let a = c.to_mont(&big("96"));
        let b = c.to_mont(&big("5"));
        assert_eq!(c.from_mont(&c.add(&a, &b)), big("4"));
        assert_eq!(c.from_mont(&c.sub(&b, &a)), big("6"));
        assert_eq!(c.from_mont(&c.neg(&b)), big("92"));
        assert!(c.neg(&c.zero()).is_zero());
        assert_eq!(c.from_mont(&c.double(&a)), big("95"));
    }

    #[test]
    fn pow_matches_mod_pow() {
        let m = big("0xffffffffffffffffffffffffffffff61");
        let c = Montgomery::new(&m).unwrap();
        let base = big("0x123456789abcdef0123456789abcdef");
        for exp in ["0", "1", "2", "65537", "0xdeadbeefcafebabe0123456789abcdef"] {
            let exp = big(exp);
            let got = c.from_mont(&c.pow(&c.to_mont(&base), &exp));
            // Independent check via simple square-and-multiply.
            let mut expect = BigUint::one();
            for i in (0..exp.bits()).rev() {
                expect = modular::mod_mul(&expect, &expect, &m);
                if exp.bit(i) {
                    expect = modular::mod_mul(&expect, &base, &m);
                }
            }
            assert_eq!(got, expect, "exp={exp}");
        }
    }

    #[test]
    fn pow_fermat() {
        let p = big("0xffffffffffffffffffffffffffffff61");
        // Is it prime? This is 2^128 - 159, a known prime.
        let c = Montgomery::new(&p).unwrap();
        let a = c.to_mont(&big("123456789"));
        let e = &p - &BigUint::one();
        assert_eq!(c.from_mont(&c.pow(&a, &e)), BigUint::one());
    }

    #[test]
    fn inverse() {
        let c = ctx("1000000007");
        let a = c.to_mont(&big("123456"));
        let inv = c.inv(&a).unwrap();
        assert_eq!(c.from_mont(&c.mul(&a, &inv)), BigUint::one());
        let nine = Montgomery::new(&big("9")).unwrap();
        assert!(nine.inv(&nine.to_mont(&big("6"))).is_err());
    }

    #[test]
    fn one_and_zero() {
        let c = ctx("97");
        assert_eq!(c.from_mont(&c.one()), BigUint::one());
        assert_eq!(c.from_mont(&c.zero()), BigUint::zero());
        assert!(c.zero().is_zero());
        assert!(!c.one().is_zero());
        let a = c.to_mont(&big("42"));
        assert_eq!(c.mul(&a, &c.one()), a);
    }

    #[test]
    fn ct_eq_matches_derived_eq() {
        let c = ctx("0xffffffffffffffc5");
        let a = c.to_mont(&big("1234567890"));
        let b = c.to_mont(&big("1234567890"));
        let d = c.to_mont(&big("1234567891"));
        assert!(a.ct_eq(&b));
        assert!(!a.ct_eq(&d));
        assert!(c.zero().ct_eq(&c.zero()));
    }

    #[test]
    fn zeroize_clears_limbs_in_place() {
        let c = ctx("0xffffffffffffffffffffffffffffff61");
        let mut a = c.to_mont(&big("0xdeadbeefcafebabe0123456789abcdef"));
        assert!(!a.is_zero());
        a.zeroize();
        assert!(a.is_zero());
        assert_eq!(a.limbs.len(), c.limb_count());
    }

    #[test]
    fn single_limb_modulus() {
        let c = ctx("97");
        assert_eq!(c.limb_count(), 1);
        let a = c.to_mont(&big("50"));
        let b = c.to_mont(&big("60"));
        assert_eq!(c.from_mont(&c.mul(&a, &b)), big("3000") % big("97"));
    }
}
