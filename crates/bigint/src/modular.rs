//! Plain modular arithmetic and number-theoretic functions.
//!
//! These functions take the modulus as an explicit argument and reduce
//! eagerly. For repeated work with a fixed odd modulus, prefer the
//! [`Montgomery`](crate::Montgomery) context.

use crate::{BigInt, BigUint, Error, Montgomery};

/// `(a + b) mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_add(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    let (a, b) = (a % m, b % m);
    let sum = &a + &b;
    if &sum >= m {
        &sum - m
    } else {
        sum
    }
}

/// `(a - b) mod m` (always non-negative).
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_sub(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    let (a, b) = (a % m, b % m);
    if a >= b {
        &a - &b
    } else {
        &(m - &b) + &a
    }
}

/// `(a * b) mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_mul(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    &(a * b) % m
}

/// `(-a) mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_neg(a: &BigUint, m: &BigUint) -> BigUint {
    let a = a % m;
    if a.is_zero() {
        a
    } else {
        m - &a
    }
}

/// `base^exp mod m`.
///
/// Uses Montgomery exponentiation for odd `m > 1`, and falls back to
/// square-and-multiply with explicit reduction for even moduli.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_pow(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "modulus must be non-zero");
    if m.is_one() {
        return BigUint::zero();
    }
    if m.is_odd() {
        let ctx = Montgomery::new(m).expect("odd modulus > 1");
        let b = ctx.to_mont(base);
        return ctx.from_mont(&ctx.pow(&b, exp));
    }
    // Even modulus: simple left-to-right square and multiply.
    let mut acc = BigUint::one();
    let base = base % m;
    for i in (0..exp.bits()).rev() {
        acc = mod_mul(&acc, &acc, m);
        if exp.bit(i) {
            acc = mod_mul(&acc, &base, m);
        }
    }
    acc
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub fn ext_gcd(a: &BigUint, b: &BigUint) -> (BigUint, BigInt, BigInt) {
    let mut r0 = BigInt::from(a);
    let mut r1 = BigInt::from(b);
    let mut s0 = BigInt::one();
    let mut s1 = BigInt::zero();
    let mut t0 = BigInt::zero();
    let mut t1 = BigInt::one();
    while !r1.is_zero() {
        let (q, _) = r0.magnitude().div_rem(r1.magnitude());
        let q = BigInt::from(q); // both r are non-negative throughout
        let r2 = &r0 - &(&q * &r1);
        let s2 = &s0 - &(&q * &s1);
        let t2 = &t0 - &(&q * &t1);
        r0 = r1;
        r1 = r2;
        s0 = s1;
        s1 = s2;
        t0 = t1;
        t1 = t2;
    }
    (r0.magnitude().clone(), s0, t0)
}

/// The multiplicative inverse of `a` modulo `m`.
///
/// # Errors
///
/// Returns [`Error::NotInvertible`] if `gcd(a, m) != 1`, and
/// [`Error::ZeroModulus`] if `m` is zero.
pub fn mod_inv(a: &BigUint, m: &BigUint) -> Result<BigUint, Error> {
    if m.is_zero() {
        return Err(Error::ZeroModulus);
    }
    let a = a % m;
    let (g, x, _) = ext_gcd(&a, m);
    if !g.is_one() {
        return Err(Error::NotInvertible);
    }
    Ok(x.rem_euclid(m))
}

/// The Jacobi symbol `(a/n)` for odd `n > 0`.
///
/// Returns `0`, `1` or `-1`. For prime `n` this is the Legendre symbol.
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn jacobi(a: &BigUint, n: &BigUint) -> i32 {
    assert!(n.is_odd(), "jacobi symbol requires odd n");
    let mut a = a % n;
    let mut n = n.clone();
    let mut result = 1i32;
    while !a.is_zero() {
        let tz = a.trailing_zeros().unwrap_or(0);
        if tz > 0 {
            a = &a >> tz;
            // (2/n) = -1 iff n ≡ 3, 5 (mod 8); applies tz times.
            let n_mod8 = (n.limbs().first().copied().unwrap_or(0) & 7) as u32;
            if tz % 2 == 1 && (n_mod8 == 3 || n_mod8 == 5) {
                result = -result;
            }
        }
        // Quadratic reciprocity: flip sign if both ≡ 3 (mod 4).
        let a_mod4 = (a.limbs().first().copied().unwrap_or(0) & 3) as u32;
        let n_mod4 = (n.limbs().first().copied().unwrap_or(0) & 3) as u32;
        if a_mod4 == 3 && n_mod4 == 3 {
            result = -result;
        }
        std::mem::swap(&mut a, &mut n);
        a = &a % &n;
    }
    if n.is_one() {
        result
    } else {
        0
    }
}

/// A square root of `a` modulo an odd prime `p`.
///
/// Uses the `(p+1)/4` exponentiation when `p ≡ 3 (mod 4)` and
/// Tonelli–Shanks otherwise. The returned root `r` satisfies
/// `r² ≡ a (mod p)`; the other root is `p - r`.
///
/// # Errors
///
/// Returns [`Error::NonResidue`] if `a` is a quadratic non-residue.
///
/// # Panics
///
/// Panics if `p` is even. Behaviour is unspecified (may return garbage,
/// never unsafe) if `p` is not prime.
pub fn sqrt_mod(a: &BigUint, p: &BigUint) -> Result<BigUint, Error> {
    assert!(p.is_odd(), "sqrt_mod requires an odd prime");
    let a = a % p;
    if a.is_zero() {
        return Ok(BigUint::zero());
    }
    if jacobi(&a, p) != 1 {
        return Err(Error::NonResidue);
    }
    let one = BigUint::one();
    if (p.limbs()[0] & 3) == 3 {
        // p ≡ 3 (mod 4): r = a^((p+1)/4).
        let e = &(p + &one) >> 2;
        let r = mod_pow(&a, &e, p);
        debug_assert_eq!(mod_mul(&r, &r, p), a);
        return Ok(r);
    }
    // Tonelli–Shanks. Write p - 1 = q * 2^s with q odd.
    let p_minus_1 = p - &one;
    let s = p_minus_1.trailing_zeros().expect("p > 1");
    let q = &p_minus_1 >> s;
    // Find a non-residue z by scanning small values (deterministic).
    let mut z = BigUint::two();
    while jacobi(&z, p) != -1 {
        z = &z + &one;
    }
    let mut m = s;
    let mut c = mod_pow(&z, &q, p);
    let mut t = mod_pow(&a, &q, p);
    let mut r = mod_pow(&a, &(&(&q + &one) >> 1), p);
    while !t.is_one() {
        // Find least i, 0 < i < m, with t^(2^i) = 1.
        let mut i = 0usize;
        let mut t2 = t.clone();
        while !t2.is_one() {
            t2 = mod_mul(&t2, &t2, p);
            i += 1;
        }
        let mut b = c;
        for _ in 0..(m - i - 1) {
            b = mod_mul(&b, &b, p);
        }
        m = i;
        c = mod_mul(&b, &b, p);
        t = mod_mul(&t, &c, p);
        r = mod_mul(&r, &b, p);
    }
    debug_assert_eq!(mod_mul(&r, &r, p), a);
    Ok(r)
}

/// Solves CRT for two coprime moduli: the unique `x mod (m1*m2)` with
/// `x ≡ r1 (mod m1)` and `x ≡ r2 (mod m2)`.
///
/// # Errors
///
/// Returns [`Error::NotInvertible`] if the moduli are not coprime.
pub fn crt_pair(r1: &BigUint, m1: &BigUint, r2: &BigUint, m2: &BigUint) -> Result<BigUint, Error> {
    let m1_inv = mod_inv(m1, m2)?;
    // x = r1 + m1 * ((r2 - r1) * m1^-1 mod m2)
    let diff = mod_sub(r2, r1, m2);
    let k = mod_mul(&diff, &m1_inv, m2);
    Ok(r1 + &(m1 * &k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn basic_mod_ops() {
        let m = big("97");
        assert_eq!(mod_add(&big("96"), &big("5"), &m), big("4"));
        assert_eq!(mod_sub(&big("3"), &big("5"), &m), big("95"));
        assert_eq!(mod_mul(&big("96"), &big("96"), &m), big("1"));
        assert_eq!(mod_neg(&big("1"), &m), big("96"));
        assert_eq!(mod_neg(&BigUint::zero(), &m), BigUint::zero());
    }

    #[test]
    fn mod_pow_fermat_little() {
        // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
        let p = big("0xffffffffffffffc5"); // 2^64 - 59
        let a = big("123456789");
        assert_eq!(mod_pow(&a, &(&p - &BigUint::one()), &p), BigUint::one());
    }

    #[test]
    fn mod_pow_even_modulus() {
        let m = big("1000000");
        // 3^100000 mod 10^6 (fallback path).
        let got = mod_pow(&big("3"), &big("100000"), &m);
        // Verify against iterated multiplication.
        let mut expect = BigUint::one();
        for _ in 0..100000u32 {
            expect = mod_mul(&expect, &big("3"), &m);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn mod_pow_edge_cases() {
        let m = big("13");
        assert_eq!(mod_pow(&big("5"), &BigUint::zero(), &m), BigUint::one());
        assert_eq!(mod_pow(&BigUint::zero(), &big("5"), &m), BigUint::zero());
        assert_eq!(
            mod_pow(&big("5"), &big("5"), &BigUint::one()),
            BigUint::zero()
        );
    }

    #[test]
    fn ext_gcd_bezout() {
        let a = big("240");
        let b = big("46");
        let (g, x, y) = ext_gcd(&a, &b);
        assert_eq!(g, big("2"));
        let lhs = &(&BigInt::from(&a) * &x) + &(&BigInt::from(&b) * &y);
        assert_eq!(lhs, BigInt::from(&g));
    }

    #[test]
    fn mod_inv_roundtrip() {
        let p = big("1000000007");
        for a in ["2", "3", "999999999", "123456789"] {
            let a = big(a);
            let inv = mod_inv(&a, &p).unwrap();
            assert_eq!(mod_mul(&a, &inv, &p), BigUint::one());
        }
        assert_eq!(mod_inv(&big("6"), &big("9")), Err(Error::NotInvertible));
        assert_eq!(
            mod_inv(&big("5"), &BigUint::zero()),
            Err(Error::ZeroModulus)
        );
    }

    #[test]
    fn jacobi_known_table() {
        // (a/7) for a = 1..6: 1, 1, -1, 1, -1, -1
        let n = big("7");
        let expect = [1, 1, -1, 1, -1, -1];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(
                jacobi(&BigUint::from((i + 1) as u64), &n),
                *e,
                "a={}",
                i + 1
            );
        }
        assert_eq!(jacobi(&big("14"), &n), 0);
        // Composite: (2/15) = 1 even though 2 is a non-residue mod 15.
        assert_eq!(jacobi(&big("2"), &big("15")), 1);
    }

    #[test]
    fn jacobi_matches_euler_criterion_on_prime() {
        let p = big("0xffffffffffffffc5");
        let exp = &(&p - &BigUint::one()) >> 1;
        for a in 2u64..30 {
            let a = BigUint::from(a);
            let euler = mod_pow(&a, &exp, &p);
            let symbol = jacobi(&a, &p);
            if euler.is_one() {
                assert_eq!(symbol, 1);
            } else {
                assert_eq!(symbol, -1);
            }
        }
    }

    #[test]
    fn sqrt_mod_3mod4() {
        let p = big("0xffffffffffffffc5"); // ≡ 1 mod 4? 2^64-59: 59 ≡ 3 mod 4 so p ≡ ...
                                           // Just compute and verify both branches over a set of squares.
        for a in 2u64..20 {
            let a = BigUint::from(a);
            let sq = mod_mul(&a, &a, &p);
            let r = sqrt_mod(&sq, &p).unwrap();
            assert_eq!(mod_mul(&r, &r, &p), sq);
        }
    }

    #[test]
    fn sqrt_mod_1mod4_tonelli() {
        let p = big("1000000007"); // ≡ 3 mod 4 actually; use 13 for 1 mod 4 and a bigger one
        let p13 = big("13"); // 13 ≡ 1 mod 4
        let r = sqrt_mod(&big("10"), &p13).unwrap();
        assert_eq!(mod_mul(&r, &r, &p13), big("10"));
        // 2^255 - 19 ≡ 5 (mod 8), exercises Tonelli–Shanks with s = 2.
        let p25519 = &(BigUint::one() << 255) - &big("19");
        for a in 2u64..12 {
            let a = BigUint::from(a);
            let sq = mod_mul(&a, &a, &p25519);
            let r = sqrt_mod(&sq, &p25519).unwrap();
            assert_eq!(mod_mul(&r, &r, &p25519), sq);
        }
        let _ = p;
    }

    #[test]
    fn sqrt_mod_nonresidue() {
        let p = big("11");
        // QRs mod 11: 1,3,4,5,9. 2 is a non-residue.
        assert_eq!(sqrt_mod(&big("2"), &p), Err(Error::NonResidue));
        assert_eq!(sqrt_mod(&BigUint::zero(), &p).unwrap(), BigUint::zero());
    }

    #[test]
    fn crt_pair_reconstructs() {
        let m1 = big("97");
        let m2 = big("89");
        let x = big("5000");
        let r1 = &x % &m1;
        let r2 = &x % &m2;
        let got = crt_pair(&r1, &m1, &r2, &m2).unwrap();
        assert_eq!(&got % &(&m1 * &m2), x);
        assert!(crt_pair(&r1, &big("6"), &r2, &big("9")).is_err());
    }
}
