//! Primality testing and prime generation.
//!
//! Miller–Rabin with a small-prime pre-sieve, plus generators for random
//! primes, *safe* primes (`p = 2p' + 1`, needed by mediated RSA) and
//! primes in arithmetic progressions (`p = c·r − 1`, needed by the
//! pairing parameter generator).

use crate::{rng, BigUint, Error, Montgomery};
use rand::RngCore;

/// Small primes used for trial-division pre-sieving.
const SMALL_PRIMES: [u64; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Number of Miller–Rabin rounds used by the convenience wrappers.
///
/// 32 random bases give a composite-acceptance probability below
/// `4^-32`, ample for a research reproduction.
pub const DEFAULT_ROUNDS: u32 = 32;

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Deterministically correct answers for all `n < 2^16`; probabilistic
/// above. Returns `false` for `0` and `1`.
pub fn is_prime(n: &BigUint, rounds: u32, rng: &mut impl RngCore) -> bool {
    if n < &BigUint::two() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p_big = BigUint::from(p);
        if n == &p_big {
            return true;
        }
        if (n % &p_big).is_zero() {
            return false;
        }
    }
    // n is odd and > 281 here.
    let ctx = Montgomery::new(n).expect("odd n > 1");
    let n_minus_1 = n - &BigUint::one();
    let s = n_minus_1.trailing_zeros().expect("n > 1 odd");
    let d = &n_minus_1 >> s;
    let one = ctx.one();
    let minus_one = ctx.neg(&one);
    'witness: for _ in 0..rounds {
        // Random base in [2, n-2].
        let a = rng::random_below(rng, &(n - &BigUint::from(3u64))) + BigUint::two();
        let mut x = ctx.pow(&ctx.to_mont(&a), &d);
        if x == one || x == minus_one {
            continue;
        }
        for _ in 0..s - 1 {
            x = ctx.sqr(&x);
            if x == minus_one {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Convenience wrapper: [`is_prime`] with [`DEFAULT_ROUNDS`].
pub fn is_probable_prime(n: &BigUint, rng: &mut impl RngCore) -> bool {
    is_prime(n, DEFAULT_ROUNDS, rng)
}

/// Generates a random prime with exactly `bits` bits.
///
/// # Errors
///
/// Returns [`Error::PrimeSearchExhausted`] only if an (astronomically
/// unlikely) internal attempt budget is exceeded.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn random_prime(rng: &mut impl RngCore, bits: usize) -> Result<BigUint, Error> {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    // Expected ~ bits * ln2 / 2 odd candidates; budget far above that.
    let budget = 400 * bits.max(16);
    for _ in 0..budget {
        let mut candidate = rng::random_bits(rng, bits);
        candidate.set_bit(0, true); // force odd
        if is_probable_prime(&candidate, rng) {
            return Ok(candidate);
        }
    }
    Err(Error::PrimeSearchExhausted)
}

/// Generates a *safe* prime `p = 2q + 1` (both prime) with `p` exactly
/// `bits` bits, returning `(p, q)`.
///
/// Mediated RSA requires safe primes so that random user shares of the
/// private exponent are overwhelmingly coprime with `φ(n)`.
///
/// # Errors
///
/// Returns [`Error::PrimeSearchExhausted`] if the search budget runs out
/// (raise `bits` budgets rather than looping forever in tests).
///
/// # Panics
///
/// Panics if `bits < 3`.
pub fn safe_prime(rng: &mut impl RngCore, bits: usize) -> Result<(BigUint, BigUint), Error> {
    assert!(bits >= 3, "a safe prime needs at least 3 bits");
    let budget = 3000 * bits.max(16);
    for _ in 0..budget {
        let mut q = rng::random_bits(rng, bits - 1);
        q.set_bit(0, true);
        // Cheap pre-filter on p = 2q + 1 before testing q:
        // p mod 3 != 0 requires q mod 3 != 1.
        let q_mod3 = (&q % &BigUint::from(3u64)).to_u64().unwrap();
        if q_mod3 == 1 {
            continue;
        }
        let p = &(&q << 1) + &BigUint::one();
        // Test p first with few rounds (cheaper to reject), then q.
        if !is_prime(&p, 2, rng) {
            continue;
        }
        if !is_probable_prime(&q, rng) {
            continue;
        }
        if !is_probable_prime(&p, rng) {
            continue;
        }
        return Ok((p, q));
    }
    Err(Error::PrimeSearchExhausted)
}

/// Finds a prime of the form `p = c·r − 1` where `p` has exactly
/// `p_bits` bits and `p ≡ 3 (mod 4)`; returns `(p, c)`.
///
/// This is the pairing parameter shape: `r | p + 1` makes the order-`r`
/// subgroup of the supersingular curve `y² = x³ + x` (which has exactly
/// `p + 1` points) well-defined, and `p ≡ 3 (mod 4)` makes the curve
/// supersingular and square roots cheap.
///
/// # Errors
///
/// Returns [`Error::PrimeSearchExhausted`] if no such prime is found in
/// the search budget.
///
/// # Panics
///
/// Panics if `r` is zero, or `p_bits` is not at least 2 bits larger than
/// `r.bits()`.
pub fn prime_in_progression(
    rng: &mut impl RngCore,
    r: &BigUint,
    p_bits: usize,
) -> Result<(BigUint, BigUint), Error> {
    assert!(!r.is_zero(), "subgroup order must be positive");
    let c_bits = p_bits
        .checked_sub(r.bits())
        .filter(|&b| b >= 2)
        .expect("p_bits must exceed r.bits() by at least 2");
    let budget = 600 * p_bits.max(16);
    for _ in 0..budget {
        // p + 1 = c·r and p ≡ 3 (mod 4)  ⇔  c·r ≡ 0 (mod 4).
        // Force c ≡ 0 (mod 4) so this holds for any odd r.
        let mut c = rng::random_bits(rng, c_bits);
        c.set_bit(0, false);
        c.set_bit(1, false);
        if c.is_zero() {
            continue;
        }
        let p = &(&c * r) - &BigUint::one();
        if p.bits() != p_bits {
            continue;
        }
        debug_assert_eq!(p.limbs()[0] & 3, 3);
        if is_probable_prime(&p, rng) {
            return Ok((p, c));
        }
    }
    Err(Error::PrimeSearchExhausted)
}

/// `true` iff `p` is a probable prime with `p ≡ 3 (mod 4)`.
pub fn is_blum_prime(p: &BigUint, rng: &mut impl RngCore) -> bool {
    !p.is_zero() && (p.limbs()[0] & 3) == 3 && is_probable_prime(p, rng)
}

/// Euler's totient for `n = p·q` with distinct primes `p`, `q`.
pub fn phi_semiprime(p: &BigUint, q: &BigUint) -> BigUint {
    let one = BigUint::one();
    (p - &one) * (q - &one)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn known_primes_accepted() {
        let mut r = rng();
        for p in [
            "2",
            "3",
            "281",
            "283",
            "65537",
            "0xffffffffffffffc5",
            "0xffffffffffffffffffffffffffffff61",
            "1000000007",
        ] {
            assert!(is_probable_prime(&big(p), &mut r), "{p} is prime");
        }
    }

    #[test]
    fn known_composites_rejected() {
        let mut r = rng();
        for c in [
            "0", "1", "4", "100", "65536", "3277", "561", "41041", "825265",
        ] {
            // 561, 41041, 825265 are Carmichael numbers.
            assert!(!is_probable_prime(&big(c), &mut r), "{c} is composite");
        }
        // Product of two 64-bit primes.
        let p = big("0xffffffffffffffc5");
        let q = big("0xffffffffffffffef"); // 2^64 - 17? check: composite or prime, either way n=p*q composite
        let n = &p * &q;
        assert!(!is_probable_prime(&n, &mut r));
    }

    #[test]
    fn strong_pseudoprime_rejected() {
        let mut r = rng();
        // 3215031751 is a strong pseudoprime to bases 2, 3, 5, 7... but
        // composite (151 * 751 * 28351).
        assert!(!is_probable_prime(&big("3215031751"), &mut r));
    }

    #[test]
    fn random_prime_has_requested_bits() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = random_prime(&mut r, bits).unwrap();
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, &mut r));
        }
    }

    #[test]
    fn safe_prime_structure() {
        let mut r = rng();
        let (p, q) = safe_prime(&mut r, 64).unwrap();
        assert_eq!(p.bits(), 64);
        assert_eq!(p, &(&q << 1) + &BigUint::one());
        assert!(is_probable_prime(&p, &mut r));
        assert!(is_probable_prime(&q, &mut r));
    }

    #[test]
    fn progression_prime_structure() {
        let mut r = rng();
        let q = random_prime(&mut r, 40).unwrap();
        let (p, c) = prime_in_progression(&mut r, &q, 96).unwrap();
        assert_eq!(p.bits(), 96);
        assert!(is_probable_prime(&p, &mut r));
        // r divides p + 1.
        let p_plus_1 = &p + &BigUint::one();
        assert!((&p_plus_1 % &q).is_zero());
        assert_eq!(&c * &q, p_plus_1);
        // p ≡ 3 (mod 4).
        assert_eq!(p.limbs()[0] & 3, 3);
        assert!(is_blum_prime(&p, &mut r));
    }

    #[test]
    fn phi_of_semiprime() {
        assert_eq!(phi_semiprime(&big("11"), &big("13")), big("120"));
    }

    #[test]
    fn fermat_consistency_with_generated_prime() {
        let mut r = rng();
        let p = random_prime(&mut r, 96).unwrap();
        let a = big("31337");
        let e = &p - &BigUint::one();
        assert_eq!(modular::mod_pow(&a, &e, &p), BigUint::one());
    }
}
