//! Property-based tests for the bigint substrate.

use proptest::prelude::*;
use sempair_bigint::{modular, BigInt, BigUint};

/// Strategy: arbitrary BigUint up to ~256 bits.
fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..32).prop_map(|bytes| BigUint::from_be_bytes(&bytes))
}

/// Strategy: non-zero BigUint.
fn biguint_nonzero() -> impl Strategy<Value = BigUint> {
    biguint().prop_map(|v| if v.is_zero() { BigUint::one() } else { v })
}

/// Strategy: odd BigUint >= 3.
fn biguint_odd() -> impl Strategy<Value = BigUint> {
    biguint().prop_map(|mut v| {
        v.set_bit(0, true);
        if v.is_one() {
            BigUint::from(3u64)
        } else {
            v
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_roundtrip(a in biguint(), b in biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn division_invariant(a in biguint(), b in biguint_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        prop_assert!(r < b);
    }

    #[test]
    fn shift_is_pow2_mul(a in biguint(), s in 0usize..200) {
        prop_assert_eq!(&a << s, &a * &BigUint::two().pow(s as u32));
    }

    #[test]
    fn shr_is_div_pow2(a in biguint(), s in 0usize..200) {
        prop_assert_eq!(&a >> s, a.div_rem(&BigUint::two().pow(s as u32)).0);
    }

    #[test]
    fn hex_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_roundtrip(a in biguint()) {
        prop_assert_eq!(a.to_string().parse::<BigUint>().unwrap(), a);
    }

    #[test]
    fn bytes_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn bits_bounds(a in biguint_nonzero()) {
        let bits = a.bits();
        prop_assert!(a >= BigUint::two().pow((bits - 1) as u32));
        prop_assert!(a < BigUint::two().pow(bits as u32));
    }

    #[test]
    fn gcd_divides_both(a in biguint(), b in biguint_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!((&b % &g).is_zero());
        if !a.is_zero() {
            prop_assert!((&a % &g).is_zero());
        }
    }

    #[test]
    fn ext_gcd_bezout_identity(a in biguint(), b in biguint()) {
        let (g, x, y) = modular::ext_gcd(&a, &b);
        let lhs = &(&BigInt::from(&a) * &x) + &(&BigInt::from(&b) * &y);
        prop_assert_eq!(lhs, BigInt::from(&g));
    }

    #[test]
    fn mod_inv_is_inverse(a in biguint_nonzero(), m in biguint_odd()) {
        match modular::mod_inv(&a, &m) {
            Ok(inv) => prop_assert_eq!(modular::mod_mul(&a, &inv, &m), BigUint::one()),
            Err(_) => prop_assert!(!a.gcd(&m).is_one()),
        }
    }

    #[test]
    fn mont_matches_plain(a in biguint(), b in biguint(), m in biguint_odd()) {
        let ctx = sempair_bigint::Montgomery::new(&m).unwrap();
        let got = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        prop_assert_eq!(got, modular::mod_mul(&a, &b, &m));
    }

    #[test]
    fn mont_pow_matches_plain(a in biguint(), e in 0u64..10_000, m in biguint_odd()) {
        let e = BigUint::from(e);
        let got = modular::mod_pow(&a, &e, &m);
        // Plain repeated-squaring reference.
        let mut expect = BigUint::one();
        for i in (0..e.bits()).rev() {
            expect = modular::mod_mul(&expect, &expect, &m);
            if e.bit(i) {
                expect = modular::mod_mul(&expect, &a, &m);
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn mod_pow_multiplicative(a in biguint(), b in biguint(), e in 0u64..200, m in biguint_odd()) {
        // (a*b)^e = a^e * b^e (mod m)
        let e = BigUint::from(e);
        let lhs = modular::mod_pow(&modular::mod_mul(&a, &b, &m), &e, &m);
        let rhs = modular::mod_mul(
            &modular::mod_pow(&a, &e, &m),
            &modular::mod_pow(&b, &e, &m),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn jacobi_multiplicative(a in biguint(), b in biguint(), m in biguint_odd()) {
        // (ab/m) = (a/m)(b/m)
        let lhs = modular::jacobi(&(&a * &b), &m);
        let rhs = modular::jacobi(&a, &m) * modular::jacobi(&b, &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn isqrt_bounds(a in biguint()) {
        let r = a.isqrt();
        prop_assert!(&r * &r <= a);
        let r1 = &r + &BigUint::one();
        prop_assert!(&r1 * &r1 > a);
    }

    #[test]
    fn bigint_rem_euclid_in_range(a in biguint(), b in biguint(), m in biguint_nonzero()) {
        let d = &BigInt::from(&a) - &BigInt::from(&b);
        let r = d.rem_euclid(&m);
        prop_assert!(r < m);
        // (a - b) + b ≡ a (mod m)
        let back = modular::mod_add(&r, &(&b % &m), &m);
        prop_assert_eq!(back, &a % &m);
    }
}

#[test]
fn sqrt_mod_agrees_with_squaring_many_primes() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(42);
    for bits in [32usize, 48, 64, 96] {
        let p = sempair_bigint::prime::random_prime(&mut rng, bits).unwrap();
        for _ in 0..10 {
            let a = sempair_bigint::rng::random_below(&mut rng, &p);
            let sq = modular::mod_mul(&a, &a, &p);
            let r = modular::sqrt_mod(&sq, &p).unwrap();
            assert_eq!(modular::mod_mul(&r, &r, &p), sq);
        }
    }
}
