//! E5 — Mediated decryption cost, per party.
//!
//! Paper claims (§4): both sides compute one pairing each (SEM:
//! `ê(U, d_sem)`, user: `ê(U, d_user)` plus the FO check); IB-mRSA does
//! one half-exponentiation each. The RSA route is expected to be faster
//! per operation — the paper concedes the efficiency point and argues
//! trust instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_core::bf_ibe::Pkg;
use sempair_core::mediated::Sem;
use sempair_mrsa::ib::IbMrsaSystem;
use sempair_pairing::CurveParams;
use std::time::Duration;

fn bench_mediated_ibe_decrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5/mediated_ibe");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for (label, curve) in [
        ("p256_r128", CurveParams::fast_insecure()),
        ("p512_r160", CurveParams::paper_default()),
    ] {
        let mut rng = StdRng::seed_from_u64(5001);
        let pkg = Pkg::setup(&mut rng, curve);
        let (user, sem_key) = pkg.extract_split(&mut rng, "alice");
        let mut sem = Sem::new();
        sem.install(sem_key);
        let ct = pkg
            .params()
            .encrypt_full(&mut rng, "alice", &[0u8; 64])
            .unwrap();

        group.bench_function(BenchmarkId::new("sem_token", label), |b| {
            b.iter(|| sem.decrypt_token(pkg.params(), "alice", &ct.u).unwrap())
        });
        let token = sem.decrypt_token(pkg.params(), "alice", &ct.u).unwrap();
        group.bench_function(BenchmarkId::new("user_finish", label), |b| {
            b.iter(|| user.finish_decrypt(pkg.params(), &ct, &token).unwrap())
        });
    }
    group.finish();
}

fn bench_ib_mrsa_decrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5/ib_mrsa");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for bits in [512usize, 1024] {
        let mut rng = StdRng::seed_from_u64(5002);
        let system = IbMrsaSystem::setup_with_plain_primes(&mut rng, bits, 64, 16).expect("setup");
        let params = system.public_params();
        // With plain primes an identity's exponent can (rarely) share a
        // factor with φ(n); scan identities until keygen succeeds.
        let (id, user, sem_key) = (0..64)
            .find_map(|i| {
                let id = format!("alice{i}");
                system.keygen(&mut rng, &id).ok().map(|(u, s)| (id, u, s))
            })
            .expect("some identity keygens");
        let mut sem = system.new_sem();
        sem.install(sem_key);
        let ct = params.encrypt(&mut rng, &id, &[0u8; 14]).unwrap();

        group.bench_function(BenchmarkId::new("sem_half", format!("n{bits}")), |b| {
            b.iter(|| sem.half_decrypt(&id, &ct).unwrap())
        });
        let token = sem.half_decrypt(&id, &ct).unwrap();
        group.bench_function(BenchmarkId::new("user_finish", format!("n{bits}")), |b| {
            b.iter(|| user.finish_decrypt(&ct, &token).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mediated_ibe_decrypt, bench_ib_mrsa_decrypt);
criterion_main!(benches);
