//! E4 — Encryption cost: BF-IBE (mediated or not, encryption is
//! identical) vs IB-mRSA-OAEP.
//!
//! Paper claim (§4, citing \[4\]/\[3\]): "the Boneh-Franklin IBE is
//! significantly less efficient than IB-mRSA" — i.e. RSA encryption
//! should win by a wide margin; we reproduce the *shape* (who wins).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_core::bf_ibe::Pkg;
use sempair_mrsa::ib::IbMrsaSystem;
use sempair_pairing::CurveParams;
use std::time::Duration;

fn bench_ibe_encrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4/ibe_encrypt");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for (label, curve) in [
        ("p256_r128", CurveParams::fast_insecure()),
        ("p512_r160", CurveParams::paper_default()),
    ] {
        let mut rng = StdRng::seed_from_u64(4001);
        let pkg = Pkg::setup(&mut rng, curve);
        let msg = vec![0xabu8; 64];
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                pkg.params()
                    .encrypt_full(&mut rng, "alice@example.com", &msg)
                    .unwrap()
            })
        });
        // With the per-identity pairing cached (senders mailing the same
        // recipient repeatedly), encryption drops to one exponentiation
        // + one scalar multiplication.
        let base = pkg.params().identity_base("alice@example.com");
        group.bench_function(BenchmarkId::new("cached_base", label), |b| {
            b.iter(|| {
                let r = pkg.params().curve().random_scalar(&mut rng);
                let u = pkg.params().curve().mul_generator(&r);
                let g_r = pkg.params().curve().gt_pow(&base, &r);
                (u, g_r)
            })
        });
    }
    group.finish();
}

fn bench_ib_mrsa_encrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4/ib_mrsa_encrypt");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for bits in [512usize, 1024] {
        let mut rng = StdRng::seed_from_u64(4002);
        let system = IbMrsaSystem::setup_with_plain_primes(&mut rng, bits, 160.min(bits / 4), 16)
            .expect("setup");
        let params = system.public_params();
        let msg = vec![0xabu8; 16];
        group.bench_function(BenchmarkId::from_parameter(format!("n{bits}")), |b| {
            b.iter(|| params.encrypt(&mut rng, "alice@example.com", &msg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ibe_encrypt, bench_ib_mrsa_encrypt);
criterion_main!(benches);
