//! E6 — Mediated signing cost.
//!
//! Paper claims (§5): SEM and user each perform *one scalar
//! multiplication* in `G1`; verification needs two pairings — "this
//! computation overhead is the only disadvantage of mediated GDH when
//! compared to the mRSA signature".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_core::gdh::{self, GdhSem};
use sempair_mrsa::ib::IbMrsaSystem;
use sempair_pairing::CurveParams;
use std::time::Duration;

fn bench_mediated_gdh(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6/mediated_gdh");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for (label, curve) in [
        ("p256_r128", CurveParams::fast_insecure()),
        ("p512_r160", CurveParams::paper_default()),
    ] {
        let mut rng = StdRng::seed_from_u64(6001);
        let (user, sem_key, pk) = gdh::mediated_keygen(&mut rng, &curve, "alice");
        let mut sem = GdhSem::new();
        sem.install(sem_key);
        let msg = b"benchmark message";

        group.bench_function(BenchmarkId::new("sem_half_sign", label), |b| {
            b.iter(|| sem.half_sign(&curve, "alice", msg).unwrap())
        });
        let half = sem.half_sign(&curve, "alice", msg).unwrap();
        group.bench_function(BenchmarkId::new("user_finish_sign", label), |b| {
            b.iter(|| user.finish_sign(&curve, msg, &half).unwrap())
        });
        let sig = user.finish_sign(&curve, msg, &half).unwrap();
        group.bench_function(BenchmarkId::new("verify_2_pairings", label), |b| {
            b.iter(|| gdh::verify(&curve, &pk, msg, &sig).unwrap())
        });
    }
    group.finish();
}

fn bench_ib_mrsa_sign(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6/ib_mrsa_sign");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for bits in [512usize, 1024] {
        let mut rng = StdRng::seed_from_u64(6002);
        let system = IbMrsaSystem::setup_with_plain_primes(&mut rng, bits, 64, 16).expect("setup");
        let params = system.public_params();
        // With plain primes an identity's exponent can (rarely) share a
        // factor with φ(n); scan identities until keygen succeeds.
        let (id, user, sem_key) = (0..64)
            .find_map(|i| {
                let id = format!("alice{i}");
                system.keygen(&mut rng, &id).ok().map(|(u, s)| (id, u, s))
            })
            .expect("some identity keygens");
        let mut sem = system.new_sem();
        sem.install(sem_key);
        let msg = b"benchmark message";

        group.bench_function(BenchmarkId::new("sem_half_sign", format!("n{bits}")), |b| {
            b.iter(|| sem.half_sign(&id, msg).unwrap())
        });
        let token = sem.half_sign(&id, msg).unwrap();
        group.bench_function(
            BenchmarkId::new("user_finish_sign", format!("n{bits}")),
            |b| b.iter(|| user.finish_sign(msg, &token).unwrap()),
        );
        let sig = user.finish_sign(msg, &token).unwrap();
        group.bench_function(BenchmarkId::new("verify_modexp", format!("n{bits}")), |b| {
            b.iter(|| params.verify(&id, msg, &sig).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mediated_gdh, bench_ib_mrsa_sign);
criterion_main!(benches);
