//! E8 — Revocation cost: SEM list update vs validity-period re-keying.
//!
//! Paper claims (§1/§4): the SEM method revokes with one constant-cost
//! operation effective immediately; the validity-period method makes
//! the PKG re-issue a key for every unrevoked user each epoch (linear
//! in the user count) and still leaves a revocation window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_core::bf_ibe::Pkg;
use sempair_core::mediated::Sem;
use sempair_net::revocation::ValidityPeriodPkg;
use sempair_pairing::CurveParams;
use std::time::Duration;

fn bench_sem_revocation(c: &mut Criterion) {
    let curve = CurveParams::fast_insecure();
    let mut group = c.benchmark_group("e8/sem");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for n_users in [8usize, 64, 256] {
        let mut rng = StdRng::seed_from_u64(8001);
        let pkg = Pkg::setup(&mut rng, curve.clone());
        let mut sem = Sem::new();
        for i in 0..n_users {
            let (_, sem_key) = pkg.extract_split(&mut rng, &format!("user{i}"));
            sem.install(sem_key);
        }
        // Revoke + unrevoke one identity: constant regardless of n.
        group.bench_function(BenchmarkId::new("revoke_unrevoke", n_users), |b| {
            b.iter(|| {
                sem.revoke("user0");
                sem.unrevoke("user0");
            })
        });
    }
    group.finish();
}

fn bench_validity_period_rekey(c: &mut Criterion) {
    let curve = CurveParams::fast_insecure();
    let mut group = c.benchmark_group("e8/validity_period");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for n_users in [8usize, 64, 256] {
        let mut rng = StdRng::seed_from_u64(8002);
        let pkg = Pkg::setup(&mut rng, curve.clone());
        let users: Vec<String> = (0..n_users).map(|i| format!("user{i}")).collect();
        let mut vp = ValidityPeriodPkg::new(pkg, Duration::from_secs(3600), users);
        // One epoch rollover = n_users Extract operations by the PKG.
        group.bench_function(BenchmarkId::new("rotate_epoch", n_users), |b| {
            b.iter(|| vp.rotate_epoch())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sem_revocation, bench_validity_period_rekey);
criterion_main!(benches);
