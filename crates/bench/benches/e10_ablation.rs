//! E10 — Ablations for this implementation's own design choices
//! (DESIGN.md §4): Montgomery vs schoolbook modular exponentiation,
//! windowed-Jacobian vs affine double-and-add scalar multiplication,
//! cached pairing base in encryption, and CRT vs plain RSA decryption.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_bigint::{modular, BigUint, Montgomery};
use sempair_core::bf_ibe::Pkg;
use sempair_core::encryptor::IbeEncryptor;
use sempair_core::gdh;
use sempair_mrsa::rsa::{self, RsaKeyPair};
use sempair_pairing::CurveParams;
use std::time::Duration;

/// Schoolbook square-and-multiply with division-based reduction — the
/// baseline Montgomery replaces.
fn naive_mod_pow(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    let mut acc = BigUint::one();
    let base = base % m;
    for i in (0..exp.bits()).rev() {
        acc = &(&acc * &acc) % m;
        if exp.bit(i) {
            acc = &(&acc * &base) % m;
        }
    }
    acc
}

fn bench_modexp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(10001);
    let p = sempair_bigint::prime::random_prime(&mut rng, 512).unwrap();
    let base = sempair_bigint::rng::random_below(&mut rng, &p);
    let exp = sempair_bigint::rng::random_below(&mut rng, &p);

    let mut group = c.benchmark_group("e10/modexp_512");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("montgomery", |b| {
        b.iter(|| modular::mod_pow(&base, &exp, &p))
    });
    let ctx = Montgomery::new(&p).unwrap();
    let base_m = ctx.to_mont(&base);
    group.bench_function("montgomery_prebuilt_ctx", |b| {
        b.iter(|| ctx.pow(&base_m, &exp))
    });
    group.bench_function("schoolbook", |b| b.iter(|| naive_mod_pow(&base, &exp, &p)));
    group.finish();
}

fn bench_karatsuba(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(10007);
    let mut group = c.benchmark_group("e10/mul_karatsuba");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for bits in [1024usize, 2048, 4096] {
        let a = sempair_bigint::rng::random_bits(&mut rng, bits);
        let b = sempair_bigint::rng::random_bits(&mut rng, bits);
        // The Mul impl auto-selects Karatsuba above 16 limbs; this
        // records the resulting cost curve (subquadratic growth).
        group.bench_function(format!("mul_{bits}"), |bench| bench.iter(|| &a * &b));
    }
    group.finish();
}

fn bench_scalar_mul(c: &mut Criterion) {
    let curve = CurveParams::paper_default();
    let mut rng = StdRng::seed_from_u64(10002);
    let k = curve.random_scalar(&mut rng);
    let g = curve.generator().clone();

    let mut group = c.benchmark_group("e10/scalar_mul_512");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("windowed_jacobian", |b| b.iter(|| curve.mul(&k, &g)));
    group.bench_function("fixed_base_comb_generator", |b| {
        b.iter(|| curve.mul_generator(&k))
    });
    group.bench_function("affine_double_and_add", |b| {
        b.iter(|| {
            let mut acc = sempair_pairing::G1Affine::infinity();
            for i in (0..k.bits()).rev() {
                acc = curve.add(&acc, &acc.clone());
                if k.bit(i) {
                    acc = curve.add(&acc, &g);
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_miller_strategies(c: &mut Criterion) {
    let curve = CurveParams::paper_default();
    let mut rng = StdRng::seed_from_u64(10006);
    let a = curve.mul_generator(&curve.random_scalar(&mut rng));
    let b_pt = curve.mul_generator(&curve.random_scalar(&mut rng));

    let mut group = c.benchmark_group("e10/miller_loop_512");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("projective_fused_lines", |bench| {
        bench.iter(|| {
            curve.pairing_with_strategy(&a, &b_pt, sempair_pairing::MillerStrategy::Projective)
        })
    });
    group.bench_function("affine_with_inversions", |bench| {
        bench.iter(|| {
            curve.pairing_with_strategy(&a, &b_pt, sempair_pairing::MillerStrategy::Affine)
        })
    });
    group.finish();
}

fn bench_multi_pairing(c: &mut Criterion) {
    let curve = CurveParams::paper_default();
    let mut rng = StdRng::seed_from_u64(10008);
    let a = curve.mul_generator(&curve.random_scalar(&mut rng));
    let b1 = curve.mul_generator(&curve.random_scalar(&mut rng));
    let c1 = curve.mul_generator(&curve.random_scalar(&mut rng));
    let d1 = curve.mul_generator(&curve.random_scalar(&mut rng));

    let mut group = c.benchmark_group("e10/verify_equation_512");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    // The verification pattern ê(A,B) =? ê(C,D): shared loop vs two
    // separate pairings — what gdh::verify and share checks now use.
    group.bench_function("two_separate_pairings", |bench| {
        bench.iter(|| curve.pairing(&a, &b1) == curve.pairing(&c1, &d1))
    });
    group.bench_function("shared_loop_pairing_equals", |bench| {
        bench.iter(|| curve.pairing_equals(&a, &b1, &c1, &d1))
    });
    group.finish();
}

fn bench_pairing_cache(c: &mut Criterion) {
    let curve = CurveParams::paper_default();
    let mut rng = StdRng::seed_from_u64(10003);
    let pkg = Pkg::setup(&mut rng, curve);
    let msg = [0u8; 32];

    let mut group = c.benchmark_group("e10/encrypt_base_cache");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("fresh_pairing_each_encrypt", |b| {
        b.iter(|| pkg.params().encrypt_full(&mut rng, "alice", &msg).unwrap())
    });
    let base = pkg.params().identity_base("alice");
    group.bench_function("cached_identity_base", |b| {
        b.iter(|| {
            let r = pkg.params().curve().random_scalar(&mut rng);
            let u = pkg.params().curve().mul_generator(&r);
            let g_r = pkg.params().curve().gt_pow(&base, &r);
            (u, g_r)
        })
    });
    group.finish();
}

fn bench_prepared_pairing(c: &mut Criterion) {
    let curve = CurveParams::paper_default();
    let mut rng = StdRng::seed_from_u64(10009);
    let p = curve.mul_generator(&curve.random_scalar(&mut rng));
    let q = curve.mul_generator(&curve.random_scalar(&mut rng));

    let mut group = c.benchmark_group("e10/prepared_vs_fresh_pairing");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    // Fixed first argument (P_pub, a public key, …): preparing once
    // moves the Miller-loop point arithmetic out of every evaluation.
    group.bench_function("fresh_pairing", |b| b.iter(|| curve.pairing(&p, &q)));
    let prepared = curve.prepare_g1(&p);
    group.bench_function("prepared_eval", |b| {
        b.iter(|| curve.pairing_prepared(&prepared, &q))
    });
    group.bench_function("prepare_then_eval_once", |b| {
        b.iter(|| {
            let fresh = curve.prepare_g1(&p);
            curve.pairing_prepared(&fresh, &q)
        })
    });
    // The end-to-end effect on the encryption hot path.
    let pkg = Pkg::setup(&mut rng, CurveParams::paper_default());
    let enc = IbeEncryptor::new(pkg.params().clone());
    enc.identity_base("alice");
    let msg = [0u8; 32];
    group.bench_function("encrypt_full_uncached", |b| {
        b.iter(|| pkg.params().encrypt_full(&mut rng, "alice", &msg).unwrap())
    });
    group.bench_function("encrypt_full_cached_encryptor", |b| {
        b.iter(|| enc.encrypt_full(&mut rng, "alice", &msg).unwrap())
    });
    group.finish();
}

fn bench_batch_verify(c: &mut Criterion) {
    let curve = CurveParams::fast_insecure();
    let mut rng = StdRng::seed_from_u64(10010);
    let (sk, pk) = gdh::keygen(&mut rng, &curve);
    let messages: Vec<Vec<u8>> = (0..32)
        .map(|i| format!("statement {i}").into_bytes())
        .collect();
    let sigs: Vec<gdh::Signature> = messages.iter().map(|m| gdh::sign(&curve, &sk, m)).collect();
    let entries: Vec<(&[u8], &gdh::Signature)> = messages
        .iter()
        .map(|m| m.as_slice())
        .zip(sigs.iter())
        .collect();

    let mut group = c.benchmark_group("e10/batch_vs_individual_verify");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    // 2n pairings vs 2 pairings plus two 32-term multi-scalar-muls.
    group.bench_function("individual_32", |b| {
        b.iter(|| {
            for (m, s) in &entries {
                gdh::verify(&curve, &pk, m, s).unwrap();
            }
        })
    });
    group.bench_function("batch_32", |b| {
        b.iter(|| gdh::batch_verify(&curve, &pk, &entries).unwrap())
    });
    group.bench_function("batch_localize_one_forgery_32", |b| {
        let mut forged = sigs.clone();
        forged[17] = gdh::sign(&curve, &sk, b"some other statement");
        let entries: Vec<(&[u8], &gdh::Signature)> = messages
            .iter()
            .map(|m| m.as_slice())
            .zip(forged.iter())
            .collect();
        b.iter(|| {
            let bad = gdh::batch_find_invalid(&curve, &pk, &entries);
            assert_eq!(bad, vec![17]);
        })
    });
    group.finish();
}

fn bench_rsa_crt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(10004);
    let kp = RsaKeyPair::generate_fast(&mut rng, 1024, 32).unwrap();
    let m = BigUint::from(0xdeadbeefu64);
    let ct = rsa::encrypt_raw(&kp.public, &m).unwrap();

    let mut group = c.benchmark_group("e10/rsa_decrypt_1024");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("plain", |b| {
        b.iter(|| rsa::decrypt_raw(&kp.private, &ct).unwrap())
    });
    group.bench_function("crt", |b| {
        b.iter(|| rsa::decrypt_raw_crt(&kp.modulus, &kp.private.d, &ct).unwrap())
    });
    group.finish();
}

fn bench_point_codec(c: &mut Criterion) {
    let curve = CurveParams::paper_default();
    let mut rng = StdRng::seed_from_u64(10005);
    let point = curve.mul_generator(&curve.random_scalar(&mut rng));
    let compressed = curve.point_to_bytes(&point);

    let mut group = c.benchmark_group("e10/point_codec_512");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("compress", |b| b.iter(|| curve.point_to_bytes(&point)));
    group.bench_function("decompress_sqrt_plus_subgroup_check", |b| {
        b.iter(|| curve.point_from_bytes(&compressed).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_modexp,
    bench_karatsuba,
    bench_scalar_mul,
    bench_miller_strategies,
    bench_multi_pairing,
    bench_pairing_cache,
    bench_prepared_pairing,
    bench_batch_verify,
    bench_rsa_crt,
    bench_point_codec
);
criterion_main!(benches);
