//! E9 — SEM server token throughput vs worker count.
//!
//! Paper claim (§4): one online SEM serves the whole system; this bench
//! measures how token service scales with worker threads on one host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_core::bf_ibe::Pkg;
use sempair_net::server::{drive_throughput, drive_throughput_batched, SemServer};
use sempair_pairing::CurveParams;
use std::time::Duration;

fn bench_server_throughput(c: &mut Criterion) {
    let curve = CurveParams::fast_insecure();
    let mut rng = StdRng::seed_from_u64(9001);
    let pkg = Pkg::setup(&mut rng, curve);
    let (_, sem_key) = pkg.extract_split(&mut rng, "load");
    let ct = pkg
        .params()
        .encrypt_full(&mut rng, "load", &[0u8; 32])
        .unwrap();

    let mut group = c.benchmark_group("e9/server_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    const REQUESTS: usize = 64;
    group.throughput(Throughput::Elements(REQUESTS as u64));
    for workers in [1usize, 2, 4, 8] {
        let server = SemServer::spawn(pkg.params().clone(), workers);
        server.install_ibe(sem_key.clone());
        group.bench_function(BenchmarkId::new("tokens", format!("w{workers}")), |b| {
            b.iter(|| drive_throughput(&server, "load", &ct.u, workers.min(4), REQUESTS).unwrap())
        });
        server.shutdown();
    }
    group.finish();
}

fn bench_batched_endpoint(c: &mut Criterion) {
    let curve = CurveParams::fast_insecure();
    let mut rng = StdRng::seed_from_u64(9002);
    let pkg = Pkg::setup(&mut rng, curve);
    let (_, sem_key) = pkg.extract_split(&mut rng, "load");
    let ct = pkg
        .params()
        .encrypt_full(&mut rng, "load", &[0u8; 32])
        .unwrap();

    let mut group = c.benchmark_group("e9/batched_endpoint");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    const REQUESTS: usize = 64;
    group.throughput(Throughput::Elements(REQUESTS as u64));
    // Same request stream, same pairing work per token — the deltas
    // below are pure channel-hop and lock-acquisition amortization.
    let server = SemServer::spawn(pkg.params().clone(), 4);
    server.install_ibe(sem_key.clone());
    group.bench_function("single_requests", |b| {
        b.iter(|| drive_throughput(&server, "load", &ct.u, 2, REQUESTS).unwrap())
    });
    for batch in [4usize, 16, 32] {
        group.bench_function(BenchmarkId::new("batched", format!("b{batch}")), |b| {
            b.iter(|| drive_throughput_batched(&server, "load", &ct.u, 2, REQUESTS, batch).unwrap())
        });
    }
    server.shutdown();
    group.finish();
}

criterion_group!(benches, bench_server_throughput, bench_batched_endpoint);
criterion_main!(benches);
