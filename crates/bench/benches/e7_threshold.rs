//! E7 — Threshold IBE scaling in `(t, n)`, robustness overhead.
//!
//! The paper gives no absolute numbers for §3; the shapes to confirm:
//! share generation is one pairing (flat in `t`), recombination is `t`
//! target-group exponentiations (linear in `t`), and the robustness
//! NIZK costs a few extra pairings per share on each side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_core::threshold::{DecryptionShare, ThresholdPkg};
use sempair_pairing::CurveParams;
use std::time::Duration;

fn bench_threshold(c: &mut Criterion) {
    let curve = CurveParams::fast_insecure();
    let mut group = c.benchmark_group("e7/threshold");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));

    for t in [2usize, 3, 5, 8] {
        let n = 2 * t - 1; // the robustness regime §3.2 assumes
        let mut rng = StdRng::seed_from_u64(7000 + t as u64);
        let pkg = ThresholdPkg::setup(&mut rng, curve.clone(), t, n).unwrap();
        let sys = pkg.system();
        let shares = pkg.keygen("vault");
        let ct = sys.params().encrypt_basic(&mut rng, "vault", &[0u8; 32]);

        group.bench_function(
            BenchmarkId::new("keygen_all_shares", format!("t{t}_n{n}")),
            |b| b.iter(|| pkg.keygen("vault")),
        );

        group.bench_function(
            BenchmarkId::new("share_decrypt", format!("t{t}_n{n}")),
            |b| b.iter(|| sys.decryption_share(&shares[0], &ct.u)),
        );

        group.bench_function(
            BenchmarkId::new("share_decrypt_robust", format!("t{t}_n{n}")),
            |b| b.iter(|| sys.decryption_share_robust(&mut rng, &shares[0], &ct.u)),
        );

        let plain: Vec<DecryptionShare> = shares
            .iter()
            .map(|ks| sys.decryption_share(ks, &ct.u))
            .collect();
        group.bench_function(BenchmarkId::new("recombine", format!("t{t}_n{n}")), |b| {
            b.iter(|| sys.recombine_basic(&ct, &plain).unwrap())
        });

        let robust: Vec<DecryptionShare> = shares
            .iter()
            .map(|ks| sys.decryption_share_robust(&mut rng, ks, &ct.u))
            .collect();
        group.bench_function(
            BenchmarkId::new("verify_one_share", format!("t{t}_n{n}")),
            |b| {
                b.iter(|| {
                    sys.verify_decryption_share("vault", &ct.u, &robust[0])
                        .unwrap()
                })
            },
        );
        group.bench_function(
            BenchmarkId::new("recombine_robust", format!("t{t}_n{n}")),
            |b| b.iter(|| sys.recombine_basic_robust("vault", &ct, &robust).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_threshold);
criterion_main!(benches);
