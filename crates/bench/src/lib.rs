//! # sempair-bench
//!
//! Shared helpers for the Criterion benchmark harness (see
//! `benches/` and the `report` binary). The per-experiment mapping to
//! the paper's evaluation claims lives in the workspace
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

pub mod report;
