//! Utilities for the experiment report binary: wall-clock measurement
//! with warmup, simple statistics, and markdown table rendering.

use std::time::{Duration, Instant};

/// Result of timing a closure repeatedly.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Median per-iteration time.
    pub median: Duration,
    /// Minimum per-iteration time.
    pub min: Duration,
    /// Number of measured iterations.
    pub iters: usize,
}

impl Timing {
    /// Median microseconds, for table rendering.
    pub fn micros(&self) -> f64 {
        self.median.as_secs_f64() * 1e6
    }

    /// Median milliseconds.
    pub fn millis(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }
}

/// Times `f` with `warmup` discarded runs and `iters` measured runs.
pub fn time<T>(warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> Timing {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed());
    }
    samples.sort();
    Timing {
        median: samples[samples.len() / 2],
        min: samples[0],
        iters,
    }
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_sane_values() {
        let t = time(2, 11, || {
            let mut x = 0u64;
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert_eq!(t.iters, 11);
        assert!(t.min <= t.median);
        assert!(t.micros() >= 0.0);
    }

    #[test]
    fn markdown_table_shape() {
        let table = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("| a | b |"));
        assert!(lines[1].contains("---|---|"));
        assert!(lines[2].contains("| 1 | 2 |"));
    }
}
