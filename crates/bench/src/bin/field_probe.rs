//! Quick field-primitive cost probe (not part of the recorded bench
//! artifacts): per-op nanoseconds for the fixed-width backend on the
//! paper's 512-bit prime, plus a Miller/final-exp split of one
//! pairing. Used to direct optimization work.

use sempair_field::ext2::{self, Ext2};
use sempair_field::miller;
use sempair_field::p512::{PAPER_CTX, PAPER_P, PAPER_R};
use sempair_field::FieldOps;
use std::time::Instant;

fn main() {
    let f = PAPER_CTX;
    let a = f.to_mont(&{
        let mut v = PAPER_P;
        v[0] ^= 0x1234_5678;
        v[7] >>= 1;
        v
    });
    let b = f.to_mont(&{
        let mut v = PAPER_P;
        v[3] ^= 0xdead_beef;
        v[7] >>= 2;
        v
    });

    const M: usize = 1_000_000;
    let t = Instant::now();
    let mut x = a;
    for _ in 0..M {
        x = f.mul(&x, &b);
    }
    std::hint::black_box(&x);
    println!(
        "fp_mul:     {:>8.1} ns",
        t.elapsed().as_secs_f64() * 1e9 / M as f64
    );

    let t = Instant::now();
    let mut x = a;
    for _ in 0..M {
        x = f.sqr(&x);
    }
    std::hint::black_box(&x);
    println!(
        "fp_sqr:     {:>8.1} ns",
        t.elapsed().as_secs_f64() * 1e9 / M as f64
    );

    let t = Instant::now();
    let mut x = a;
    for _ in 0..M {
        let w = f.mul_wide(&x, &b);
        x = f.redc_wide(&w);
    }
    std::hint::black_box(&x);
    println!(
        "mul+redc_w: {:>8.1} ns",
        t.elapsed().as_secs_f64() * 1e9 / M as f64
    );

    const K: usize = 200_000;
    let mut e = Ext2 { c0: a, c1: b };
    let e2 = Ext2 { c0: b, c1: a };
    let t = Instant::now();
    for _ in 0..K {
        e = f.ext2_mul(&e, &e2);
    }
    std::hint::black_box(&e);
    println!(
        "ext2_mul:   {:>8.1} ns",
        t.elapsed().as_secs_f64() * 1e9 / K as f64
    );

    let t = Instant::now();
    for _ in 0..K {
        e = f.ext2_sqr(&e);
    }
    std::hint::black_box(&e);
    println!(
        "ext2_sqr:   {:>8.1} ns",
        t.elapsed().as_secs_f64() * 1e9 / K as f64
    );

    const I: usize = 2_000;
    let t = Instant::now();
    let mut x = a;
    for _ in 0..I {
        x = f.inv(&x).unwrap();
    }
    std::hint::black_box(&x);
    println!(
        "fp_inv:     {:>8.1} ns",
        t.elapsed().as_secs_f64() * 1e9 / I as f64
    );

    // One pairing, split into Miller loop and final exponentiation.
    // Use a real point: hash-free — scan x for a curve point.
    let mut x_try = f.from_u64(2);
    let (px, py) = loop {
        let rhs = f.add(&f.mul(&f.sqr(&x_try), &x_try), &x_try);
        if let Some(y) = f.sqrt(&rhs) {
            break (x_try, y);
        }
        x_try = f.add(&x_try, &f.one());
    };
    // Cofactor (p+1)/r: compute via bigint for the probe.
    let p_big = sempair_bigint::BigUint::from_limbs(PAPER_P.to_vec());
    let r_big = sempair_bigint::BigUint::from_limbs(PAPER_R.to_vec());
    let (cof, _) = (&p_big + &sempair_bigint::BigUint::one()).div_rem(&r_big);
    let cof_limbs = cof.limbs().to_vec();

    const J: usize = 100;
    let t = Instant::now();
    let mut m = ext2::one(&f);
    for _ in 0..J {
        m = miller::miller_projective(&f, &PAPER_R, (&px, &py), (&px, &py));
    }
    println!(
        "miller:     {:>8.1} us",
        t.elapsed().as_secs_f64() * 1e6 / J as f64
    );

    let t = Instant::now();
    let mut g = ext2::one(&f);
    for _ in 0..J {
        g = miller::final_exp(&f, &cof_limbs, &m);
    }
    std::hint::black_box(&g);
    println!(
        "final_exp:  {:>8.1} us",
        t.elapsed().as_secs_f64() * 1e6 / J as f64
    );
}
