//! Scenario runner: the four scripted chaos scenarios from
//! `sempair_net::scenario`, graded against their SLO specs.
//!
//! Run with `cargo run --release -p sempair-bench --bin scenario_bench`
//! (`--smoke` for the CI gate's quick pass; `--seed N` to replay a
//! specific schedule). Writes `BENCH_scenarios.json` to the current
//! directory with a stable schema:
//!
//! ```json
//! {
//!   "schema": "sempair-bench-scenarios/1",
//!   "mode": "smoke",
//!   "seed": 1558712848,
//!   "scenarios": [
//!     {"name": "mass_revocation_storm", "passed": true,
//!      "observation": {...}, "slos": [{"name": "p99_ratio", ...}]}
//!   ],
//!   "all_passed": true,
//!   "all_deterministic_passed": true
//! }
//! ```
//!
//! Per-SLO margins are printed and recorded for every scenario. The
//! **deterministic** objectives (error rate, duplicate executions,
//! cheat events) are the contract — they also gate the library's unit
//! tests. The timing objectives (p99 ratios) are load-sensitive, so
//! `all_passed` is recorded but CI gates only on the schema being
//! present (the `serving_bench` precedent: a loaded host must not turn
//! a perf report into a flaky gate).

use sempair_net::scenario::{run_all, ScenarioConfig, ScenarioOutcome};

fn json_scenario(outcome: &ScenarioOutcome) -> String {
    let slos = outcome
        .slos
        .iter()
        .map(|m| {
            format!(
                "        {{\"name\": \"{}\", \"limit\": {:.4}, \"actual\": {:.4}, \
                 \"margin\": {:.4}, \"pass\": {}, \"timing\": {}}}",
                m.name, m.limit, m.actual, m.margin, m.pass, m.timing
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let obs = &outcome.observation;
    format!(
        "    {{\n      \"name\": \"{}\",\n      \"seed\": {},\n      \
         \"passed\": {},\n      \"deterministic_passed\": {},\n      \
         \"predicted_p99_us\": {:.1},\n      \"observation\": {{\n        \
         \"quiet_p99_us\": {:.1},\n        \"loaded_p99_us\": {:.1},\n        \
         \"p99_ratio\": {:.3},\n        \"requests\": {},\n        \
         \"failures\": {},\n        \"duplicate_executions\": {},\n        \
         \"cheat_events\": {}\n      }},\n      \"slos\": [\n{}\n      ]\n    }}",
        outcome.name,
        outcome.seed,
        outcome.passed,
        outcome.deterministic_pass(),
        outcome.predicted_p99_us,
        obs.quiet_p99_us,
        obs.loaded_p99_us,
        obs.p99_ratio(),
        obs.requests,
        obs.failures,
        obs.duplicate_executions,
        obs.cheat_events,
        slos
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|arg| arg == "--smoke");
    let seed = args
        .iter()
        .position(|arg| arg == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());
    let mut config = if smoke {
        ScenarioConfig::smoke()
    } else {
        ScenarioConfig::full()
    };
    if let Some(seed) = seed {
        config.seed = seed;
    }

    println!(
        "# scenario suite ({}) seed={} hot={} requests={} chunk={}",
        if smoke { "smoke" } else { "full" },
        config.seed,
        config.hot,
        config.requests,
        config.rollover_chunk
    );

    let outcomes = match run_all(&config) {
        Ok(outcomes) => outcomes,
        Err(err) => {
            eprintln!("scenario harness failed: {err}");
            std::process::exit(1);
        }
    };

    for outcome in &outcomes {
        println!(
            "\n{} — {} (quiet p99 {:.0} µs, loaded p99 {:.0} µs, predicted {:.0} µs)",
            outcome.name,
            if outcome.passed { "PASS" } else { "FAIL" },
            outcome.observation.quiet_p99_us,
            outcome.observation.loaded_p99_us,
            outcome.predicted_p99_us
        );
        for m in &outcome.slos {
            println!(
                "  {:<22} {} actual {:>10.4} limit {:>10.4} margin {:>+10.4}{}",
                m.name,
                if m.pass { "ok  " } else { "FAIL" },
                m.actual,
                m.limit,
                m.margin,
                if m.timing { "  (timing, recorded)" } else { "" }
            );
        }
    }

    let all_passed = outcomes.iter().all(|o| o.passed);
    let all_deterministic = outcomes.iter().all(|o| o.deterministic_pass());
    let rows = outcomes
        .iter()
        .map(json_scenario)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"schema\": \"sempair-bench-scenarios/1\",\n  \"mode\": \"{}\",\n  \
         \"seed\": {},\n  \"scenarios\": [\n{rows}\n  ],\n  \
         \"all_passed\": {all_passed},\n  \
         \"all_deterministic_passed\": {all_deterministic}\n}}\n",
        if smoke { "smoke" } else { "full" },
        config.seed
    );
    std::fs::write("BENCH_scenarios.json", &json).expect("write BENCH_scenarios.json");
    println!("\nwrote BENCH_scenarios.json (all_passed={all_passed})");

    // Deterministic objectives are a hard gate even for the bench
    // binary: a duplicate execution or a cheat event is a correctness
    // bug, not a perf regression.
    if !all_deterministic {
        std::process::exit(1);
    }
}
