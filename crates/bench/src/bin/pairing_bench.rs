//! Pairing-path microbenchmarks: fixed-width backend vs the bigint
//! reference, on the paper's 512-bit parameters.
//!
//! Run with `cargo run --release -p sempair-bench --bin pairing_bench`.
//! Prints a markdown summary to stdout and writes `BENCH_pairing.json`
//! to the current directory with a stable schema:
//!
//! ```json
//! {
//!   "schema": "sempair-bench-pairing/1",
//!   "params": "paper_512_160",
//!   "results": [{"name": "...", "median_us": 0.0, "min_us": 0.0, "iters": 0}],
//!   "speedups": {"pairing_single": 0.0, "gdh_batch_verify_32": 0.0}
//! }
//! ```
//!
//! `results` names are append-only; `speedups` keys are the two
//! acceptance targets (single pairing ≥ 5×, 32-signature GDH batch
//! ≥ 8×).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_bench::report::{markdown_table, time, Timing};
use sempair_core::gdh;
use sempair_pairing::{CurveParams, G1Affine};

struct Entry {
    name: &'static str,
    timing: Timing,
}

fn record(results: &mut Vec<Entry>, name: &'static str, timing: Timing) -> Timing {
    results.push(Entry { name, timing });
    timing
}

fn main() {
    let fast = CurveParams::paper_default();
    assert!(
        fast.fp().has_fixed_backend(),
        "paper params must activate the fixed-width backend"
    );
    let mut slow = CurveParams::paper_default();
    slow.force_bigint_backend();

    let mut rng = StdRng::seed_from_u64(20030725);
    let mut results: Vec<Entry> = Vec::new();

    // Shared inputs (generated on the fast context; points are
    // backend-independent).
    let p = fast.mul_generator(&fast.random_scalar(&mut rng));
    let q = fast.mul_generator(&fast.random_scalar(&mut rng));
    let pts: Vec<(G1Affine, G1Affine)> = (0..8)
        .map(|_| {
            (
                fast.mul_generator(&fast.random_scalar(&mut rng)),
                fast.mul_generator(&fast.random_scalar(&mut rng)),
            )
        })
        .collect();
    let pairs: Vec<(&G1Affine, &G1Affine)> = pts.iter().map(|(a, b)| (a, b)).collect();

    // --- single pairing --------------------------------------------------
    let single_new = record(
        &mut results,
        "pairing_single_fixed",
        time(3, 15, || fast.pairing(&p, &q)),
    );
    let single_old = record(
        &mut results,
        "pairing_single_bigint",
        time(1, 9, || slow.pairing(&p, &q)),
    );

    // --- prepared pairing (fixed first argument) -------------------------
    let prep = fast.prepare_g1(&p);
    let prepared_new = record(
        &mut results,
        "pairing_prepared_fixed",
        time(3, 15, || fast.pairing_prepared(&prep, &q)),
    );

    // --- 8-way multi-pairing vs 8 singles --------------------------------
    let multi_new = record(
        &mut results,
        "multi_pairing_8_fixed",
        time(2, 9, || fast.multi_pairing(&pairs)),
    );
    let eight_singles = record(
        &mut results,
        "pairing_8_singles_fixed",
        time(1, 9, || {
            let mut acc = fast.gt_one();
            for (a, b) in &pairs {
                acc = fast.gt_mul(&acc, &fast.pairing(a, b));
            }
            acc
        }),
    );

    // --- 32-signature GDH batch verification -----------------------------
    let (sk, pk) = gdh::keygen(&mut rng, &fast);
    let messages: Vec<Vec<u8>> = (0..32u32)
        .map(|i| format!("benchmark message {i}").into_bytes())
        .collect();
    let sigs: Vec<gdh::Signature> = messages.iter().map(|m| gdh::sign(&fast, &sk, m)).collect();
    let entries: Vec<(&[u8], &gdh::Signature)> = messages
        .iter()
        .map(Vec::as_slice)
        .zip(sigs.iter())
        .collect();
    let batch_new = record(
        &mut results,
        "gdh_batch_verify_32_fixed",
        time(1, 9, || gdh::batch_verify(&fast, &pk, &entries).unwrap()),
    );
    let batch_old = record(
        &mut results,
        "gdh_batch_verify_32_bigint",
        time(1, 5, || gdh::batch_verify(&slow, &pk, &entries).unwrap()),
    );
    // The batch acceptance target compares against the pre-batch shape:
    // 32 individual verifications, one pairing equation each.
    let indiv_new = record(
        &mut results,
        "gdh_verify_32_individual_fixed",
        time(1, 5, || {
            for (m, s) in &entries {
                gdh::verify(&fast, &pk, m, s).unwrap();
            }
        }),
    );
    let indiv_old = record(
        &mut results,
        "gdh_verify_32_individual_bigint",
        time(0, 3, || {
            for (m, s) in &entries {
                gdh::verify(&slow, &pk, m, s).unwrap();
            }
        }),
    );

    // --- summary ---------------------------------------------------------
    // The issue's single-pairing target is stated against the recorded
    // seed baseline (EXPERIMENTS.md E5: 5.3 ms per pairing at 512-bit
    // p, measured before the shared Miller kernels landed). The live
    // bigint backend on this machine also benefits from the kernel
    // rewrite, so both ratios are reported.
    const RECORDED_BASELINE_US: f64 = 5300.0;
    let single_speedup = RECORDED_BASELINE_US / single_new.micros();
    let single_live_speedup = single_old.micros() / single_new.micros();
    // Batch target: new batch path vs the old shape (individual
    // verifies on the bigint backend); same-backend ratio alongside.
    let batch_speedup = indiv_old.micros() / batch_new.micros();
    let batch_live_speedup = indiv_new.micros() / batch_new.micros();
    let batch_backend_speedup = batch_old.micros() / batch_new.micros();

    println!("# pairing benchmark (paper_512_160)\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|e| {
            vec![
                e.name.to_string(),
                format!("{:.1}", e.timing.micros()),
                format!("{:.1}", e.timing.min.as_secs_f64() * 1e6),
                e.timing.iters.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["benchmark", "median (µs)", "min (µs)", "iters"], &rows)
    );
    println!(
        "single pairing speedup vs recorded 5.3 ms baseline: {single_speedup:.1}x (target >= 5x)"
    );
    println!("single pairing speedup vs live bigint backend: {single_live_speedup:.1}x");
    println!(
        "32-sig GDH batch vs 32 individual bigint verifies: {batch_speedup:.1}x (target >= 8x)"
    );
    println!(
        "32-sig GDH batch vs 32 individual fixed verifies: {batch_live_speedup:.1}x; \
         vs bigint batch: {batch_backend_speedup:.1}x"
    );
    println!(
        "prepared vs single: {:.1}x, multi(8) vs 8 singles: {:.1}x",
        single_new.micros() / prepared_new.micros(),
        eight_singles.micros() / multi_new.micros()
    );

    // --- JSON artifact ---------------------------------------------------
    let mut json = String::from("{\n  \"schema\": \"sempair-bench-pairing/1\",\n");
    json.push_str("  \"params\": \"paper_512_160\",\n  \"results\": [\n");
    for (i, e) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_us\": {:.2}, \"min_us\": {:.2}, \"iters\": {}}}{}\n",
            e.name,
            e.timing.micros(),
            e.timing.min.as_secs_f64() * 1e6,
            e.timing.iters,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"recorded_baseline\": {{\"pairing_single_us\": {RECORDED_BASELINE_US:.1}, \"source\": \"EXPERIMENTS.md E5 seed measurement\"}},\n"
    ));
    json.push_str("  \"speedups\": {\n");
    json.push_str(&format!(
        "    \"pairing_single\": {single_speedup:.2},\n    \"pairing_single_vs_live_bigint\": {single_live_speedup:.2},\n    \"gdh_batch_verify_32\": {batch_speedup:.2},\n    \"gdh_batch_vs_individual_fixed\": {batch_live_speedup:.2},\n    \"gdh_batch_vs_bigint_batch\": {batch_backend_speedup:.2}\n"
    ));
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_pairing.json", &json).expect("write BENCH_pairing.json");
    eprintln!("wrote BENCH_pairing.json");
}
