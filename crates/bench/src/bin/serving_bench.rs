//! Serving-path load generator: pipelined vs single-in-flight SEM
//! throughput and tail latency under revocation churn.
//!
//! Run with `cargo run --release -p sempair-bench --bin serving_bench`
//! (`--smoke` for the CI gate's quick pass). Drives Zipf-distributed
//! traffic over ~1M distinct identities through the fault-injection
//! proxy against a live `TcpSemServer`, then writes
//! `BENCH_serving.json` to the current directory with a stable schema:
//!
//! ```json
//! {
//!   "schema": "sempair-bench-serving/2",
//!   "mode": "full",
//!   "identities": 1000000,
//!   "results": {"v1_req_per_s": 0.0, "pipelined_req_per_s": 0.0, ...},
//!   "cache_sweep": [{"cache_cap": 0, "hit_rate": 0.0, ...}, ...],
//!   "targets": {"pipelined_speedup_min": 4.0, ...}
//! }
//! ```
//!
//! The acceptance targets (pipelined ≥ 4× single-in-flight req/s at
//! equal worker count; storm p99 ≤ 2× quiet p99; precompute-tier
//! hit-rate ≥ 80% at cap = 1/16 of the identity population with a p50
//! win over the uncached baseline) are recorded as booleans in
//! `targets`, never asserted: a loaded host must not turn a perf
//! report into a flaky gate.
//!
//! Both throughput phases run over the proxy's link emulation
//! ([`FaultProxy::spawn_linked`]) with a [`LINK_ONE_WAY`] propagation
//! delay, because head-of-line blocking is a *latency* pathology: on a
//! zero-RTT loopback a single-in-flight client is bounded only by the
//! pairing CPU (which `BENCH_pairing.json` already covers), and both
//! serving models measure the same number. With a real link the v1
//! model eats one full round trip per request while the pipelined
//! model keeps `depth` requests on the wire — the speedup below is the
//! RTT-hiding the protocol change buys, at equal worker count and
//! identical crypto cost. The emulated link delays every frame by its
//! own due time (it does not serialize), so it bounds round trips, not
//! bandwidth.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sempair_core::bf_ibe::Pkg;
use sempair_core::mediated::SemKey;
use sempair_net::audit::CacheSeries;
use sempair_net::faults::{FaultPlan, FaultProxy};
use sempair_net::proto::{Op, Request};
use sempair_net::revocation::shard_of;
use sempair_net::scenario::{ident, Zipf};
use sempair_net::tcp::{
    ClientConfig, PipeClient, PipeReply, ServerConfig, TcpSemClient, TcpSemServer,
};
use sempair_pairing::CurveParams;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const WORKERS: usize = 8;
const SHARDS: usize = 16;
const CONNS: usize = 2;
const DEPTH: usize = 32;
/// Emulated one-way propagation delay, LAN-scale (cf.
/// `sempair_net::latency::LinkModel::lan`'s 0.5 ms; 2 ms keeps the
/// RTT comfortably above scheduler jitter on a loaded CI host).
const LINK_ONE_WAY: Duration = Duration::from_millis(2);

struct Workload {
    ids: usize,
    hot: usize,
    requests_per_conn: usize,
    latency_samples: usize,
}

fn quantile_us(samples: &mut [Duration], q: f64) -> f64 {
    samples.sort();
    let index = ((samples.len() as f64 * q) as usize).min(samples.len() - 1);
    samples[index].as_secs_f64() * 1e6
}

/// Phase 1: single-in-flight v1 clients, one request outstanding per
/// connection — the pre-pipelining serving model.
fn v1_throughput(addr: SocketAddr, pkg: &Pkg, zipf: &Zipf, load: &Workload, conns: usize) -> f64 {
    let total = load.requests_per_conn * conns;
    let started = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|conn| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x5EED + conn as u64);
                    let mut client = TcpSemClient::connect_with(
                        addr,
                        pkg.params().clone(),
                        ClientConfig {
                            pipelined: false,
                            ..ClientConfig::default()
                        },
                    )
                    .expect("v1 connect");
                    let u = pkg
                        .params()
                        .curve()
                        .mul_generator(&pkg.params().curve().random_scalar(&mut rng));
                    for _ in 0..load.requests_per_conn {
                        let id = ident(zipf.sample(&mut rng));
                        // Cold identities refuse (UnknownIdentity) —
                        // that is the Zipf tail exercising the full
                        // serving path, not an error in the bench.
                        let _ = client.ibe_token(&id, &u);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("v1 load thread");
        }
    });
    total as f64 / started.elapsed().as_secs_f64()
}

/// Phase 2: the same connection count, but `depth` requests in flight
/// per connection through the pipelined envelope protocol.
fn pipelined_throughput(
    addr: SocketAddr,
    pkg: &Pkg,
    zipf: &Zipf,
    load: &Workload,
    conns: usize,
    depth: usize,
) -> f64 {
    let total = load.requests_per_conn * conns;
    let started = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|conn| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xF00D + conn as u64);
                    let mut pipe =
                        PipeClient::connect(addr, Duration::from_secs(30)).expect("pipe connect");
                    let curve = pkg.params().curve();
                    let u =
                        curve.point_to_bytes(&curve.mul_generator(&curve.random_scalar(&mut rng)));
                    let mut submitted = 0usize;
                    let mut received = 0usize;
                    // Sliding window: top the connection up to `depth`
                    // in flight, then lock-step one-in-one-out.
                    while received < load.requests_per_conn {
                        while submitted < load.requests_per_conn && submitted - received < depth {
                            let request = Request {
                                op: Op::IbeToken,
                                id: ident(zipf.sample(&mut rng)),
                                body: u.clone(),
                            };
                            pipe.submit(&request).expect("pipelined submit");
                            submitted += 1;
                        }
                        match pipe.recv().expect("pipelined recv") {
                            PipeReply::Reply(..) => received += 1,
                            PipeReply::Plain(outer) => {
                                panic!("unexpected plain reply: {:?}", outer.status)
                            }
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("pipelined load thread");
        }
    });
    total as f64 / started.elapsed().as_secs_f64()
}

/// Latency phase: one pipelined connection at a modest depth, each
/// request timestamped at submit and matched to its reply by request
/// id, so the percentiles measure genuine per-request latency even
/// with out-of-order completion.
fn latency_run(
    addr: SocketAddr,
    pkg: &Pkg,
    zipf: &Zipf,
    load: &Workload,
    depth: usize,
) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(0x1A7E);
    let mut pipe = PipeClient::connect(addr, Duration::from_secs(30)).expect("latency connect");
    let curve = pkg.params().curve();
    let u = curve.point_to_bytes(&curve.mul_generator(&curve.random_scalar(&mut rng)));
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let mut samples = Vec::with_capacity(load.latency_samples);
    let mut submitted = 0usize;
    while samples.len() < load.latency_samples {
        while submitted < load.latency_samples && in_flight.len() < depth {
            let request = Request {
                op: Op::IbeToken,
                id: ident(zipf.sample(&mut rng)),
                body: u.clone(),
            };
            let req_id = pipe.submit(&request).expect("latency submit");
            in_flight.insert(req_id, Instant::now());
            submitted += 1;
        }
        match pipe.recv().expect("latency recv") {
            PipeReply::Reply(req_id, _) => {
                if let Some(at) = in_flight.remove(&req_id) {
                    samples.push(at.elapsed());
                }
            }
            PipeReply::Plain(outer) => panic!("unexpected plain reply: {:?}", outer.status),
        }
    }
    samples
}

/// One point of the precompute-tier sweep (schema /2's `cache_sweep`).
struct SweepPoint {
    cache_cap: usize,
    hit_rate: f64,
    p50_us: f64,
    p99_us: f64,
    entries: u64,
    weight_bytes: u64,
}

/// Fetches the server's cache counter rows over the wire (op 4): the
/// sweep reads the same exposition `sempair stats` prints, so the
/// hit-rate below also proves the Prometheus round trip end to end.
fn fetch_cache_rows(addr: SocketAddr, pkg: &Pkg, print_rows: bool) -> Vec<CacheSeries> {
    let mut client =
        TcpSemClient::connect_with(addr, pkg.params().clone(), ClientConfig::default())
            .expect("stats connect");
    let text = client.stats_text().expect("stats fetch");
    if print_rows {
        for line in text.lines().filter(|line| line.starts_with("sem_cache_")) {
            println!("{line}");
        }
    }
    let snapshot = sempair_net::audit::MetricsSnapshot::from_prometheus_text(&text)
        .expect("parseable stats exposition");
    snapshot.caches
}

fn half_key_row(rows: &[CacheSeries]) -> CacheSeries {
    rows.iter()
        .find(|row| row.name == "half_key")
        .expect("half_key cache row")
        .clone()
}

/// Warm phase for one sweep point: one token request per enrolled
/// rank, *coldest rank first*, so when the cache cap is smaller than
/// the enrolled set the LRU finishes the phase holding the hottest
/// (lowest) ranks instead of the tail it saw last.
fn warm_enrolled(addr: SocketAddr, pkg: &Pkg, enrolled: usize) {
    let mut rng = StdRng::seed_from_u64(0xCACE);
    let mut pipe = PipeClient::connect(addr, Duration::from_secs(30)).expect("warm connect");
    let curve = pkg.params().curve();
    let u = curve.point_to_bytes(&curve.mul_generator(&curve.random_scalar(&mut rng)));
    let mut submitted = 0usize;
    let mut received = 0usize;
    while received < enrolled {
        while submitted < enrolled && submitted - received < 64 {
            let request = Request {
                op: Op::IbeToken,
                id: ident(enrolled - 1 - submitted),
                body: u.clone(),
            };
            pipe.submit(&request).expect("warm submit");
            submitted += 1;
        }
        match pipe.recv().expect("warm recv") {
            PipeReply::Reply(..) => received += 1,
            PipeReply::Plain(outer) => panic!("unexpected plain reply: {:?}", outer.status),
        }
    }
}

/// Phase 4: one precompute-tier sweep point. A fresh server per cap
/// (the cap is bind-time config), enrolled keys installed, a full
/// warm pass, then the latency workload over an enrolled-only Zipf —
/// hit-rate is the half-key cache's counter delta across the
/// measured window. Runs on plain loopback, no link emulation: the
/// cache saves pairing CPU, not round trips, and a 4 ms RTT would
/// bury the signal the sweep exists to measure.
fn cache_sweep_point(
    pkg: &Pkg,
    keys: &[SemKey],
    load: &Workload,
    cache_cap: usize,
    print_rows: bool,
) -> SweepPoint {
    let enrolled = keys.len();
    let server = TcpSemServer::bind_with(
        "127.0.0.1:0",
        pkg.params().clone(),
        ServerConfig {
            workers: WORKERS,
            shards: SHARDS,
            queue_cap: 8192,
            pipeline_depth: 64,
            cache_cap,
            ..ServerConfig::default()
        },
    )
    .expect("bind sweep server");
    for key in keys {
        server.install_ibe(key.clone());
    }
    let addr = server.local_addr();
    warm_enrolled(addr, pkg, enrolled);
    let before = half_key_row(&fetch_cache_rows(addr, pkg, false));
    let zipf = Zipf::new(enrolled);
    let mut samples = latency_run(addr, pkg, &zipf, load, 8);
    let p50_us = quantile_us(&mut samples, 0.50);
    let p99_us = quantile_us(&mut samples, 0.99);
    let after = half_key_row(&fetch_cache_rows(addr, pkg, print_rows));
    server.shutdown();
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    SweepPoint {
        cache_cap,
        hit_rate,
        p50_us,
        p99_us,
        entries: after.entries,
        weight_bytes: after.weight_bytes,
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let load = if smoke {
        Workload {
            ids: 20_000,
            hot: 64,
            requests_per_conn: 250,
            latency_samples: 250,
        }
    } else {
        Workload {
            ids: 1_000_000,
            hot: 512,
            requests_per_conn: 4_000,
            latency_samples: 2_000,
        }
    };
    let curve = CurveParams::fast_insecure();
    let mut rng = StdRng::seed_from_u64(20030726);
    let pkg = Pkg::setup(&mut rng, curve);
    let server = TcpSemServer::bind_with(
        "127.0.0.1:0",
        pkg.params().clone(),
        ServerConfig {
            workers: WORKERS,
            shards: SHARDS,
            queue_cap: 8192,
            pipeline_depth: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    // Keys exist for the hot head of the Zipf distribution; the cold
    // tail is refused as unknown — both classes traverse the complete
    // decode → schedule → shard-lock → audit path.
    for rank in 0..load.hot {
        let (_, sem_key) = pkg.extract_split(&mut rng, &ident(rank));
        server.install_ibe(sem_key);
    }
    let proxy = FaultProxy::spawn_linked(
        server.local_addr(),
        FaultPlan::clean(),
        FaultPlan::clean(),
        LINK_ONE_WAY,
    )
    .expect("spawn proxy");
    let addr = proxy.local_addr();
    let zipf = Zipf::new(load.ids);

    println!(
        "# serving benchmark ({})",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "identities={} hot={} workers={WORKERS} shards={SHARDS} conns={CONNS} depth={DEPTH} \
         link={}ms one-way\n",
        load.ids,
        load.hot,
        LINK_ONE_WAY.as_millis()
    );

    let v1_rps = v1_throughput(addr, &pkg, &zipf, &load, CONNS);
    println!("v1 single-in-flight: {v1_rps:.0} req/s");
    let piped_rps = pipelined_throughput(addr, &pkg, &zipf, &load, CONNS, DEPTH);
    let speedup = piped_rps / v1_rps;
    println!("pipelined depth-{DEPTH}: {piped_rps:.0} req/s ({speedup:.1}x, target >= 4x)");

    // Tail latency, quiet vs a one-shard revocation storm. The storm
    // hammers a single foreign shard's write lock; the measured
    // identity stream (hot head lives on every shard) must not see its
    // p99 multiply.
    let mut quiet = latency_run(addr, &pkg, &zipf, &load, 8);
    let quiet_p50 = quantile_us(&mut quiet, 0.50);
    let quiet_p99 = quantile_us(&mut quiet, 0.99);
    println!("quiet: p50 {quiet_p50:.0} µs, p99 {quiet_p99:.0} µs");

    // All revocations land on one shard: the worst case for a single
    // victim shard, the best case for isolation. Identities are
    // pre-generated (the filter re-hashes candidates) and the storm is
    // paced in bursts — revocations arrive over a network in reality,
    // and an unpaced spin loop on a small host would measure the storm
    // thread stealing CPU from the workers, not shard contention.
    let storm_ids: Vec<String> = {
        let storm_shard = 0usize;
        let mut ids = Vec::with_capacity(4096);
        let mut n = 0u64;
        while ids.len() < 4096 {
            let id = format!("churn-{n}");
            n += 1;
            if shard_of(&id, SHARDS) == storm_shard {
                ids.push(id);
            }
        }
        ids
    };
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let storm_stop = std::sync::Arc::clone(&stop);
    let storm_server = &server;
    let storm_ids = &storm_ids;
    let mut storm = std::thread::scope(|scope| {
        scope.spawn(move || {
            // ~8k write-lock acquisitions per second on the victim
            // shard: 8 per burst, one burst per millisecond.
            let mut i = 0usize;
            while !storm_stop.load(std::sync::atomic::Ordering::Relaxed) {
                for _ in 0..8 {
                    storm_server.revoke(&storm_ids[i % storm_ids.len()]);
                    i += 1;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let samples = latency_run(addr, &pkg, &zipf, &load, 8);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        samples
    });
    let storm_p50 = quantile_us(&mut storm, 0.50);
    let storm_p99 = quantile_us(&mut storm, 0.99);
    let p99_ratio = storm_p99 / quiet_p99;
    println!("storm: p50 {storm_p50:.0} µs, p99 {storm_p99:.0} µs ({p99_ratio:.2}x quiet p99, target <= 2x)");

    // Precompute-tier sweep: 1/16 of the population is enrolled (keys
    // installed), caps at {0, ids/64, ids/16}. Cap 0 disables the tier
    // outright — `serve_item` takes the PR 6 uncached pairing path, so
    // the baseline is the genuine pre-cache server, not a cache that
    // always misses.
    let enrolled = load.ids / 16;
    let caps = [0usize, load.ids / 64, enrolled];
    println!("\ncache sweep: {enrolled} enrolled identities, caps {caps:?}");
    let enrolled_keys: Vec<SemKey> = (0..enrolled)
        .map(|rank| pkg.extract_split(&mut rng, &ident(rank)).1)
        .collect();
    let sweep: Vec<SweepPoint> = caps
        .iter()
        .map(|&cap| {
            let point = cache_sweep_point(&pkg, &enrolled_keys, &load, cap, cap == enrolled);
            println!(
                "cap {:>6}: hit-rate {:.1}%, p50 {:.0} µs, p99 {:.0} µs, \
                 {} entries / {} weight bytes",
                point.cache_cap,
                point.hit_rate * 100.0,
                point.p50_us,
                point.p99_us,
                point.entries,
                point.weight_bytes
            );
            point
        })
        .collect();
    let full_cap = &sweep[sweep.len() - 1];
    let hit_ok = full_cap.hit_rate >= 0.8;
    let p50_ok = full_cap.p50_us < sweep[0].p50_us;
    println!(
        "cap=ids/16: hit-rate {:.1}% (target >= 80%), p50 {:.0} µs vs uncached {:.0} µs",
        full_cap.hit_rate * 100.0,
        full_cap.p50_us,
        sweep[0].p50_us
    );

    let sweep_rows = sweep
        .iter()
        .map(|point| {
            format!(
                "    {{\"cache_cap\": {}, \"hit_rate\": {:.4}, \"p50_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"entries\": {}, \"weight_bytes\": {}}}",
                point.cache_cap,
                point.hit_rate,
                point.p50_us,
                point.p99_us,
                point.entries,
                point.weight_bytes
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"schema\": \"sempair-bench-serving/2\",\n  \"mode\": \"{}\",\n  \
         \"identities\": {},\n  \"hot_identities\": {},\n  \"enrolled_identities\": {enrolled},\n  \
         \"zipf_s\": 1.0,\n  \
         \"workers\": {WORKERS},\n  \"shards\": {SHARDS},\n  \"conns\": {CONNS},\n  \
         \"pipeline_depth\": {DEPTH},\n  \"link_one_way_ms\": {},\n  \"results\": {{\n    \
         \"v1_req_per_s\": {v1_rps:.1},\n    \
         \"pipelined_req_per_s\": {piped_rps:.1},\n    \
         \"pipelined_speedup\": {speedup:.2},\n    \
         \"quiet_p50_us\": {quiet_p50:.1},\n    \"quiet_p99_us\": {quiet_p99:.1},\n    \
         \"storm_p50_us\": {storm_p50:.1},\n    \"storm_p99_us\": {storm_p99:.1},\n    \
         \"storm_p99_ratio\": {p99_ratio:.2}\n  }},\n  \"cache_sweep\": [\n{sweep_rows}\n  ],\n  \
         \"targets\": {{\n    \
         \"pipelined_speedup_min\": 4.0,\n    \"pipelined_speedup_ok\": {},\n    \
         \"storm_p99_ratio_max\": 2.0,\n    \"storm_p99_ratio_ok\": {},\n    \
         \"cache_hit_rate_min\": 0.8,\n    \"cache_hit_rate_ok\": {hit_ok},\n    \
         \"cache_p50_improves_ok\": {p50_ok}\n  }}\n}}\n",
        if smoke { "smoke" } else { "full" },
        load.ids,
        load.hot,
        LINK_ONE_WAY.as_millis(),
        speedup >= 4.0,
        p99_ratio <= 2.0,
    );
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("\nwrote BENCH_serving.json");

    proxy.shutdown();
    server.shutdown();
}
