//! Differential tests pinning the fixed-width Montgomery backend
//! bit-exact against the `sempair-bigint` reference implementation.
//!
//! Both backends use `R = 2^{64N}` for an `N`-limb modulus, so a value
//! in Montgomery form has *identical* limbs on either side — we assert
//! that raw-limb equality directly, not just canonical-value equality.
//! Every arithmetic op is driven with the same random inputs through
//! both backends over the paper's 512-bit prime.

use proptest::prelude::*;
use sempair_bigint::{BigUint, MontElem, Montgomery};
use sempair_field::p512::{PAPER_CTX, PAPER_P};
use sempair_field::{Ext2, FieldOps, FpW, MontCtx};

/// The paper prime as a `BigUint`.
fn paper_p_big() -> BigUint {
    BigUint::from_limbs(PAPER_P.to_vec())
}

/// Bigint-side Montgomery context for the paper prime.
fn big_ctx() -> Montgomery {
    Montgomery::new(&paper_p_big()).unwrap()
}

/// Widens a (possibly normalized-short) limb slice to exactly 8 limbs.
fn pad8(limbs: &[u64]) -> [u64; 8] {
    let mut out = [0u64; 8];
    out[..limbs.len()].copy_from_slice(limbs);
    out
}

/// Fixed-width element → the equivalent bigint Montgomery element,
/// by raw limb copy (no form conversion — shared representation).
fn to_big(a: &FpW<8>) -> MontElem {
    MontElem::from_limbs(a.limbs().to_vec())
}

/// Bigint Montgomery element → fixed-width, again by raw limb copy.
fn from_big(a: &MontElem) -> FpW<8> {
    FpW(pad8(a.limbs()))
}

/// Strategy: a canonical residue mod the paper prime, as 8 limbs.
fn residue() -> impl Strategy<Value = [u64; 8]> {
    proptest::collection::vec(any::<u8>(), 64).prop_map(|bytes| {
        let v = BigUint::from_be_bytes(&bytes);
        let (_, r) = v.div_rem(&paper_p_big());
        pad8(r.limbs())
    })
}

/// Strategy: an exponent of up to ~192 bits (3 limbs).
fn exponent() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u8>(), 0..24)
        .prop_map(|bytes| BigUint::from_be_bytes(&bytes).limbs().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conversion into Montgomery form produces identical limbs on
    /// both backends, and round-trips back to the canonical value.
    #[test]
    fn mont_form_is_shared(a in residue()) {
        let fx = PAPER_CTX;
        let bg = big_ctx();
        let fa = fx.to_mont(&a);
        let ba = bg.to_mont(&BigUint::from_limbs(a.to_vec()));
        prop_assert_eq!(fa.limbs().as_slice(), &pad8(ba.limbs())[..]);
        prop_assert_eq!(fx.from_mont(&fa), pad8(bg.from_mont(&ba).limbs()));
    }

    /// Ring ops agree limb-for-limb with the bigint backend.
    #[test]
    fn ring_ops_agree(a in residue(), b in residue()) {
        let fx = PAPER_CTX;
        let bg = big_ctx();
        let (fa, fb) = (fx.to_mont(&a), fx.to_mont(&b));
        let (ba, bb) = (to_big(&fa), to_big(&fb));
        prop_assert_eq!(fx.add(&fa, &fb), from_big(&bg.add(&ba, &bb)));
        prop_assert_eq!(fx.sub(&fa, &fb), from_big(&bg.sub(&ba, &bb)));
        prop_assert_eq!(fx.neg(&fa), from_big(&bg.neg(&ba)));
        prop_assert_eq!(fx.double(&fa), from_big(&bg.double(&ba)));
        prop_assert_eq!(fx.mul(&fa, &fb), from_big(&bg.mul(&ba, &bb)));
        prop_assert_eq!(fx.sqr(&fa), from_big(&bg.sqr(&ba)));
    }

    /// The wide (lazy-reduction) product path reduces to the same
    /// result as the plain CIOS product.
    #[test]
    fn wide_product_agrees(a in residue(), b in residue()) {
        let fx = PAPER_CTX;
        let (fa, fb) = (fx.to_mont(&a), fx.to_mont(&b));
        let wide = fx.mul_wide(&fa, &fb);
        prop_assert_eq!(fx.redc_wide(&wide), fx.mul(&fa, &fb));
    }

    /// Inversion agrees, including the zero case.
    #[test]
    fn inversion_agrees(a in residue()) {
        let fx = PAPER_CTX;
        let bg = big_ctx();
        let fa = fx.to_mont(&a);
        match fx.inv(&fa) {
            Some(fi) => {
                let bi = bg.inv(&to_big(&fa)).unwrap();
                prop_assert_eq!(fi, from_big(&bi));
                prop_assert_eq!(fx.mul(&fa, &fi), fx.one());
            }
            None => prop_assert!(fa.is_zero()),
        }
    }

    /// Exponentiation agrees for arbitrary multi-limb exponents.
    #[test]
    fn pow_agrees(a in residue(), e in exponent()) {
        let fx = PAPER_CTX;
        let bg = big_ctx();
        let fa = fx.to_mont(&a);
        let fp = fx.pow(&fa, &e);
        let bp = bg.pow(&to_big(&fa), &BigUint::from_limbs(e));
        prop_assert_eq!(fp, from_big(&bp));
    }

    /// Square roots: when one exists it squares back, and existence
    /// matches the Euler criterion computed on the bigint side.
    #[test]
    fn sqrt_agrees(a in residue()) {
        let fx = PAPER_CTX;
        let bg = big_ctx();
        let fa = fx.to_mont(&a);
        let (euler_exp, _) = (&paper_p_big() - &BigUint::one()).div_rem(&BigUint::two());
        let euler = bg.pow(&to_big(&fa), &euler_exp);
        let is_qr = fa.is_zero() || bg.from_mont(&euler).is_one();
        match fx.sqrt(&fa) {
            Some(r) => {
                prop_assert!(is_qr);
                prop_assert_eq!(fx.sqr(&r), fa);
            }
            None => prop_assert!(!is_qr),
        }
    }

    /// `Ext2` tower ops (the lazy-reduced overrides in `MontCtx`)
    /// match the same kernel run through schoolbook formulas on the
    /// bigint backend.
    #[test]
    fn ext2_agrees(a0 in residue(), a1 in residue(), b0 in residue(), b1 in residue()) {
        let fx = PAPER_CTX;
        let bg = big_ctx();
        let fa = Ext2 { c0: fx.to_mont(&a0), c1: fx.to_mont(&a1) };
        let fb = Ext2 { c0: fx.to_mont(&b0), c1: fx.to_mont(&b1) };

        // Reference: (a0 + a1 i)(b0 + b1 i) with i² = −1, plain ops.
        let (ba0, ba1) = (to_big(&fa.c0), to_big(&fa.c1));
        let (bb0, bb1) = (to_big(&fb.c0), to_big(&fb.c1));
        let ref_c0 = bg.sub(&bg.mul(&ba0, &bb0), &bg.mul(&ba1, &bb1));
        let ref_c1 = bg.add(&bg.mul(&ba0, &bb1), &bg.mul(&ba1, &bb0));

        let prod = fx.ext2_mul(&fa, &fb);
        prop_assert_eq!(prod.c0, from_big(&ref_c0));
        prop_assert_eq!(prod.c1, from_big(&ref_c1));

        let sq = fx.ext2_sqr(&fa);
        let sq_ref = fx.ext2_mul(&fa, &fa);
        prop_assert_eq!(sq.c0, sq_ref.c0);
        prop_assert_eq!(sq.c1, sq_ref.c1);
    }
}

/// A second width (W2, 128-bit Mersenne-adjacent prime) to make sure
/// the differential property is not an N=8 artifact.
#[test]
fn small_width_backend_agrees() {
    // p = 2^127 − 1 (Mersenne, ≡ 3 mod 4).
    let p_big = &(BigUint::one() << 127) - &BigUint::one();
    let fx: MontCtx<2> = MontCtx::from_limbs(p_big.limbs()).unwrap();
    let bg = Montgomery::new(&p_big).unwrap();
    let mut x = 0x9e3779b97f4a7c15u64;
    for _ in 0..200 {
        // Cheap deterministic LCG-ish stream.
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let y = x.wrapping_mul(0x2545f4914f6cdd1d);
        let a = BigUint::from_limbs(vec![x, y >> 1]);
        let b = BigUint::from_limbs(vec![y, x >> 1]);
        let (fa, fb) = (
            fx.to_mont(&[a.limbs()[0], a.limbs()[1]]),
            fx.to_mont(&[b.limbs()[0], b.limbs()[1]]),
        );
        let (ba, bb) = (bg.to_mont(&a), bg.to_mont(&b));
        let fm = fx.mul(&fa, &fb);
        let bm = bg.mul(&ba, &bb);
        let mut padded = [0u64; 2];
        padded[..bm.limbs().len()].copy_from_slice(bm.limbs());
        assert_eq!(fm.limbs(), &padded);
        let fi = fx.inv(&fa).unwrap();
        assert_eq!(fx.mul(&fa, &fi), fx.one());
    }
}
