//! Compile-time instantiation for the paper's 512-bit parameter set.
//!
//! The Libert–Quisquater deployment prime (`p ≡ 3 (mod 4)`, 512 bits,
//! with a 160-bit pairing order `r | p + 1`) baked into a `const`
//! eight-limb Montgomery context: `R`, `R²`, `-p⁻¹ mod 2⁶⁴` and the
//! square-root exponent are all computed at compile time, so runtime
//! start-up does no precomputation for the default parameters.

use crate::mont::MontCtx;

/// The paper's 512-bit prime, little-endian limbs
/// (`0xa136c1e6…d6e9243`).
pub const PAPER_P: [u64; 8] = [
    0x2c5bcee82d6e9243,
    0xd5a4729a46931755,
    0x87b4b9e9da842e41,
    0x556335280d9a7b08,
    0x826413b9d479b6ff,
    0xbe37d973ef5c23fc,
    0x7bc289fca33cca75,
    0xa136c1e6695cff09,
];

/// The paper's 160-bit pairing order `r`, little-endian limbs
/// (`0xb575819f1529f4608e80d28b409439bdaccefa71`).
pub const PAPER_R: [u64; 3] = [0x409439bdaccefa71, 0x1529f4608e80d28b, 0xb575819f];

/// Eight-limb Montgomery context for [`PAPER_P`], built at compile
/// time.
pub const PAPER_CTX: MontCtx<8> = MontCtx::new(PAPER_P);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_sound() {
        // p ≡ 3 (mod 4) so the sqrt exponent is available.
        assert_eq!(PAPER_P[0] & 3, 3);
        let two = PAPER_CTX.from_u64(2);
        let four = PAPER_CTX.from_u64(4);
        assert_eq!(PAPER_CTX.sqr(&two), four);
        let inv = PAPER_CTX.inv(&two).unwrap();
        assert_eq!(PAPER_CTX.mul(&two, &inv), PAPER_CTX.one());
        // sqrt(4) = ±2.
        let r = PAPER_CTX.sqrt(&four).unwrap();
        assert!(r == two || r == PAPER_CTX.neg(&two));
    }

    #[test]
    fn runtime_construction_matches_const() {
        let rt = MontCtx::<8>::from_limbs(&PAPER_P).unwrap();
        assert_eq!(rt.modulus(), PAPER_CTX.modulus());
        assert_eq!(rt.one(), PAPER_CTX.one());
        let x = PAPER_CTX.from_u64(0x1234_5678_9abc_def0);
        assert_eq!(rt.mul(&x, &x), PAPER_CTX.sqr(&x));
    }
}
