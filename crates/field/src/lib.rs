//! # sempair-field
//!
//! No-allocation, const-generic fixed-width Montgomery field
//! arithmetic and the generic curve/pairing kernels built on it.
//!
//! The workspace's reference arithmetic lives in `sempair-bigint`
//! (heap-allocated, arbitrary precision). This crate provides the fast
//! path: [`mont::FpW`] elements are `[u64; N]` limb arrays on the
//! stack, [`mont::MontCtx`] carries the Montgomery parameters
//! (computable in `const fn`, see [`p512`]), and CIOS multiplication
//! plus lazily-reduced `F_p²` towers ([`ext2`]) remove every
//! allocation and most reductions from the pairing hot loop.
//!
//! Both backends share one set of kernels: [`curve`] and [`miller`]
//! are written against the [`traits::FieldOps`] abstraction, which
//! `MontCtx` implements here and the pairing crate's bigint-backed
//! context implements there. Identical kernels running identical
//! exceptional-case logic is what makes the two backends bit-exact —
//! the pairing crate's differential tests pin that property.
//!
//! Montgomery-form compatibility: for an `N`-limb modulus both
//! backends use `R = 2^{64N}`, so raw limb vectors move between them
//! with a plain copy (no form conversion).
//!
//! Secret scalar material that transits fixed-width paths is carried
//! in [`secret::SecretLimbs`], which zeroizes on drop and redacts its
//! `Debug` output.

pub mod curve;
pub mod ext2;
pub mod limb;
pub mod miller;
pub mod mont;
pub mod p512;
pub mod secret;
pub mod traits;

pub use ext2::Ext2;
pub use mont::{FpW, MontCtx};
pub use secret::SecretLimbs;
pub use traits::FieldOps;
