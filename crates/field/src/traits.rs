//! The backend abstraction: one trait, two engines.
//!
//! [`FieldOps`] is what the generic curve and Miller-loop kernels in
//! [`crate::curve`] and [`crate::miller`] are written against. The
//! fixed-width [`crate::mont::MontCtx`] implements it natively (with a
//! lazy-reduction override for the quadratic extension); the pairing
//! crate implements it for its bigint-backed field context, which
//! keeps `sempair-bigint` as the always-available reference backend
//! running the *same* kernel code.

use crate::ext2::Ext2;
use crate::mont::MontCtx;

/// Prime-field operations over an opaque element type.
///
/// Contexts are cheap to borrow and carry all parameters; elements are
/// plain values with no back-pointer. `equals` need not be
/// constant-time — kernels only use it for structural checks on
/// public-by-construction intermediates (exceptional Miller steps,
/// point-at-infinity detection), mirroring the reference backend.
pub trait FieldOps {
    /// A field element.
    type Elem: Clone;

    /// The additive identity.
    fn zero(&self) -> Self::Elem;
    /// The multiplicative identity.
    fn one(&self) -> Self::Elem;
    /// `true` iff `a` is the additive identity.
    fn is_zero(&self, a: &Self::Elem) -> bool;
    /// Value equality.
    fn equals(&self, a: &Self::Elem, b: &Self::Elem) -> bool;
    /// `a + b`.
    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// `a - b`.
    fn sub(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// `-a`.
    fn neg(&self, a: &Self::Elem) -> Self::Elem;
    /// `2a`.
    fn double(&self, a: &Self::Elem) -> Self::Elem;
    /// `a · b`.
    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// `a²`.
    fn sqr(&self, a: &Self::Elem) -> Self::Elem;
    /// `a⁻¹`, or `None` for zero.
    fn inv(&self, a: &Self::Elem) -> Option<Self::Elem>;

    /// Multiplication in `F_p[i]/(i²+1)`.
    ///
    /// The default is the 3-multiplication Karatsuba every backend
    /// agrees on; fixed-width contexts override it with a
    /// lazily-reduced version (same reduced result, fewer reductions).
    fn ext2_mul(&self, a: &Ext2<Self::Elem>, b: &Ext2<Self::Elem>) -> Ext2<Self::Elem> {
        let v0 = self.mul(&a.c0, &b.c0);
        let v1 = self.mul(&a.c1, &b.c1);
        let s = self.mul(&self.add(&a.c0, &a.c1), &self.add(&b.c0, &b.c1));
        Ext2 {
            c0: self.sub(&v0, &v1),
            c1: self.sub(&self.sub(&s, &v0), &v1),
        }
    }

    /// Squaring in `F_p[i]/(i²+1)` (complex method: two base
    /// multiplications, already reduction-minimal).
    fn ext2_sqr(&self, a: &Ext2<Self::Elem>) -> Ext2<Self::Elem> {
        let t0 = self.mul(&self.add(&a.c0, &a.c1), &self.sub(&a.c0, &a.c1));
        let t1 = self.double(&self.mul(&a.c0, &a.c1));
        Ext2 { c0: t0, c1: t1 }
    }
}

impl<const N: usize> FieldOps for crate::mont::MontCtx<N> {
    type Elem = crate::mont::FpW<N>;

    #[inline]
    fn zero(&self) -> Self::Elem {
        MontCtx::zero(self)
    }
    #[inline]
    fn one(&self) -> Self::Elem {
        MontCtx::one(self)
    }
    #[inline]
    fn is_zero(&self, a: &Self::Elem) -> bool {
        a.is_zero()
    }
    #[inline]
    fn equals(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        a == b
    }
    #[inline]
    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        MontCtx::add(self, a, b)
    }
    #[inline]
    fn sub(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        MontCtx::sub(self, a, b)
    }
    #[inline]
    fn neg(&self, a: &Self::Elem) -> Self::Elem {
        MontCtx::neg(self, a)
    }
    #[inline]
    fn double(&self, a: &Self::Elem) -> Self::Elem {
        MontCtx::double(self, a)
    }
    #[inline]
    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        MontCtx::mul(self, a, b)
    }
    #[inline]
    fn sqr(&self, a: &Self::Elem) -> Self::Elem {
        MontCtx::sqr(self, a)
    }
    #[inline]
    fn inv(&self, a: &Self::Elem) -> Option<Self::Elem> {
        MontCtx::inv(self, a)
    }

    /// Lazily-reduced Karatsuba: three double-width products, two
    /// Montgomery reductions (instead of three mul + three reduce).
    /// Wide chains are subtraction-only — see [`crate::mont`] docs.
    fn ext2_mul(&self, a: &Ext2<Self::Elem>, b: &Ext2<Self::Elem>) -> Ext2<Self::Elem> {
        let v0 = self.mul_wide(&a.c0, &b.c0);
        let v1 = self.mul_wide(&a.c1, &b.c1);
        let s = MontCtx::add(self, &a.c0, &a.c1);
        let t = MontCtx::add(self, &b.c0, &b.c1);
        let st = self.mul_wide(&s, &t);
        let c0 = self.redc_wide(&self.sub_wide(&v0, &v1));
        let c1 = self.redc_wide(&self.sub_wide(&self.sub_wide(&st, &v0), &v1));
        Ext2 { c0, c1 }
    }
}
