//! Fixed-width Montgomery arithmetic: `FpW<N>` over `[u64; N]` limbs.
//!
//! This is the allocation-free engine under the pairing hot path. A
//! [`MontCtx`] precomputes everything CIOS Montgomery multiplication
//! needs for an odd modulus of **exactly** `N` limbs (top limb
//! nonzero), so `R = 2^{64N}` — deliberately the same convention as
//! `sempair_bigint::Montgomery` for a `k = N` limb modulus, which makes
//! Montgomery-form limbs portable between the two backends with plain
//! copies.
//!
//! All constructors are `const fn`, so paper-scale parameters can be
//! instantiated at compile time (see [`crate::p512`]).
//!
//! # Lazy reduction (`Wide`)
//!
//! Quadratic-extension multiplication wants to defer reductions across
//! a mul/sub chain. The usual "no-carry" trick needs `2p < R`, which
//! the paper's 512-bit prime violates (`p > R/2`), so we instead work
//! with exact double-width values **mod `p·R`**:
//!
//! - a product of two reduced elements is `< p² < pR`;
//! - [`MontCtx::sub_wide`] keeps representatives in `[0, pR)` by
//!   adding `pR` (which is `p` shifted up `N` limbs) on borrow;
//! - **no wide additions are performed** — `2p² > pR` is possible for
//!   this prime, so chains are arranged as subtractions only;
//! - [`MontCtx::redc_wide`] reduces any `t < pR` to `t·R⁻¹ mod p`:
//!   after adding `N` rounds of `m·p` the running value is
//!   `< pR + Rp = 2pR < 2^{128N+1}` (one extra bit), and the shifted
//!   result is `< 2p`, fixed by a single conditional subtraction.
//!
//! Since `pR ≡ 0 (mod p)`, working with representatives mod `pR` never
//! changes the reduced result.

use crate::limb::{adc, bit_len, mac, sbb};

/// An `N`-limb field element in Montgomery form (little-endian limbs,
/// value `< p`).
///
/// `FpW` is a plain `Copy` value with no back-pointer to its context;
/// mixing elements of different contexts is a logic error (as with the
/// bigint backend). Secret-bearing *copies that outlive an operation*
/// should live in [`crate::secret::SecretLimbs`], which zeroizes on
/// drop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FpW<const N: usize>(pub [u64; N]);

impl<const N: usize> FpW<N> {
    /// The raw Montgomery-form limbs.
    #[inline]
    pub fn limbs(&self) -> &[u64; N] {
        &self.0
    }

    /// `true` iff this is the zero element (all limbs zero).
    #[inline]
    pub fn is_zero(&self) -> bool {
        let mut acc = 0u64;
        let mut i = 0;
        while i < N {
            acc |= self.0[i];
            i += 1;
        }
        acc == 0
    }

    /// Constant-time equality: folds all limb differences into one
    /// accumulator, no early exit.
    #[inline]
    pub fn ct_eq(&self, other: &Self) -> bool {
        let mut acc = 0u64;
        for i in 0..N {
            acc |= self.0[i] ^ other.0[i];
        }
        acc == 0
    }

    /// Constant-time select: `a` if `flag`, else `b`, without a
    /// data-dependent branch.
    #[inline]
    pub fn select(flag: bool, a: &Self, b: &Self) -> Self {
        let mask = (flag as u64).wrapping_neg();
        let mut out = [0u64; N];
        for (i, o) in out.iter_mut().enumerate() {
            *o = (a.0[i] & mask) | (b.0[i] & !mask);
        }
        FpW(out)
    }
}

// --- const limb helpers (usable at compile time) -------------------------

const fn limbs_ge<const N: usize>(a: &[u64; N], b: &[u64; N]) -> bool {
    let mut i = N;
    while i > 0 {
        i -= 1;
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a - b`, returning the final borrow.
const fn limbs_sub<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut borrow = 0u64;
    let mut i = 0;
    while i < N {
        let (d, bo) = sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = bo;
        i += 1;
    }
    (out, borrow)
}

/// `a + b`, returning the final carry.
const fn limbs_add<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut carry = 0u64;
    let mut i = 0;
    while i < N {
        let (s, c) = adc(a[i], b[i], carry);
        out[i] = s;
        carry = c;
        i += 1;
    }
    (out, carry)
}

/// Branchless `if cond { a } else { b }` on limb arrays.
const fn limbs_select<const N: usize>(cond: bool, a: &[u64; N], b: &[u64; N]) -> [u64; N] {
    let mask = (cond as u64).wrapping_neg();
    let mut out = [0u64; N];
    let mut i = 0;
    while i < N {
        out[i] = (a[i] & mask) | (b[i] & !mask);
        i += 1;
    }
    out
}

/// `(sum, carry) → sum mod n`, assuming `sum + carry·2^{64N} < 2n`.
const fn reduce_once<const N: usize>(sum: [u64; N], carry: u64, n: &[u64; N]) -> [u64; N] {
    let (diff, borrow) = limbs_sub(&sum, n);
    // If the addition carried out, the subtraction's borrow is
    // consumed by that extra bit and `diff` is the reduced value.
    limbs_select(carry == 1 || borrow == 0, &diff, &sum)
}

const fn add_mod<const N: usize>(a: &[u64; N], b: &[u64; N], n: &[u64; N]) -> [u64; N] {
    let (sum, carry) = limbs_add(a, b);
    reduce_once(sum, carry, n)
}

/// Inverse of an odd `x` modulo `2^64` (Newton iteration).
const fn inv_mod_u64(x: u64) -> u64 {
    let mut inv = x; // correct to 3 bits: x·x ≡ 1 (mod 8) for odd x
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
        i += 1;
    }
    inv
}

/// Double-width value in `[0, p·R)` awaiting Montgomery reduction:
/// conceptually limbs `lo[0..N]` then `hi[0..N]`.
///
/// Built by [`MontCtx::mul_wide`], combined with
/// [`MontCtx::sub_wide`] (subtraction only — see the module docs for
/// why additions are excluded), consumed by [`MontCtx::redc_wide`].
#[derive(Clone, Copy, Debug)]
pub struct Wide<const N: usize> {
    lo: [u64; N],
    hi: [u64; N],
}

/// Precomputed Montgomery context for an odd modulus of exactly `N`
/// nonzero-top limbs.
#[derive(Clone, Debug)]
pub struct MontCtx<const N: usize> {
    n: [u64; N],
    n0_inv: u64,  // -n⁻¹ mod 2^64
    r1: [u64; N], // R mod n (Montgomery form of 1)
    r2: [u64; N], // R² mod n
    /// `(p + 1) / 4` when `p ≡ 3 (mod 4)` — the square-root exponent.
    sqrt_exp: Option<[u64; N]>,
}

impl<const N: usize> MontCtx<N> {
    /// Builds a context at compile time; panics (at compile time when
    /// used in a `const`) if the modulus is invalid.
    pub const fn new(n: [u64; N]) -> Self {
        match Self::new_checked(n) {
            Some(ctx) => ctx,
            None => panic!("MontCtx: modulus must be odd with a nonzero top limb"),
        }
    }

    /// Builds a context, returning `None` for an invalid modulus
    /// (`N = 0`, even, or top limb zero — i.e. the width must be exact).
    pub const fn new_checked(n: [u64; N]) -> Option<Self> {
        if N == 0 || n[0] & 1 == 0 || n[N - 1] == 0 {
            return None;
        }
        let n0_inv = inv_mod_u64(n[0]).wrapping_neg();
        // R mod n by 64N doublings of 1, then R² by 64N more.
        let mut one = [0u64; N];
        one[0] = 1;
        let mut acc = one;
        let mut i = 0;
        while i < 64 * N {
            acc = add_mod(&acc, &acc, &n);
            i += 1;
        }
        let r1 = acc;
        let mut i = 0;
        while i < 64 * N {
            acc = add_mod(&acc, &acc, &n);
            i += 1;
        }
        let r2 = acc;
        let sqrt_exp = if n[0] & 3 == 3 {
            // (n + 1) / 4: the +1 may carry out of N limbs (n + 1 can
            // be exactly 2^{64N}); inject that carry while shifting.
            let (n1, carry) = limbs_add(&n, &one);
            let mut e = [0u64; N];
            let mut i = 0;
            while i < N {
                let next = if i + 1 < N { n1[i + 1] } else { carry };
                e[i] = (n1[i] >> 2) | (next << 62);
                i += 1;
            }
            Some(e)
        } else {
            None
        };
        Some(MontCtx {
            n,
            n0_inv,
            r1,
            r2,
            sqrt_exp,
        })
    }

    /// Runtime constructor from a little-endian limb slice; `None`
    /// unless the slice is exactly `N` limbs of a valid modulus.
    pub fn from_limbs(limbs: &[u64]) -> Option<Self> {
        if limbs.len() != N {
            return None;
        }
        let mut n = [0u64; N];
        n.copy_from_slice(limbs);
        Self::new_checked(n)
    }

    /// The modulus limbs.
    pub fn modulus(&self) -> &[u64; N] {
        &self.n
    }

    /// The additive identity.
    #[inline]
    pub fn zero(&self) -> FpW<N> {
        FpW([0u64; N])
    }

    /// The multiplicative identity (`R mod n`).
    #[inline]
    pub fn one(&self) -> FpW<N> {
        FpW(self.r1)
    }

    /// Converts a canonical value `< n` into Montgomery form.
    pub fn to_mont(&self, canonical: &[u64; N]) -> FpW<N> {
        self.mul(&FpW(*canonical), &FpW(self.r2))
    }

    /// Montgomery form of a small integer (`v` must be `< n`).
    pub fn from_u64(&self, v: u64) -> FpW<N> {
        let mut c = [0u64; N];
        c[0] = v;
        self.to_mont(&c)
    }

    /// Converts back to the canonical representative in `[0, n)`.
    pub fn from_mont(&self, a: &FpW<N>) -> [u64; N] {
        let mut one_raw = [0u64; N];
        one_raw[0] = 1;
        self.mul(a, &FpW(one_raw)).0
    }

    /// `a + b`.
    #[inline]
    pub fn add(&self, a: &FpW<N>, b: &FpW<N>) -> FpW<N> {
        let (sum, carry) = limbs_add(&a.0, &b.0);
        FpW(reduce_once(sum, carry, &self.n))
    }

    /// `2a`.
    #[inline]
    pub fn double(&self, a: &FpW<N>) -> FpW<N> {
        self.add(a, a)
    }

    /// `a - b`.
    #[inline]
    pub fn sub(&self, a: &FpW<N>, b: &FpW<N>) -> FpW<N> {
        let (diff, borrow) = limbs_sub(&a.0, &b.0);
        let (fixed, _) = limbs_add(&diff, &self.n);
        FpW(limbs_select(borrow == 1, &fixed, &diff))
    }

    /// `-a`.
    #[inline]
    pub fn neg(&self, a: &FpW<N>) -> FpW<N> {
        self.sub(&self.zero(), a)
    }

    /// CIOS Montgomery multiplication: `a·b·R⁻¹ mod n`, result reduced
    /// to `[0, n)`.
    ///
    /// Identical algorithm (and therefore identical limb results) to
    /// `sempair_bigint::Montgomery::mul`, minus its heap-allocated
    /// scratch row — the whole state is `N + 2` limbs of stack.
    pub fn mul(&self, a: &FpW<N>, b: &FpW<N>) -> FpW<N> {
        let mut t = [0u64; N];
        let mut t_n = 0u64; // t[N]

        for i in 0..N {
            // t += a[i] · b
            let ai = a.0[i];
            let mut carry = 0u64;
            for (tj, bj) in t.iter_mut().zip(b.0.iter()) {
                let (lo, hi) = mac(*tj, ai, *bj, carry);
                *tj = lo;
                carry = hi;
            }
            let (s, c) = adc(t_n, carry, 0);
            t_n = s;
            let t_n1 = c; // t[N+1], always 0 or 1

            // t += m · n, then shift one limb right.
            let m = t[0].wrapping_mul(self.n0_inv);
            let (_, mut carry) = mac(t[0], m, self.n[0], 0);
            for j in 1..N {
                let (lo, hi) = mac(t[j], m, self.n[j], carry);
                t[j - 1] = lo;
                carry = hi;
            }
            let (s, c) = adc(t_n, carry, 0);
            t[N - 1] = s;
            t_n = t_n1 + c;
        }
        debug_assert!(t_n <= 1);
        FpW(reduce_once(t, t_n, &self.n))
    }

    /// `a²` (CIOS; the asymmetric-operand savings of a dedicated
    /// squaring are below 20% at these widths and not worth a second
    /// carry-chain to audit).
    #[inline]
    pub fn sqr(&self, a: &FpW<N>) -> FpW<N> {
        self.mul(a, a)
    }

    /// Full double-width product of two reduced elements (`< p² < pR`),
    /// reduction deferred.
    pub fn mul_wide(&self, a: &FpW<N>, b: &FpW<N>) -> Wide<N> {
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        for i in 0..N {
            let ai = a.0[i];
            let mut carry = 0u64;
            let split = N - i; // first `split` targets land in `lo`
            for j in 0..split {
                let (l, h) = mac(lo[i + j], ai, b.0[j], carry);
                lo[i + j] = l;
                carry = h;
            }
            for j in split..N {
                let (l, h) = mac(hi[j - split], ai, b.0[j], carry);
                hi[j - split] = l;
                carry = h;
            }
            hi[i] = carry; // fresh position t[i+N]
        }
        Wide { lo, hi }
    }

    /// `a - b` on double-width values, as representatives mod `p·R`:
    /// a borrow is repaired by adding `pR` (= `p` shifted up `N`
    /// limbs), keeping the result in `[0, pR)`.
    pub fn sub_wide(&self, a: &Wide<N>, b: &Wide<N>) -> Wide<N> {
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        let mut borrow = 0u64;
        for (i, l) in lo.iter_mut().enumerate() {
            let (d, bo) = sbb(a.lo[i], b.lo[i], borrow);
            *l = d;
            borrow = bo;
        }
        for (i, h) in hi.iter_mut().enumerate() {
            let (d, bo) = sbb(a.hi[i], b.hi[i], borrow);
            *h = d;
            borrow = bo;
        }
        // On borrow add pR: the wrap cancels exactly (result < pR).
        let (fixed, _) = limbs_add(&hi, &self.n);
        Wide {
            lo,
            hi: limbs_select(borrow == 1, &fixed, &hi),
        }
    }

    /// Montgomery-reduces a double-width `t < pR` to `t·R⁻¹ mod p`,
    /// result reduced to `[0, p)`.
    pub fn redc_wide(&self, t: &Wide<N>) -> FpW<N> {
        let mut lo = t.lo;
        let mut hi = t.hi;
        // Rolling carry for position `i + N`: iteration `i` produces a
        // carry-out landing there, and any overflow from that addition
        // lands at `i + 1 + N` — exactly where iteration `i + 1` adds
        // its own carry. Keeping it in a register instead of walking
        // the upper limbs keeps every loop fixed-length.
        let mut top = 0u64;
        for i in 0..N {
            let m = lo[i].wrapping_mul(self.n0_inv);
            let mut carry = 0u64;
            let split = N - i;
            for j in 0..split {
                let (l, h) = mac(lo[i + j], m, self.n[j], carry);
                lo[i + j] = l;
                carry = h;
            }
            for j in split..N {
                let (l, h) = mac(hi[j - split], m, self.n[j], carry);
                hi[j - split] = l;
                carry = h;
            }
            let (s, c) = adc(hi[i], carry, top);
            hi[i] = s;
            top = c;
        }
        debug_assert!(top <= 1);
        // Value / R = hi (+ top·2^{64N}) < 2p: one conditional sub.
        FpW(reduce_once(hi, top, &self.n))
    }

    /// `a⁻¹`, or `None` for zero — binary extended GCD on the raw
    /// Montgomery limbs.
    ///
    /// Inverting the Montgomery form `vR` yields `v⁻¹R⁻¹`; two
    /// `to_mont` multiplications restore `v⁻¹R`. The iteration is
    /// **variable-time** (like the bigint backend's Euclid-based
    /// inverse): every inversion in the pairing stack is of a line
    /// denominator or a projective `Z`, values already blinded by the
    /// curve arithmetic, and the reference backend has the same
    /// profile.
    pub fn inv(&self, a: &FpW<N>) -> Option<FpW<N>> {
        if a.is_zero() {
            return None;
        }
        let mut u = a.0;
        let mut v = self.n;
        let mut x1 = [0u64; N];
        x1[0] = 1;
        let mut x2 = [0u64; N];
        let one = x1;
        while u != one && v != one {
            while u[0] & 1 == 0 {
                shr1(&mut u, 0);
                halve_mod(&mut x1, &self.n);
            }
            while v[0] & 1 == 0 {
                shr1(&mut v, 0);
                halve_mod(&mut x2, &self.n);
            }
            if limbs_ge(&u, &v) {
                let (d, _) = limbs_sub(&u, &v);
                u = d;
                x1 = sub_mod(&x1, &x2, &self.n);
            } else {
                let (d, _) = limbs_sub(&v, &u);
                v = d;
                x2 = sub_mod(&x2, &x1, &self.n);
            }
        }
        let raw_inv = FpW(if u == one { x1 } else { x2 });
        // raw_inv = (vR)⁻¹ = v⁻¹R⁻¹; ·R² via two to_mont steps.
        let r2 = FpW(self.r2);
        Some(self.mul(&self.mul(&raw_inv, &r2), &r2))
    }

    /// `a^e` for a little-endian limb exponent (square-and-multiply,
    /// MSB first — matches the bigint backend's `Fp` pow shape).
    pub fn pow(&self, a: &FpW<N>, e: &[u64]) -> FpW<N> {
        let bits = bit_len(e);
        let mut acc = self.one();
        for i in (0..bits).rev() {
            acc = self.sqr(&acc);
            if crate::limb::bit(e, i) {
                acc = self.mul(&acc, a);
            }
        }
        acc
    }

    /// A square root of `a`, if one exists (`p ≡ 3 (mod 4)` fast path
    /// only; contexts for other primes return `None` — callers fall
    /// back to the reference backend's Tonelli–Shanks).
    pub fn sqrt(&self, a: &FpW<N>) -> Option<FpW<N>> {
        if a.is_zero() {
            return Some(self.zero());
        }
        let exp = self.sqrt_exp?;
        let r = self.pow(a, &exp);
        if self.sqr(&r) == *a {
            Some(r)
        } else {
            None
        }
    }

    /// `true` iff the context has the `p ≡ 3 (mod 4)` sqrt fast path.
    pub fn has_sqrt(&self) -> bool {
        self.sqrt_exp.is_some()
    }

    /// Parity (lsb) of the canonical representative.
    pub fn parity(&self, a: &FpW<N>) -> bool {
        self.from_mont(a)[0] & 1 == 1
    }
}

/// In-place right shift by one bit, injecting `top_bit` at the top.
fn shr1<const N: usize>(a: &mut [u64; N], top_bit: u64) {
    for i in 0..N - 1 {
        a[i] = (a[i] >> 1) | (a[i + 1] << 63);
    }
    a[N - 1] = (a[N - 1] >> 1) | (top_bit << 63);
}

/// `x / 2 mod n` for odd `n`: halve if even, else halve `x + n`
/// (keeping the carry bit as the incoming top bit).
fn halve_mod<const N: usize>(x: &mut [u64; N], n: &[u64; N]) {
    if x[0] & 1 == 0 {
        shr1(x, 0);
    } else {
        let (sum, carry) = limbs_add(x, n);
        *x = sum;
        shr1(x, carry);
    }
}

/// `a - b mod n` on canonical limbs.
fn sub_mod<const N: usize>(a: &[u64; N], b: &[u64; N], n: &[u64; N]) -> [u64; N] {
    let (diff, borrow) = limbs_sub(a, b);
    let (fixed, _) = limbs_add(&diff, n);
    limbs_select(borrow == 1, &fixed, &diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    // 2^127 − 1: Mersenne prime ≡ 3 (mod 4), two limbs.
    const P127: [u64; 2] = [u64::MAX, u64::MAX >> 1];
    const CTX: MontCtx<2> = MontCtx::new(P127);

    fn fe(v: u64) -> FpW<2> {
        CTX.from_u64(v)
    }

    #[test]
    fn const_context_is_valid() {
        // R mod p for p = 2^127 − 1: R = 2^128 ≡ 2 (mod p).
        assert_eq!(CTX.from_mont(&CTX.one()), [1, 0]);
        assert_eq!(CTX.one().0, [2, 0]);
        assert!(CTX.has_sqrt());
    }

    #[test]
    fn field_axioms() {
        let a = fe(123_456_789);
        let b = fe(987_654_321);
        assert_eq!(CTX.add(&a, &b), CTX.add(&b, &a));
        assert_eq!(CTX.mul(&a, &b), CTX.mul(&b, &a));
        assert_eq!(CTX.sub(&a, &a), CTX.zero());
        assert_eq!(CTX.add(&a, &CTX.neg(&a)), CTX.zero());
        assert_eq!(CTX.mul(&a, &CTX.one()), a);
        assert_eq!(CTX.double(&a), CTX.add(&a, &a));
        assert_eq!(CTX.sqr(&a), CTX.mul(&a, &a));
        assert_eq!(
            CTX.from_mont(&CTX.mul(&fe(1234), &fe(5678))),
            [1234u64 * 5678, 0]
        );
    }

    #[test]
    fn inversion_and_pow() {
        let a = fe(31337);
        let inv = CTX.inv(&a).unwrap();
        assert_eq!(CTX.mul(&a, &inv), CTX.one());
        assert!(CTX.inv(&CTX.zero()).is_none());
        // Fermat: a^(p−1) = 1.
        let mut e = P127;
        e[0] -= 1;
        assert_eq!(CTX.pow(&a, &e), CTX.one());
        assert_eq!(CTX.pow(&a, &[]), CTX.one());
        assert_eq!(CTX.pow(&a, &[1]), a);
    }

    #[test]
    fn sqrt_roundtrip() {
        for v in [2u64, 3, 5, 101, 123_456] {
            let a = fe(v);
            let sq = CTX.sqr(&a);
            let r = CTX.sqrt(&sq).unwrap();
            assert!(r == a || r == CTX.neg(&a));
        }
        assert_eq!(CTX.sqrt(&CTX.zero()), Some(CTX.zero()));
    }

    #[test]
    fn wide_mul_sub_redc_match_eager() {
        let a = fe(0xdead_beef_cafe);
        let b = fe(0x1234_5678_9abc);
        let c = fe(77_777_777);
        let d = fe(99_999_999);
        // redc(a·b) = mont_mul(a, b)
        assert_eq!(CTX.redc_wide(&CTX.mul_wide(&a, &b)), CTX.mul(&a, &b));
        // redc(a·b − c·d) = a·b − c·d (both orders of magnitude).
        let w = CTX.sub_wide(&CTX.mul_wide(&a, &b), &CTX.mul_wide(&c, &d));
        assert_eq!(
            CTX.redc_wide(&w),
            CTX.sub(&CTX.mul(&a, &b), &CTX.mul(&c, &d))
        );
        let w = CTX.sub_wide(&CTX.mul_wide(&c, &d), &CTX.mul_wide(&a, &b));
        assert_eq!(
            CTX.redc_wide(&w),
            CTX.sub(&CTX.mul(&c, &d), &CTX.mul(&a, &b))
        );
    }

    #[test]
    fn ct_helpers() {
        let a = fe(5);
        let b = fe(6);
        assert!(a.ct_eq(&a));
        assert!(!a.ct_eq(&b));
        assert_eq!(FpW::select(true, &a, &b), a);
        assert_eq!(FpW::select(false, &a, &b), b);
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(MontCtx::<2>::new_checked([4, 1]).is_none()); // even
        assert!(MontCtx::<2>::new_checked([5, 0]).is_none()); // short width
        assert!(MontCtx::<2>::from_limbs(&[5]).is_none()); // wrong len
        assert!(MontCtx::<1>::from_limbs(&[11]).is_some());
    }

    #[test]
    fn parity_and_canonical_roundtrip() {
        let a = fe(10);
        assert_ne!(CTX.parity(&a), CTX.parity(&CTX.neg(&a)));
        let canon = CTX.from_mont(&a);
        assert_eq!(CTX.to_mont(&canon), a);
    }
}
