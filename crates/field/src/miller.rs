//! Generic Miller-loop kernels for the modified Tate pairing
//! `ê(P, Q) = f_{r,P}(φ(Q))^((p²−1)/r)` with distortion map
//! `φ(x, y) = (−x, iy)` on `E : y² = x³ + x`.
//!
//! These mirror the pairing crate's historical loops line-for-line
//! (including the exceptional-case handling, which intentionally
//! differs between the single and multi loops), hoisted behind
//! [`FieldOps`] so both backends run identical arithmetic. Points are
//! passed as non-infinity `(x, y)` pairs — identity special-casing
//! stays with the caller, as before.
//!
//! All `r` / cofactor arguments are little-endian limb slices.

use crate::ext2::{self, Ext2};
use crate::limb::{bit, bit_len};
use crate::traits::FieldOps;

/// One cached line: `l'(Q) = (a·x_Q + b) + (c·y_Q)·i`, stored `[a, b, c]`.
pub type Line<E> = [E; 3];

/// A non-infinity affine point `(x, y)` passed by reference.
pub type PointRef<'a, E> = (&'a E, &'a E);

/// One `(P, Q)` input to the shared multi-Miller loop.
pub type PairRef<'a, E> = (PointRef<'a, E>, PointRef<'a, E>);

/// One `(cached lines of P, Q)` input to the prepared multi loop.
pub type PreparedPairRef<'a, E> = (&'a [Line<E>], PointRef<'a, E>);

/// Miller loop `f_{r,P}(φ(Q))` over affine intermediate points (the
/// textbook reference loop; one inversion per step).
pub fn miller_affine<F: FieldOps>(
    f: &F,
    r: &[u64],
    p: (&F::Elem, &F::Elem),
    q: (&F::Elem, &F::Elem),
) -> Ext2<F::Elem> {
    let (px, py) = p;
    let (qx, qy) = q;
    // φ(Q) = (−x_Q, i·y_Q).
    let s_neg_x = f.neg(qx);
    let s_y = qy.clone();

    let vertical = |f: &F, tx: &F::Elem| -> Ext2<F::Elem> {
        Ext2 {
            c0: f.sub(&s_neg_x, tx),
            c1: f.zero(),
        }
    };
    let line = |f: &F, tx: &F::Elem, ty: &F::Elem, lambda: &F::Elem| -> Ext2<F::Elem> {
        Ext2 {
            c0: f.sub(&f.mul(lambda, &f.sub(tx, &s_neg_x)), ty),
            c1: s_y.clone(),
        }
    };

    let mut acc = ext2::one(f);
    let mut tx = px.clone();
    let mut ty = py.clone();
    let mut t_is_infinity = false;

    for i in (0..bit_len(r) - 1).rev() {
        acc = ext2::sqr(f, &acc);
        if !t_is_infinity {
            if f.is_zero(&ty) {
                // 2T = O: the "tangent" is the vertical through T.
                acc = ext2::mul(f, &acc, &vertical(f, &tx));
                t_is_infinity = true;
            } else {
                // λ = (3x² + 1) / 2y  (a = 1)
                let x2 = f.sqr(&tx);
                let num = f.add(&f.add(&f.double(&x2), &x2), &f.one());
                let lambda = f.mul(&num, &f.inv(&f.double(&ty)).expect("2y != 0"));
                acc = ext2::mul(f, &acc, &line(f, &tx, &ty, &lambda));
                let x3 = f.sub(&f.sub(&f.sqr(&lambda), &tx), &tx);
                let y3 = f.sub(&f.mul(&lambda, &f.sub(&tx, &x3)), &ty);
                tx = x3;
                ty = y3;
            }
        }
        if bit(r, i) && !t_is_infinity {
            if f.equals(&tx, px) {
                if f.equals(&ty, py) && !f.is_zero(py) {
                    // T = P: tangent case (cannot occur for prime r > 2
                    // mid-loop, but handled for completeness).
                    let x2 = f.sqr(&tx);
                    let num = f.add(&f.add(&f.double(&x2), &x2), &f.one());
                    let lambda = f.mul(&num, &f.inv(&f.double(&ty)).expect("2y != 0"));
                    acc = ext2::mul(f, &acc, &line(f, &tx, &ty, &lambda));
                    let x3 = f.sub(&f.sub(&f.sqr(&lambda), &tx), &tx);
                    let y3 = f.sub(&f.mul(&lambda, &f.sub(&tx, &x3)), &ty);
                    tx = x3;
                    ty = y3;
                } else {
                    // T = −P: chord is the vertical through P; T+P = O.
                    acc = ext2::mul(f, &acc, &vertical(f, &tx));
                    t_is_infinity = true;
                }
            } else {
                let lambda = f.mul(&f.sub(py, &ty), &f.inv(&f.sub(px, &tx)).expect("px != tx"));
                acc = ext2::mul(f, &acc, &line(f, &tx, &ty, &lambda));
                let x3 = f.sub(&f.sub(&f.sqr(&lambda), &tx), px);
                let y3 = f.sub(&f.mul(&lambda, &f.sub(&tx, &x3)), &ty);
                tx = x3;
                ty = y3;
            }
        }
    }
    acc
}

/// Inversion-free Miller loop over Jacobian coordinates with fused,
/// subfield-scaled line evaluation (the production loop).
pub fn miller_projective<F: FieldOps>(
    f: &F,
    r: &[u64],
    p: (&F::Elem, &F::Elem),
    q: (&F::Elem, &F::Elem),
) -> Ext2<F::Elem> {
    let (px, py) = p;
    let (qx, qy) = q;

    let mut acc = ext2::one(f);
    // T = (X, Y, Z) in Jacobian coordinates, starting at P (Z = 1).
    let mut tx = px.clone();
    let mut ty = py.clone();
    let mut tz = f.one();
    let mut t_is_infinity = false;

    for i in (0..bit_len(r) - 1).rev() {
        acc = ext2::sqr(f, &acc);
        if !t_is_infinity {
            if f.is_zero(&ty) {
                // Tangent at a 2-torsion point is vertical: skip (F_p).
                t_is_infinity = true;
            } else {
                // Doubling with fused line evaluation:
                // l' = (M(X + Z²·x_Q) − 2Y²) + (2YZ³·y_Q)·i
                let y2 = f.sqr(&ty);
                let z2 = f.sqr(&tz);
                let x2 = f.sqr(&tx);
                let m = f.add(&f.add(&f.double(&x2), &x2), &f.sqr(&z2));
                let c0 = f.sub(&f.mul(&m, &f.add(&tx, &f.mul(&z2, qx))), &f.double(&y2));
                let c1 = f.mul(&f.double(&f.mul(&ty, &f.mul(&z2, &tz))), qy);
                acc = ext2::mul(f, &acc, &Ext2 { c0, c1 });
                // T <- 2T (standard Jacobian doubling).
                let s = f.double(&f.double(&f.mul(&tx, &y2)));
                let x3 = f.sub(&f.sqr(&m), &f.double(&s));
                let y4_8 = f.double(&f.double(&f.double(&f.sqr(&y2))));
                let y3 = f.sub(&f.mul(&m, &f.sub(&s, &x3)), &y4_8);
                let z3 = f.double(&f.mul(&ty, &tz));
                tx = x3;
                ty = y3;
                tz = z3;
            }
        }
        if bit(r, i) && !t_is_infinity {
            // Mixed addition T + P with fused line evaluation.
            let z2 = f.sqr(&tz);
            let u2 = f.mul(px, &z2);
            let s2 = f.mul(py, &f.mul(&z2, &tz));
            let h = f.sub(&u2, &tx);
            let rr = f.sub(&s2, &ty);
            if f.is_zero(&h) {
                if f.is_zero(&rr) && !f.is_zero(py) {
                    // T = P: tangent fallback (cannot occur mid-loop for
                    // a prime-order point, handled for completeness).
                    let px2 = f.sqr(px);
                    let m = f.add(&f.add(&f.double(&px2), &px2), &f.one());
                    let c0 = f.sub(&f.mul(&m, &f.add(px, qx)), &f.double(&f.sqr(py)));
                    let c1 = f.mul(&f.double(py), qy);
                    acc = ext2::mul(f, &acc, &Ext2 { c0, c1 });
                    let y2 = f.sqr(&ty);
                    let z2 = f.sqr(&tz);
                    let x2 = f.sqr(&tx);
                    let m = f.add(&f.add(&f.double(&x2), &x2), &f.sqr(&z2));
                    let s = f.double(&f.double(&f.mul(&tx, &y2)));
                    let x3 = f.sub(&f.sqr(&m), &f.double(&s));
                    let y3 = f.sub(
                        &f.mul(&m, &f.sub(&s, &x3)),
                        &f.double(&f.double(&f.double(&f.sqr(&y2)))),
                    );
                    let z3 = f.double(&f.mul(&ty, &tz));
                    tx = x3;
                    ty = y3;
                    tz = z3;
                } else {
                    // T = −P: vertical chord, value in F_p — skip it.
                    t_is_infinity = true;
                }
            } else {
                // l' = (R(x_Q + x_P) − Z·H·y_P) + (Z·H·y_Q)·i
                let zh = f.mul(&tz, &h);
                let c0 = f.sub(&f.mul(&rr, &f.add(qx, px)), &f.mul(&zh, py));
                let c1 = f.mul(&zh, qy);
                acc = ext2::mul(f, &acc, &Ext2 { c0, c1 });
                // T <- T + P (mixed Jacobian addition).
                let hh = f.sqr(&h);
                let hhh = f.mul(&hh, &h);
                let v = f.mul(&tx, &hh);
                let x3 = f.sub(&f.sub(&f.sqr(&rr), &hhh), &f.double(&v));
                let y3 = f.sub(&f.mul(&rr, &f.sub(&v, &x3)), &f.mul(&ty, &hhh));
                let z3 = f.mul(&tz, &h);
                tx = x3;
                ty = y3;
                tz = z3;
            }
        }
    }
    acc
}

/// Per-pair state for the shared multi-Miller loop.
struct PairState<E> {
    tx: E,
    ty: E,
    tz: E,
    t_is_infinity: bool,
    px: E,
    py: E,
    qx: E,
    qy: E,
}

/// Shared Miller loop for a product `Π f_{r,Pᵢ}(φ(Qᵢ))`: one
/// accumulator squaring chain serves every pair. Pairs must be
/// non-infinity on both sides (callers filter identities, which
/// contribute the factor 1).
///
/// Exceptional chord steps (`H = 0`) mark the pair done instead of
/// running the single loop's tangent fallback — for prime `r` the
/// tangent case cannot occur before the final iteration, and this is
/// the behavior the multi-pairing has always had.
pub fn multi_miller<F: FieldOps>(
    f: &F,
    r: &[u64],
    pairs: &[PairRef<'_, F::Elem>],
) -> Ext2<F::Elem> {
    let mut states: Vec<PairState<F::Elem>> = pairs
        .iter()
        .map(|((px, py), (qx, qy))| PairState {
            tx: (*px).clone(),
            ty: (*py).clone(),
            tz: f.one(),
            t_is_infinity: false,
            px: (*px).clone(),
            py: (*py).clone(),
            qx: (*qx).clone(),
            qy: (*qy).clone(),
        })
        .collect();
    let mut acc = ext2::one(f);
    if states.is_empty() {
        return acc;
    }

    for i in (0..bit_len(r) - 1).rev() {
        acc = ext2::sqr(f, &acc);
        for st in states.iter_mut() {
            if st.t_is_infinity {
                continue;
            }
            if f.is_zero(&st.ty) {
                st.t_is_infinity = true;
                continue;
            }
            let y2 = f.sqr(&st.ty);
            let z2 = f.sqr(&st.tz);
            let x2 = f.sqr(&st.tx);
            let m = f.add(&f.add(&f.double(&x2), &x2), &f.sqr(&z2));
            let c0 = f.sub(
                &f.mul(&m, &f.add(&st.tx, &f.mul(&z2, &st.qx))),
                &f.double(&y2),
            );
            let c1 = f.mul(&f.double(&f.mul(&st.ty, &f.mul(&z2, &st.tz))), &st.qy);
            acc = ext2::mul(f, &acc, &Ext2 { c0, c1 });
            let s = f.double(&f.double(&f.mul(&st.tx, &y2)));
            let x3 = f.sub(&f.sqr(&m), &f.double(&s));
            let y3 = f.sub(
                &f.mul(&m, &f.sub(&s, &x3)),
                &f.double(&f.double(&f.double(&f.sqr(&y2)))),
            );
            let z3 = f.double(&f.mul(&st.ty, &st.tz));
            st.tx = x3;
            st.ty = y3;
            st.tz = z3;
        }
        if bit(r, i) {
            for st in states.iter_mut() {
                if st.t_is_infinity {
                    continue;
                }
                let z2 = f.sqr(&st.tz);
                let u2 = f.mul(&st.px, &z2);
                let s2 = f.mul(&st.py, &f.mul(&z2, &st.tz));
                let h = f.sub(&u2, &st.tx);
                let rr = f.sub(&s2, &st.ty);
                if f.is_zero(&h) {
                    // T = ±P at the exceptional tail: vertical (F_p) or
                    // the impossible mid-loop tangent — skip either way.
                    st.t_is_infinity = true;
                    continue;
                }
                let zh = f.mul(&st.tz, &h);
                let c0 = f.sub(&f.mul(&rr, &f.add(&st.qx, &st.px)), &f.mul(&zh, &st.py));
                let c1 = f.mul(&zh, &st.qy);
                acc = ext2::mul(f, &acc, &Ext2 { c0, c1 });
                let hh = f.sqr(&h);
                let hhh = f.mul(&hh, &h);
                let v = f.mul(&st.tx, &hh);
                let x3 = f.sub(&f.sub(&f.sqr(&rr), &hhh), &f.double(&v));
                let y3 = f.sub(&f.mul(&rr, &f.sub(&v, &x3)), &f.mul(&st.ty, &hhh));
                st.tx = x3;
                st.ty = y3;
                st.tz = f.mul(&st.tz, &h);
            }
        }
    }
    acc
}

/// Walks the Jacobian chain of [`miller_projective`] for `p` alone,
/// caching each line's `(a, b, c)` coefficients (tangent step:
/// `a = M·Z²`, `b = M·X − 2Y²`, `c = 2YZ³`; chord step: `a = R`,
/// `b = R·x_P − ZH·y_P`, `c = ZH`). The vector ends early iff the
/// chain hit the point at infinity.
pub fn prepare_lines<F: FieldOps>(f: &F, r: &[u64], p: (&F::Elem, &F::Elem)) -> Vec<Line<F::Elem>> {
    let (px, py) = p;
    let r_bits = bit_len(r);
    let capacity = (r_bits - 1) + (0..r_bits).filter(|&i| bit(r, i)).count();
    let mut steps = Vec::with_capacity(capacity);
    let mut tx = px.clone();
    let mut ty = py.clone();
    let mut tz = f.one();

    'outer: for i in (0..r_bits - 1).rev() {
        if f.is_zero(&ty) {
            // Tangent at a 2-torsion point is vertical (subfield): the
            // chain is done, as in the live loop.
            break;
        }
        let y2 = f.sqr(&ty);
        let z2 = f.sqr(&tz);
        let x2 = f.sqr(&tx);
        let m = f.add(&f.add(&f.double(&x2), &x2), &f.sqr(&z2));
        steps.push([
            f.mul(&m, &z2),
            f.sub(&f.mul(&m, &tx), &f.double(&y2)),
            f.double(&f.mul(&ty, &f.mul(&z2, &tz))),
        ]);
        let s = f.double(&f.double(&f.mul(&tx, &y2)));
        let x3 = f.sub(&f.sqr(&m), &f.double(&s));
        let y3 = f.sub(
            &f.mul(&m, &f.sub(&s, &x3)),
            &f.double(&f.double(&f.double(&f.sqr(&y2)))),
        );
        let z3 = f.double(&f.mul(&ty, &tz));
        tx = x3;
        ty = y3;
        tz = z3;

        if bit(r, i) {
            let z2 = f.sqr(&tz);
            let u2 = f.mul(px, &z2);
            let s2 = f.mul(py, &f.mul(&z2, &tz));
            let h = f.sub(&u2, &tx);
            let rr = f.sub(&s2, &ty);
            if f.is_zero(&h) {
                if f.is_zero(&rr) && !f.is_zero(py) {
                    // T = P: doubling-style line at P (mirrors the live
                    // loop's completeness fallback).
                    let px2 = f.sqr(px);
                    let m = f.add(&f.add(&f.double(&px2), &px2), &f.one());
                    steps.push([
                        m.clone(),
                        f.sub(&f.mul(&m, px), &f.double(&f.sqr(py))),
                        f.double(py),
                    ]);
                    let y2 = f.sqr(&ty);
                    let z2 = f.sqr(&tz);
                    let x2 = f.sqr(&tx);
                    let m = f.add(&f.add(&f.double(&x2), &x2), &f.sqr(&z2));
                    let s = f.double(&f.double(&f.mul(&tx, &y2)));
                    let x3 = f.sub(&f.sqr(&m), &f.double(&s));
                    let y3 = f.sub(
                        &f.mul(&m, &f.sub(&s, &x3)),
                        &f.double(&f.double(&f.double(&f.sqr(&y2)))),
                    );
                    let z3 = f.double(&f.mul(&ty, &tz));
                    tx = x3;
                    ty = y3;
                    tz = z3;
                } else {
                    // T = −P: vertical chord (subfield); chain is done.
                    break 'outer;
                }
            } else {
                steps.push([
                    rr.clone(),
                    f.sub(&f.mul(&rr, px), &f.mul(&f.mul(&tz, &h), py)),
                    f.mul(&tz, &h),
                ]);
                let hh = f.sqr(&h);
                let hhh = f.mul(&hh, &h);
                let v = f.mul(&tx, &hh);
                let x3 = f.sub(&f.sub(&f.sqr(&rr), &hhh), &f.double(&v));
                let y3 = f.sub(&f.mul(&rr, &f.sub(&v, &x3)), &f.mul(&ty, &hhh));
                let z3 = f.mul(&tz, &h);
                tx = x3;
                ty = y3;
                tz = z3;
            }
        }
    }
    steps
}

/// Evaluates one cached line at `Q = (qx, qy)`.
#[inline]
fn eval_line<F: FieldOps>(
    f: &F,
    line: &Line<F::Elem>,
    qx: &F::Elem,
    qy: &F::Elem,
) -> Ext2<F::Elem> {
    Ext2 {
        c0: f.add(&f.mul(&line[0], qx), &line[1]),
        c1: f.mul(&line[2], qy),
    }
}

/// Miller loop replaying cached line coefficients against a fresh `Q`;
/// bit-for-bit identical to [`miller_projective`] on the original `P`.
pub fn miller_prepared<F: FieldOps>(
    f: &F,
    r: &[u64],
    steps: &[Line<F::Elem>],
    q: (&F::Elem, &F::Elem),
) -> Ext2<F::Elem> {
    let (qx, qy) = q;
    let mut acc = ext2::one(f);
    let mut pos = 0usize;
    for i in (0..bit_len(r) - 1).rev() {
        acc = ext2::sqr(f, &acc);
        if pos < steps.len() {
            acc = ext2::mul(f, &acc, &eval_line(f, &steps[pos], qx, qy));
            pos += 1;
        }
        if bit(r, i) && pos < steps.len() {
            acc = ext2::mul(f, &acc, &eval_line(f, &steps[pos], qx, qy));
            pos += 1;
        }
    }
    acc
}

/// Shared-squaring Miller loop where every first argument is a cached
/// line chain.
pub fn multi_miller_prepared<F: FieldOps>(
    f: &F,
    r: &[u64],
    pairs: &[PreparedPairRef<'_, F::Elem>],
) -> Ext2<F::Elem> {
    let mut acc = ext2::one(f);
    if pairs.is_empty() {
        return acc;
    }
    let mut positions = vec![0usize; pairs.len()];
    for i in (0..bit_len(r) - 1).rev() {
        acc = ext2::sqr(f, &acc);
        for (k, (steps, (qx, qy))) in pairs.iter().enumerate() {
            if positions[k] < steps.len() {
                acc = ext2::mul(f, &acc, &eval_line(f, &steps[positions[k]], qx, qy));
                positions[k] += 1;
            }
        }
        if bit(r, i) {
            for (k, (steps, (qx, qy))) in pairs.iter().enumerate() {
                if positions[k] < steps.len() {
                    acc = ext2::mul(f, &acc, &eval_line(f, &steps[positions[k]], qx, qy));
                    positions[k] += 1;
                }
            }
        }
    }
    acc
}

/// The final exponentiation `m^((p²−1)/r)` applied as the cheap
/// Frobenius division `conj(m)/m` (making the value unitary) followed
/// by one `F_p²` exponentiation by `cofactor = (p+1)/r`.
///
/// # Panics
///
/// Panics if `m = 0`, which no valid Miller value is — callers guard
/// degenerate inputs first, as the reference implementation always has.
pub fn final_exp<F: FieldOps>(f: &F, cofactor: &[u64], m: &Ext2<F::Elem>) -> Ext2<F::Elem> {
    let m_inv = ext2::inv(f, m).expect("miller value nonzero");
    let unitary = ext2::mul(f, &ext2::conj(f, m), &m_inv);
    ext2::pow(f, &unitary, cofactor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{affine_neg, scalar_mul};
    use crate::mont::{FpW, MontCtx};

    /// p = 11, r = 3 (3 | p + 1 = 12), cofactor 4.
    const F11: MontCtx<1> = MontCtx::new([11]);
    const R: [u64; 1] = [3];
    const COFACTOR: [u64; 1] = [4];

    /// A point of exact order 3 on E(F_11).
    fn order3_point() -> (FpW<1>, FpW<1>) {
        for x in 0..11u64 {
            let xe = F11.from_u64(x);
            let rhs = F11.add(&F11.mul(&F11.sqr(&xe), &xe), &xe);
            if let Some(y) = F11.sqrt(&rhs) {
                if let Some(p3) = scalar_mul(&F11, &COFACTOR, Some((&xe, &y))) {
                    assert!(scalar_mul(&F11, &R, Some((&p3.0, &p3.1))).is_none());
                    return p3;
                }
            }
        }
        panic!("no order-3 point found");
    }

    fn pairing(p: (&FpW<1>, &FpW<1>), q: (&FpW<1>, &FpW<1>)) -> Ext2<FpW<1>> {
        final_exp(&F11, &COFACTOR, &miller_projective(&F11, &R, p, q))
    }

    #[test]
    fn nondegenerate_and_order_r() {
        let (px, py) = order3_point();
        let g = pairing((&px, &py), (&px, &py));
        assert!(!ext2::is_one(&F11, &g));
        assert!(ext2::is_one(&F11, &ext2::pow(&F11, &g, &R)));
    }

    #[test]
    fn affine_and_projective_agree_after_final_exp() {
        let (px, py) = order3_point();
        let p2 = scalar_mul(&F11, &[2], Some((&px, &py))).unwrap();
        for a in [(&px, &py), (&p2.0, &p2.1)] {
            for b in [(&px, &py), (&p2.0, &p2.1)] {
                let aff = final_exp(&F11, &COFACTOR, &miller_affine(&F11, &R, a, b));
                let proj = final_exp(&F11, &COFACTOR, &miller_projective(&F11, &R, a, b));
                assert!(ext2::equals(&F11, &aff, &proj));
            }
        }
    }

    #[test]
    fn bilinearity() {
        let (px, py) = order3_point();
        let p2 = scalar_mul(&F11, &[2], Some((&px, &py))).unwrap();
        let e11 = pairing((&px, &py), (&px, &py));
        let e21 = pairing((&p2.0, &p2.1), (&px, &py));
        let e12 = pairing((&px, &py), (&p2.0, &p2.1));
        let expect = ext2::sqr(&F11, &e11);
        assert!(ext2::equals(&F11, &e21, &expect));
        assert!(ext2::equals(&F11, &e12, &expect));
    }

    #[test]
    fn prepared_matches_fresh_and_multi() {
        let (px, py) = order3_point();
        let p2 = scalar_mul(&F11, &[2], Some((&px, &py))).unwrap();
        let steps_p = prepare_lines(&F11, &R, (&px, &py));
        let steps_p2 = prepare_lines(&F11, &R, (&p2.0, &p2.1));
        for (steps, first) in [(&steps_p, (&px, &py)), (&steps_p2, (&p2.0, &p2.1))] {
            for second in [(&px, &py), (&p2.0, &p2.1)] {
                let fresh = miller_projective(&F11, &R, first, second);
                let prep = miller_prepared(&F11, &R, steps, second);
                assert!(ext2::equals(&F11, &fresh, &prep));
            }
        }
        // Multi-Miller product equals the product of single loops after
        // final exponentiation.
        let multi = final_exp(
            &F11,
            &COFACTOR,
            &multi_miller(
                &F11,
                &R,
                &[((&px, &py), (&p2.0, &p2.1)), ((&p2.0, &p2.1), (&px, &py))],
            ),
        );
        let single = ext2::mul(
            &F11,
            &pairing((&px, &py), (&p2.0, &p2.1)),
            &pairing((&p2.0, &p2.1), (&px, &py)),
        );
        assert!(ext2::equals(&F11, &multi, &single));
        // Prepared multi agrees too.
        let multi_prep = final_exp(
            &F11,
            &COFACTOR,
            &multi_miller_prepared(
                &F11,
                &R,
                &[
                    (steps_p.as_slice(), (&p2.0, &p2.1)),
                    (steps_p2.as_slice(), (&px, &py)),
                ],
            ),
        );
        assert!(ext2::equals(&F11, &multi_prep, &multi));
    }

    #[test]
    fn antisymmetric_under_negation() {
        let (px, py) = order3_point();
        let n = affine_neg(&F11, Some((&px, &py))).unwrap();
        let e = pairing((&px, &py), (&px, &py));
        let e_neg = pairing((&n.0, &n.1), (&px, &py));
        assert!(ext2::is_one(&F11, &ext2::mul(&F11, &e, &e_neg)));
    }
}
