//! Limb-level primitives shared by the fixed-width arithmetic.
//!
//! Everything here is `const fn` so the paper-scale contexts can be
//! instantiated at compile time (see [`crate::p512`]).

/// `a + b + carry` → `(sum, carry_out)`.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let wide = (a as u128) + (b as u128) + (carry as u128);
    (wide as u64, (wide >> 64) as u64)
}

/// `a - b - borrow` → `(diff, borrow_out)` with `borrow ∈ {0, 1}`.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let wide = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (wide as u64, (wide >> 127) as u64)
}

/// `acc + a * b + carry` → `(lo, hi)` — the fused multiply-accumulate
/// at the heart of CIOS.
#[inline(always)]
pub const fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let wide = (acc as u128) + (a as u128) * (b as u128) + (carry as u128);
    (wide as u64, (wide >> 64) as u64)
}

/// Bit `i` of a little-endian limb slice (`false` beyond the end).
#[inline]
pub fn bit(limbs: &[u64], i: usize) -> bool {
    match limbs.get(i / 64) {
        Some(l) => (l >> (i % 64)) & 1 == 1,
        None => false,
    }
}

/// Bit length of a little-endian limb slice (index of the highest set
/// bit plus one; zero for the all-zero slice).
pub fn bit_len(limbs: &[u64]) -> usize {
    for (i, &l) in limbs.iter().enumerate().rev() {
        if l != 0 {
            return i * 64 + (64 - l.leading_zeros() as usize);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_sbb_mac_basics() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(1, 2, 1), (4, 0));
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 2, 1), (2, 0));
        let (lo, hi) = mac(7, u64::MAX, u64::MAX, 3);
        // u64::MAX² = 2^128 − 2^65 + 1
        let expect = (u64::MAX as u128) * (u64::MAX as u128) + 10;
        assert_eq!(lo as u128 | ((hi as u128) << 64), expect);
    }

    #[test]
    fn bit_helpers() {
        let limbs = [0b1010u64, 1 << 63];
        assert!(!bit(&limbs, 0));
        assert!(bit(&limbs, 1));
        assert!(bit(&limbs, 3));
        assert!(bit(&limbs, 127));
        assert!(!bit(&limbs, 128));
        assert_eq!(bit_len(&limbs), 128);
        assert_eq!(bit_len(&[0b1010u64]), 4);
        assert_eq!(bit_len(&[0u64, 0]), 0);
    }
}
