//! Generic group-arithmetic kernels for `E : y² = x³ + x`.
//!
//! These are the *same* formulas the pairing crate has always used
//! (Jacobian double/add with the `a = 1` curve coefficient, 4-bit
//! windowed scalar multiplication, Pippenger buckets) — written once
//! against [`FieldOps`] so the bigint reference backend and the
//! fixed-width backend execute identical arithmetic and agree
//! limb-for-limb.
//!
//! Points use a backend-neutral representation: affine points are
//! `Option<(x, y)>` (`None` = infinity), Jacobian points are
//! [`JPoint`] with infinity encoded as `Z = 0`.

use crate::limb::{bit, bit_len};
use crate::traits::FieldOps;

/// An affine point, `None` for the point at infinity.
pub type Affine<E> = Option<(E, E)>;

/// Borrowed view of an affine point.
pub type AffineRef<'a, E> = Option<(&'a E, &'a E)>;

/// A Jacobian point `(X, Y, Z)` with `x = X/Z²`, `y = Y/Z³`; infinity
/// encoded as `Z = 0`.
#[derive(Clone, Debug)]
pub struct JPoint<E> {
    /// X coordinate.
    pub x: E,
    /// Y coordinate.
    pub y: E,
    /// Z coordinate (zero at infinity).
    pub z: E,
}

/// The Jacobian identity.
pub fn jp_infinity<F: FieldOps>(f: &F) -> JPoint<F::Elem> {
    JPoint {
        x: f.one(),
        y: f.one(),
        z: f.zero(),
    }
}

/// `true` iff the point is the identity.
pub fn jp_is_infinity<F: FieldOps>(f: &F, p: &JPoint<F::Elem>) -> bool {
    f.is_zero(&p.z)
}

/// Converts to affine (one inversion).
pub fn jp_to_affine<F: FieldOps>(f: &F, p: &JPoint<F::Elem>) -> Affine<F::Elem> {
    if jp_is_infinity(f, p) {
        return None;
    }
    let z_inv = f.inv(&p.z).expect("nonzero z");
    let z_inv2 = f.sqr(&z_inv);
    let z_inv3 = f.mul(&z_inv2, &z_inv);
    Some((f.mul(&p.x, &z_inv2), f.mul(&p.y, &z_inv3)))
}

/// Lifts an affine point into Jacobian coordinates (`Z = 1`).
pub fn jp_from_affine<F: FieldOps>(f: &F, p: AffineRef<'_, F::Elem>) -> JPoint<F::Elem> {
    match p {
        None => jp_infinity(f),
        Some((x, y)) => JPoint {
            x: x.clone(),
            y: y.clone(),
            z: f.one(),
        },
    }
}

/// Jacobian doubling (`a = 1` curve coefficient: `M = 3X² + Z⁴`).
pub fn jp_double<F: FieldOps>(f: &F, p: &JPoint<F::Elem>) -> JPoint<F::Elem> {
    if jp_is_infinity(f, p) || f.is_zero(&p.y) {
        return jp_infinity(f);
    }
    let y2 = f.sqr(&p.y);
    let s = f.double(&f.double(&f.mul(&p.x, &y2))); // 4XY²
    let x2 = f.sqr(&p.x);
    let z2 = f.sqr(&p.z);
    let m = f.add(&f.add(&f.double(&x2), &x2), &f.sqr(&z2));
    let x3 = f.sub(&f.sqr(&m), &f.double(&s));
    let y4_8 = f.double(&f.double(&f.double(&f.sqr(&y2)))); // 8Y⁴
    let y3 = f.sub(&f.mul(&m, &f.sub(&s, &x3)), &y4_8);
    let z3 = f.double(&f.mul(&p.y, &p.z));
    JPoint {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// Full Jacobian–Jacobian addition (handles all cases).
pub fn jp_add<F: FieldOps>(f: &F, p: &JPoint<F::Elem>, q: &JPoint<F::Elem>) -> JPoint<F::Elem> {
    if jp_is_infinity(f, p) {
        return q.clone();
    }
    if jp_is_infinity(f, q) {
        return p.clone();
    }
    let z1z1 = f.sqr(&p.z);
    let z2z2 = f.sqr(&q.z);
    let u1 = f.mul(&p.x, &z2z2);
    let u2 = f.mul(&q.x, &z1z1);
    let s1 = f.mul(&p.y, &f.mul(&z2z2, &q.z));
    let s2 = f.mul(&q.y, &f.mul(&z1z1, &p.z));
    if f.equals(&u1, &u2) {
        if f.equals(&s1, &s2) {
            return jp_double(f, p);
        }
        return jp_infinity(f);
    }
    let h = f.sub(&u2, &u1);
    let hh = f.sqr(&h);
    let hhh = f.mul(&hh, &h);
    let r = f.sub(&s2, &s1);
    let v = f.mul(&u1, &hh);
    let x3 = f.sub(&f.sub(&f.sqr(&r), &hhh), &f.double(&v));
    let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.mul(&s1, &hhh));
    let z3 = f.mul(&h, &f.mul(&p.z, &q.z));
    JPoint {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// Mixed addition with an affine point (`Z2 = 1`).
pub fn jp_add_affine<F: FieldOps>(
    f: &F,
    p: &JPoint<F::Elem>,
    q: AffineRef<'_, F::Elem>,
) -> JPoint<F::Elem> {
    let Some((qx, qy)) = q else {
        return p.clone();
    };
    if jp_is_infinity(f, p) {
        return JPoint {
            x: qx.clone(),
            y: qy.clone(),
            z: f.one(),
        };
    }
    let z1z1 = f.sqr(&p.z);
    let u2 = f.mul(qx, &z1z1);
    let s2 = f.mul(qy, &f.mul(&z1z1, &p.z));
    if f.equals(&u2, &p.x) {
        if f.equals(&s2, &p.y) {
            return jp_double(f, p);
        }
        return jp_infinity(f);
    }
    let h = f.sub(&u2, &p.x);
    let hh = f.sqr(&h);
    let hhh = f.mul(&hh, &h);
    let r = f.sub(&s2, &p.y);
    let v = f.mul(&p.x, &hh);
    let x3 = f.sub(&f.sub(&f.sqr(&r), &hhh), &f.double(&v));
    let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.mul(&p.y, &hhh));
    let z3 = f.mul(&p.z, &h);
    JPoint {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// `-P` in affine coordinates.
pub fn affine_neg<F: FieldOps>(f: &F, p: AffineRef<'_, F::Elem>) -> Affine<F::Elem> {
    p.map(|(x, y)| (x.clone(), f.neg(y)))
}

/// Affine point addition (handles all cases; one inversion).
pub fn affine_add<F: FieldOps>(
    f: &F,
    p: AffineRef<'_, F::Elem>,
    q: AffineRef<'_, F::Elem>,
) -> Affine<F::Elem> {
    let Some((px, py)) = p else {
        return q.map(|(x, y)| (x.clone(), y.clone()));
    };
    let Some((qx, qy)) = q else {
        return Some((px.clone(), py.clone()));
    };
    let lambda = if f.equals(px, qx) {
        if !f.equals(py, qy) || f.is_zero(py) {
            // P = -Q (or a 2-torsion doubling): result is infinity.
            return None;
        }
        // Tangent: (3x² + 1) / 2y   (curve coefficient a = 1).
        let num = f.add(&f.add(&f.double(&f.sqr(px)), &f.sqr(px)), &f.one());
        let den = f.double(py);
        f.mul(&num, &f.inv(&den).expect("2y != 0"))
    } else {
        let num = f.sub(qy, py);
        let den = f.sub(qx, px);
        f.mul(&num, &f.inv(&den).expect("qx != px"))
    };
    let x3 = f.sub(&f.sub(&f.sqr(&lambda), px), qx);
    let y3 = f.sub(&f.mul(&lambda, &f.sub(px, &x3)), py);
    Some((x3, y3))
}

/// `true` iff `(x, y)` satisfies `y² = x³ + x`.
pub fn is_on_curve<F: FieldOps>(f: &F, x: &F::Elem, y: &F::Elem) -> bool {
    let lhs = f.sqr(y);
    let rhs = f.add(&f.mul(&f.sqr(x), x), x);
    f.equals(&lhs, &rhs)
}

/// Scalar multiplication `k·P` with a 4-bit fixed window over Jacobian
/// coordinates; `k` is a little-endian limb scalar.
pub fn scalar_mul<F: FieldOps>(f: &F, k: &[u64], p: AffineRef<'_, F::Elem>) -> Affine<F::Elem> {
    let bits = bit_len(k);
    if bits == 0 || p.is_none() {
        return None;
    }
    // Precompute 1P..15P in affine (cheap additions, amortized).
    let mut table: Vec<Affine<F::Elem>> = Vec::with_capacity(16);
    table.push(None);
    table.push(p.map(|(x, y)| (x.clone(), y.clone())));
    for i in 2..16 {
        let prev = table[i - 1].as_ref().map(|(x, y)| (x, y));
        table.push(affine_add(f, prev, p));
    }
    let top_window = bits.div_ceil(4) * 4;
    let mut acc = jp_infinity(f);
    let mut w = top_window;
    while w >= 4 {
        w -= 4;
        acc = jp_double(f, &acc);
        acc = jp_double(f, &acc);
        acc = jp_double(f, &acc);
        acc = jp_double(f, &acc);
        let mut digit = 0usize;
        for b in 0..4 {
            if bit(k, w + b) {
                digit |= 1 << b;
            }
        }
        if digit != 0 {
            let entry = table[digit].as_ref().map(|(x, y)| (x, y));
            acc = jp_add_affine(f, &acc, entry);
        }
    }
    jp_to_affine(f, &acc)
}

/// Multi-scalar multiplication `Σ kᵢ·Pᵢ` via Pippenger's bucket method
/// (same window schedule as the reference implementation).
pub fn multi_scalar_mul<F: FieldOps>(
    f: &F,
    terms: &[(&[u64], AffineRef<'_, F::Elem>)],
) -> Affine<F::Elem> {
    let live: Vec<&(&[u64], AffineRef<'_, F::Elem>)> = terms
        .iter()
        .filter(|(k, p)| bit_len(k) != 0 && p.is_some())
        .collect();
    if live.is_empty() {
        return None;
    }
    if live.len() == 1 {
        return scalar_mul(f, live[0].0, live[0].1);
    }
    // Window width: the usual n / log n balance point.
    let c = match live.len() {
        0..=3 => 2,
        4..=15 => 3,
        16..=63 => 4,
        64..=255 => 5,
        _ => 6,
    };
    let max_bits = live
        .iter()
        .map(|(k, _)| bit_len(k))
        .max()
        .expect("nonempty");
    let windows = max_bits.div_ceil(c);
    let mut acc = jp_infinity(f);
    let mut buckets: Vec<JPoint<F::Elem>> = vec![jp_infinity(f); (1 << c) - 1];
    for w in (0..windows).rev() {
        for _ in 0..c {
            acc = jp_double(f, &acc);
        }
        for bucket in buckets.iter_mut() {
            *bucket = jp_infinity(f);
        }
        for (k, point) in &live {
            let mut digit = 0usize;
            for b in 0..c {
                if bit(k, w * c + b) {
                    digit |= 1 << b;
                }
            }
            if digit != 0 {
                buckets[digit - 1] = jp_add_affine(f, &buckets[digit - 1], *point);
            }
        }
        // Σ j·Bⱼ: running partial sums from the top bucket down.
        let mut running = jp_infinity(f);
        let mut window_sum = jp_infinity(f);
        for bucket in buckets.iter().rev() {
            running = jp_add(f, &running, bucket);
            window_sum = jp_add(f, &window_sum, &running);
        }
        acc = jp_add(f, &acc, &window_sum);
    }
    jp_to_affine(f, &acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mont::{FpW, MontCtx};

    /// The tiny hand-checkable curve: p = 11, E(F_11) has 12 points.
    const F11: MontCtx<1> = MontCtx::new([11]);

    fn all_points(f: &MontCtx<1>) -> Vec<Affine<FpW<1>>> {
        let mut pts = vec![None];
        for x in 0..11u64 {
            for y in 0..11u64 {
                let xe = f.from_u64(x);
                let ye = f.from_u64(y);
                if is_on_curve(f, &xe, &ye) {
                    pts.push(Some((xe, ye)));
                }
            }
        }
        pts
    }

    fn as_ref<E>(p: &Affine<E>) -> AffineRef<'_, E> {
        p.as_ref().map(|(x, y)| (x, y))
    }

    #[test]
    fn group_order_and_scalar_kill() {
        let pts = all_points(&F11);
        assert_eq!(pts.len(), 12);
        for p in &pts {
            assert!(scalar_mul(&F11, &[12], as_ref(p)).is_none(), "{p:?}");
        }
    }

    #[test]
    fn addition_matches_repeated_add() {
        for p in all_points(&F11) {
            let mut acc: Affine<FpW<1>> = None;
            for k in 1u64..=12 {
                acc = affine_add(&F11, as_ref(&acc), as_ref(&p));
                assert_eq!(scalar_mul(&F11, &[k], as_ref(&p)), acc, "k={k}");
            }
        }
    }

    #[test]
    fn jacobian_add_matches_affine_exhaustively() {
        let pts = all_points(&F11);
        for a in &pts {
            for b in &pts {
                let ja = jp_from_affine(&F11, as_ref(a));
                let jb = jp_from_affine(&F11, as_ref(b));
                assert_eq!(
                    jp_to_affine(&F11, &jp_add(&F11, &ja, &jb)),
                    affine_add(&F11, as_ref(a), as_ref(b))
                );
                assert_eq!(
                    jp_to_affine(&F11, &jp_add_affine(&F11, &ja, as_ref(b))),
                    affine_add(&F11, as_ref(a), as_ref(b))
                );
            }
        }
    }

    #[test]
    fn negation_and_two_torsion() {
        for p in all_points(&F11) {
            let n = affine_neg(&F11, as_ref(&p));
            assert!(affine_add(&F11, as_ref(&p), as_ref(&n)).is_none());
        }
        // (0, 0) has order 2.
        let t = Some((F11.from_u64(0), F11.from_u64(0)));
        assert!(affine_add(&F11, as_ref(&t), as_ref(&t)).is_none());
        assert!(scalar_mul(&F11, &[2], as_ref(&t)).is_none());
        assert_eq!(scalar_mul(&F11, &[3], as_ref(&t)), t);
    }

    #[test]
    fn multi_scalar_matches_term_by_term() {
        let pts = all_points(&F11);
        for n in 0..8usize {
            let scalars: Vec<[u64; 1]> = (0..n).map(|i| [(3 * i + 1) as u64]).collect();
            let points: Vec<Affine<FpW<1>>> =
                (0..n).map(|i| pts[(i * 5 + 1) % pts.len()]).collect();
            let terms: Vec<(&[u64], AffineRef<'_, FpW<1>>)> = scalars
                .iter()
                .zip(points.iter())
                .map(|(k, p)| (k.as_slice(), as_ref(p)))
                .collect();
            let mut expect: Affine<FpW<1>> = None;
            for (k, p) in &terms {
                let kp = scalar_mul(&F11, k, *p);
                expect = affine_add(&F11, as_ref(&expect), as_ref(&kp));
            }
            assert_eq!(multi_scalar_mul(&F11, &terms), expect, "n={n}");
        }
    }
}
