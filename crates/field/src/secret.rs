//! Fixed-width secret scalar container with zeroize-on-drop.
//!
//! `SecretLimbs` is the stack-allocated counterpart of the bigint
//! crate's heap-backed secret integers: scalar material copied into
//! fixed arithmetic paths lives here so that it is erased with a
//! volatile write when the window tables and recoding buffers go out
//! of scope. Debug output is redacted and equality is routed through
//! the constant-time limb comparison, matching the workspace's secret
//! hygiene rules (auditor R2/R4).

use core::fmt;

/// A little-endian `[u64; N]` holding secret scalar limbs.
///
/// Zero-padded on construction; zeroized with volatile writes on drop.
#[derive(Clone)]
pub struct SecretLimbs<const N: usize> {
    limbs: [u64; N],
}

impl<const N: usize> SecretLimbs<N> {
    /// Copies `src` (little-endian) into the low limbs, zero-padding
    /// the rest.
    ///
    /// # Panics
    ///
    /// Panics if `src` has more than `N` limbs — widths are chosen by
    /// the caller from the modulus, so a longer scalar is a logic bug.
    pub fn from_slice(src: &[u64]) -> Self {
        assert!(src.len() <= N, "scalar wider than container");
        let mut limbs = [0u64; N];
        limbs[..src.len()].copy_from_slice(src);
        SecretLimbs { limbs }
    }

    /// Borrows the limbs, little-endian.
    pub fn limbs(&self) -> &[u64; N] {
        &self.limbs
    }

    /// Constant-time equality over the full width.
    pub fn ct_eq(&self, other: &Self) -> bool {
        let mut diff = 0u64;
        for i in 0..N {
            diff |= self.limbs[i] ^ other.limbs[i];
        }
        diff == 0
    }
}

impl<const N: usize> Drop for SecretLimbs<N> {
    fn drop(&mut self) {
        for limb in self.limbs.iter_mut() {
            // Volatile so the wipe survives dead-store elimination.
            unsafe { core::ptr::write_volatile(limb, 0) };
        }
        core::sync::atomic::compiler_fence(core::sync::atomic::Ordering::SeqCst);
    }
}

impl<const N: usize> fmt::Debug for SecretLimbs<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretLimbs<{N}>(redacted)")
    }
}

impl<const N: usize> PartialEq for SecretLimbs<N> {
    fn eq(&self, other: &Self) -> bool {
        self.ct_eq(other)
    }
}

impl<const N: usize> Eq for SecretLimbs<N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pads_and_compares() {
        let a = SecretLimbs::<4>::from_slice(&[1, 2]);
        let b = SecretLimbs::<4>::from_slice(&[1, 2, 0, 0]);
        let c = SecretLimbs::<4>::from_slice(&[1, 3]);
        assert_eq!(a.limbs(), &[1, 2, 0, 0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.ct_eq(&b) && !a.ct_eq(&c));
    }

    #[test]
    #[should_panic(expected = "wider than container")]
    fn rejects_oversized() {
        let _ = SecretLimbs::<2>::from_slice(&[1, 2, 3]);
    }

    #[test]
    fn debug_is_redacted() {
        let s = SecretLimbs::<2>::from_slice(&[0xdeadbeef, 0xcafebabe]);
        let out = format!("{s:?}");
        assert!(out.contains("redacted"));
        assert!(!out.contains("deadbeef"));
    }
}
