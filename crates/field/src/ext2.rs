//! Generic quadratic extension `F_p[i]/(i² + 1)` over any
//! [`FieldOps`] backend (valid for `p ≡ 3 (mod 4)`).

use crate::limb::{bit, bit_len};
use crate::traits::FieldOps;

/// An element `c0 + c1·i`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ext2<E> {
    /// Real component.
    pub c0: E,
    /// Imaginary component.
    pub c1: E,
}

/// The zero element.
pub fn zero<F: FieldOps>(f: &F) -> Ext2<F::Elem> {
    Ext2 {
        c0: f.zero(),
        c1: f.zero(),
    }
}

/// The one element.
pub fn one<F: FieldOps>(f: &F) -> Ext2<F::Elem> {
    Ext2 {
        c0: f.one(),
        c1: f.zero(),
    }
}

/// `true` iff both components are zero.
pub fn is_zero<F: FieldOps>(f: &F, a: &Ext2<F::Elem>) -> bool {
    f.is_zero(&a.c0) && f.is_zero(&a.c1)
}

/// `true` iff the element equals one.
pub fn is_one<F: FieldOps>(f: &F, a: &Ext2<F::Elem>) -> bool {
    f.is_zero(&a.c1) && f.equals(&a.c0, &f.one())
}

/// Value equality.
pub fn equals<F: FieldOps>(f: &F, a: &Ext2<F::Elem>, b: &Ext2<F::Elem>) -> bool {
    f.equals(&a.c0, &b.c0) && f.equals(&a.c1, &b.c1)
}

/// `a · b` (backend hook: lazy-reduced on fixed-width contexts).
#[inline]
pub fn mul<F: FieldOps>(f: &F, a: &Ext2<F::Elem>, b: &Ext2<F::Elem>) -> Ext2<F::Elem> {
    f.ext2_mul(a, b)
}

/// `a²`.
#[inline]
pub fn sqr<F: FieldOps>(f: &F, a: &Ext2<F::Elem>) -> Ext2<F::Elem> {
    f.ext2_sqr(a)
}

/// Conjugation `c0 − c1·i` — the Frobenius `a^p`.
pub fn conj<F: FieldOps>(f: &F, a: &Ext2<F::Elem>) -> Ext2<F::Elem> {
    Ext2 {
        c0: a.c0.clone(),
        c1: f.neg(&a.c1),
    }
}

/// `a⁻¹`, or `None` for zero: `ā / (c0² + c1²)`.
pub fn inv<F: FieldOps>(f: &F, a: &Ext2<F::Elem>) -> Option<Ext2<F::Elem>> {
    let n = f.add(&f.sqr(&a.c0), &f.sqr(&a.c1));
    let n_inv = f.inv(&n)?;
    Some(Ext2 {
        c0: f.mul(&a.c0, &n_inv),
        c1: f.neg(&f.mul(&a.c1, &n_inv)),
    })
}

/// `a^e` for a little-endian limb exponent.
///
/// 4-bit sliding window: the final exponentiation raises to a ~352-bit
/// public cofactor, where this cuts the multiplication count from one
/// per set bit (~half the length) to one per window (~a fifth), at the
/// cost of a 7-entry odd-power table. The exponent here is always
/// public (cofactor, pairing outputs in verification equations), so
/// the data-dependent window scan leaks nothing secret.
pub fn pow<F: FieldOps>(f: &F, a: &Ext2<F::Elem>, e: &[u64]) -> Ext2<F::Elem> {
    let n = bit_len(e);
    if n == 0 {
        return one(f);
    }
    // Odd powers a, a³, …, a¹⁵.
    let a2 = sqr(f, a);
    let mut table: Vec<Ext2<F::Elem>> = Vec::with_capacity(8);
    table.push(a.clone());
    for i in 1..8 {
        table.push(mul(f, &table[i - 1], &a2));
    }
    let mut acc = one(f);
    let mut started = false;
    let mut i = n as isize - 1;
    while i >= 0 {
        if !bit(e, i as usize) {
            acc = sqr(f, &acc);
            i -= 1;
            continue;
        }
        // Greedy window [j..=i] of width ≤ 4 whose low bit is set, so
        // its value is odd and indexes the table directly.
        let mut j = if i >= 3 { i - 3 } else { 0 };
        while !bit(e, j as usize) {
            j += 1;
        }
        let mut val = 0usize;
        for k in (j..=i).rev() {
            val = (val << 1) | usize::from(bit(e, k as usize));
        }
        if started {
            for _ in j..=i {
                acc = sqr(f, &acc);
            }
            acc = mul(f, &acc, &table[val >> 1]);
        } else {
            // First window: skip the squarings of one.
            acc = table[val >> 1].clone();
            started = true;
        }
        i = j - 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mont::MontCtx;

    const CTX: MontCtx<2> = MontCtx::new([u64::MAX, u64::MAX >> 1]);

    fn elem(a: u64, b: u64) -> Ext2<crate::mont::FpW<2>> {
        Ext2 {
            c0: CTX.from_u64(a),
            c1: CTX.from_u64(b),
        }
    }

    #[test]
    fn i_squared_is_minus_one() {
        let i = elem(0, 1);
        let i2 = sqr(&CTX, &i);
        assert!(equals(
            &CTX,
            &i2,
            &Ext2 {
                c0: CTX.neg(&CTX.one()),
                c1: CTX.zero()
            }
        ));
        assert!(equals(&CTX, &mul(&CTX, &i, &i), &i2));
    }

    #[test]
    fn lazy_mul_matches_schoolbook() {
        // (a0 + a1 i)(b0 + b1 i) = (a0b0 − a1b1) + (a0b1 + a1b0)i
        let a = elem(0xdead_beef, 0xcafe_babe);
        let b = elem(0x1234_5678, 0x9abc_def0);
        let got = mul(&CTX, &a, &b);
        let c0 = CTX.sub(&CTX.mul(&a.c0, &b.c0), &CTX.mul(&a.c1, &b.c1));
        let c1 = CTX.add(&CTX.mul(&a.c0, &b.c1), &CTX.mul(&a.c1, &b.c0));
        assert_eq!(got.c0, c0);
        assert_eq!(got.c1, c1);
        assert!(equals(&CTX, &sqr(&CTX, &a), &mul(&CTX, &a, &a)));
    }

    #[test]
    fn inversion_and_pow() {
        let a = elem(1234, 5678);
        let a_inv = inv(&CTX, &a).unwrap();
        assert!(is_one(&CTX, &mul(&CTX, &a, &a_inv)));
        assert!(inv(&CTX, &zero(&CTX)).is_none());
        assert!(is_one(&CTX, &pow(&CTX, &a, &[])));
        assert!(equals(&CTX, &pow(&CTX, &a, &[1]), &a));
        assert!(equals(&CTX, &pow(&CTX, &a, &[2]), &sqr(&CTX, &a)));
        // Frobenius = conjugation: a^p.
        let p = *CTX.modulus();
        assert!(equals(&CTX, &pow(&CTX, &a, &p), &conj(&CTX, &a)));
    }
}
