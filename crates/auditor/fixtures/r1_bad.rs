//! R1 bait: panics and indexing where the rule applies.

pub fn handle(req: Option<u8>) -> u8 {
    req.unwrap()
}

pub fn decode_frame(buf: &[u8]) -> u8 {
    if buf.is_empty() {
        panic!("empty frame");
    }
    buf[0]
}
