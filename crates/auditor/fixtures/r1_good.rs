//! R1 clean: fallible handling everywhere, one documented allow.

pub fn handle(req: Option<u8>) -> u8 {
    req.unwrap_or(0)
}

pub fn decode_frame(buf: &[u8]) -> Option<u8> {
    buf.first().copied()
}

pub fn shutdown(flag: Option<u8>) -> u8 {
    // audit:allow(panic, fixture: documented misuse panic)
    flag.expect("running")
}
