//! R2 bait: secret type with printable surfaces and a field leak.

#[derive(Debug, Clone)]
pub struct SemKey {
    pub scalar: [u64; 4],
}

impl core::fmt::Display for SemKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:?}", self.scalar)
    }
}

pub fn log_key(key: &SemKey) {
    println!("key: {:?}", key.scalar);
}
