//! R3 clean: declared counts capped by what is actually present.

pub fn decode_items(buf: &[u8]) -> Option<Vec<u8>> {
    let count = usize::from(*buf.first()?);
    let remaining = buf.len().saturating_sub(1);
    let mut items = Vec::with_capacity(count.min(remaining));
    let mut scratch = Vec::new();
    scratch.resize(8, 0u8);
    items.append(&mut scratch);
    Some(items)
}
