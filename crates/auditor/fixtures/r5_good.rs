//! R5 fixture: disciplined lock usage — annotated tracked wrappers,
//! acquisitions in declared rank order. Must scan clean.

fn build() -> (TrackedMutex<u32>, TrackedMutex<u32>) {
    // lock:class(Warm)
    let warm = TrackedMutex::new(LockClass::Warm, 0);
    // lock:class(Journal)
    let journal = TrackedMutex::new(LockClass::Journal, 0);
    (warm, journal)
}

fn ordered(warm: &TrackedMutex<u32>, journal: &TrackedMutex<u32>) {
    let w = warm.lock(); // lock:acquire(Warm)
    let j = journal.lock(); // lock:acquire(Journal)
    drop((w, j));
}

fn sibling_blocks(warm: &TrackedMutex<u32>, journal: &TrackedMutex<u32>) {
    {
        let j = journal.lock(); // lock:acquire(Journal)
        drop(j);
    }
    {
        // The earlier Journal guard's scope closed above, so a Warm
        // acquisition here is not nested under it.
        let w = warm.lock(); // lock:acquire(Warm)
        drop(w);
    }
}
