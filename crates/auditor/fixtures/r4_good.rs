//! R4 clean: equality routes through a constant-time comparison.

pub struct Share {
    pub value: [u64; 4],
}

impl Share {
    pub fn ct_eq(&self, other: &Self) -> bool {
        let mut diff = 0u64;
        for (a, b) in self.value.iter().zip(other.value.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

impl PartialEq for Share {
    fn eq(&self, other: &Self) -> bool {
        self.ct_eq(other)
    }
}

impl Eq for Share {}
