//! R5 fixture: every lock-discipline check must fire at least once.
//! This file is scanned, never compiled.

use std::sync::Mutex;

fn raw_construction() -> Mutex<u32> {
    Mutex::new(0)
}

fn unannotated() -> TrackedMutex<u32> {
    TrackedMutex::new(LockClass::Warm, 0)
}

fn unknown_class() -> TrackedMutex<u32> {
    // lock:class(Bogus)
    TrackedMutex::new(LockClass::Warm, 0)
}

fn contradicted() -> TrackedMutex<u32> {
    // lock:class(Journal)
    TrackedMutex::new(LockClass::Shard, 0)
}

fn inverted(shard: &TrackedMutex<u32>, warm: &TrackedMutex<u32>) {
    let s = shard.lock(); // lock:acquire(Shard)
    let w = warm.lock(); // lock:acquire(Warm)
    drop((s, w));
}
