//! R3 widened-scope fixture: a RolloverChunk-style (store kind-5)
//! handler that trusts a wire-supplied record count outside any
//! `decode_*`-named function — caught only because the file-wide
//! bound scan (`bound_everywhere`) now covers the store/scenario
//! modules. This file is scanned, never compiled.

fn rollover_chunk_records(count: usize) -> Vec<u8> {
    let mut records = Vec::with_capacity(count);
    records.resize(count, 0);
    records
}
