//! R4 bait: variable-time equality on secret material.

#[derive(Clone, PartialEq)]
pub struct Share {
    pub value: [u64; 4],
}

pub struct BlindingFactor(pub [u64; 4]);

impl PartialEq for BlindingFactor {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
