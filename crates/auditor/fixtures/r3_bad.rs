//! R3 bait: attacker-declared count drives allocation uncapped.

pub fn decode_items(buf: &[u8]) -> Option<Vec<u8>> {
    let count = usize::from(*buf.first()?);
    let mut items = Vec::with_capacity(count);
    items.resize(count, 0);
    Some(items)
}
