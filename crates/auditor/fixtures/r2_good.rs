//! R2 clean: redacted Debug, no derived printing, no field leaks.

#[derive(Clone)]
pub struct SemKey {
    pub scalar: [u64; 4],
}

impl core::fmt::Debug for SemKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SemKey")
            .field("scalar", &"<redacted>")
            .finish()
    }
}
