//! R3 widened-scope fixture: the same RolloverChunk-style handler with
//! both allocations capped against the declared record ceiling. Must
//! scan clean even under the file-wide bound scan.

const MAX_RECORD: usize = 1 << 20;

fn rollover_chunk_records(count: usize) -> Vec<u8> {
    let mut records = Vec::with_capacity(count.min(MAX_RECORD));
    records.resize(count.min(MAX_RECORD), 0);
    records
}
