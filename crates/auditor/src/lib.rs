//! # sempair-auditor
//!
//! A dependency-free static-analysis pass over the sempair workspace
//! (DESIGN.md §11). A security mediator is a long-lived network daemon
//! holding key shares: the classes of bug this tool hunts — remote
//! panics in request paths, key material reaching `Debug` output,
//! attacker-declared lengths driving allocations, variable-time
//! equality on secrets — are exactly the ones unit tests are worst at
//! catching, because the buggy path *works*.
//!
//! Run it as `cargo run -p sempair-auditor` (human output) or with
//! `--json` for machine-readable findings; `scripts/check.sh` runs it
//! before the test tiers and fails on any non-allowlisted finding.

pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule ID (`R1-panic`, `R2-secret`, `R3-bound`, `R4-ct`,
    /// `R5-lock`).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when suppressed by an `audit:allow` comment.
    pub allowed: Option<String>,
}

/// Result of auditing a tree: active findings fail the build,
/// allowlisted ones are reported but tolerated.
#[derive(Debug, Default)]
pub struct Report {
    /// Non-allowlisted findings.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `audit:allow(kind, reason)`.
    pub allowed: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// sem-net modules that serve or relay remote requests: the whole file
/// is a no-panic zone, not just its decode functions (§4 keeps the SEM
/// online for the system's lifetime — a panic is a remote crash).
const PANIC_SCOPE: &[&str] = &[
    "crates/sem-net/src/server.rs",
    "crates/sem-net/src/tcp.rs",
    "crates/sem-net/src/proto.rs",
    "crates/sem-net/src/store.rs",
    "crates/sem-net/src/cluster.rs",
    "crates/sem-net/src/revocation.rs",
    "crates/sem-net/src/audit.rs",
];

/// The bounded cache modules (DESIGN.md §14): the whole point of the
/// tier is a hard memory cap, so R3's bounded-allocation rule applies
/// to every line here, not just decode functions — an unbounded
/// `with_capacity` in a cache is the bug the tier exists to prevent.
const BOUND_SCOPE: &[&str] = &[
    "crates/core/src/cache.rs",
    "crates/sem-net/src/cache.rs",
    // The scenario harness allocates per-request sample buffers from
    // config-driven sizes, and the journal builds record frames whose
    // length a corrupt record could inflate: both widened into the
    // file-wide bound scan after the PR 9 rollover-chunk (store
    // kind 5) path landed outside R3's original file list.
    "crates/sem-net/src/scenario.rs",
    "crates/sem-net/src/store.rs",
];

/// Modules holding serving-path locks: R5's lock-discipline rule
/// (tracked wrappers only, annotated construction sites, declared
/// nesting order) applies file-wide here. `core/src/lockdep.rs` itself
/// is deliberately absent — it is the implementation layer the rule
/// forces everyone else onto.
const LOCK_SCOPE: &[&str] = &[
    "crates/sem-net/src/tcp.rs",
    "crates/sem-net/src/server.rs",
    "crates/sem-net/src/cluster.rs",
    "crates/sem-net/src/audit.rs",
    "crates/sem-net/src/faults.rs",
    "crates/sem-net/src/cache.rs",
    "crates/sem-net/src/scenario.rs",
    "crates/sem-net/src/store.rs",
    "crates/core/src/cache.rs",
];

/// Every rule ID, in catalogue order (the JSON rule summary always
/// lists all of them, found or not).
pub const RULE_IDS: &[&str] = &["R1-panic", "R2-secret", "R3-bound", "R4-ct", "R5-lock"];

/// Audits a single source string, as the workspace walk would.
/// Exposed for fixture-driven self-tests.
pub fn audit_source(
    rel_path: &str,
    source: &str,
    panic_everywhere: bool,
    bound_everywhere: bool,
    lock_scope: bool,
) -> Vec<Finding> {
    let raw: Vec<&str> = source.lines().collect();
    let lines = scan::scan(source);
    rules::run_rules(
        rel_path,
        &raw,
        &lines,
        panic_everywhere,
        bound_everywhere,
        lock_scope,
    )
}

fn included(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    // The auditor doesn't audit itself (its fixtures are rule-bait),
    // and shims are vendored API stand-ins — except the RNG shim,
    // whose ChaCha key is real secret material.
    if rel.starts_with("crates/auditor/") || rel.contains("/target/") {
        return false;
    }
    if rel.starts_with("shims/") {
        return rel.starts_with("shims/rand/src/");
    }
    // Library/binary source only: integration tests and benches may
    // unwrap freely.
    (rel.starts_with("crates/") || rel.starts_with("src/")) && rel.contains("src/")
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if matches!(name, "target" | ".git" | "tests" | "benches" | "fixtures") {
                continue;
            }
            walk(&path, root, out);
        } else {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if included(&rel) {
                out.push((path.clone(), rel));
            }
        }
    }
}

/// Audits every in-scope source file under `root` (the repo root).
pub fn audit_workspace(root: &Path) -> Report {
    let mut files = Vec::new();
    walk(root, root, &mut files);
    let mut report = Report::default();
    for (path, rel) in files {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        report.files_scanned += 1;
        let panic_everywhere = PANIC_SCOPE.contains(&rel.as_str());
        let bound_everywhere = BOUND_SCOPE.contains(&rel.as_str());
        let lock_scope = LOCK_SCOPE.contains(&rel.as_str());
        for finding in audit_source(
            &rel,
            &source,
            panic_everywhere,
            bound_everywhere,
            lock_scope,
        ) {
            if finding.allowed.is_some() {
                report.allowed.push(finding);
            } else {
                report.findings.push(finding);
            }
        }
    }
    report
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    let mut obj = format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"",
        f.rule,
        json_escape(&f.file),
        f.line,
        json_escape(&f.message)
    );
    if let Some(reason) = &f.allowed {
        obj.push_str(&format!(",\"allowed\":\"{}\"", json_escape(reason)));
    }
    obj.push('}');
    obj
}

impl Report {
    /// Machine-readable output with stable field names. The `rules`
    /// summary always lists every rule in the catalogue (zero counts
    /// included), so CI can assert a rule actually ran.
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(finding_json).collect();
        let allowed: Vec<String> = self.allowed.iter().map(finding_json).collect();
        let rules: Vec<String> = RULE_IDS
            .iter()
            .map(|id| {
                let active = self.findings.iter().filter(|f| f.rule == *id).count();
                let allowed = self.allowed.iter().filter(|f| f.rule == *id).count();
                format!("\"{id}\":{{\"findings\":{active},\"allowed\":{allowed}}}")
            })
            .collect();
        format!(
            "{{\"findings\":[{}],\"allowed\":[{}],\"rules\":{{{}}},\"counts\":{{\"findings\":{},\"allowed\":{},\"files_scanned\":{}}}}}",
            findings.join(","),
            allowed.join(","),
            rules.join(","),
            self.findings.len(),
            self.allowed.len(),
            self.files_scanned
        )
    }

    /// Human-readable output.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{} {}:{} {}\n", f.rule, f.file, f.line, f.message));
        }
        for f in &self.allowed {
            out.push_str(&format!(
                "allowed {} {}:{} {} [{}]\n",
                f.rule,
                f.file,
                f.line,
                f.message,
                f.allowed.as_deref().unwrap_or("")
            ));
        }
        out.push_str(&format!(
            "sempair-auditor: {} finding(s), {} allowlisted, {} file(s) scanned\n",
            self.findings.len(),
            self.allowed.len(),
            self.files_scanned
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        let f = Finding {
            rule: "R1-panic",
            file: "a\"b.rs".into(),
            line: 3,
            message: "uses `panic!`\nbadly".into(),
            allowed: None,
        };
        let json = finding_json(&f);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\\n"));
    }

    #[test]
    fn inclusion_rules() {
        assert!(included("crates/core/src/wire.rs"));
        assert!(included("src/lib.rs"));
        assert!(included("shims/rand/src/lib.rs"));
        assert!(!included("shims/proptest/src/lib.rs"));
        assert!(!included("crates/auditor/src/lib.rs"));
        assert!(!included("crates/core/README.md"));
        assert!(!included("Cargo.toml"));
    }
}
