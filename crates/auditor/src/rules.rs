//! The rule catalogue (see DESIGN.md §11).
//!
//! | ID        | What it enforces                                        |
//! |-----------|---------------------------------------------------------|
//! | R1-panic  | No `unwrap`/`expect`/`panic!`-family in request paths   |
//! |           | and no `[]`-indexing inside decode functions            |
//! | R2-secret | Registered secret types never derive `Debug`/`Serialize`,|
//! |           | manual `Debug`/`Display` impls carry a redaction marker,|
//! |           | and secret fields never reach formatting macros         |
//! | R3-bound  | Preallocation in decode functions is capped with `min`  |
//! |           | (file-wide in the bounded cache modules, whose entire   |
//! |           | job is to not allocate past their cap)                  |
//! | R4-ct     | Equality on registered secret types routes through      |
//! |           | `ct_eq` (no derived or `==`-based `PartialEq`)          |
//! | R5-lock   | Lock discipline in the serving modules: raw `std::sync`/|
//! |           | `parking_lot` lock construction is banned (tracked      |
//! |           | wrappers only), every `TrackedMutex`/`TrackedRwLock`    |
//! |           | construction carries a `lock:class(Name)` annotation    |
//! |           | cross-checked against the declared class table, and     |
//! |           | `lock:acquire(Name)`-annotated nested acquisitions must |
//! |           | respect the declared partial order                      |
//!
//! Findings can be suppressed with `// audit:allow(<kind>, <reason>)`
//! placed on, or directly above, the offending statement; suppressed
//! findings are still counted and reported.

use crate::scan::{has_ident, ident_positions, LineInfo};
use crate::Finding;

/// Types whose values embed key material. Any `Debug`, `Serialize`, or
/// equality surface on these is audited.
pub const SECRET_TYPES: &[&str] = &[
    "UserKey",
    "SemKey",
    "PrivateKey",
    "Pkg",
    "ThresholdPkg",
    "IdKeyShare",
    "Share",
    "Polynomial",
    "DkgDealer",
    "GdhSecretKey",
    "GdhKeyShare",
    "GdhUser",
    "GdhSemKey",
    "BlindingFactor",
    "ElGamalUser",
    "ElGamalSemKey",
    "ElGamalKeyShare",
    "SecretLimbs",
    "StdRng",
];

/// Field names that carry raw secret scalars/points on the registered
/// types. A formatting macro touching one of these is a leak.
pub const SECRET_FIELDS: &[&str] = &["master", "coeffs", "x_user", "scalar"];

/// Formatting/logging macros audited by the R2 flow check.
const FMT_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln", "dbg",
];

/// The declared lock-class partial order — `(name, rank)`, lower rank
/// = acquired first — mirroring `LockClass::rank` in
/// `crates/core/src/lockdep.rs`. Equal ranks are incomparable (either
/// nesting direction passes the static check; the runtime lockdep
/// layer polices those via observed edges). A workspace test parses
/// the real table out of `lockdep.rs` and asserts this copy matches,
/// so the two cannot drift silently.
pub const LOCK_CLASSES: &[(&str, u8)] = &[
    ("Cluster", 0),
    ("Faults", 1),
    ("Conns", 2),
    ("Handlers", 3),
    ("Warm", 4),
    ("Journal", 5),
    ("Shard", 6),
    ("Idem", 7),
    ("Pool", 8),
    ("Inflight", 8),
    ("CacheTier", 10),
    ("AuditRing", 11),
];

/// Rank of a declared lock class, if `name` is one.
pub fn lock_class_rank(name: &str) -> Option<u8> {
    LOCK_CLASSES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, rank)| rank)
}

/// `true` for functions that decode untrusted bytes, by naming
/// convention: `decode_*`, `*_from_bytes`, `*_from_payload`,
/// `take_chunk`.
pub fn is_decode_fn(name: &str) -> bool {
    name.starts_with("decode")
        || name.ends_with("from_bytes")
        || name.ends_with("from_payload")
        || name == "take_chunk"
}

/// One parsed `audit:allow` escape.
#[derive(Debug)]
pub struct Allow {
    /// Rule kind: `panic`, `secret`, `bound`, `ct`, or `lock`.
    pub kind: String,
    /// Justification text.
    pub reason: String,
    /// 0-based line of the comment.
    pub line: usize,
    /// Covered 0-based line range (inclusive).
    pub covers: (usize, usize),
    /// Set when the allow suppressed at least one finding.
    pub used: bool,
}

fn rule_kind(rule: &str) -> &str {
    match rule {
        "R1-panic" => "panic",
        "R2-secret" => "secret",
        "R3-bound" => "bound",
        "R4-ct" => "ct",
        "R5-lock" => "lock",
        _ => "",
    }
}

/// Parses every `audit:allow(kind, reason)` comment and computes the
/// statement range each one covers: its own line through the first
/// following line that ends a statement (`;`, `{`, `}`, or `,`).
pub fn collect_allows(lines: &[LineInfo]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(at) = line.comment.find("audit:allow(") else {
            continue;
        };
        let rest = &line.comment[at + "audit:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let inner = &rest[..close];
        let (kind, reason) = match inner.split_once(',') {
            Some((k, r)) => (k.trim().to_string(), r.trim().to_string()),
            None => (inner.trim().to_string(), String::new()),
        };
        let mut end = i;
        for (j, later) in lines.iter().enumerate().skip(i + 1).take(10) {
            let code = later.code.trim_end();
            end = j;
            if code
                .chars()
                .last()
                .map(|c| matches!(c, ';' | '{' | '}' | ','))
                .unwrap_or(false)
            {
                break;
            }
        }
        allows.push(Allow {
            kind,
            reason,
            line: i,
            covers: (i, end),
            used: false,
        });
    }
    allows
}

/// `.unwrap(` / `.expect(` method calls on this line.
fn method_calls(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    ident_positions(code, name).into_iter().any(|at| {
        let before_dot = code[..at]
            .trim_end()
            .chars()
            .last()
            .map(|c| c == '.')
            .unwrap_or(false);
        let after_paren = bytes
            .get(at + name.len()..)
            .map(|rest| {
                rest.iter()
                    .find(|&&b| b != b' ')
                    .map(|&b| b == b'(')
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        before_dot && after_paren
    })
}

/// `name!(` macro invocations on this line.
fn macro_call(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    ident_positions(code, name).into_iter().any(|at| {
        bytes
            .get(at + name.len()..)
            .map(|rest| {
                rest.iter()
                    .find(|&&b| b != b' ')
                    .map(|&b| b == b'!')
                    .unwrap_or(false)
            })
            .unwrap_or(false)
    })
}

/// `expr[` indexing: a `[` directly after an identifier char, `)`, or
/// `]` — array literals, slice types, and attributes don't match.
fn has_indexing(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    chars.iter().enumerate().any(|(i, &c)| {
        c == '['
            && i > 0
            && (chars[i - 1].is_alphanumeric() || matches!(chars[i - 1], '_' | ')' | ']'))
    })
}

/// Extracts the balanced argument of `call(` starting at `open` (the
/// index of the `(`), staying on this line.
fn paren_arg(code: &str, open: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == b'(' {
            depth += 1;
        } else if b == b')' {
            depth -= 1;
            if depth == 0 {
                return code.get(open + 1..i);
            }
        }
    }
    None
}

/// `true` when a preallocation argument is inherently bounded: it
/// carries a `min` cap or is a plain literal/constant expression with
/// no identifiers in it.
fn capped(arg: &str) -> bool {
    if has_ident(arg, "min") {
        return true;
    }
    // Literal-only arguments (`8`, `1 << 10`, `4 + SIGMA_LEN` is NOT
    // literal-only because of the identifier — but screaming-case
    // constants are compile-time bounds, so allow them).
    let mut rest = arg;
    loop {
        let Some(start) = rest.find(|c: char| c.is_alphabetic() || c == '_') else {
            return true; // no identifiers at all: pure literal arithmetic
        };
        let tail = &rest[start..];
        let end = tail
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(tail.len());
        let word = &tail[..end];
        let is_const = word
            .chars()
            .all(|c| c.is_uppercase() || c == '_' || c.is_numeric());
        // `8usize` / `0x10`: the "identifier" is glued to a leading digit.
        let is_literal_suffix = rest
            .as_bytes()
            .get(start.wrapping_sub(1))
            .map(|b| b.is_ascii_digit())
            .unwrap_or(false);
        if !is_const && !is_literal_suffix {
            return false;
        }
        rest = &tail[end..];
    }
}

/// Runs every rule over one scanned file. `raw` carries the original
/// lines (the scrubbed view blanks string contents, which the
/// redaction-marker check needs).
pub fn run_rules(
    path: &str,
    raw: &[&str],
    lines: &[LineInfo],
    panic_everywhere: bool,
    bound_everywhere: bool,
    lock_scope: bool,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |rule: &'static str, line: usize, message: String| {
        findings.push(Finding {
            rule,
            file: path.to_string(),
            line: line + 1,
            message,
            allowed: None,
        });
    };

    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let in_decode = line
            .current_fn
            .as_deref()
            .map(is_decode_fn)
            .unwrap_or(false);

        // R1: panic-freedom.
        if panic_everywhere || in_decode {
            for call in ["unwrap", "expect"] {
                if method_calls(code, call) {
                    push("R1-panic", i, format!("`{call}()` in a no-panic path"));
                }
            }
            for mac in ["panic", "todo", "unimplemented"] {
                if macro_call(code, mac) {
                    push("R1-panic", i, format!("`{mac}!` in a no-panic path"));
                }
            }
        }
        if in_decode && has_indexing(code) {
            push(
                "R1-panic",
                i,
                "slice indexing in a decode function (use the bounds-checked cursor)".to_string(),
            );
        }

        // R3: untrusted-length bounds in decode functions — and
        // file-wide in the cache modules, where every allocation must
        // stay under the configured cap by construction.
        if in_decode || bound_everywhere {
            for marker in ["with_capacity", "resize"] {
                for at in ident_positions(code, marker) {
                    let Some(open) = code[at..].find('(').map(|o| at + o) else {
                        continue;
                    };
                    let arg = paren_arg(code, open).unwrap_or("");
                    if !capped(arg) {
                        push(
                            "R3-bound",
                            i,
                            format!("`{marker}({arg})` not capped with `min(..remaining..)`"),
                        );
                    }
                }
            }
        }

        // R2 (flow): secret fields reaching formatting macros.
        for mac in FMT_MACROS {
            if macro_call(code, mac) {
                for field in SECRET_FIELDS {
                    if code.contains(&format!(".{field}")) && has_ident(code, field) {
                        push(
                            "R2-secret",
                            i,
                            format!("secret field `.{field}` flows into `{mac}!`"),
                        );
                    }
                }
            }
        }
    }

    // R2/R4 (declarations): derives and trait impls on secret types.
    audit_derives(lines, &mut push);
    audit_impls(raw, lines, &mut push);

    // R5: lock discipline in the serving modules.
    if lock_scope {
        audit_locks(lines, &mut push);
    }

    // Apply the allowlist.
    let mut allows = collect_allows(lines);
    for finding in &mut findings {
        let kind = rule_kind(finding.rule);
        let at = finding.line - 1;
        for allow in &mut allows {
            if allow.kind == kind && at >= allow.covers.0 && at <= allow.covers.1 {
                finding.allowed = Some(if allow.reason.is_empty() {
                    "(no reason given)".to_string()
                } else {
                    allow.reason.clone()
                });
                allow.used = true;
                break;
            }
        }
    }
    findings
}

/// Flags `#[derive(Debug/Serialize/PartialEq)]` attached to a secret
/// type declaration.
fn audit_derives(lines: &[LineInfo], push: &mut impl FnMut(&'static str, usize, String)) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(at) = line.code.find("#[derive(") else {
            continue;
        };
        let Some(close) = line.code[at..].find(")]").map(|c| at + c) else {
            continue;
        };
        let derives = &line.code[at + "#[derive(".len()..close];
        // The struct/enum this derive attaches to: first declaration
        // within the next few lines (other attributes may intervene).
        let mut target: Option<&str> = None;
        for later in lines.iter().skip(i).take(8) {
            for kw in ["struct", "enum"] {
                if let Some(pos) = later
                    .code
                    .find(&format!("{kw} "))
                    .filter(|_| has_ident(&later.code, kw))
                {
                    let rest = &later.code[pos + kw.len() + 1..];
                    let name_end = rest
                        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .unwrap_or(rest.len());
                    target = SECRET_TYPES
                        .iter()
                        .find(|t| **t == &rest[..name_end])
                        .copied();
                }
            }
            if target.is_some() || later.code.contains('{') || later.code.ends_with(';') {
                break;
            }
        }
        let Some(name) = target else { continue };
        for bad in ["Debug", "Serialize"] {
            if has_ident(derives, bad) {
                push(
                    "R2-secret",
                    i,
                    format!("secret type `{name}` derives `{bad}` (prints key material)"),
                );
            }
        }
        if has_ident(derives, "PartialEq") {
            push(
                "R4-ct",
                i,
                format!("secret type `{name}` derives `PartialEq` (variable-time equality)"),
            );
        }
    }
}

/// Checks manual `Debug`/`Display`/`Serialize`/`PartialEq` impls on
/// secret types: formatting impls must contain a redaction marker,
/// equality impls must route through `ct_eq`.
fn audit_impls(
    raw: &[&str],
    lines: &[LineInfo],
    push: &mut impl FnMut(&'static str, usize, String),
) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || !has_ident(&line.code, "impl") || !has_ident(&line.code, "for") {
            continue;
        }
        let Some(for_pos) = ident_positions(&line.code, "for").into_iter().next() else {
            continue;
        };
        let after_for = &line.code[for_pos + 3..];
        let Some(name) = SECRET_TYPES.iter().find(|t| has_ident(after_for, t)) else {
            continue;
        };
        let trait_part = &line.code[..for_pos];
        let is_fmt = has_ident(trait_part, "Debug") || has_ident(trait_part, "Display");
        let is_serialize = has_ident(trait_part, "Serialize");
        let is_eq = has_ident(trait_part, "PartialEq");
        if !is_fmt && !is_serialize && !is_eq {
            continue;
        }
        // Collect the impl block body (balanced braces from this line).
        let mut depth = 0i32;
        let mut body = String::new();
        let mut started = false;
        for (j, code_line) in lines.iter().enumerate().skip(i) {
            for c in code_line.code.chars() {
                if c == '{' {
                    depth += 1;
                    started = true;
                } else if c == '}' {
                    depth -= 1;
                }
            }
            if let Some(raw_line) = raw.get(j) {
                body.push_str(raw_line);
                body.push('\n');
            }
            if started && depth <= 0 {
                break;
            }
        }
        if is_serialize {
            push(
                "R2-secret",
                i,
                format!("secret type `{name}` implements `Serialize`"),
            );
        } else if is_fmt && !body.contains("redacted") {
            push(
                "R2-secret",
                i,
                format!("formatting impl for secret type `{name}` has no redaction marker"),
            );
        } else if is_eq && !body.contains("ct_eq") {
            push(
                "R4-ct",
                i,
                format!("`PartialEq` for secret type `{name}` does not use `ct_eq`"),
            );
        }
    }
}

/// Extracts `Name` from the first `marker(Name)` occurrence in a
/// comment, e.g. `lock:class(Shard)`.
fn annotation_name<'a>(comment: &'a str, marker: &str) -> Option<&'a str> {
    let at = comment.find(marker)?;
    let rest = &comment[at + marker.len()..];
    let close = rest.find(')')?;
    Some(rest[..close].trim())
}

/// R5-lock: the three lock-discipline checks for serving modules.
///
/// 1. Raw `Mutex`/`RwLock` construction is banned — every lock must be
///    a `TrackedMutex`/`TrackedRwLock` so the runtime lockdep layer
///    sees it.
/// 2. Every tracked-lock construction site carries a
///    `// lock:class(Name)` annotation (on the line or up to two lines
///    above) naming a class from [`LOCK_CLASSES`]; when the
///    `LockClass::X` argument is lexically visible nearby, it must
///    match the annotation.
/// 3. `// lock:acquire(Name)`-annotated acquisitions that are
///    lexically nested (brace depth) under an earlier `let`-bound
///    annotated guard must not acquire a class of strictly lower rank.
fn audit_locks(lines: &[LineInfo], push: &mut impl FnMut(&'static str, usize, String)) {
    // (class name, rank, brace depth at the guard's line start).
    let mut guards: Vec<(String, u8, i32)> = Vec::new();
    let mut depth = 0i32;
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            depth += brace_delta(&line.code);
            continue;
        }
        let code = &line.code;
        // A block closing below a guard's depth ends its lexical scope.
        guards.retain(|&(_, _, d)| depth >= d);

        // Check 1: raw lock construction.
        for raw_lock in ["Mutex", "RwLock", "StdMutex", "StdRwLock"] {
            for at in ident_positions(code, raw_lock) {
                let rest = &code[at + raw_lock.len()..];
                if rest.trim_start().starts_with("::new") {
                    push(
                        "R5-lock",
                        i,
                        format!(
                            "raw `{raw_lock}::new` in a lock-disciplined module \
                             (use `TrackedMutex`/`TrackedRwLock` with a `lock:class` annotation)"
                        ),
                    );
                }
            }
        }

        // Check 2: tracked constructions carry a lock:class annotation.
        for tracked in ["TrackedMutex", "TrackedRwLock"] {
            for at in ident_positions(code, tracked) {
                let rest = &code[at + tracked.len()..];
                if !rest.trim_start().starts_with("::new") {
                    continue;
                }
                let annotated = (i.saturating_sub(2)..=i)
                    .rev()
                    .filter_map(|j| lines.get(j))
                    .find_map(|l| annotation_name(&l.comment, "lock:class(").map(str::to_string));
                let Some(name) = annotated else {
                    push(
                        "R5-lock",
                        i,
                        format!("`{tracked}::new` without a `// lock:class(Name)` annotation"),
                    );
                    continue;
                };
                if lock_class_rank(&name).is_none() {
                    push(
                        "R5-lock",
                        i,
                        format!("`lock:class({name})` names no declared lock class"),
                    );
                    continue;
                }
                // Cross-check the annotation against the lexically
                // visible `LockClass::X` argument, when there is one
                // within the construction's next few lines.
                let in_code = (i..i + 3).filter_map(|j| lines.get(j)).find_map(|l| {
                    let at = l.code.find("LockClass::")?;
                    let rest = &l.code[at + "LockClass::".len()..];
                    let end = rest
                        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .unwrap_or(rest.len());
                    Some(rest[..end].to_string())
                });
                if let Some(arg) = in_code {
                    if arg != name {
                        push(
                            "R5-lock",
                            i,
                            format!(
                                "`lock:class({name})` annotation contradicts \
                                 `LockClass::{arg}` at the construction site"
                            ),
                        );
                    }
                }
            }
        }

        // Check 3: annotated nested acquisitions respect the order.
        if let Some(name) = annotation_name(&line.comment, "lock:acquire(") {
            let is_acquisition = [".lock(", ".read(", ".write("]
                .iter()
                .any(|m| code.contains(m));
            match lock_class_rank(name) {
                None => push(
                    "R5-lock",
                    i,
                    format!("`lock:acquire({name})` names no declared lock class"),
                ),
                Some(rank) if is_acquisition => {
                    for (held, held_rank, _) in &guards {
                        if rank < *held_rank {
                            push(
                                "R5-lock",
                                i,
                                format!(
                                    "acquisition of `{name}` (rank {rank}) lexically nested \
                                     under held `{held}` (rank {held_rank}) inverts the \
                                     declared lock order"
                                ),
                            );
                        }
                    }
                    if has_ident(code, "let") {
                        guards.push((name.to_string(), rank, depth));
                    }
                }
                Some(_) => {}
            }
        }

        depth += brace_delta(code);
    }
}

/// Net brace-depth change contributed by one scrubbed code line.
fn brace_delta(code: &str) -> i32 {
    let mut delta = 0i32;
    for c in code.chars() {
        match c {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn run(src: &str, panic_everywhere: bool) -> Vec<Finding> {
        let raw: Vec<&str> = src.lines().collect();
        run_rules("test.rs", &raw, &scan(src), panic_everywhere, false, false)
    }

    #[test]
    fn unwrap_flagged_only_in_scope() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        assert_eq!(run(src, true).len(), 1);
        assert!(run(src, false).is_empty());
        let decode = "fn decode_f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        assert_eq!(run(decode, false).len(), 1);
    }

    #[test]
    fn unwrap_or_and_strings_not_flagged() {
        let src = "fn decode_f(x: Option<u8>) -> u8 {\n    let _ = \"unwrap()\";\n    x.unwrap_or(0)\n}\n";
        assert!(run(src, true).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_but_reports() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // audit:allow(panic, documented)\n    x.expect(\"contract\")\n}\n";
        let findings = run(src, true);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].allowed.as_deref(), Some("documented"));
    }

    #[test]
    fn bound_everywhere_reaches_outside_decode_fns() {
        let src = "fn grow(n: usize) -> Vec<u8> {\n    Vec::with_capacity(n)\n}\n";
        assert!(run(src, false).is_empty());
        let raw: Vec<&str> = src.lines().collect();
        let findings = run_rules("test.rs", &raw, &scan(src), false, true, false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "R3-bound");
    }

    #[test]
    fn capped_argument_heuristics() {
        assert!(capped("count.min(r.remaining() / 7)"));
        assert!(capped("8"));
        assert!(capped("1 << 20"));
        assert!(capped("4 + MAX_RECORD"));
        assert!(capped("8usize"));
        assert!(!capped("declared"));
        assert!(!capped("count * point_len"));
    }
}
