//! A small hand-rolled Rust source scanner.
//!
//! The auditor cannot use `syn` (the workspace builds offline with no
//! registry access), so rules operate on a *scrubbed* view of each
//! source line: string and char literal contents are blanked, comments
//! are separated out, and every line is annotated with whether it sits
//! inside a `#[cfg(test)]` region and which function body encloses it.
//! That is exactly enough signal for identifier-level rules without a
//! full parse.

/// One annotated source line.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// Code with string/char literal contents blanked (quotes kept).
    pub code: String,
    /// Comment text on this line (line or block comment content).
    pub comment: String,
    /// Inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
    /// Name of the innermost enclosing `fn`, if any.
    pub current_fn: Option<String>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits source into per-line `(code, comment)` with literal contents
/// blanked, so rules never match inside strings or comments.
fn scrub(source: &str) -> Vec<(String, String)> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        CharLit,
    }
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            out.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    mode = Mode::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                    continue;
                }
                // Raw / byte string prefixes: r", r#", b", br#"…
                if (c == 'r' || c == 'b')
                    && !code.chars().last().map(is_ident_char).unwrap_or(false)
                {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (hashes > 0 || j > i + 1 || c == 'r') {
                        code.push('"');
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                    if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        code.push('"');
                        mode = Mode::Str;
                        i += 2;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime: 'x' / '\n' are literals,
                    // 'a in `&'a str` is a lifetime.
                    let next = chars.get(i + 1);
                    let after = chars.get(i + 2);
                    let is_char = matches!((next, after), (Some('\\'), _) | (Some(_), Some('\'')));
                    if is_char {
                        code.push('\'');
                        code.push('\'');
                        mode = Mode::CharLit;
                        i += 1;
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        code.push('"');
                        mode = Mode::Code;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            Mode::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        out.push((code, comment));
    }
    out
}

/// Scans source into annotated lines.
pub fn scan(source: &str) -> Vec<LineInfo> {
    let scrubbed = scrub(source);
    let mut lines = Vec::with_capacity(scrubbed.len());
    let mut depth: usize = 0;
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut test_until: Option<usize> = None;
    let mut pending_test = false;
    let mut pending_fn: Option<String> = None;
    let mut after_fn_kw = false;

    for (code, comment) in scrubbed {
        let test_at_start = test_until.is_some();
        if code.contains("#[cfg(test)]") {
            pending_test = true;
        }
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c == '{' {
                if pending_test && test_until.is_none() {
                    test_until = Some(depth);
                    pending_test = false;
                }
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, depth));
                }
                depth += 1;
            } else if c == '}' {
                depth = depth.saturating_sub(1);
                while fn_stack.last().map(|(_, d)| *d >= depth).unwrap_or(false) {
                    fn_stack.pop();
                }
                if test_until.map(|d| depth <= d).unwrap_or(false) {
                    test_until = None;
                }
            } else if c == ';' {
                // `fn name(..);` in a trait: no body to attribute.
                pending_fn = None;
            } else if is_ident_start(c) {
                let start = i;
                while i + 1 < chars.len() && is_ident_char(chars[i + 1]) {
                    i += 1;
                }
                let word: String = chars[start..=i].iter().collect();
                if word == "fn" {
                    after_fn_kw = true;
                } else if after_fn_kw {
                    pending_fn = Some(word);
                    after_fn_kw = false;
                }
            }
            i += 1;
        }
        lines.push(LineInfo {
            code,
            comment,
            in_test: test_at_start || test_until.is_some(),
            current_fn: fn_stack.last().map(|(n, _)| n.clone()),
        });
    }
    lines
}

/// Finds every identifier-boundary occurrence of `word` in `code`,
/// returning byte offsets of each match start.
pub fn ident_positions(code: &str, word: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code.get(from..).and_then(|s| s.find(word)) {
        let at = from + pos;
        let before_ok = at == 0
            || !bytes
                .get(at - 1)
                .map(|&b| (b as char).is_alphanumeric() || b == b'_')
                .unwrap_or(false);
        let after = at + word.len();
        let after_ok = !bytes
            .get(after)
            .map(|&b| (b as char).is_alphanumeric() || b == b'_')
            .unwrap_or(false);
        if before_ok && after_ok {
            found.push(at);
        }
        from = at + word.len();
    }
    found
}

/// `true` if `code` contains `word` as a standalone identifier.
pub fn has_ident(code: &str, word: &str) -> bool {
    !ident_positions(code, word).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"unwrap()\"; // call unwrap() here\nlet y = 1;\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap"));
        assert_eq!(lines[1].code, "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"panic!(\"x\")\"#; let c = '\"'; let l: &'a str = s;\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("&'a str"));
    }

    #[test]
    fn test_regions_and_fn_names_tracked() {
        let src = "\
fn outer(x: u8) -> u8 {
    x
}
#[cfg(test)]
mod tests {
    fn helper() {
        let _ = 1;
    }
}
fn later() {
    let _ = 2;
}
";
        let lines = scan(src);
        assert_eq!(lines[1].current_fn.as_deref(), Some("outer"));
        assert!(!lines[1].in_test);
        assert!(lines[6].in_test, "helper body is test code");
        assert_eq!(lines[6].current_fn.as_deref(), Some("helper"));
        assert!(!lines[10].in_test, "later() is live code again");
        assert_eq!(lines[10].current_fn.as_deref(), Some("later"));
    }

    #[test]
    fn ident_boundaries_respected() {
        assert!(has_ident("x.unwrap()", "unwrap"));
        assert!(!has_ident("x.unwrap_or(0)", "unwrap"));
        assert!(!has_ident("let unwrapped = 1;", "unwrap"));
    }
}
