//! CLI entry point: `cargo run -p sempair-auditor [-- --json] [root]`.
//!
//! Exits 0 when no non-allowlisted findings exist, 1 otherwise, 2 on
//! usage/IO errors. `scripts/check.sh` treats exit 1 as a gate failure.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: sempair-auditor [--json] [root]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("sempair-auditor: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    // Default root: the workspace directory the binary was built from,
    // so `cargo run -p sempair-auditor` audits the repo regardless of
    // the invoking cwd.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    if !root.is_dir() {
        eprintln!("sempair-auditor: `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    let report = sempair_auditor::audit_workspace(&root);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
