//! Fixture-driven self-tests: each rule must fire on its known-bad
//! fixture with the exact rule ID, and stay silent on the known-good
//! one. This is the auditor's own regression net — if a heuristic
//! regresses, these fail before the workspace gate goes blind.

use sempair_auditor::{audit_source, Finding};

fn fixture(name: &str) -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn active(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.allowed.is_none()).collect()
}

fn rules(findings: &[&Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn r1_bad_fires() {
    let findings = audit_source(
        "fixtures/r1_bad.rs",
        &fixture("r1_bad.rs"),
        true,
        false,
        false,
    );
    let active = active(&findings);
    assert_eq!(
        rules(&active),
        vec!["R1-panic", "R1-panic", "R1-panic"],
        "unwrap, panic!, and decode indexing must each fire: {findings:?}"
    );
    let lines: Vec<usize> = active.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![4, 9, 11]);
}

#[test]
fn r1_good_is_clean_and_counts_the_allow() {
    let findings = audit_source(
        "fixtures/r1_good.rs",
        &fixture("r1_good.rs"),
        true,
        false,
        false,
    );
    assert!(active(&findings).is_empty(), "{findings:?}");
    let allowed: Vec<&Finding> = findings.iter().filter(|f| f.allowed.is_some()).collect();
    assert_eq!(allowed.len(), 1, "the documented expect is still reported");
    assert_eq!(allowed[0].rule, "R1-panic");
    assert_eq!(
        allowed[0].allowed.as_deref(),
        Some("fixture: documented misuse panic")
    );
}

#[test]
fn r2_bad_fires() {
    let findings = audit_source(
        "fixtures/r2_bad.rs",
        &fixture("r2_bad.rs"),
        false,
        false,
        false,
    );
    let active = active(&findings);
    assert!(active.iter().all(|f| f.rule == "R2-secret"), "{findings:?}");
    // derive(Debug), un-redacted Display impl, and the two formatting
    // leaks of `.scalar` (write! inside the impl, println! outside).
    assert_eq!(active.len(), 4, "{findings:?}");
    assert!(active.iter().any(|f| f.message.contains("derives `Debug`")));
    assert!(active
        .iter()
        .any(|f| f.message.contains("redaction marker")));
    assert!(active
        .iter()
        .any(|f| f.message.contains("flows into `println!`")));
}

#[test]
fn r2_good_is_clean() {
    let findings = audit_source(
        "fixtures/r2_good.rs",
        &fixture("r2_good.rs"),
        false,
        false,
        false,
    );
    assert!(active(&findings).is_empty(), "{findings:?}");
}

#[test]
fn r3_bad_fires() {
    let findings = audit_source(
        "fixtures/r3_bad.rs",
        &fixture("r3_bad.rs"),
        false,
        false,
        false,
    );
    let active = active(&findings);
    assert_eq!(
        rules(&active),
        vec!["R3-bound", "R3-bound"],
        "uncapped with_capacity and resize must both fire: {findings:?}"
    );
}

#[test]
fn r3_good_is_clean() {
    let findings = audit_source(
        "fixtures/r3_good.rs",
        &fixture("r3_good.rs"),
        false,
        false,
        false,
    );
    assert!(active(&findings).is_empty(), "{findings:?}");
}

#[test]
fn r4_bad_fires() {
    let findings = audit_source(
        "fixtures/r4_bad.rs",
        &fixture("r4_bad.rs"),
        false,
        false,
        false,
    );
    let active = active(&findings);
    assert_eq!(
        rules(&active),
        vec!["R4-ct", "R4-ct"],
        "derived PartialEq and the == impl must both fire: {findings:?}"
    );
    assert!(active.iter().any(|f| f.message.contains("`Share`")));
    assert!(active
        .iter()
        .any(|f| f.message.contains("`BlindingFactor`")));
}

#[test]
fn r4_good_is_clean() {
    let findings = audit_source(
        "fixtures/r4_good.rs",
        &fixture("r4_good.rs"),
        false,
        false,
        false,
    );
    assert!(active(&findings).is_empty(), "{findings:?}");
}

#[test]
fn cache_modules_pass_the_file_wide_bound_scan() {
    // The workspace gate widens R3 to whole-file scope in the cache
    // modules (BOUND_SCOPE); pin them clean here so a regression names
    // the file instead of surfacing as a generic gate failure.
    for rel in [
        "crates/core/src/cache.rs",
        "crates/sem-net/src/cache.rs",
        "crates/sem-net/src/scenario.rs",
        "crates/sem-net/src/store.rs",
    ] {
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(rel);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let findings = audit_source(rel, &src, false, true, false);
        assert!(active(&findings).is_empty(), "{rel}: {findings:?}");
    }
}

#[test]
fn r3_scope_bad_fires_only_under_the_widened_scan() {
    // Outside a decode-named function the allocations are invisible to
    // the default R3 scope; the file-wide scan must catch both.
    let src = fixture("r3_scope_bad.rs");
    let default_scope = audit_source("fixtures/r3_scope_bad.rs", &src, false, false, false);
    assert!(
        active(&default_scope).is_empty(),
        "fixture should only fire under bound_everywhere: {default_scope:?}"
    );
    let widened = audit_source("fixtures/r3_scope_bad.rs", &src, false, true, false);
    let active = active(&widened);
    assert_eq!(
        rules(&active),
        vec!["R3-bound", "R3-bound"],
        "uncapped with_capacity and resize must both fire: {widened:?}"
    );
}

#[test]
fn r3_scope_good_is_clean() {
    let findings = audit_source(
        "fixtures/r3_scope_good.rs",
        &fixture("r3_scope_good.rs"),
        false,
        true,
        false,
    );
    assert!(active(&findings).is_empty(), "{findings:?}");
}

#[test]
fn r5_bad_fires() {
    let src = fixture("r5_bad.rs");
    // Lock discipline is scoped: with lock_scope off the file is clean.
    let unscoped = audit_source("fixtures/r5_bad.rs", &src, false, false, false);
    assert!(
        active(&unscoped).is_empty(),
        "R5 must not fire outside LOCK_SCOPE: {unscoped:?}"
    );
    let findings = audit_source("fixtures/r5_bad.rs", &src, false, false, true);
    let active = active(&findings);
    assert_eq!(
        rules(&active),
        vec!["R5-lock"; 5],
        "all five lock-discipline defects must fire: {findings:?}"
    );
    let expect = [
        "raw `Mutex::new`",
        "without a `// lock:class(Name)` annotation",
        "`lock:class(Bogus)` names no declared lock class",
        "annotation contradicts `LockClass::Shard`",
        "inverts the declared lock order",
    ];
    for (finding, needle) in active.iter().zip(expect) {
        assert!(
            finding.message.contains(needle),
            "expected {needle:?} in {finding:?}"
        );
    }
}

#[test]
fn r5_good_is_clean() {
    let findings = audit_source(
        "fixtures/r5_good.rs",
        &fixture("r5_good.rs"),
        false,
        false,
        true,
    );
    assert!(active(&findings).is_empty(), "{findings:?}");
}

#[test]
fn test_code_in_fixtures_is_exempt() {
    let src = "\
#[cfg(test)]
mod tests {
    fn decode_helper(buf: &[u8]) -> u8 {
        buf[0]
    }
    #[test]
    fn t() {
        assert_eq!(decode_helper(&[7]).clone(), 7u8.clone());
    }
}
";
    let findings = audit_source("fixtures/inline.rs", src, true, false, false);
    assert!(findings.is_empty(), "{findings:?}");
}
