//! The acceptance gate, as a test: auditing the actual repository must
//! produce zero active findings. Allowlisted findings are tolerated but
//! bounded, so the escape hatch cannot silently become the norm.

#[test]
fn repository_has_no_active_findings() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = sempair_auditor::audit_workspace(&root);
    assert!(
        report.files_scanned >= 20,
        "walk looks broken: only {} files scanned",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "active findings in the workspace:\n{}",
        report.to_text()
    );
    // The queue/parse escapes the first serving iteration needed are
    // gone (bounded queue + fallible framing); keep the ceiling tight
    // so the escape hatch cannot quietly become the norm again.
    assert!(
        report.allowed.len() <= 2,
        "allowlist has grown to {} entries — prune before adding more:\n{}",
        report.allowed.len(),
        report.to_text()
    );
}
