//! The acceptance gate, as a test: auditing the actual repository must
//! produce zero active findings. Allowlisted findings are tolerated but
//! bounded, so the escape hatch cannot silently become the norm.

#[test]
fn repository_has_no_active_findings() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = sempair_auditor::audit_workspace(&root);
    assert!(
        report.files_scanned >= 20,
        "walk looks broken: only {} files scanned",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "active findings in the workspace:\n{}",
        report.to_text()
    );
    // Every audit:allow escape has been rewritten fallibly; the
    // allowlist is empty and must stay that way — a new entry needs a
    // PR-level justification, not a comment.
    assert!(
        report.allowed.is_empty(),
        "allowlist has grown to {} entries — rewrite fallibly instead:\n{}",
        report.allowed.len(),
        report.to_text()
    );
}

/// The auditor's [`sempair_auditor::rules::LOCK_CLASSES`] table is a
/// deliberate duplicate of the runtime registry in
/// `crates/core/src/lockdep.rs` (the auditor must not depend on core).
/// Parse the real `rank()` match arms out of the source and assert the
/// two tables agree exactly, so they cannot drift apart silently.
#[test]
fn auditor_lock_class_table_matches_core_registry() {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../core/src/lockdep.rs");
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    // Arms look like `LockClass::Warm => 4,` — one per line by
    // convention (enforced here: a reformat that breaks parsing fails
    // this test rather than silently shrinking the parsed table). The
    // scan is scoped to the body of `fn rank` so the private `index()`
    // match (which also maps variants to integers) is not picked up.
    let mut core_table = Vec::new();
    let mut in_rank = false;
    for line in src.lines() {
        let code = line.split("//").next().unwrap_or("").trim();
        if code.contains("fn rank") {
            in_rank = true;
            continue;
        }
        if !in_rank {
            continue;
        }
        let Some(rest) = code.strip_prefix("LockClass::") else {
            if code.starts_with('}') && !core_table.is_empty() {
                break;
            }
            continue;
        };
        let Some((name, rank)) = rest.split_once("=>") else {
            continue;
        };
        let Ok(rank) = rank.trim().trim_end_matches(',').parse::<u8>() else {
            continue;
        };
        core_table.push((name.trim().to_string(), rank));
    }
    core_table.sort();
    let mut auditor_table: Vec<(String, u8)> = sempair_auditor::rules::LOCK_CLASSES
        .iter()
        .map(|&(n, r)| (n.to_string(), r))
        .collect();
    auditor_table.sort();
    assert!(
        core_table.len() >= 10,
        "parsed only {} rank arms from {} — parser or registry broke",
        core_table.len(),
        path.display()
    );
    assert_eq!(
        core_table, auditor_table,
        "auditor LOCK_CLASSES drifted from the core lockdep registry"
    );
}
