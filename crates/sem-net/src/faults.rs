//! Deterministic fault injection for the SEM TCP transport.
//!
//! A [`FaultProxy`] sits between a [`crate::tcp::TcpSemClient`] and a
//! [`crate::tcp::TcpSemServer`], forwarding the frame protocol while
//! injecting faults — delays, dropped frames, mid-frame truncations,
//! and byte corruption — either from an explicit per-frame script or
//! deterministically from a seed ([`FaultPlan`]). Same plan, same
//! traffic → same faults, so chaos tests are reproducible.
//!
//! The proxy is frame-aware: it parses the `u32 length ‖ payload`
//! framing of [`crate::proto`] so a fault hits an entire protocol
//! message, the unit the paper's §4/§5 bandwidth accounting is stated
//! in. Faults are scheduled per *direction* (client→server and
//! server→client have independent plans) with frame indices counted
//! globally across reconnects — a plan that drops frame 0 of the
//! server→client direction drops exactly one response, which is what
//! lets a test assert "the client retried through one lost reply".
//!
//! A proxy can also emulate a *link* ([`FaultProxy::spawn_linked`]):
//! every frame is delivered `one_way` after it arrived, with due times
//! tracked per frame so back-to-back frames ride the link concurrently
//! instead of queueing behind each other's delay. That is how real
//! propagation latency behaves — it bounds round trips, not
//! throughput — and it is what lets the serving benchmark show
//! pipelining hiding RTTs that a single-in-flight client must eat one
//! per request.
//!
//! Beyond per-frame faults, a proxy can *crash* wholesale via
//! [`CrashMode`]: `Refuse` closes the listening socket (connect fails
//! fast, as if the process died), `DropAfterAccept` completes the TCP
//! handshake and then hangs up (the half-crash that only surfaces
//! after connecting). Both modes also sever already-proxied
//! connections, and `Normal` revives the replica — which is how the
//! cluster chaos tests kill a specific SEM mid-workload and later
//! bring it back.

use crossbeam::channel;
use sempair_core::lockdep::{LockClass, TrackedMutex};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Accept-loop poll interval (mirrors the server's non-blocking
/// acceptor).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// One fault applied to one forwarded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Forward the frame untouched.
    Forward,
    /// Hold the frame for the given duration, then forward it.
    Delay(Duration),
    /// Swallow the frame entirely; the connection stays up.
    Drop,
    /// Forward the length prefix and only the first `n` payload bytes,
    /// then close the connection — the receiver sees a mid-frame EOF.
    Truncate(usize),
    /// XOR the payload byte at `offset % len` with `xor` (a non-zero
    /// `xor` guarantees the byte changes). Framing stays intact, so
    /// the receiver gets a well-delimited but corrupt payload.
    Corrupt {
        /// Payload offset (taken modulo the payload length).
        offset: usize,
        /// XOR mask applied to the byte.
        xor: u8,
    },
}

/// How the proxy treats *inbound connections* — the knob chaos tests
/// turn to crash (and later revive) one SEM replica without touching
/// the replica process itself. Orthogonal to the per-frame
/// [`FaultPlan`]s, which only see connections that were accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Accept and pump connections normally.
    Normal,
    /// Close the listening socket: `connect()` fails fast with
    /// connection-refused, exactly as if the process were gone.
    Refuse,
    /// Complete the TCP handshake, then immediately close the socket —
    /// the "process up, service wedged" half-crash where clients only
    /// learn the replica is dead after connecting.
    DropAfterAccept,
}

impl CrashMode {
    fn from_u8(v: u8) -> CrashMode {
        match v {
            1 => CrashMode::Refuse,
            2 => CrashMode::DropAfterAccept,
            _ => CrashMode::Normal,
        }
    }
}

/// Per-mille fault rates for seeded plans; whatever remains is
/// forwarded clean.
#[derive(Debug, Clone, Copy)]
pub struct FaultProfile {
    /// ‰ of frames swallowed.
    pub drop_per_mille: u16,
    /// ‰ of frames corrupted (offset and mask drawn from the seed).
    pub corrupt_per_mille: u16,
    /// ‰ of frames truncated mid-payload.
    pub truncate_per_mille: u16,
    /// ‰ of frames delayed by [`FaultProfile::delay`].
    pub delay_per_mille: u16,
    /// Delay applied to delayed frames.
    pub delay: Duration,
}

impl FaultProfile {
    /// The flaky-mobile-link preset the chaos scenarios drive: ~2% of
    /// frames lost, ~1% corrupted, ~0.5% cut mid-frame, and ~3% held
    /// for a radio-scale 10 ms stall. Aggressive enough that a client
    /// without retries visibly fails, mild enough that a jittered
    /// retry budget of a few attempts recovers essentially everything.
    pub fn mobile() -> Self {
        FaultProfile {
            drop_per_mille: 20,
            corrupt_per_mille: 10,
            truncate_per_mille: 5,
            delay_per_mille: 30,
            delay: Duration::from_millis(10),
        }
    }
}

/// `xorshift64*`-style generator — deterministic, dependency-free, and
/// emphatically not cryptographic (it schedules test faults).
struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    fn new(seed: u64) -> Self {
        // Splitmix-style stir so seed 0 (a fixed point of xorshift)
        // still produces a usable stream.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Xorshift64 {
            state: z ^ (z >> 31),
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

enum PlanMode {
    /// Frame `i` gets `script[i]`; frames past the end are forwarded.
    Script(Vec<Fault>),
    /// Every frame draws its fault from the seeded generator.
    Seeded(Xorshift64, FaultProfile),
}

/// A deterministic schedule of faults for one direction of traffic.
pub struct FaultPlan {
    mode: PlanMode,
    next_frame: usize,
}

impl FaultPlan {
    /// Forwards everything untouched (the control arm).
    pub fn clean() -> Self {
        Self::script(Vec::new())
    }

    /// Applies `script[i]` to the `i`-th frame of this direction
    /// (counted across reconnects); later frames are forwarded.
    pub fn script(script: Vec<Fault>) -> Self {
        FaultPlan {
            mode: PlanMode::Script(script),
            next_frame: 0,
        }
    }

    /// Draws every frame's fault deterministically from `seed` at the
    /// profile's rates: same seed and traffic → same fault sequence.
    pub fn seeded(seed: u64, profile: FaultProfile) -> Self {
        FaultPlan {
            mode: PlanMode::Seeded(Xorshift64::new(seed), profile),
            next_frame: 0,
        }
    }

    /// The fault for the next frame in this direction.
    fn next(&mut self) -> Fault {
        let index = self.next_frame;
        self.next_frame += 1;
        match &mut self.mode {
            PlanMode::Script(script) => script.get(index).cloned().unwrap_or(Fault::Forward),
            PlanMode::Seeded(rng, profile) => {
                let roll = (rng.next() % 1000) as u16;
                let aux = rng.next(); // always drawn → stream stays aligned
                let d = profile.drop_per_mille;
                let c = d + profile.corrupt_per_mille;
                let t = c + profile.truncate_per_mille;
                let y = t + profile.delay_per_mille;
                if roll < d {
                    Fault::Drop
                } else if roll < c {
                    Fault::Corrupt {
                        offset: (aux >> 8) as usize,
                        xor: (aux as u8) | 1,
                    }
                } else if roll < t {
                    Fault::Truncate((aux % 16) as usize)
                } else if roll < y {
                    Fault::Delay(profile.delay)
                } else {
                    Fault::Forward
                }
            }
        }
    }
}

/// Counters of what the proxy did (all directions combined).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames forwarded untouched (including after a delay).
    pub forwarded: u64,
    /// Frames swallowed.
    pub dropped: u64,
    /// Frames forwarded with a corrupted byte.
    pub corrupted: u64,
    /// Frames cut mid-payload (connection closed).
    pub truncated: u64,
    /// Frames held back before forwarding.
    pub delayed: u64,
}

#[derive(Default)]
struct StatsInner {
    forwarded: AtomicU64,
    dropped: AtomicU64,
    corrupted: AtomicU64,
    truncated: AtomicU64,
    delayed: AtomicU64,
}

/// A frame-aware TCP proxy injecting faults between a SEM client and
/// server (see module docs).
pub struct FaultProxy {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    crash: Arc<AtomicU8>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<TrackedMutex<Vec<TcpStream>>>,
    pumps: Arc<TrackedMutex<Vec<JoinHandle<()>>>>,
    stats: Arc<StatsInner>,
}

impl FaultProxy {
    /// Binds a loopback port and forwards every connection to
    /// `upstream`, applying `c2s` to client→server frames and `s2c` to
    /// server→client frames.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the bind.
    pub fn spawn(upstream: SocketAddr, c2s: FaultPlan, s2c: FaultPlan) -> std::io::Result<Self> {
        Self::spawn_linked(upstream, c2s, s2c, Duration::ZERO)
    }

    /// Like [`FaultProxy::spawn`], but every forwarded frame is also
    /// delivered `one_way` after it arrived at the proxy, emulating a
    /// symmetric link's propagation delay. Due times are tracked per
    /// frame, so a burst of in-flight frames shares the link instead
    /// of queueing behind each other's sleep — latency bounds the
    /// round trip, not the throughput (contrast [`Fault::Delay`],
    /// which stalls its whole direction and models a stalled hop).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the bind.
    pub fn spawn_linked(
        upstream: SocketAddr,
        c2s: FaultPlan,
        s2c: FaultPlan,
        one_way: Duration,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let crash = Arc::new(AtomicU8::new(0));
        // lock:class(Faults)
        let conns = Arc::new(TrackedMutex::new(LockClass::Faults, Vec::new()));
        // lock:class(Faults)
        let pumps = Arc::new(TrackedMutex::new(LockClass::Faults, Vec::new()));
        let stats = Arc::new(StatsInner::default());
        // lock:class(Faults)
        let c2s = Arc::new(TrackedMutex::new(LockClass::Faults, c2s));
        // lock:class(Faults)
        let s2c = Arc::new(TrackedMutex::new(LockClass::Faults, s2c));
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let crash = Arc::clone(&crash);
            let conns = Arc::clone(&conns);
            let pumps = Arc::clone(&pumps);
            let stats = Arc::clone(&stats);
            // The acceptor owns the listener so Refuse mode can drop it
            // (std's TcpListener binds with SO_REUSEADDR on Unix, so
            // the later rebind on the same port succeeds even with
            // lingering TIME_WAIT connections).
            let mut listener = Some(listener);
            std::thread::spawn(move || loop {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let mode = CrashMode::from_u8(crash.load(Ordering::SeqCst));
                if mode == CrashMode::Refuse {
                    // Dropping the socket makes connect() fail fast.
                    listener = None;
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                if listener.is_none() {
                    match TcpListener::bind(local_addr) {
                        Ok(l) if l.set_nonblocking(true).is_ok() => listener = Some(l),
                        _ => {
                            std::thread::sleep(ACCEPT_POLL);
                            continue;
                        }
                    }
                }
                let Some(bound) = listener.as_ref() else {
                    // Rebound just above; treat an impossible miss as a
                    // poll tick rather than crashing the proxy thread.
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                };
                match bound.accept() {
                    Ok((client, _)) => {
                        if mode == CrashMode::DropAfterAccept {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        }
                        let _ = client.set_nonblocking(false);
                        let Ok(server) = TcpStream::connect(upstream) else {
                            continue;
                        };
                        let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone())
                        else {
                            continue;
                        };
                        {
                            // Registry clones, so shutdown() can
                            // force-close both halves.
                            let mut conns = conns.lock();
                            if let Ok(s) = client.try_clone() {
                                conns.push(s);
                            }
                            if let Ok(s) = server.try_clone() {
                                conns.push(s);
                            }
                        }
                        let mut pumps = pumps.lock();
                        pumps.push(spawn_pump(
                            client,
                            server,
                            Arc::clone(&c2s),
                            Arc::clone(&stats),
                            one_way,
                        ));
                        pumps.push(spawn_pump(
                            server2,
                            client2,
                            Arc::clone(&s2c),
                            Arc::clone(&stats),
                            one_way,
                        ));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            })
        };
        Ok(FaultProxy {
            local_addr,
            shutdown,
            crash,
            acceptor: Some(acceptor),
            conns,
            pumps,
            stats,
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Switches how inbound connections are treated. Entering any
    /// non-[`CrashMode::Normal`] mode also force-closes every
    /// connection already proxied, so a replica "crashes" for its
    /// existing clients too, not just new ones. Takes effect within
    /// one accept-poll interval (~5 ms).
    pub fn set_crash_mode(&self, mode: CrashMode) {
        self.crash.store(
            match mode {
                CrashMode::Normal => 0,
                CrashMode::Refuse => 1,
                CrashMode::DropAfterAccept => 2,
            },
            Ordering::SeqCst,
        );
        if mode != CrashMode::Normal {
            for stream in self.conns.lock().drain(..) {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// The currently configured crash mode.
    pub fn crash_mode(&self) -> CrashMode {
        CrashMode::from_u8(self.crash.load(Ordering::SeqCst))
    }

    /// What the proxy has done so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            forwarded: self.stats.forwarded.load(Ordering::SeqCst),
            dropped: self.stats.dropped.load(Ordering::SeqCst),
            corrupted: self.stats.corrupted.load(Ordering::SeqCst),
            truncated: self.stats.truncated.load(Ordering::SeqCst),
            delayed: self.stats.delayed.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting, closes every proxied connection, and joins the
    /// pump threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for stream in self.conns.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = self.pumps.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// What the pump should do with one frame after fault bookkeeping.
enum Action {
    /// Deliver the encoded frame after holding it `hold` beyond the
    /// link latency.
    Send { frame: Vec<u8>, hold: Duration },
    /// Swallow the frame; keep pumping.
    Skip,
    /// Deliver a partial frame, then close the connection.
    SendThenClose { frame: Vec<u8> },
}

fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Applies one fault's bookkeeping and says what to deliver.
fn plan_action(fault: &Fault, payload: &[u8], stats: &StatsInner) -> Action {
    match fault {
        Fault::Forward => {
            stats.forwarded.fetch_add(1, Ordering::SeqCst);
            Action::Send {
                frame: encode_frame(payload),
                hold: Duration::ZERO,
            }
        }
        Fault::Delay(duration) => {
            stats.delayed.fetch_add(1, Ordering::SeqCst);
            stats.forwarded.fetch_add(1, Ordering::SeqCst);
            Action::Send {
                frame: encode_frame(payload),
                hold: *duration,
            }
        }
        Fault::Drop => {
            stats.dropped.fetch_add(1, Ordering::SeqCst);
            Action::Skip
        }
        Fault::Truncate(keep) => {
            // Announce the full length, deliver only a prefix, then
            // hang up: the receiver is left mid-frame.
            let keep = (*keep).min(payload.len());
            let mut partial = Vec::with_capacity(4 + keep);
            partial.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            partial.extend_from_slice(&payload[..keep]);
            stats.truncated.fetch_add(1, Ordering::SeqCst);
            Action::SendThenClose { frame: partial }
        }
        Fault::Corrupt { offset, xor } => {
            let mut payload = payload.to_vec();
            if !payload.is_empty() {
                let at = offset % payload.len();
                payload[at] ^= xor;
            }
            stats.corrupted.fetch_add(1, Ordering::SeqCst);
            Action::Send {
                frame: encode_frame(&payload),
                hold: Duration::ZERO,
            }
        }
    }
}

/// Reads frames from `from` and forwards them to `to` per the plan.
/// Exits (closing both halves) on EOF, socket error, or a truncation
/// fault. With a non-zero `one_way` each frame is handed to a delivery
/// thread stamped with its due instant, so the reader keeps draining
/// the socket while earlier frames are still "on the wire".
fn spawn_pump(
    mut from: TcpStream,
    mut to: TcpStream,
    plan: Arc<TrackedMutex<FaultPlan>>,
    stats: Arc<StatsInner>,
    one_way: Duration,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        if one_way.is_zero() {
            // Direct path: faults apply inline (a Delay stalls this
            // direction, which is exactly the stalled-hop it models).
            while let Ok(Some(payload)) = read_raw_frame(&mut from) {
                // Draw under the lock, apply outside it: a Delay must
                // not stall the opposite direction's plan.
                let fault = plan.lock().next();
                match plan_action(&fault, &payload, &stats) {
                    Action::Send { frame, hold } => {
                        if !hold.is_zero() {
                            std::thread::sleep(hold);
                        }
                        if to.write_all(&frame).is_err() {
                            break;
                        }
                    }
                    Action::Skip => {}
                    Action::SendThenClose { frame } => {
                        let _ = to.write_all(&frame);
                        break;
                    }
                }
            }
        } else if let Ok(mut out) = to.try_clone() {
            // Linked path: due times are monotone in arrival order, so
            // one delivery thread sleeping until each frame's due
            // instant preserves ordering while frames overlap in
            // flight. A per-frame Delay extends that frame's due time
            // without stalling the reader.
            let (tx, rx) = channel::unbounded::<(Instant, Vec<u8>)>();
            let delivery = std::thread::spawn(move || {
                while let Ok((due, frame)) = rx.recv() {
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    if out.write_all(&frame).is_err() {
                        // Keep draining so the reader never blocks on
                        // a full pipe to a dead peer.
                        while rx.recv().is_ok() {}
                        return;
                    }
                }
            });
            while let Ok(Some(payload)) = read_raw_frame(&mut from) {
                let fault = plan.lock().next();
                match plan_action(&fault, &payload, &stats) {
                    Action::Send { frame, hold } => {
                        if tx.send((Instant::now() + one_way + hold, frame)).is_err() {
                            break;
                        }
                    }
                    Action::Skip => {}
                    Action::SendThenClose { frame } => {
                        let _ = tx.send((Instant::now() + one_way, frame));
                        break;
                    }
                }
            }
            drop(tx);
            let _ = delivery.join();
        }
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    })
}

/// Reads one length-prefixed frame payload without interpreting it;
/// `Ok(None)` on clean EOF. Unlike the server, the proxy forwards
/// oversized frames untouched — it injects faults, it doesn't police.
fn read_raw_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &mut FaultPlan, n: usize) -> Vec<Fault> {
        (0..n).map(|_| plan.next()).collect()
    }

    #[test]
    fn script_plan_applies_in_order_then_forwards() {
        let mut plan = FaultPlan::script(vec![
            Fault::Drop,
            Fault::Corrupt {
                offset: 0,
                xor: 0xff,
            },
            Fault::Truncate(3),
        ]);
        assert_eq!(
            drain(&mut plan, 5),
            vec![
                Fault::Drop,
                Fault::Corrupt {
                    offset: 0,
                    xor: 0xff
                },
                Fault::Truncate(3),
                Fault::Forward,
                Fault::Forward,
            ]
        );
        assert_eq!(drain(&mut FaultPlan::clean(), 3), vec![Fault::Forward; 3]);
    }

    #[test]
    fn seeded_plan_is_deterministic() {
        let profile = FaultProfile {
            drop_per_mille: 200,
            corrupt_per_mille: 200,
            truncate_per_mille: 100,
            delay_per_mille: 100,
            delay: Duration::from_millis(1),
        };
        let a = drain(&mut FaultPlan::seeded(42, profile), 64);
        let b = drain(&mut FaultPlan::seeded(42, profile), 64);
        assert_eq!(a, b);
        // A different seed produces a different schedule.
        let c = drain(&mut FaultPlan::seeded(43, profile), 64);
        assert_ne!(a, c);
        // At these rates, 64 draws hit several fault kinds.
        assert!(a.contains(&Fault::Drop));
        assert!(a.iter().any(|f| matches!(f, Fault::Corrupt { .. })));
        assert!(a.contains(&Fault::Forward));
    }

    #[test]
    fn seeded_corrupt_mask_never_zero() {
        let profile = FaultProfile {
            drop_per_mille: 0,
            corrupt_per_mille: 1000,
            truncate_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::ZERO,
        };
        let mut plan = FaultPlan::seeded(7, profile);
        for fault in drain(&mut plan, 128) {
            let Fault::Corrupt { xor, .. } = fault else {
                panic!("profile corrupts every frame")
            };
            assert_ne!(xor, 0, "a zero mask would be a silent no-op");
        }
    }

    #[test]
    fn proxy_forwards_and_drops_per_script() {
        // An echo "server": reads frames, echoes payloads back.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut stream, _) = upstream.accept().unwrap();
            while let Ok(Some(payload)) = read_raw_frame(&mut stream) {
                let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
                frame.extend_from_slice(&payload);
                if stream.write_all(&frame).is_err() {
                    break;
                }
            }
        });
        // Drop the second response; everything else flows.
        let proxy = FaultProxy::spawn(
            upstream_addr,
            FaultPlan::clean(),
            FaultPlan::script(vec![Fault::Forward, Fault::Drop]),
        )
        .unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        // Generous deadline for reads that *should* succeed, so a
        // loaded test machine doesn't turn a slow hop into a failure.
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let send = |client: &mut TcpStream, payload: &[u8]| {
            let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
            frame.extend_from_slice(payload);
            client.write_all(&frame).unwrap();
        };
        // Frame 0 round-trips.
        send(&mut client, b"first");
        assert_eq!(read_raw_frame(&mut client).unwrap().unwrap(), b"first");
        // Frame 1's response is swallowed: a short read times out.
        client
            .set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        send(&mut client, b"second");
        assert!(read_raw_frame(&mut client).is_err());
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Frame 2 flows again on the same connection.
        send(&mut client, b"third");
        assert_eq!(read_raw_frame(&mut client).unwrap().unwrap(), b"third");
        // The pump bumps its counters after forwarding, so give the
        // stats a moment to catch up with the bytes we observed.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while proxy.stats().forwarded < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = proxy.stats();
        assert_eq!(stats.dropped, 1);
        // 3 requests forwarded + 2 responses forwarded.
        assert_eq!(stats.forwarded, 5);
        drop(client);
        proxy.shutdown();
        let _ = echo.join();
    }

    /// Echo upstream used by the crash-mode tests: accepts any number
    /// of connections, echoing frames on each.
    fn spawn_echo() -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = upstream.local_addr().unwrap();
        upstream.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut workers = Vec::new();
            while !stop2.load(Ordering::SeqCst) {
                match upstream.accept() {
                    Ok((mut stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        workers.push(std::thread::spawn(move || {
                            while let Ok(Some(payload)) = read_raw_frame(&mut stream) {
                                let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
                                frame.extend_from_slice(&payload);
                                if stream.write_all(&frame).is_err() {
                                    break;
                                }
                            }
                        }));
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        (addr, stop, handle)
    }

    /// One frame echoed through a fresh connection to `addr`.
    fn echo_once(addr: SocketAddr) -> std::io::Result<Vec<u8>> {
        let mut client = TcpStream::connect(addr)?;
        client.set_read_timeout(Some(Duration::from_secs(5)))?;
        let payload = b"ping";
        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(payload);
        client.write_all(&frame)?;
        read_raw_frame(&mut client)?
            .ok_or_else(|| std::io::Error::new(ErrorKind::UnexpectedEof, "closed"))
    }

    #[test]
    fn linked_latency_delays_frames_without_serializing() {
        let (addr, stop, echo) = spawn_echo();
        let one_way = Duration::from_millis(40);
        let proxy = FaultProxy::spawn_linked(addr, FaultPlan::clean(), FaultPlan::clean(), one_way)
            .unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let send = |client: &mut TcpStream, payload: &[u8]| {
            let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
            frame.extend_from_slice(payload);
            client.write_all(&frame).unwrap();
        };
        // A lone ping-pong pays the full round trip: one_way each way.
        let start = Instant::now();
        send(&mut client, b"lone");
        assert_eq!(read_raw_frame(&mut client).unwrap().unwrap(), b"lone");
        assert!(
            start.elapsed() >= 2 * one_way,
            "round trip {:?} undercut the 2×{one_way:?} link",
            start.elapsed()
        );
        // A burst of 8 in-flight frames shares the link: total wall
        // time stays near one round trip, nowhere near the 16×one_way
        // a serializing (sleep-per-frame) link would cost.
        let start = Instant::now();
        for i in 0..8u8 {
            send(&mut client, &[i]);
        }
        for i in 0..8u8 {
            assert_eq!(read_raw_frame(&mut client).unwrap().unwrap(), &[i]);
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= 2 * one_way, "burst {elapsed:?} beat the link");
        assert!(
            elapsed < 8 * one_way,
            "burst took {elapsed:?}: latency is serializing frames instead of overlapping them"
        );
        drop(client);
        proxy.shutdown();
        stop.store(true, Ordering::SeqCst);
        let _ = echo.join();
    }

    #[test]
    fn crash_refuse_then_recover() {
        let (addr, stop, echo) = spawn_echo();
        let proxy = FaultProxy::spawn(addr, FaultPlan::clean(), FaultPlan::clean()).unwrap();
        assert_eq!(proxy.crash_mode(), CrashMode::Normal);
        assert_eq!(echo_once(proxy.local_addr()).unwrap(), b"ping");
        proxy.set_crash_mode(CrashMode::Refuse);
        // Within one poll interval the listener is gone: connects fail.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if echo_once(proxy.local_addr()).is_err() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "refuse mode never took effect"
            );
            std::thread::sleep(ACCEPT_POLL);
        }
        // Reviving the replica rebinds the same port.
        proxy.set_crash_mode(CrashMode::Normal);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(reply) = echo_once(proxy.local_addr()) {
                assert_eq!(reply, b"ping");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "proxy never came back after refuse"
            );
            std::thread::sleep(ACCEPT_POLL);
        }
        proxy.shutdown();
        stop.store(true, Ordering::SeqCst);
        let _ = echo.join();
    }

    #[test]
    fn crash_drop_after_accept_severs_connections() {
        let (addr, stop, echo) = spawn_echo();
        let proxy = FaultProxy::spawn(addr, FaultPlan::clean(), FaultPlan::clean()).unwrap();
        proxy.set_crash_mode(CrashMode::DropAfterAccept);
        // Connects may still land (or race the mode flip), but no
        // request ever completes once the mode is active.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if echo_once(proxy.local_addr()).is_err() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "drop-after-accept never took effect"
            );
            std::thread::sleep(ACCEPT_POLL);
        }
        proxy.set_crash_mode(CrashMode::Normal);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(reply) = echo_once(proxy.local_addr()) {
                assert_eq!(reply, b"ping");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "proxy never recovered from drop-after-accept"
            );
            std::thread::sleep(ACCEPT_POLL);
        }
        proxy.shutdown();
        stop.store(true, Ordering::SeqCst);
        let _ = echo.join();
    }

    #[test]
    fn proxy_truncation_closes_mid_frame() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let (mut stream, _) = upstream.accept().unwrap();
            // The server side sees a mid-frame EOF: read_exact fails.
            let result = read_raw_frame(&mut stream);
            assert!(result.is_err() || result.unwrap().is_none());
        });
        let proxy = FaultProxy::spawn(
            upstream_addr,
            FaultPlan::script(vec![Fault::Truncate(2)]),
            FaultPlan::clean(),
        )
        .unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        let payload = b"truncate me";
        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(payload);
        client.write_all(&frame).unwrap();
        sink.join().unwrap();
        assert_eq!(proxy.stats().truncated, 1);
        proxy.shutdown();
    }
}
