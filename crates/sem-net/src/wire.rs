//! Wire-format accounting: the §4/§5 bandwidth comparison as code.
//!
//! Every mediated operation is one request/response exchange with the
//! SEM. These functions compute the exact bit counts for each protocol
//! so the E3 report regenerates the paper's numbers ("the SEM only has
//! to send 160 bits to the user with respect to 1024 bits for the mRSA
//! signature", "about 1000 bits" for the mediated IBE token).

use sempair_core::bf_ibe::IbePublicParams;
use sempair_pairing::CurveParams;

/// Per-operation SEM→user and user→SEM message sizes, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeBits {
    /// Bits the user (or ciphertext relay) sends to the SEM.
    pub request: usize,
    /// Bits the SEM returns (the token / half-result).
    pub response: usize,
}

/// Mediated BF-IBE decryption (§4): the user forwards `U` (compressed
/// point) plus the identity; the SEM returns `g_sem ∈ G2 = F_p²`
/// (~`2|p|` bits — the "about 1000 bits" remark at 512-bit `p`).
pub fn mediated_ibe_decrypt(curve: &CurveParams, id_len_bytes: usize) -> ExchangeBits {
    ExchangeBits {
        request: (curve.point_len() + id_len_bytes) * 8,
        response: 2 * curve.fp().byte_len() * 8,
    }
}

/// Mediated GDH signing (§5): the user sends the hashed message point
/// (compressed); the SEM returns one compressed `G1` point
/// (~`|p|+8` bits — "160 bits" on a 160-bit curve).
pub fn mediated_gdh_sign(curve: &CurveParams, id_len_bytes: usize) -> ExchangeBits {
    ExchangeBits {
        request: (curve.point_len() + id_len_bytes) * 8,
        response: curve.point_len() * 8,
    }
}

/// mRSA / IB-mRSA half-operation (§2): the user sends the ciphertext or
/// message hash (`|n|` bits); the SEM returns an `|n|`-bit half-result
/// (1024 bits at the paper's modulus size).
pub fn mrsa_half_op(modulus_bits: usize, id_len_bytes: usize) -> ExchangeBits {
    ExchangeBits {
        request: modulus_bits + id_len_bytes * 8,
        response: modulus_bits,
    }
}

/// Key-material sizes (bits) for the E1 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySizes {
    /// The user's half (or full) private key.
    pub user_private: usize,
    /// A full ciphertext for a reference plaintext length.
    pub ciphertext: usize,
    /// A signature.
    pub signature: usize,
}

/// Mediated IBE key/ciphertext/— sizes; `msg_len` in bytes.
pub fn mediated_ibe_sizes(params: &IbePublicParams, msg_len: usize) -> KeySizes {
    let curve = params.curve();
    KeySizes {
        // d_user: one compressed point.
        user_private: curve.point_len() * 8,
        // <U, V, W>: point + σ + message-length body + 4-byte length.
        ciphertext: (curve.point_len() + sempair_core::bf_ibe::SIGMA_LEN + 4 + msg_len) * 8,
        signature: 0,
    }
}

/// Mediated GDH signature sizes.
pub fn mediated_gdh_sizes(curve: &CurveParams) -> KeySizes {
    KeySizes {
        user_private: curve.order().bits(),
        ciphertext: 0,
        signature: curve.point_len() * 8,
    }
}

/// IB-mRSA sizes at `modulus_bits`.
pub fn ib_mrsa_sizes(modulus_bits: usize) -> KeySizes {
    KeySizes {
        user_private: modulus_bits, // d_user ∈ Z_φ(n) ≈ |n| bits
        ciphertext: modulus_bits,
        signature: modulus_bits,
    }
}

/// Bits added per exchange by the protocol-v2 pipelined envelope over
/// bare v1 framing: the request direction carries the
/// version/session/req-id header plus the outer wrapper fields
/// ([`crate::proto::PIPELINE_OVERHEAD`]), the reply direction the
/// 13-byte `req-id ‖ status ‖ body-len` header inside the ok-body.
///
/// At the paper's sizes this is noise next to the tokens themselves —
/// 216 + 104 bits against an ~1000-bit IBE token — which is why the
/// serving bench can pipeline without touching the §4/§5 bandwidth
/// story.
pub fn pipelined_envelope_overhead() -> ExchangeBits {
    ExchangeBits {
        request: crate::proto::PIPELINE_OVERHEAD * 8,
        response: (8 + 1 + 4) * 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_curve() -> CurveParams {
        CurveParams::paper_default()
    }

    #[test]
    fn paper_claim_gdh_token_much_smaller_than_mrsa() {
        // §5: SEM sends ~160 bits (point on a short curve) vs 1024 for
        // mRSA. At our paper-default 512-bit p the GDH token is one
        // compressed point = 520 bits, still half of 1024; on the
        // 160-bit-p curve [6] proposes it is ~168. Assert the ordering.
        let curve = paper_curve();
        let gdh = mediated_gdh_sign(&curve, 5);
        let mrsa = mrsa_half_op(1024, 5);
        assert!(gdh.response < mrsa.response);
        assert_eq!(mrsa.response, 1024);
        assert_eq!(gdh.response, curve.point_len() * 8);
    }

    #[test]
    fn paper_claim_ibe_token_about_1000_bits() {
        // §4: "about 1000 bits have to be sent by the SEM" — the token
        // is an F_p² element = 2·512 = 1024 bits at 512-bit p.
        let curve = paper_curve();
        let x = mediated_ibe_decrypt(&curve, 5);
        assert_eq!(x.response, 1024);
    }

    #[test]
    fn paper_claim_short_private_keys() {
        // §4: mediated-IBE private keys are one compressed point
        // (513 bits at 512-bit p, "512 or even 160 bits" with point
        // compression) vs 1024 bits for IB-mRSA.
        let curve = paper_curve();
        let pkg_key_bits = (curve.point_len()) * 8;
        assert!(pkg_key_bits < 1024);
        assert_eq!(ib_mrsa_sizes(1024).user_private, 1024);
    }

    #[test]
    fn exchange_bits_are_consistent() {
        let curve = CurveParams::fast_insecure();
        let e = mediated_ibe_decrypt(&curve, 10);
        assert_eq!(e.request, (curve.point_len() + 10) * 8);
        assert_eq!(e.response, 2 * curve.fp().byte_len() * 8);
    }

    #[test]
    fn envelope_overhead_is_noise_next_to_the_token() {
        // The v2 envelope must not change the paper's bandwidth story:
        // its per-request overhead stays far below the ~1000-bit token
        // it carries, and it matches the encoder's actual layout
        // (version + session + req-id + op/id-len/body-len wrapper).
        let overhead = pipelined_envelope_overhead();
        assert_eq!(overhead.request, (4 + 8 + 8 + 1 + 2 + 4) * 8);
        assert_eq!(overhead.response, 13 * 8);
        let token = mediated_ibe_decrypt(&paper_curve(), 5);
        assert!(overhead.request * 4 < token.response);
    }
}
