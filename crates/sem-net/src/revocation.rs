//! The revocation-strategy comparison (§1, §4; experiment E8).
//!
//! Two ways to revoke identity-based keys:
//!
//! 1. **SEM** (the paper's construction): one revocation-list insert;
//!    effective on the next token request. Constant cost, zero
//!    revocation latency, no PKG involvement.
//! 2. **Validity periods** (the built-in method of \[5\] that §4 argues
//!    against): identities are `ID ‖ epoch`; the PKG re-issues a fresh
//!    private key for every *unrevoked* user each epoch and must stay
//!    online. A revocation only takes effect when the current epoch
//!    expires — on average half an epoch of exposure.

use crate::store::{Journal, Record};
use sempair_core::bf_ibe::{IbePublicParams, Pkg, PrivateKey};
use sempair_core::Error;
use std::collections::HashSet;
use std::path::Path;
use std::time::Duration;

/// Maps an identity to one of `shards` revocation/key-state shards.
///
/// FNV-1a over the identity bytes: dependency-free, stable across
/// runs and platforms (the shard map is part of the serving contract —
/// a revocation storm on one shard must keep hashing to that shard),
/// and well-mixed enough that Zipf-skewed identity sets spread evenly.
/// `shards` is clamped to at least 1.
pub fn shard_of(id: &str, shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in id.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    (hash % shards.max(1) as u64) as usize
}

/// A PKG operating the validity-period scheme with a fixed epoch
/// length.
#[derive(Debug)]
pub struct ValidityPeriodPkg {
    pkg: Pkg,
    epoch: u64,
    epoch_len: Duration,
    users: Vec<String>,
    revoked: HashSet<String>,
    /// `Extract` operations performed by epoch rotation — the
    /// *issuance* work metric E8 sweeps. Key lookups are counted
    /// separately in `lookup_count`, so queries cannot inflate the
    /// rotation cost curve.
    extract_count: u64,
    /// `current_key` queries answered (both grants and refusals).
    lookup_count: u64,
    /// Durable revocation + epoch state. Without it, a PKG restart
    /// forgets every revocation and the next rotation happily
    /// re-issues keys for revoked users — the bug
    /// [`ValidityPeriodPkg::with_journal`] exists to close.
    journal: Option<Journal>,
}

impl ValidityPeriodPkg {
    /// Wraps a PKG with epoch-based revocation for `users`
    /// (memory-only state — see [`ValidityPeriodPkg::with_journal`]
    /// for the crash-safe variant).
    pub fn new(pkg: Pkg, epoch_len: Duration, users: Vec<String>) -> Self {
        ValidityPeriodPkg {
            pkg,
            epoch: 0,
            epoch_len,
            users,
            revoked: HashSet::new(),
            extract_count: 0,
            lookup_count: 0,
            journal: None,
        }
    }

    /// [`ValidityPeriodPkg::new`] backed by the append-only journal at
    /// `path`: revocations and epoch rollovers replay on construction,
    /// so a restarted PKG refuses to re-key users revoked before the
    /// crash instead of silently re-issuing their epoch keys.
    ///
    /// # Errors
    ///
    /// Journal open/replay I/O errors.
    pub fn with_journal(
        pkg: Pkg,
        epoch_len: Duration,
        users: Vec<String>,
        path: impl AsRef<Path>,
    ) -> std::io::Result<Self> {
        let (journal, replayed) = Journal::open(path)?;
        let mut vp = Self::new(pkg, epoch_len, users);
        vp.epoch = replayed.epoch;
        vp.revoked = replayed.revoked;
        vp.journal = Some(journal);
        Ok(vp)
    }

    /// The composite identity string used on the wire: senders encrypt
    /// to `ID ‖ epoch` and never consult a revocation list.
    pub fn epoch_identity(id: &str, epoch: u64) -> String {
        format!("{id}|epoch:{epoch}")
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Configured epoch length.
    pub fn epoch_len(&self) -> Duration {
        self.epoch_len
    }

    /// Public parameters (what senders need).
    pub fn params(&self) -> &IbePublicParams {
        self.pkg.params()
    }

    /// Number of `Extract` operations performed by epoch rotations so
    /// far (the E8 issuance-work metric).
    pub fn extract_count(&self) -> u64 {
        self.extract_count
    }

    /// Number of [`ValidityPeriodPkg::current_key`] queries answered so
    /// far (granted or refused).
    pub fn lookup_count(&self) -> u64 {
        self.lookup_count
    }

    /// Marks `id` revoked. Takes effect at the *next* epoch rollover —
    /// keys already issued for the current epoch keep working, which is
    /// precisely the coarseness §4 criticizes.
    pub fn revoke(&mut self, id: &str) {
        // Durability first: the revocation must survive a crash that
        // happens before the next rotation, or the restarted PKG will
        // re-key the user.
        if let Some(journal) = &mut self.journal {
            let _ = journal.append(&Record::Revoke(id.to_string()));
        }
        self.revoked.insert(id.to_string());
    }

    /// Rolls over to the next epoch, re-issuing keys for every
    /// unrevoked user (the PKG's periodic workload). Returns the fresh
    /// keys it would push to users.
    ///
    /// The rollover is journaled *before* any issuance: a crash
    /// mid-rotation resumes in the new epoch rather than replaying an
    /// old one, and issuance always consults the journal-backed
    /// revocation set — a revoked user never receives an epoch key,
    /// even across restarts.
    pub fn rotate_epoch(&mut self) -> Vec<PrivateKey> {
        self.epoch += 1;
        let epoch = self.epoch;
        if let Some(journal) = &mut self.journal {
            let _ = journal.append(&Record::Epoch(epoch));
        }
        let mut issued = Vec::new();
        for id in &self.users {
            if self.revoked.contains(id) {
                continue;
            }
            issued.push(self.pkg.extract(&Self::epoch_identity(id, epoch)));
            self.extract_count += 1;
        }
        issued
    }

    /// The key a user holds for the current epoch, or
    /// [`Error::Revoked`]-style refusal.
    ///
    /// # Errors
    ///
    /// [`Error::Revoked`] once the revocation has taken effect;
    /// [`Error::UnknownIdentity`] for unenrolled users.
    pub fn current_key(&mut self, id: &str) -> Result<PrivateKey, Error> {
        self.lookup_count += 1;
        if !self.users.iter().any(|u| u == id) {
            return Err(Error::UnknownIdentity);
        }
        if self.revoked.contains(id) {
            return Err(Error::Revoked);
        }
        Ok(self.pkg.extract(&Self::epoch_identity(id, self.epoch)))
    }

    /// Worst-case revocation latency of this scheme: a revocation
    /// lodged right after a rollover stays ineffective for a full
    /// epoch. (The SEM's counterpart is zero.)
    pub fn worst_case_revocation_latency(&self) -> Duration {
        self.epoch_len
    }

    /// Expected revocation latency (uniform arrival): half an epoch.
    pub fn expected_revocation_latency(&self) -> Duration {
        self.epoch_len / 2
    }
}

/// Summary row for the E8 comparison at `n_users`.
#[derive(Debug, Clone, Copy)]
pub struct RevocationCost {
    /// Enrolled (unrevoked) users.
    pub n_users: usize,
    /// PKG `Extract` calls per epoch (validity-period scheme).
    pub rekeys_per_epoch: usize,
    /// SEM list operations per revocation (SEM scheme).
    pub sem_ops_per_revocation: usize,
}

/// The analytic cost model behind E8: validity-period work is linear in
/// the user count per epoch; SEM work is a constant per revocation.
pub fn revocation_cost(n_users: usize) -> RevocationCost {
    RevocationCost {
        n_users,
        rekeys_per_epoch: n_users,
        sem_ops_per_revocation: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sempair_pairing::CurveParams;

    #[test]
    fn shard_of_is_stable_in_range_and_spread() {
        // Stability: the map is part of the serving contract.
        assert_eq!(
            shard_of("alice@example.com", 8),
            shard_of("alice@example.com", 8)
        );
        // Degenerate shard counts are clamped, not a divide-by-zero.
        assert_eq!(shard_of("anyone", 0), 0);
        assert_eq!(shard_of("anyone", 1), 0);
        // Range + spread: 10k synthetic identities over 8 shards should
        // put *some* load on every shard (FNV-1a mixes the numeric
        // suffix well enough for this to be deterministic).
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for i in 0..10_000 {
            let s = shard_of(&format!("user-{i}@example.com"), shards);
            assert!(s < shards);
            counts[s] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "skewed: {counts:?}");
    }

    fn setup(users: &[&str]) -> (ValidityPeriodPkg, StdRng) {
        let mut rng = StdRng::seed_from_u64(121);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg = Pkg::setup(&mut rng, curve);
        let vp = ValidityPeriodPkg::new(
            pkg,
            Duration::from_secs(86_400),
            users.iter().map(|s| s.to_string()).collect(),
        );
        (vp, rng)
    }

    #[test]
    fn epoch_keys_decrypt_epoch_ciphertexts() {
        let (mut vp, mut rng) = setup(&["alice", "bob"]);
        vp.rotate_epoch();
        let key = vp.current_key("alice").unwrap();
        let wire_id = ValidityPeriodPkg::epoch_identity("alice", vp.epoch());
        let c = vp
            .params()
            .encrypt_full(&mut rng, &wire_id, b"epoch mail")
            .unwrap();
        assert_eq!(vp.params().decrypt_full(&key, &c).unwrap(), b"epoch mail");
    }

    #[test]
    fn old_epoch_key_fails_on_new_epoch_ciphertext() {
        let (mut vp, mut rng) = setup(&["alice"]);
        vp.rotate_epoch();
        let old_key = vp.current_key("alice").unwrap();
        vp.rotate_epoch();
        let wire_id = ValidityPeriodPkg::epoch_identity("alice", vp.epoch());
        let c = vp
            .params()
            .encrypt_full(&mut rng, &wire_id, b"new epoch")
            .unwrap();
        assert!(vp.params().decrypt_full(&old_key, &c).is_err());
    }

    #[test]
    fn revocation_lags_until_rollover() {
        let (mut vp, mut rng) = setup(&["alice"]);
        vp.rotate_epoch();
        let key = vp.current_key("alice").unwrap();
        vp.revoke("alice");
        // Current-epoch ciphertexts still decrypt: the window the paper
        // criticizes.
        let wire_id = ValidityPeriodPkg::epoch_identity("alice", vp.epoch());
        let c = vp
            .params()
            .encrypt_full(&mut rng, &wire_id, b"leaky window")
            .unwrap();
        assert_eq!(vp.params().decrypt_full(&key, &c).unwrap(), b"leaky window");
        // After rollover the PKG refuses to issue and stops re-keying.
        vp.rotate_epoch();
        assert_eq!(vp.current_key("alice"), Err(Error::Revoked));
    }

    #[test]
    fn rekey_work_is_linear_in_users() {
        let users: Vec<String> = (0..10).map(|i| format!("user{i}")).collect();
        let refs: Vec<&str> = users.iter().map(|s| s.as_str()).collect();
        let (mut vp, _) = setup(&refs);
        let issued = vp.rotate_epoch();
        assert_eq!(issued.len(), 10);
        assert_eq!(vp.extract_count(), 10);
        // Key queries are lookups, NOT issuance work: E8's rotation
        // curve must stay flat under them.
        vp.current_key("user0").unwrap();
        vp.current_key("user0").unwrap();
        assert_eq!(vp.current_key("mallory"), Err(Error::UnknownIdentity));
        assert_eq!(vp.extract_count(), 10);
        assert_eq!(vp.lookup_count(), 3);
        vp.revoke("user3");
        vp.revoke("user7");
        let issued = vp.rotate_epoch();
        assert_eq!(issued.len(), 8);
        assert_eq!(vp.extract_count(), 18);
        assert_eq!(vp.lookup_count(), 3);
    }

    #[test]
    fn latency_model() {
        let (vp, _) = setup(&["alice"]);
        assert_eq!(
            vp.worst_case_revocation_latency(),
            Duration::from_secs(86_400)
        );
        assert_eq!(
            vp.expected_revocation_latency(),
            Duration::from_secs(43_200)
        );
        let cost = revocation_cost(1000);
        assert_eq!(cost.rekeys_per_epoch, 1000);
        assert_eq!(cost.sem_ops_per_revocation, 1);
    }

    #[test]
    fn unknown_user_rejected() {
        let (mut vp, _) = setup(&["alice"]);
        assert_eq!(vp.current_key("mallory"), Err(Error::UnknownIdentity));
    }

    #[test]
    fn revocation_survives_pkg_restart_via_journal() {
        // Pkg holds the master key and is deliberately not Clone; a
        // "restarted" PKG is rebuilt from the same seed.
        let fresh_pkg = || {
            let mut rng = StdRng::seed_from_u64(122);
            let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
            Pkg::setup(&mut rng, curve)
        };
        let path =
            std::env::temp_dir().join(format!("sempair-vp-journal-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let users = vec!["alice".to_string(), "bob".to_string()];
        let day = Duration::from_secs(86_400);

        let mut vp =
            ValidityPeriodPkg::with_journal(fresh_pkg(), day, users.clone(), &path).unwrap();
        vp.revoke("alice");
        let issued = vp.rotate_epoch();
        // The rotation already excludes the revoked user…
        assert_eq!(issued.len(), 1);
        assert_eq!(vp.epoch(), 1);
        drop(vp);

        // …and — the regression this test pins — so does a PKG
        // *rebuilt from the journal*: before journaling, a restart
        // forgot the revocation and the next rotation re-keyed alice.
        let mut vp = ValidityPeriodPkg::with_journal(fresh_pkg(), day, users, &path).unwrap();
        assert_eq!(vp.epoch(), 1, "epoch rollover replayed");
        let issued = vp.rotate_epoch();
        assert_eq!(issued.len(), 1, "revoked user must stay excluded");
        assert_eq!(vp.epoch(), 2);
        assert_eq!(vp.current_key("alice"), Err(Error::Revoked));
        assert!(vp.current_key("bob").is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
