//! The revocation-strategy comparison (§1, §4; experiment E8).
//!
//! Two ways to revoke identity-based keys:
//!
//! 1. **SEM** (the paper's construction): one revocation-list insert;
//!    effective on the next token request. Constant cost, zero
//!    revocation latency, no PKG involvement.
//! 2. **Validity periods** (the built-in method of \[5\] that §4 argues
//!    against): identities are `ID ‖ epoch`; the PKG re-issues a fresh
//!    private key for every *unrevoked* user each epoch and must stay
//!    online. A revocation only takes effect when the current epoch
//!    expires — on average half an epoch of exposure.
//!
//! **Sharded, incremental rollover** (DESIGN.md §15). Epoch state
//! lives under the same identity-hash shard map ([`shard_of`]) as the
//! serving layer's revocation/key state: each shard holds its own
//! epoch counter and user partition, and a rollover re-keys one shard
//! chunk at a time ([`ValidityPeriodPkg::begin_rollover`] /
//! [`ValidityPeriodPkg::rollover_step`]) while `current_key` keeps
//! answering from each shard's *committed* epoch. A shard switches
//! epochs atomically when its last chunk finishes, so a rollover in
//! progress on one shard never blocks issuance on the others.
//! Progress is journaled *after* each chunk: a crash between chunks
//! resumes at the recorded cursor (no user skipped), and a crash
//! mid-chunk re-extracts that chunk — `Extract` is deterministic in
//! the master key and identity, so the re-issued keys are bit-identical
//! (at-least-once extraction, exactly-once issuance).

use crate::store::{Journal, Record};
use sempair_core::bf_ibe::{IbePublicParams, Pkg, PrivateKey};
use sempair_core::Error;
use std::collections::HashSet;
use std::path::Path;
use std::time::Duration;

/// Maps an identity to one of `shards` revocation/key-state shards.
///
/// FNV-1a over the identity bytes: dependency-free, stable across
/// runs and platforms (the shard map is part of the serving contract —
/// a revocation storm on one shard must keep hashing to that shard),
/// and well-mixed enough that Zipf-skewed identity sets spread evenly.
/// `shards` is clamped to at least 1.
pub fn shard_of(id: &str, shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in id.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    (hash % shards.max(1) as u64) as usize
}

/// Default shard count for the validity-period PKG's epoch state —
/// matches the serving layer's default revocation/key shard count.
pub const DEFAULT_EPOCH_SHARDS: usize = 8;

/// Default number of users re-keyed per incremental rollover chunk.
pub const DEFAULT_ROLLOVER_CHUNK: usize = 64;

/// One shard of epoch state: its own epoch counter, user partition,
/// and (while a rollover is in flight) re-key progress.
#[derive(Debug)]
struct EpochShard {
    /// The committed epoch this shard answers `current_key` from.
    epoch: u64,
    /// Users hashing to this shard, in enrollment order (the rollover
    /// cursor indexes this vector, so the order is part of the journal
    /// contract — see [`ValidityPeriodPkg::with_journal`]).
    users: Vec<String>,
    /// In-flight rollover: `(target epoch, users already re-keyed)`.
    pending: Option<(u64, usize)>,
}

/// The outcome of one [`ValidityPeriodPkg::rollover_step`] chunk.
#[derive(Debug)]
pub struct RolloverStep {
    /// Shard the chunk was taken from.
    pub shard: usize,
    /// Fresh keys issued for this chunk's unrevoked users.
    pub issued: Vec<PrivateKey>,
    /// The shard finished and switched to the target epoch.
    pub shard_committed: bool,
    /// Every shard has committed; the rollover is complete.
    pub rollover_complete: bool,
}

/// A PKG operating the validity-period scheme with a fixed epoch
/// length.
#[derive(Debug)]
pub struct ValidityPeriodPkg {
    pkg: Pkg,
    epoch_len: Duration,
    shards: Vec<EpochShard>,
    revoked: HashSet<String>,
    /// `Extract` operations performed by epoch rotation — the
    /// *issuance* work metric E8 sweeps. Key lookups are counted
    /// separately in `lookup_count`, so queries cannot inflate the
    /// rotation cost curve.
    extract_count: u64,
    /// `current_key` queries answered (both grants and refusals).
    lookup_count: u64,
    /// Durable revocation + epoch state. Without it, a PKG restart
    /// forgets every revocation and the next rotation happily
    /// re-issues keys for revoked users — the bug
    /// [`ValidityPeriodPkg::with_journal`] exists to close.
    journal: Option<Journal>,
}

impl ValidityPeriodPkg {
    /// Wraps a PKG with epoch-based revocation for `users`
    /// (memory-only state — see [`ValidityPeriodPkg::with_journal`]
    /// for the crash-safe variant), with
    /// [`DEFAULT_EPOCH_SHARDS`] epoch shards.
    pub fn new(pkg: Pkg, epoch_len: Duration, users: Vec<String>) -> Self {
        Self::with_shards(pkg, epoch_len, users, DEFAULT_EPOCH_SHARDS)
    }

    /// [`ValidityPeriodPkg::new`] with an explicit epoch shard count
    /// (clamped to at least 1). Users are partitioned by [`shard_of`],
    /// preserving enrollment order within each shard.
    pub fn with_shards(pkg: Pkg, epoch_len: Duration, users: Vec<String>, shards: usize) -> Self {
        let shard_count = shards.max(1);
        let mut parts: Vec<EpochShard> = (0..shard_count)
            .map(|_| EpochShard {
                epoch: 0,
                users: Vec::new(),
                pending: None,
            })
            .collect();
        for id in users {
            let s = shard_of(&id, shard_count);
            if let Some(shard) = parts.get_mut(s) {
                shard.users.push(id);
            }
        }
        ValidityPeriodPkg {
            pkg,
            epoch_len,
            shards: parts,
            revoked: HashSet::new(),
            extract_count: 0,
            lookup_count: 0,
            journal: None,
        }
    }

    /// [`ValidityPeriodPkg::new`] backed by the append-only journal at
    /// `path`: revocations, epoch rollovers, and incremental-rollover
    /// progress replay on construction, so a restarted PKG refuses to
    /// re-key users revoked before the crash and resumes a rollover
    /// interrupted mid-flight at the journaled cursor.
    ///
    /// The cursor indexes each shard's user partition, so `users` (and
    /// the shard count) must match across restarts for progress records
    /// to be meaningful — the same contract the revocation set already
    /// imposes on identities.
    ///
    /// # Errors
    ///
    /// Journal open/replay I/O errors.
    pub fn with_journal(
        pkg: Pkg,
        epoch_len: Duration,
        users: Vec<String>,
        path: impl AsRef<Path>,
    ) -> std::io::Result<Self> {
        Self::with_journal_sharded(pkg, epoch_len, users, path, DEFAULT_EPOCH_SHARDS)
    }

    /// [`ValidityPeriodPkg::with_journal`] with an explicit epoch shard
    /// count (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Journal open/replay I/O errors.
    pub fn with_journal_sharded(
        pkg: Pkg,
        epoch_len: Duration,
        users: Vec<String>,
        path: impl AsRef<Path>,
        shards: usize,
    ) -> std::io::Result<Self> {
        let (journal, replayed) = Journal::open(path)?;
        let mut vp = Self::with_shards(pkg, epoch_len, users, shards);
        vp.revoked = replayed.revoked;
        // Baseline: the last fully-committed epoch applies everywhere…
        for shard in &mut vp.shards {
            shard.epoch = replayed.epoch;
        }
        // …then per-shard rollover progress overrides it: a `done`
        // record is the shard's committed switch (it may precede the
        // global Epoch record if the crash hit mid-rollover), and a
        // pending record restores the re-key cursor so the next
        // `rollover_step` resumes exactly where the crash stopped.
        for (idx, progress) in &replayed.rollover {
            let Some(shard) = vp.shards.get_mut(*idx as usize) else {
                continue;
            };
            if progress.done {
                shard.epoch = shard.epoch.max(progress.epoch);
            } else if progress.epoch > replayed.epoch {
                let cursor = (progress.cursor as usize).min(shard.users.len());
                shard.pending = Some((progress.epoch, cursor));
            }
        }
        vp.journal = Some(journal);
        Ok(vp)
    }

    /// The composite identity string used on the wire: senders encrypt
    /// to `ID ‖ epoch` and never consult a revocation list.
    pub fn epoch_identity(id: &str, epoch: u64) -> String {
        format!("{id}|epoch:{epoch}")
    }

    /// Current globally-committed epoch number: the minimum across
    /// shards, i.e. the last epoch every shard has switched to. During
    /// an incremental rollover individual shards may already answer
    /// from a newer epoch (see [`ValidityPeriodPkg::shard_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.shards.iter().map(|s| s.epoch).min().unwrap_or(0)
    }

    /// Number of epoch shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The committed epoch of shard `shard` (`None` if out of range).
    pub fn shard_epoch(&self, shard: usize) -> Option<u64> {
        self.shards.get(shard).map(|s| s.epoch)
    }

    /// Total enrolled users across all shards.
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(|s| s.users.len()).sum()
    }

    /// Configured epoch length.
    pub fn epoch_len(&self) -> Duration {
        self.epoch_len
    }

    /// Public parameters (what senders need).
    pub fn params(&self) -> &IbePublicParams {
        self.pkg.params()
    }

    /// Number of `Extract` operations performed by epoch rotations so
    /// far (the E8 issuance-work metric).
    pub fn extract_count(&self) -> u64 {
        self.extract_count
    }

    /// Number of [`ValidityPeriodPkg::current_key`] queries answered so
    /// far (granted or refused).
    pub fn lookup_count(&self) -> u64 {
        self.lookup_count
    }

    /// Marks `id` revoked. Takes effect at the *next* epoch rollover —
    /// keys already issued for the current epoch keep working, which is
    /// precisely the coarseness §4 criticizes.
    pub fn revoke(&mut self, id: &str) {
        // Durability first: the revocation must survive a crash that
        // happens before the next rotation, or the restarted PKG will
        // re-key the user.
        if let Some(journal) = &mut self.journal {
            let _ = journal.append(&Record::Revoke(id.to_string()));
        }
        self.revoked.insert(id.to_string());
    }

    /// Rolls over to the next epoch, re-issuing keys for every
    /// unrevoked user (the PKG's periodic workload). Returns the fresh
    /// keys it would push to users.
    ///
    /// This is the synchronous wrapper around the incremental path:
    /// [`ValidityPeriodPkg::begin_rollover`] followed by
    /// [`ValidityPeriodPkg::rollover_step`] drained to completion in
    /// one call. Issuance always consults the journal-backed
    /// revocation set — a revoked user never receives an epoch key,
    /// even across restarts.
    pub fn rotate_epoch(&mut self) -> Vec<PrivateKey> {
        self.begin_rollover();
        let mut issued = Vec::new();
        while let Some(step) = self.rollover_step(usize::MAX) {
            issued.extend(step.issued);
        }
        issued
    }

    /// Starts an incremental rollover toward the next epoch and
    /// returns the target epoch. Journals a zero-cursor progress
    /// record per shard so a crash before the first chunk still
    /// resumes the rollover on restart. Idempotent: if a rollover is
    /// already in flight, returns its target without restarting it.
    pub fn begin_rollover(&mut self) -> u64 {
        if let Some(target) = self.rollover_target() {
            return target;
        }
        let target = self.shards.iter().map(|s| s.epoch).max().unwrap_or(0) + 1;
        for index in 0..self.shards.len() {
            if let Some(shard) = self.shards.get_mut(index) {
                if shard.epoch >= target {
                    continue;
                }
                shard.pending = Some((target, 0));
            }
            if let Some(journal) = &mut self.journal {
                let _ = journal.append(&Record::RolloverChunk {
                    shard: index as u32,
                    epoch: target,
                    cursor: 0,
                    done: false,
                });
            }
        }
        target
    }

    /// The target epoch of the rollover in flight, if any.
    pub fn rollover_target(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.pending.map(|(target, _)| target))
            .max()
    }

    /// Re-keys up to `chunk` users (clamped to at least 1) from the
    /// lowest-indexed shard with rollover work left, journals the new
    /// cursor, and returns the chunk's outcome — or `None` when no
    /// rollover is in flight.
    ///
    /// Progress is journaled *after* the chunk is extracted: a crash
    /// between chunks resumes at the recorded cursor, and a crash
    /// mid-chunk re-extracts that chunk's (deterministic, identical)
    /// keys — no user is skipped and none ends up with two distinct
    /// keys for one epoch. When a shard's cursor reaches the end of
    /// its partition the shard atomically switches to the target epoch
    /// (journaled as a `done` record); when the last shard commits,
    /// the global epoch advance is journaled.
    pub fn rollover_step(&mut self, chunk: usize) -> Option<RolloverStep> {
        let index = self
            .shards
            .iter()
            .position(|shard| shard.pending.is_some())?;
        // Split borrows: the shard is mutated while the master key and
        // revocation set are read.
        let ValidityPeriodPkg {
            pkg,
            shards,
            revoked,
            extract_count,
            ..
        } = self;
        let shard = shards.get_mut(index)?;
        let (target, cursor) = shard.pending?;
        let end = cursor.saturating_add(chunk.max(1)).min(shard.users.len());
        let mut issued = Vec::new();
        for id in shard.users.get(cursor..end).unwrap_or_default() {
            if revoked.contains(id) {
                continue;
            }
            issued.push(pkg.extract(&Self::epoch_identity(id, target)));
            *extract_count += 1;
        }
        let shard_committed = end >= shard.users.len();
        if shard_committed {
            shard.epoch = target;
            shard.pending = None;
        } else {
            shard.pending = Some((target, end));
        }
        if let Some(journal) = &mut self.journal {
            let _ = journal.append(&Record::RolloverChunk {
                shard: index as u32,
                epoch: target,
                cursor: end as u64,
                done: shard_committed,
            });
        }
        let rollover_complete = self.shards.iter().all(|s| s.pending.is_none());
        if shard_committed && rollover_complete {
            if let Some(journal) = &mut self.journal {
                let _ = journal.append(&Record::Epoch(target));
            }
        }
        Some(RolloverStep {
            shard: index,
            issued,
            shard_committed,
            rollover_complete: shard_committed && rollover_complete,
        })
    }

    /// The key a user holds for their shard's committed epoch, or a
    /// refusal. Served from the shard's own epoch counter: a rollover
    /// chunking through *another* shard never changes this shard's
    /// answers, and this shard's switch to the new epoch is atomic.
    ///
    /// # Errors
    ///
    /// [`Error::Revoked`] once the revocation has taken effect;
    /// [`Error::UnknownIdentity`] for unenrolled users.
    pub fn current_key(&mut self, id: &str) -> Result<PrivateKey, Error> {
        self.lookup_count += 1;
        let shard = self
            .shards
            .get(shard_of(id, self.shards.len()))
            .ok_or(Error::UnknownIdentity)?;
        if !shard.users.iter().any(|u| u == id) {
            return Err(Error::UnknownIdentity);
        }
        if self.revoked.contains(id) {
            return Err(Error::Revoked);
        }
        let epoch = shard.epoch;
        Ok(self.pkg.extract(&Self::epoch_identity(id, epoch)))
    }

    /// Worst-case revocation latency of this scheme: a revocation
    /// lodged right after a rollover stays ineffective for a full
    /// epoch. (The SEM's counterpart is zero.)
    pub fn worst_case_revocation_latency(&self) -> Duration {
        self.epoch_len
    }

    /// Expected revocation latency (uniform arrival): half an epoch.
    pub fn expected_revocation_latency(&self) -> Duration {
        self.epoch_len / 2
    }
}

/// Summary row for the E8 comparison at `n_users`.
#[derive(Debug, Clone, Copy)]
pub struct RevocationCost {
    /// Enrolled (unrevoked) users.
    pub n_users: usize,
    /// PKG `Extract` calls per epoch (validity-period scheme).
    pub rekeys_per_epoch: usize,
    /// SEM list operations per revocation (SEM scheme).
    pub sem_ops_per_revocation: usize,
}

/// The analytic cost model behind E8: validity-period work is linear in
/// the user count per epoch; SEM work is a constant per revocation.
pub fn revocation_cost(n_users: usize) -> RevocationCost {
    RevocationCost {
        n_users,
        rekeys_per_epoch: n_users,
        sem_ops_per_revocation: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sempair_pairing::CurveParams;

    #[test]
    fn shard_of_is_stable_in_range_and_spread() {
        // Stability: the map is part of the serving contract.
        assert_eq!(
            shard_of("alice@example.com", 8),
            shard_of("alice@example.com", 8)
        );
        // Degenerate shard counts are clamped, not a divide-by-zero.
        assert_eq!(shard_of("anyone", 0), 0);
        assert_eq!(shard_of("anyone", 1), 0);
        // Range + spread: 10k synthetic identities over 8 shards should
        // put *some* load on every shard (FNV-1a mixes the numeric
        // suffix well enough for this to be deterministic).
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for i in 0..10_000 {
            let s = shard_of(&format!("user-{i}@example.com"), shards);
            assert!(s < shards);
            counts[s] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "skewed: {counts:?}");
    }

    fn setup(users: &[&str]) -> (ValidityPeriodPkg, StdRng) {
        let mut rng = StdRng::seed_from_u64(121);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg = Pkg::setup(&mut rng, curve);
        let vp = ValidityPeriodPkg::new(
            pkg,
            Duration::from_secs(86_400),
            users.iter().map(|s| s.to_string()).collect(),
        );
        (vp, rng)
    }

    #[test]
    fn epoch_keys_decrypt_epoch_ciphertexts() {
        let (mut vp, mut rng) = setup(&["alice", "bob"]);
        vp.rotate_epoch();
        let key = vp.current_key("alice").unwrap();
        let wire_id = ValidityPeriodPkg::epoch_identity("alice", vp.epoch());
        let c = vp
            .params()
            .encrypt_full(&mut rng, &wire_id, b"epoch mail")
            .unwrap();
        assert_eq!(vp.params().decrypt_full(&key, &c).unwrap(), b"epoch mail");
    }

    #[test]
    fn old_epoch_key_fails_on_new_epoch_ciphertext() {
        let (mut vp, mut rng) = setup(&["alice"]);
        vp.rotate_epoch();
        let old_key = vp.current_key("alice").unwrap();
        vp.rotate_epoch();
        let wire_id = ValidityPeriodPkg::epoch_identity("alice", vp.epoch());
        let c = vp
            .params()
            .encrypt_full(&mut rng, &wire_id, b"new epoch")
            .unwrap();
        assert!(vp.params().decrypt_full(&old_key, &c).is_err());
    }

    #[test]
    fn revocation_lags_until_rollover() {
        let (mut vp, mut rng) = setup(&["alice"]);
        vp.rotate_epoch();
        let key = vp.current_key("alice").unwrap();
        vp.revoke("alice");
        // Current-epoch ciphertexts still decrypt: the window the paper
        // criticizes.
        let wire_id = ValidityPeriodPkg::epoch_identity("alice", vp.epoch());
        let c = vp
            .params()
            .encrypt_full(&mut rng, &wire_id, b"leaky window")
            .unwrap();
        assert_eq!(vp.params().decrypt_full(&key, &c).unwrap(), b"leaky window");
        // After rollover the PKG refuses to issue and stops re-keying.
        vp.rotate_epoch();
        assert_eq!(vp.current_key("alice"), Err(Error::Revoked));
    }

    #[test]
    fn rekey_work_is_linear_in_users() {
        let users: Vec<String> = (0..10).map(|i| format!("user{i}")).collect();
        let refs: Vec<&str> = users.iter().map(|s| s.as_str()).collect();
        let (mut vp, _) = setup(&refs);
        let issued = vp.rotate_epoch();
        assert_eq!(issued.len(), 10);
        assert_eq!(vp.extract_count(), 10);
        // Key queries are lookups, NOT issuance work: E8's rotation
        // curve must stay flat under them.
        vp.current_key("user0").unwrap();
        vp.current_key("user0").unwrap();
        assert_eq!(vp.current_key("mallory"), Err(Error::UnknownIdentity));
        assert_eq!(vp.extract_count(), 10);
        assert_eq!(vp.lookup_count(), 3);
        vp.revoke("user3");
        vp.revoke("user7");
        let issued = vp.rotate_epoch();
        assert_eq!(issued.len(), 8);
        assert_eq!(vp.extract_count(), 18);
        assert_eq!(vp.lookup_count(), 3);
    }

    #[test]
    fn latency_model() {
        let (vp, _) = setup(&["alice"]);
        assert_eq!(
            vp.worst_case_revocation_latency(),
            Duration::from_secs(86_400)
        );
        assert_eq!(
            vp.expected_revocation_latency(),
            Duration::from_secs(43_200)
        );
        let cost = revocation_cost(1000);
        assert_eq!(cost.rekeys_per_epoch, 1000);
        assert_eq!(cost.sem_ops_per_revocation, 1);
    }

    #[test]
    fn unknown_user_rejected() {
        let (mut vp, _) = setup(&["alice"]);
        assert_eq!(vp.current_key("mallory"), Err(Error::UnknownIdentity));
    }

    #[test]
    fn incremental_rollover_matches_synchronous_rotation() {
        let users: Vec<String> = (0..10).map(|i| format!("user{i}")).collect();
        let refs: Vec<&str> = users.iter().map(|s| s.as_str()).collect();
        let (mut sync_vp, _) = setup(&refs);
        let (mut inc_vp, _) = setup(&refs);
        let issued_sync = sync_vp.rotate_epoch();

        let target = inc_vp.begin_rollover();
        assert_eq!(target, 1);
        assert_eq!(inc_vp.rollover_target(), Some(1));
        // Re-entrant begin is idempotent: same target, no restart.
        assert_eq!(inc_vp.begin_rollover(), 1);
        let mut issued_inc = Vec::new();
        let mut steps = 0;
        while let Some(step) = inc_vp.rollover_step(3) {
            issued_inc.extend(step.issued);
            steps += 1;
            assert!(steps < 100, "rollover must terminate");
        }
        assert_eq!(issued_inc.len(), issued_sync.len());
        assert_eq!(inc_vp.extract_count(), sync_vp.extract_count());
        assert_eq!(inc_vp.epoch(), 1);
        assert_eq!(inc_vp.rollover_target(), None);
        // Every shard committed the same epoch.
        for s in 0..inc_vp.shard_count() {
            assert_eq!(inc_vp.shard_epoch(s), Some(1));
        }
    }

    #[test]
    fn rollover_on_one_shard_never_blocks_the_others() {
        let users: Vec<String> = (0..32).map(|i| format!("user{i}")).collect();
        let mut rng = StdRng::seed_from_u64(121);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg = Pkg::setup(&mut rng, curve);
        let mut vp = ValidityPeriodPkg::with_shards(pkg, Duration::from_secs(86_400), users, 4);
        // The partition is deterministic (FNV-1a over fixed names);
        // the decrypt checks below need a user on each probed shard.
        let on_shard = |shard: usize| {
            (0..32)
                .map(|i| format!("user{i}"))
                .find(|id| shard_of(id, 4) == shard)
        };
        vp.rotate_epoch(); // everyone at epoch 1
        vp.begin_rollover(); // toward epoch 2
                             // Drain exactly one shard (huge chunk → one step commits it).
        let step = vp.rollover_step(usize::MAX).unwrap();
        assert!(step.shard_committed);
        assert!(!step.rollover_complete);
        let committed = step.shard;
        let behind = (0..vp.shard_count())
            .find(|&s| vp.shard_epoch(s) == Some(1) && on_shard(s).is_some())
            .expect("some populated shard still mid-rollover");
        assert_eq!(vp.shard_epoch(committed), Some(2));
        // Globally-committed epoch is still the old one…
        assert_eq!(vp.epoch(), 1);
        // …and BOTH shards keep serving keys: the committed shard at
        // its new epoch, the behind shard at its old one — verified by
        // an actual decrypt against each shard's epoch identity.
        for (shard, epoch) in [(committed, 2u64), (behind, 1u64)] {
            let Some(id) = on_shard(shard) else {
                continue; // an empty shard has no keys to probe
            };
            let key = vp.current_key(&id).unwrap();
            let wire_id = ValidityPeriodPkg::epoch_identity(&id, epoch);
            let c = vp
                .params()
                .encrypt_full(&mut rng, &wire_id, b"shard epoch")
                .unwrap();
            assert_eq!(vp.params().decrypt_full(&key, &c).unwrap(), b"shard epoch");
        }
    }

    #[test]
    fn crash_between_rollover_chunks_resumes_exactly_once_per_identity() {
        // Satellite: kill a journaled PKG between re-key chunks, replay,
        // and assert the rollover finishes with exactly one extraction
        // per unrevoked identity — none re-issued, none skipped.
        let fresh_pkg = || {
            let mut rng = StdRng::seed_from_u64(123);
            let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
            Pkg::setup(&mut rng, curve)
        };
        let path = std::env::temp_dir().join(format!(
            "sempair-vp-rollover-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let users: Vec<String> = (0..12).map(|i| format!("user{i}")).collect();
        let day = Duration::from_secs(86_400);

        let mut vp =
            ValidityPeriodPkg::with_journal_sharded(fresh_pkg(), day, users.clone(), &path, 4)
                .unwrap();
        vp.revoke("user5");
        assert_eq!(vp.begin_rollover(), 1);
        // Two chunks of 2, then "crash" (drop) between chunks.
        let mut issued_before = 0;
        for _ in 0..2 {
            issued_before += vp.rollover_step(2).unwrap().issued.len();
        }
        let extracts_before = vp.extract_count();
        assert_eq!(issued_before as u64, extracts_before);
        assert!(extracts_before < 11, "crash must interrupt the rollover");
        drop(vp);

        // Restart replays the cursor and resumes — not from scratch.
        let mut vp =
            ValidityPeriodPkg::with_journal_sharded(fresh_pkg(), day, users.clone(), &path, 4)
                .unwrap();
        assert_eq!(vp.rollover_target(), Some(1), "rollover still in flight");
        assert_eq!(vp.epoch(), 0, "not committed before the crash");
        let mut issued_after = 0;
        while let Some(step) = vp.rollover_step(2) {
            issued_after += step.issued.len();
        }
        // Exactly once per unrevoked identity across the crash:
        // 12 users − 1 revoked = 11 total extractions, split across
        // the two processes with no overlap and no gap.
        assert_eq!(issued_before + issued_after, 11);
        assert_eq!(vp.extract_count(), issued_after as u64);
        assert_eq!(vp.epoch(), 1);
        assert_eq!(vp.rollover_target(), None);
        assert_eq!(vp.current_key("user5"), Err(Error::Revoked));
        assert!(vp.current_key("user0").is_ok());

        // A third restart after completion replays a clean epoch-1
        // state with no phantom rollover.
        drop(vp);
        let vp =
            ValidityPeriodPkg::with_journal_sharded(fresh_pkg(), day, users, &path, 4).unwrap();
        assert_eq!(vp.epoch(), 1);
        assert_eq!(vp.rollover_target(), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn revocation_survives_pkg_restart_via_journal() {
        // Pkg holds the master key and is deliberately not Clone; a
        // "restarted" PKG is rebuilt from the same seed.
        let fresh_pkg = || {
            let mut rng = StdRng::seed_from_u64(122);
            let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
            Pkg::setup(&mut rng, curve)
        };
        let path =
            std::env::temp_dir().join(format!("sempair-vp-journal-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let users = vec!["alice".to_string(), "bob".to_string()];
        let day = Duration::from_secs(86_400);

        let mut vp =
            ValidityPeriodPkg::with_journal(fresh_pkg(), day, users.clone(), &path).unwrap();
        vp.revoke("alice");
        let issued = vp.rotate_epoch();
        // The rotation already excludes the revoked user…
        assert_eq!(issued.len(), 1);
        assert_eq!(vp.epoch(), 1);
        drop(vp);

        // …and — the regression this test pins — so does a PKG
        // *rebuilt from the journal*: before journaling, a restart
        // forgot the revocation and the next rotation re-keyed alice.
        let mut vp = ValidityPeriodPkg::with_journal(fresh_pkg(), day, users, &path).unwrap();
        assert_eq!(vp.epoch(), 1, "epoch rollover replayed");
        let issued = vp.rotate_epoch();
        assert_eq!(issued.len(), 1, "revoked user must stay excluded");
        assert_eq!(vp.epoch(), 2);
        assert_eq!(vp.current_key("alice"), Err(Error::Revoked));
        assert!(vp.current_key("bob").is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
