//! A multi-threaded SEM server.
//!
//! Models the deployment §4 describes: one always-online mediator
//! serving token requests for many users concurrently, with a shared
//! revocation list that takes effect on the very next request. Workers
//! pull jobs from a crossbeam channel; the key table and revocation
//! list sit behind a `parking_lot::RwLock` (reads dominate — every
//! token request — while revocations are rare writes).

use crate::audit::{AuditConfig, AuditLog, Capability, MetricsSnapshot, Outcome};
use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::RwLock;
use sempair_core::bf_ibe::IbePublicParams;
use sempair_core::gdh::{GdhSem, GdhSemKey, HalfSignature};
use sempair_core::mediated::{DecryptToken, Sem, SemKey};
use sempair_core::Error;
use sempair_pairing::G1Affine;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Jobs processed by SEM workers.
enum Job {
    /// Terminates one worker (sent once per worker at shutdown, so
    /// joins cannot deadlock on client handles that still hold senders).
    Shutdown,
    IbeToken {
        id: String,
        u: G1Affine,
        reply: Sender<Result<DecryptToken, Error>>,
    },
    GdhHalfSign {
        id: String,
        message: Vec<u8>,
        reply: Sender<Result<HalfSignature, Error>>,
    },
    Batch {
        items: Vec<BatchItem>,
        reply: Sender<Vec<BatchReply>>,
    },
}

/// One request inside a batched SEM call (see [`SemClient::batch`]).
///
/// A batch crosses the worker channel as a single job and is served
/// under a single revocation-list read-lock acquisition, amortizing
/// both costs over its items. Results come back per item — one bad
/// request never poisons its neighbours.
#[derive(Debug, Clone)]
pub enum BatchItem {
    /// Mediated-IBE decryption token request.
    IbeToken {
        /// Identity named in the request.
        id: String,
        /// Ciphertext component `U`.
        u: G1Affine,
    },
    /// Mediated-GDH half-signature request.
    GdhHalfSign {
        /// Identity named in the request.
        id: String,
        /// Message to half-sign.
        message: Vec<u8>,
    },
}

/// Per-item outcome of a batched SEM call, in request order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchReply {
    /// Outcome of a [`BatchItem::IbeToken`] request.
    IbeToken(Result<DecryptToken, Error>),
    /// Outcome of a [`BatchItem::GdhHalfSign`] request.
    GdhHalfSign(Result<HalfSignature, Error>),
}

struct State {
    params: IbePublicParams,
    inner: RwLock<Inner>,
    audit: AuditLog,
}

#[derive(Default)]
struct Inner {
    ibe: Sem,
    gdh: GdhSem,
}

/// A running SEM server (owns its worker threads).
pub struct SemServer {
    state: Arc<State>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// A cheap, cloneable client handle to a [`SemServer`].
#[derive(Clone)]
pub struct SemClient {
    tx: Sender<Job>,
}

impl SemServer {
    /// Spawns a server with `workers` threads and default audit bounds.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn(params: IbePublicParams, workers: usize) -> Self {
        Self::spawn_with(params, workers, AuditConfig::default())
    }

    /// [`SemServer::spawn`] with explicit audit/metering memory bounds.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn_with(params: IbePublicParams, workers: usize, audit: AuditConfig) -> Self {
        assert!(workers > 0, "need at least one worker");
        // Force the parameter set's lazy one-time caches (generator
        // comb table, prepared Miller lines) now, so the first request
        // served by a worker doesn't pay for them under load.
        params
            .curve()
            .mul_generator(&sempair_bigint::BigUint::two());
        params.curve().prepared_generator();
        let state = Arc::new(State {
            params,
            inner: RwLock::new(Inner::default()),
            audit: AuditLog::with_config(audit),
        });
        let (tx, rx) = unbounded::<Job>();
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        match job {
                            Job::Shutdown => break,
                            Job::IbeToken { id, u, reply } => {
                                let started = Instant::now();
                                let result = {
                                    let inner = state.inner.read();
                                    inner.ibe.decrypt_token(&state.params, &id, &u)
                                };
                                let latency = started.elapsed();
                                let bytes = result
                                    .as_ref()
                                    .map(|t| state.params.curve().gt_to_bytes(&t.0).len())
                                    .unwrap_or(0);
                                state.audit.record(
                                    &id,
                                    Capability::IbeDecrypt,
                                    outcome_of(&result),
                                    bytes,
                                    latency,
                                );
                                let _ = reply.send(result);
                            }
                            Job::GdhHalfSign { id, message, reply } => {
                                let started = Instant::now();
                                let result = {
                                    let inner = state.inner.read();
                                    inner.gdh.half_sign(state.params.curve(), &id, &message)
                                };
                                let latency = started.elapsed();
                                let bytes = result
                                    .as_ref()
                                    .map(|h| state.params.curve().point_to_bytes(&h.0).len())
                                    .unwrap_or(0);
                                state.audit.record(
                                    &id,
                                    Capability::GdhSign,
                                    outcome_of(&result),
                                    bytes,
                                    latency,
                                );
                                let _ = reply.send(result);
                            }
                            Job::Batch { items, reply } => {
                                // One read-lock acquisition for the
                                // whole batch — the amortization the
                                // batched endpoint exists for.
                                let served: Vec<(BatchReply, Duration)> = {
                                    let inner = state.inner.read();
                                    items
                                        .iter()
                                        .map(|item| {
                                            let started = Instant::now();
                                            let result = match item {
                                                BatchItem::IbeToken { id, u } => {
                                                    BatchReply::IbeToken(inner.ibe.decrypt_token(
                                                        &state.params,
                                                        id,
                                                        u,
                                                    ))
                                                }
                                                BatchItem::GdhHalfSign { id, message } => {
                                                    BatchReply::GdhHalfSign(inner.gdh.half_sign(
                                                        state.params.curve(),
                                                        id,
                                                        message,
                                                    ))
                                                }
                                            };
                                            (result, started.elapsed())
                                        })
                                        .collect()
                                };
                                state.audit.note_batch(items.len());
                                for (item, (result, latency)) in items.iter().zip(&served) {
                                    audit_batch_item(&state, item, result, *latency);
                                }
                                let results: Vec<BatchReply> =
                                    served.into_iter().map(|(result, _)| result).collect();
                                let _ = reply.send(results);
                            }
                        }
                    }
                })
            })
            .collect();
        SemServer {
            state,
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Installs an IBE half-key.
    pub fn install_ibe(&self, key: SemKey) {
        self.state.inner.write().ibe.install(key);
    }

    /// Installs a GDH signing half-key.
    pub fn install_gdh(&self, key: GdhSemKey) {
        self.state.inner.write().gdh.install(key);
    }

    /// Revokes an identity across *all* capabilities — effective for
    /// every request admitted after this call returns.
    pub fn revoke(&self, id: &str) {
        let mut inner = self.state.inner.write();
        inner.ibe.revoke(id);
        inner.gdh.revoke(id);
    }

    /// Reinstates an identity.
    pub fn unrevoke(&self, id: &str) {
        let mut inner = self.state.inner.write();
        inner.ibe.unrevoke(id);
        inner.gdh.unrevoke(id);
    }

    /// `true` iff `id` is revoked (either capability).
    pub fn is_revoked(&self, id: &str) -> bool {
        self.state.inner.read().ibe.is_revoked(id)
    }

    /// Aggregate audit statistics for one identity.
    pub fn audit_stats(&self, id: &str) -> crate::audit::IdentityStats {
        self.state.audit.stats_for(id)
    }

    /// Total bytes the SEM has returned to users (the E3 deployment
    /// counter).
    pub fn audit_bytes_out(&self) -> u64 {
        self.state.audit.total_bytes_out()
    }

    /// Identities with more than `threshold` refusals (anomaly feed).
    pub fn audit_noisy_identities(&self, threshold: u64) -> Vec<String> {
        self.state.audit.noisy_identities(threshold)
    }

    /// Single-vs-batched transport counters.
    pub fn audit_transport(&self) -> crate::audit::TransportStats {
        self.state.audit.transport_stats()
    }

    /// Retained audit records (bounded by the configured ring cap).
    pub fn audit_len(&self) -> usize {
        self.state.audit.len()
    }

    /// Serializable point-in-time metrics view (counters, identity
    /// metering, latency and batch-size histograms).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.state.audit.metrics()
    }

    /// A client handle.
    ///
    /// # Panics
    ///
    /// Panics if called after [`SemServer::shutdown`].
    // Documented API-misuse panic on a local handle, not a request-path
    // crash vector: `shutdown` consumes `self`, so hitting this needs a
    // handle obtained before the move — a caller bug worth surfacing.
    #[allow(clippy::expect_used)]
    pub fn client(&self) -> SemClient {
        SemClient {
            // audit:allow(panic, documented misuse panic: handle requested after shutdown)
            tx: self.tx.as_ref().expect("server running").clone(),
        }
    }

    /// Stops accepting requests and joins the workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(tx) = self.tx.take() {
            for _ in 0..self.workers.len() {
                let _ = tx.send(Job::Shutdown);
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for SemServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl SemClient {
    /// Requests a mediated-IBE decryption token (blocking).
    ///
    /// # Errors
    ///
    /// Propagates the SEM-side error ([`Error::Revoked`] etc.);
    /// returns [`Error::UnknownIdentity`] if the server is gone.
    pub fn ibe_token(&self, id: &str, u: &G1Affine) -> Result<DecryptToken, Error> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(Job::IbeToken {
                id: id.to_string(),
                u: u.clone(),
                reply,
            })
            .map_err(|_| Error::UnknownIdentity)?;
        rx.recv().map_err(|_| Error::UnknownIdentity)?
    }

    /// Requests a mediated-GDH half-signature (blocking).
    ///
    /// # Errors
    ///
    /// Same contract as [`SemClient::ibe_token`].
    pub fn gdh_half_sign(&self, id: &str, message: &[u8]) -> Result<HalfSignature, Error> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(Job::GdhHalfSign {
                id: id.to_string(),
                message: message.to_vec(),
                reply,
            })
            .map_err(|_| Error::UnknownIdentity)?;
        rx.recv().map_err(|_| Error::UnknownIdentity)?
    }

    /// Submits a mixed batch of requests as **one** worker job and
    /// returns the per-item outcomes in request order (blocking).
    ///
    /// The whole batch is served under a single revocation-list
    /// read-lock acquisition and a single channel round trip; per-item
    /// failures (revoked, unknown, …) come back inside the
    /// [`BatchReply`] entries rather than failing the call.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownIdentity`] only when the server is gone;
    /// an empty batch short-circuits to `Ok(vec![])`.
    pub fn batch(&self, items: Vec<BatchItem>) -> Result<Vec<BatchReply>, Error> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let (reply, rx) = bounded(1);
        self.tx
            .send(Job::Batch { items, reply })
            .map_err(|_| Error::UnknownIdentity)?;
        rx.recv().map_err(|_| Error::UnknownIdentity)
    }

    /// Convenience wrapper: one batch of token requests for a single
    /// identity (the SEM-side shape of decrypting a mailbox backlog).
    ///
    /// # Errors
    ///
    /// Same contract as [`SemClient::batch`].
    pub fn ibe_token_batch(
        &self,
        id: &str,
        us: &[G1Affine],
    ) -> Result<Vec<Result<DecryptToken, Error>>, Error> {
        let items = us
            .iter()
            .map(|u| BatchItem::IbeToken {
                id: id.to_string(),
                u: u.clone(),
            })
            .collect();
        Ok(self
            .batch(items)?
            .into_iter()
            .map(|r| match r {
                BatchReply::IbeToken(result) => result,
                BatchReply::GdhHalfSign(_) => Err(Error::InvalidCiphertext),
            })
            .collect())
    }
}

/// Maps a service result onto an audit outcome.
fn outcome_of<T>(result: &Result<T, Error>) -> Outcome {
    match result {
        Ok(_) => Outcome::Served,
        Err(Error::Revoked) => Outcome::RefusedRevoked,
        Err(Error::UnknownIdentity) => Outcome::RefusedUnknown,
        Err(_) => Outcome::RefusedInvalid,
    }
}

/// Audits one item of a processed batch (items and replies are zipped
/// in request order, so the shapes always correspond).
fn audit_batch_item(state: &State, item: &BatchItem, result: &BatchReply, latency: Duration) {
    match (item, result) {
        (BatchItem::IbeToken { id, .. }, BatchReply::IbeToken(result)) => {
            let bytes = result
                .as_ref()
                .map(|t| state.params.curve().gt_to_bytes(&t.0).len())
                .unwrap_or(0);
            state.audit.record_batched(
                id,
                Capability::IbeDecrypt,
                outcome_of(result),
                bytes,
                latency,
            );
        }
        (BatchItem::GdhHalfSign { id, .. }, BatchReply::GdhHalfSign(result)) => {
            let bytes = result
                .as_ref()
                .map(|h| state.params.curve().point_to_bytes(&h.0).len())
                .unwrap_or(0);
            state
                .audit
                .record_batched(id, Capability::GdhSign, outcome_of(result), bytes, latency);
        }
        _ => unreachable!("batch replies are produced in item order"),
    }
}

/// Result of a throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// Requests completed.
    pub requests: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ThroughputResult {
    /// Completed requests per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

/// Drives `total_requests` token requests from `client_threads`
/// concurrent clients against the server (the E9 experiment).
///
/// All requests target `id` with ciphertext component `u`.
// Benchmark driver, not a request path: a failed token here means the
// experiment itself is broken, and aborting loudly is the right report.
#[allow(clippy::expect_used)]
pub fn drive_throughput(
    server: &SemServer,
    id: &str,
    u: &G1Affine,
    client_threads: usize,
    total_requests: usize,
) -> ThroughputResult {
    let start = Instant::now();
    std::thread::scope(|scope| {
        let per_client = total_requests / client_threads;
        for _ in 0..client_threads {
            let client = server.client();
            let u = u.clone();
            let id = id.to_string();
            scope.spawn(move || {
                for _ in 0..per_client {
                    // audit:allow(panic, benchmark driver: abort the experiment on server error)
                    client.ibe_token(&id, &u).expect("token");
                }
            });
        }
    });
    ThroughputResult {
        requests: (total_requests / client_threads) * client_threads,
        elapsed: start.elapsed(),
    }
}

/// Batched counterpart of [`drive_throughput`]: the same request
/// stream, but each client submits `batch_size` token requests per
/// channel message via [`SemClient::batch`].
///
/// Comparing the two at equal `total_requests` isolates the
/// channel-hop and lock-acquisition amortization of the batched
/// endpoint (the pairing work per token is identical).
// Benchmark driver, not a request path — see `drive_throughput`.
#[allow(clippy::expect_used)]
pub fn drive_throughput_batched(
    server: &SemServer,
    id: &str,
    u: &G1Affine,
    client_threads: usize,
    total_requests: usize,
    batch_size: usize,
) -> ThroughputResult {
    assert!(batch_size > 0, "batch_size must be positive");
    let start = Instant::now();
    let per_client = total_requests / client_threads;
    std::thread::scope(|scope| {
        for _ in 0..client_threads {
            let client = server.client();
            let u = u.clone();
            let id = id.to_string();
            scope.spawn(move || {
                let mut remaining = per_client;
                while remaining > 0 {
                    let n = remaining.min(batch_size);
                    // audit:allow(panic, benchmark driver: abort the experiment on server error)
                    let tokens = client
                        .ibe_token_batch(&id, &vec![u.clone(); n])
                        .expect("batch");
                    assert_eq!(tokens.len(), n);
                    for token in tokens {
                        // audit:allow(panic, benchmark driver: abort the experiment on server error)
                        token.expect("token");
                    }
                    remaining -= n;
                }
            });
        }
    });
    ThroughputResult {
        requests: per_client * client_threads,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sempair_core::bf_ibe::Pkg;
    use sempair_core::gdh;
    use sempair_pairing::CurveParams;

    fn setup(workers: usize) -> (Pkg, SemServer, sempair_core::mediated::UserKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(111);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg = Pkg::setup(&mut rng, curve);
        let server = SemServer::spawn(pkg.params().clone(), workers);
        let (user, sem_key) = pkg.extract_split(&mut rng, "alice");
        server.install_ibe(sem_key);
        (pkg, server, user, rng)
    }

    #[test]
    fn token_service_roundtrip() {
        let (pkg, server, user, mut rng) = setup(2);
        let client = server.client();
        let c = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"through the server")
            .unwrap();
        let token = client.ibe_token("alice", &c.u).unwrap();
        assert_eq!(
            user.finish_decrypt(pkg.params(), &c, &token).unwrap(),
            b"through the server"
        );
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_served() {
        let (pkg, server, user, mut rng) = setup(4);
        let ciphertexts: Vec<_> = (0..8)
            .map(|i| {
                pkg.params()
                    .encrypt_full(&mut rng, "alice", format!("msg {i}").as_bytes())
                    .unwrap()
            })
            .collect();
        std::thread::scope(|scope| {
            for (i, c) in ciphertexts.iter().enumerate() {
                let client = server.client();
                let user = &user;
                let pkg = &pkg;
                scope.spawn(move || {
                    let token = client.ibe_token("alice", &c.u).unwrap();
                    let m = user.finish_decrypt(pkg.params(), c, &token).unwrap();
                    assert_eq!(m, format!("msg {i}").as_bytes());
                });
            }
        });
        server.shutdown();
    }

    #[test]
    fn revocation_visible_to_inflight_clients() {
        let (pkg, server, _user, mut rng) = setup(2);
        let client = server.client();
        let c = pkg.params().encrypt_full(&mut rng, "alice", b"m").unwrap();
        assert!(client.ibe_token("alice", &c.u).is_ok());
        server.revoke("alice");
        assert_eq!(client.ibe_token("alice", &c.u), Err(Error::Revoked));
        server.unrevoke("alice");
        assert!(client.ibe_token("alice", &c.u).is_ok());
        server.shutdown();
    }

    #[test]
    fn gdh_half_sign_via_server() {
        let (pkg, server, _user, mut rng) = setup(2);
        let curve = pkg.params().curve();
        let (gdh_user, sem_key, pk) = gdh::mediated_keygen(&mut rng, curve, "signer");
        server.install_gdh(sem_key);
        let client = server.client();
        let half = client.gdh_half_sign("signer", b"payload").unwrap();
        let sig = gdh_user.finish_sign(curve, b"payload", &half).unwrap();
        gdh::verify(curve, &pk, b"payload", &sig).unwrap();
        // Revocation hits GDH too.
        server.revoke("signer");
        assert_eq!(client.gdh_half_sign("signer", b"x"), Err(Error::Revoked));
        server.shutdown();
    }

    #[test]
    fn throughput_driver_completes() {
        let (pkg, server, _user, mut rng) = setup(2);
        let c = pkg.params().encrypt_full(&mut rng, "alice", b"m").unwrap();
        let result = drive_throughput(&server, "alice", &c.u, 2, 16);
        assert_eq!(result.requests, 16);
        assert!(result.ops_per_sec() > 0.0);
        server.shutdown();
    }

    #[test]
    fn audit_log_tracks_decisions() {
        let (pkg, server, _user, mut rng) = setup(2);
        let client = server.client();
        let c = pkg.params().encrypt_full(&mut rng, "alice", b"m").unwrap();
        client.ibe_token("alice", &c.u).unwrap();
        client.ibe_token("alice", &c.u).unwrap();
        server.revoke("alice");
        let _ = client.ibe_token("alice", &c.u);
        let _ = client.ibe_token("ghost", &c.u);
        let stats = server.audit_stats("alice");
        assert_eq!(stats.served, 2);
        assert_eq!(stats.refused, 1);
        assert!(server.audit_bytes_out() > 0);
        assert_eq!(server.audit_stats("ghost").refused, 1);
        assert!(server
            .audit_noisy_identities(0)
            .contains(&"alice".to_string()));
        server.shutdown();
    }

    #[test]
    fn batch_serves_mixed_items_in_order() {
        let (pkg, server, user, mut rng) = setup(2);
        let curve = pkg.params().curve();
        let (gdh_user, sem_key, pk) = gdh::mediated_keygen(&mut rng, curve, "signer");
        server.install_gdh(sem_key);
        let client = server.client();
        let c0 = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"first")
            .unwrap();
        let c1 = pkg
            .params()
            .encrypt_full(&mut rng, "alice", b"second")
            .unwrap();
        let replies = client
            .batch(vec![
                BatchItem::IbeToken {
                    id: "alice".into(),
                    u: c0.u.clone(),
                },
                BatchItem::GdhHalfSign {
                    id: "signer".into(),
                    message: b"doc".to_vec(),
                },
                BatchItem::IbeToken {
                    id: "alice".into(),
                    u: c1.u.clone(),
                },
                BatchItem::IbeToken {
                    id: "ghost".into(),
                    u: c0.u.clone(),
                },
            ])
            .unwrap();
        assert_eq!(replies.len(), 4);
        let BatchReply::IbeToken(Ok(t0)) = &replies[0] else {
            panic!("item 0")
        };
        let BatchReply::GdhHalfSign(Ok(half)) = &replies[1] else {
            panic!("item 1")
        };
        let BatchReply::IbeToken(Ok(t1)) = &replies[2] else {
            panic!("item 2")
        };
        assert_eq!(
            replies[3],
            BatchReply::IbeToken(Err(Error::UnknownIdentity))
        );
        assert_eq!(
            user.finish_decrypt(pkg.params(), &c0, t0).unwrap(),
            b"first"
        );
        assert_eq!(
            user.finish_decrypt(pkg.params(), &c1, t1).unwrap(),
            b"second"
        );
        let sig = gdh_user.finish_sign(curve, b"doc", half).unwrap();
        gdh::verify(curve, &pk, b"doc", &sig).unwrap();
        server.shutdown();
    }

    #[test]
    fn batch_respects_revocation_per_item() {
        let (pkg, server, _user, mut rng) = setup(1);
        let (_, bob_sem) = pkg.extract_split(&mut rng, "bob");
        server.install_ibe(bob_sem);
        server.revoke("alice");
        let client = server.client();
        let c = pkg.params().encrypt_full(&mut rng, "alice", b"m").unwrap();
        let d = pkg.params().encrypt_full(&mut rng, "bob", b"m").unwrap();
        let replies = client
            .batch(vec![
                BatchItem::IbeToken {
                    id: "alice".into(),
                    u: c.u.clone(),
                },
                BatchItem::IbeToken {
                    id: "bob".into(),
                    u: d.u.clone(),
                },
            ])
            .unwrap();
        assert_eq!(replies[0], BatchReply::IbeToken(Err(Error::Revoked)));
        assert!(matches!(&replies[1], BatchReply::IbeToken(Ok(_))));
        server.shutdown();
    }

    #[test]
    fn batch_audited_with_transport_counters() {
        let (pkg, server, _user, mut rng) = setup(2);
        let client = server.client();
        let c = pkg.params().encrypt_full(&mut rng, "alice", b"m").unwrap();
        client.ibe_token("alice", &c.u).unwrap();
        let tokens = client
            .ibe_token_batch("alice", &[c.u.clone(), c.u.clone(), c.u.clone()])
            .unwrap();
        assert!(tokens.into_iter().all(|t| t.is_ok()));
        assert!(client.batch(vec![]).unwrap().is_empty());
        let t = server.audit_transport();
        assert_eq!((t.single, t.batched_items, t.batches), (1, 3, 1));
        assert_eq!(server.audit_stats("alice").served, 4);
        server.shutdown();
    }

    #[test]
    fn batched_throughput_driver_completes() {
        let (pkg, server, _user, mut rng) = setup(2);
        let c = pkg.params().encrypt_full(&mut rng, "alice", b"m").unwrap();
        let result = drive_throughput_batched(&server, "alice", &c.u, 2, 16, 5);
        assert_eq!(result.requests, 16);
        assert!(result.ops_per_sec() > 0.0);
        let t = server.audit_transport();
        assert_eq!(t.batched_items, 16);
        // Each client covers 8 requests in batches of 5: ⌈8/5⌉ = 2.
        assert_eq!(t.batches, 4);
        server.shutdown();
    }

    #[test]
    fn bounded_audit_and_metrics_via_spawn_with() {
        let mut rng = StdRng::seed_from_u64(111);
        let curve = CurveParams::generate(&mut rng, 128, 64).unwrap();
        let pkg = Pkg::setup(&mut rng, curve);
        let server = SemServer::spawn_with(
            pkg.params().clone(),
            2,
            AuditConfig {
                audit_cap: 4,
                identity_cap: 2,
            },
        );
        let (_, sem_key) = pkg.extract_split(&mut rng, "alice");
        server.install_ibe(sem_key);
        let client = server.client();
        let c = pkg.params().encrypt_full(&mut rng, "alice", b"m").unwrap();
        for _ in 0..10 {
            client.ibe_token("alice", &c.u).unwrap();
        }
        // Mint more identities than the cap: extras fold into overflow.
        for i in 0..5 {
            let _ = client.ibe_token(&format!("ghost{i}"), &c.u);
        }
        assert_eq!(server.audit_len(), 4);
        let m = server.metrics();
        assert_eq!(m.records_len, 4);
        assert_eq!(m.records_dropped, 11);
        assert!(m.identities_tracked <= 2);
        assert_eq!(m.totals.served + m.totals.refused, 15);
        // Latency got measured for every request.
        let (_, ibe_latency) = &m.latency_us[0];
        assert_eq!(ibe_latency.count(), 15);
        assert!(ibe_latency.sum() > 0);
        server.shutdown();
    }

    #[test]
    fn unknown_identity_propagates() {
        let (_pkg, server, _user, _rng) = setup(1);
        let client = server.client();
        let g = G1Affine::infinity();
        assert_eq!(client.ibe_token("ghost", &g), Err(Error::UnknownIdentity));
        server.shutdown();
    }
}
